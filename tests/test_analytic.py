"""The analytic balance predictor and its predict-then-verify machinery.

Two layers under test:

* :mod:`repro.balance.analytic` — the trace-free traffic model.  The
  differential suite runs it against the exact simulator over streaming
  kernels (where the model is provably tight) and random geometries
  (where only the documented bands and structural invariants hold).
* :mod:`repro.experiments.predict` — the trust machinery: spot-check
  sampling, the tolerance gate, fallback accounting, and the manifest
  ``analytic`` block (SCHEMA_VERSION 5).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.balance.analytic import _Group, _covered_sets, _lines, analyze, predict_run
from repro.errors import AnalysisError
from repro.experiments.config import ExperimentConfig
from repro.experiments.orchestrator import build_manifest, run_battery
from repro.experiments.predict import (
    channel_errors,
    collect_analytic_telemetry,
    configure_predict,
    get_predict,
    run_or_predict,
    summarize_analytic,
)
from repro.experiments.result import SCHEMA_VERSION
from repro.interp.executor import execute
from repro.machine import exemplar, origin2000
from repro.programs import convolution, jacobi, make_kernel

SCHEMA = Path(__file__).resolve().parent.parent / "docs" / "result.schema.json"
TOOLS = Path(__file__).resolve().parent.parent / "tools"


@pytest.fixture(autouse=True)
def _predict_off():
    """Leave the process defaults as we found them."""
    saved = get_predict()
    yield
    configure_predict(*saved)


def _channel_rel_errors(prog, machine, **kwargs):
    est = analyze(prog, machine, **kwargs)
    run = execute(prog, machine, sim_cache=False, **kwargs)
    exact = run.counters.channel_bytes
    return [
        (p - e) / max(e, 1) for p, e in zip(est.channel_bytes, exact)
    ], est, run


class TestModelExactCases:
    """Streaming kernels: the model's miss counts are compulsory-only and
    match the simulator (near-)exactly."""

    @pytest.mark.parametrize("name", ["1w1r", "1w2r", "2w3r"])
    def test_streaming_kernels_tight(self, name):
        machine = origin2000(scale=256)
        errs, est, run = _channel_rel_errors(make_kernel(name, 4096), machine)
        # Register channel is counted, not modelled: exact by construction.
        assert est.register_bytes == run.counters.register_bytes
        for err in errs:
            assert abs(err) < 0.02

    def test_convolution_tight(self):
        machine = origin2000(scale=256)
        errs, _, _ = _channel_rel_errors(convolution(4096), machine)
        for err in errs:
            assert abs(err) < 0.02

    def test_jacobi_memory_tight_mid_banded(self):
        """2D stencil: the memory channel is compulsory-dominated and
        tight; the L2-L1 channel carries unmodelled 2-way conflict
        misses between the row streams — the documented-loose band."""
        machine = origin2000(scale=256)
        errs, est, run = _channel_rel_errors(jacobi(96), machine)
        assert est.register_bytes == run.counters.register_bytes
        assert abs(errs[-1]) < 0.02  # memory channel
        assert abs(errs[1]) < 0.70  # mid channel: documented band

    def test_exemplar_conflict_term(self):
        """Footnote 3: the direct-mapped Exemplar thrashes lockstep
        kernels placed cache-size apart; padding removes the conflict.
        The model reproduces both from the same layout math."""
        machine = exemplar(scale=256)
        errs, _, _ = _channel_rel_errors(make_kernel("1w1r", 4096), machine)
        assert abs(errs[-1]) < 0.02
        from repro.machine import LayoutPolicy

        errs, _, _ = _channel_rel_errors(
            make_kernel("1w1r", 4096),
            machine,
            layout_policy=LayoutPolicy(alignment=32, pad_bytes=32),
        )
        assert abs(errs[-1]) < 0.02

    def test_multi_pass_steady_state(self):
        machine = origin2000(scale=256)
        prog = make_kernel("1w2r", 4096)
        errs, _, _ = _channel_rel_errors(prog, machine, passes=4)
        for err in errs:
            assert abs(err) < 0.02


class TestModelDifferential:
    """Random geometries: documented bands + structural invariants."""

    @given(
        n=st.integers(min_value=64, max_value=3000),
        name=st.sampled_from(
            ["1w1r", "2w2r", "1w2r", "1w3r", "1w4r", "2w3r", "2w5r", "3w6r"]
        ),
        scale=st.sampled_from([16, 64, 256]),
    )
    @settings(settings.get_profile("repro-default"))
    def test_streaming_band(self, n, name, scale):
        machine = origin2000(scale=scale)
        prog = make_kernel(name, n)
        errs, est, run = _channel_rel_errors(prog, machine)
        assert est.register_bytes == run.counters.register_bytes
        # Memory channel: tight band plus a few-lines floor for tiny
        # working sets straddling a cache-size boundary.
        line = machine.cache_levels[-1].geometry.line_size
        exact = run.counters.channel_bytes[-1]
        assert abs(est.channel_bytes[-1] - exact) <= max(0.10 * exact, 8 * line)

    def test_cross_group_set_pressure(self):
        """Five 840 B arrays under an 8 KiB 2-way L2 stack three deep in
        half the sets: a resident-by-size working set still thrashes.
        The cross-group pressure term must keep the memory channel in
        band where the pure capacity model was ~9x under."""
        machine = origin2000(scale=512)
        errs, _, _ = _channel_rel_errors(make_kernel("2w5r", 105), machine)
        assert abs(errs[-1]) < 0.30

    @given(
        n=st.integers(min_value=32, max_value=1500),
        scale=st.sampled_from([64, 256]),
        passes=st.integers(min_value=1, max_value=3),
    )
    @settings(settings.get_profile("repro-fast"))
    def test_structural_invariants(self, n, scale, passes):
        machine = origin2000(scale=scale)
        est = analyze(convolution(n), machine, passes=passes)
        accesses = est.loads + est.stores
        for lv in est.levels:
            assert 0 <= lv.misses <= lv.accesses
            assert 0 <= lv.writebacks <= lv.misses
        assert est.levels[0].accesses == accesses
        # Each level consumes the previous level's outgoing events.
        for above, below in zip(est.levels, est.levels[1:]):
            assert below.accesses == above.events_out


class TestFootprintPrimitives:
    def test_lines_contiguous(self):
        assert _lines((8,), (100,), 8, 32) == 25

    def test_lines_strided_blocks(self):
        # Stride larger than the line: every iteration its own line.
        assert _lines((128,), (10,), 8, 32) == 10

    def test_lines_span_cap(self):
        # Overlapping copies cannot exceed span/line.
        assert _lines((8, 8), (10, 10), 8, 32) <= 5

    def test_covered_sets_folds_power_of_two_stride(self):
        # A 1024-byte stride in a 32-line x 32B (1 KiB) span folds onto
        # one set no matter the trip count.
        assert _covered_sets((1024,), (64,), 8, 32, 32) == 1

    def test_depth_lines_folds_stencil_members(self):
        """rhs[j][i] / rhs[j+1][i] under a row-stride inner loop: the
        second member is one lattice step away and must extend the trip,
        not densify the span (the nas_sp regression)."""
        g = _Group(
            "rhs",
            (8, 1920),
            base=0,
            width=1928,
            members=2,
            writes=1,
            extents=[(0, 8), (1920, 8)],
        )
        inner = g.depth_lines(1, (240, 238), 128)
        assert inner <= 240  # one column of lines, not the 3571-line span
        assert g.depth_lines(2, (240, 238), 128) == 2  # the members' lines

    def test_depth_lines_residual_offsets_counted(self):
        # An offset that is NOT a stride multiple stays a residual extent.
        g = _Group(
            "a",
            (8,),
            base=0,
            width=1004,
            members=2,
            writes=0,
            extents=[(0, 4), (1000, 4)],
        )
        assert g.depth_lines(0, (10,), 32) >= 2


class TestPredictSession:
    def test_disabled_by_default(self):
        with collect_analytic_telemetry() as session:
            assert not session.enabled
            run_or_predict(make_kernel("1w1r", 256), origin2000(scale=512))
            assert session.points == 1
            assert session.predicted == 0
        assert summarize_analytic(session) == {}

    def test_spot_check_sampling(self):
        configure_predict(True, spot_check=0.5, tolerance=0.5)
        prog = make_kernel("1w1r", 256)
        machine = origin2000(scale=512)
        with collect_analytic_telemetry() as session:
            assert session.stride == 2
            for _ in range(4):
                run_or_predict(prog, machine)
        assert session.points == 4
        assert session.checked == 2  # indices 0 and 2
        assert session.predicted == 2
        assert session.fallbacks == 0
        summary = summarize_analytic(session)
        assert summary["points"] == 4
        assert summary["sample_rate"] == 0.5
        assert summary["outliers"] == []

    def test_first_point_always_checked(self):
        configure_predict(True, spot_check=0.01, tolerance=0.5)
        with collect_analytic_telemetry() as session:
            run_or_predict(make_kernel("1w1r", 256), origin2000(scale=512))
        assert session.checked == 1

    def test_checked_point_returns_exact_run(self):
        configure_predict(True, spot_check=1.0, tolerance=0.9)
        prog = make_kernel("1w2r", 256)
        machine = origin2000(scale=512)
        with collect_analytic_telemetry():
            got = run_or_predict(prog, machine)
        exact = execute(prog, machine)
        assert got.counters.channel_bytes == exact.counters.channel_bytes

    def test_fallback_gate_trips_on_over_tolerance(self, monkeypatch):
        """Inject an estimate 3x over the exact bytes: the spot check
        must trip the gate, record the outlier, and every later point
        must simulate exactly."""
        import repro.experiments.predict as predict_mod

        real_analyze = predict_mod.analyze

        def inflated(program, machine, params=None, **kwargs):
            est = real_analyze(program, machine, params, **kwargs)
            levels = tuple(
                type(lv)(lv.name, lv.line_size, lv.accesses, lv.misses * 3, lv.writebacks)
                for lv in est.levels
            )
            return type(est)(
                est.program,
                est.machine,
                est.params,
                est.flops,
                est.loads,
                est.stores,
                levels,
                est.approximate,
            )

        monkeypatch.setattr(predict_mod, "analyze", inflated)
        configure_predict(True, spot_check=0.05, tolerance=0.10)
        prog = make_kernel("1w1r", 512)
        machine = origin2000(scale=512)
        with collect_analytic_telemetry() as session:
            got = run_or_predict(prog, machine)
            assert session.fallback_active
            run_or_predict(prog, machine)  # must simulate, not predict
        exact = execute(prog, machine)
        assert got.counters.channel_bytes == exact.counters.channel_bytes
        assert session.fallbacks == 1
        assert session.predicted == 0
        assert session.points == 2
        (outlier,) = session.outliers
        assert outlier["program"] == prog.name
        assert outlier["error"] > 0.10
        assert outlier["tolerance"] == 0.10
        assert summarize_analytic(session)["fallbacks"] == 1

    def test_analysis_error_falls_back_but_keeps_predicting(self, monkeypatch):
        import repro.experiments.predict as predict_mod

        def boom(*args, **kwargs):
            raise AnalysisError("injected: not affine")

        monkeypatch.setattr(predict_mod, "analyze", boom)
        configure_predict(True, spot_check=0.05, tolerance=0.10)
        with collect_analytic_telemetry() as session:
            run_or_predict(make_kernel("1w1r", 256), origin2000(scale=512))
        assert session.fallbacks == 1
        assert not session.fallback_active  # analyzer gap, not model error
        (outlier,) = session.outliers
        assert "injected" in outlier["reason"]

    def test_channel_errors_labelled(self):
        machine = origin2000(scale=512)
        prog = make_kernel("1w1r", 256)
        run = execute(prog, machine)
        errs = channel_errors(run, run)
        assert [name for name, _ in errs] == list(machine.level_names)
        assert all(err == 0.0 for _, err in errs)

    def test_configure_predict_validates(self):
        with pytest.raises(ValueError):
            configure_predict(True, spot_check=0.0)
        with pytest.raises(ValueError):
            configure_predict(True, spot_check=1.5)
        with pytest.raises(ValueError):
            configure_predict(True, tolerance=-0.1)


class TestPredictBattery:
    """End to end: --predict manifests carry the v5 analytic block."""

    @pytest.fixture(scope="class")
    def manifest(self):
        cfg = ExperimentConfig(scale=256, sim_cache=False, predict=True)
        results = run_battery(["fig1"], cfg)
        return build_manifest(results, jobs=1, run_id="predict")

    def test_battery_ok_and_predicted(self, manifest):
        (res,) = manifest["results"]
        assert res["status"] == "ok"
        analytic = res["analytic"]
        assert analytic["points"] >= 7
        assert analytic["checked"] >= 1
        assert analytic["predicted"] + analytic["checked"] + analytic[
            "fallbacks"
        ] >= analytic["points"] - len(analytic["outliers"])

    def test_config_knobs_serialized(self, manifest):
        (res,) = manifest["results"]
        assert res["config"]["predict"] is True
        assert res["config"]["spot_check"] == pytest.approx(0.05)
        assert res["config"]["predict_tolerance"] == pytest.approx(0.10)

    def test_manifest_validates_against_v5_schema(self, manifest):
        assert manifest["schema_version"] == SCHEMA_VERSION >= 5
        sys.path.insert(0, str(TOOLS))
        try:
            from validate_manifest import validate
        finally:
            sys.path.remove(str(TOOLS))
        validate(manifest, json.loads(SCHEMA.read_text()))


class TestApiPredict:
    def test_predict_mirrors_simulate(self):
        machine = origin2000(scale=256)
        prog = make_kernel("1w2r", 2048)
        est = repro.predict(prog, machine)
        sim = repro.simulate(prog, machine)
        assert est.channel_names == sim.channel_names
        assert est.flops == sim.flops
        assert est.loads == sim.loads
        assert est.memory_bytes == pytest.approx(sim.memory_bytes, rel=0.02)
        assert est.seconds == pytest.approx(sim.seconds, rel=0.02)

    def test_predict_run_is_machine_run(self):
        machine = origin2000(scale=256)
        run = predict_run(make_kernel("1w1r", 512), machine)
        assert run.seconds > 0
        assert len(run.counters.channel_bytes) == machine.n_levels

    def test_run_experiments_predict_flag(self):
        results = repro.run_experiments(
            ["fig5"], ExperimentConfig(scale=256, sim_cache=False), predict=True
        )
        (res,) = results
        assert res.status == "ok"
        # fig5 sweeps through run_or_predict only if it uses it; at
        # minimum the knob must round-trip into the recorded config.
        assert res.config["predict"] is True

"""Tests for guard-context subscript normalization."""


from repro.lang import ProgramBuilder, render
from repro.lang.affine import Affine
from repro.lang.analysis import refs_of_array
from repro.transforms.normalize import normalize_guard_contexts
from repro.transforms.verify import verify_equivalent


def _subs_of(program, array):
    reads, writes = [], []
    for s in program.body:
        r, w = refs_of_array(s, array)
        reads += r
        writes += w
    return {ref.index for ref in reads + writes}


class TestEqualityPins:
    def test_then_branch_of_eq(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N", "N"), output=True)
        with b.loop("j", 0, "N") as j:
            with b.loop("i", 0, "N") as i:
                with b.if_(j.eq(3)):
                    b.assign(a[i, 3], 1.0)
                with b.else_():
                    b.assign(a[i, j], 2.0)
        p = b.build()
        out = normalize_guard_contexts(p)
        # a[i, 3] inside j==3 became a[i, j]
        assert _subs_of(out, "a") == {(Affine.var("i"), Affine.var("j"))}
        verify_equivalent(p, out, sizes=(4, 8))

    def test_ne_pins_else(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i.ne(2)):
                b.assign(a[i], 1.0)
            with b.else_():
                b.assign(a[2], 5.0)
        p = b.build()
        out = normalize_guard_contexts(p)
        assert _subs_of(out, "a") == {(Affine.var("i"),)}
        verify_equivalent(p, out)


class TestRangeCollapse:
    def test_else_of_le_collapses_to_upper(self):
        """The Figure 6 pattern: else of j <= N-2 inside [1, N) pins j=N-1."""
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N", "N"), output=True)
        N = b.sym("N")
        with b.loop("j", 1, "N") as j:
            with b.loop("i", 0, "N") as i:
                with b.if_(j <= N - 2):
                    b.assign(a[i, j], 1.0)
                with b.else_():
                    b.assign(a[i, N - 1], 9.0)
        p = b.build()
        out = normalize_guard_contexts(p)
        assert _subs_of(out, "a") == {(Affine.var("i"), Affine.var("j"))}
        verify_equivalent(p, out, sizes=(3, 6, 8))

    def test_then_of_le_at_lower(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        with b.loop("i", 1, "N") as i:
            with b.if_(i <= 1):
                b.assign(a[1], 7.0)
            with b.else_():
                b.assign(a[i], 1.0)
        p = b.build()
        out = normalize_guard_contexts(p)
        assert _subs_of(out, "a") == {(Affine.var("i"),)}
        verify_equivalent(p, out)

    def test_ge_pins_upper_edge(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        N = b.sym("N")
        with b.loop("i", 0, "N") as i:
            with b.if_(i >= N - 1):
                b.assign(a[N - 1], 3.0)
            with b.else_():
                b.assign(a[i], 1.0)
        p = b.build()
        out = normalize_guard_contexts(p)
        assert _subs_of(out, "a") == {(Affine.var("i"),)}
        verify_equivalent(p, out)

    def test_wide_range_not_pinned(self):
        """A guard covering several values must not rewrite anything."""
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i <= 4):
                b.assign(a[2], a[2] + 1.0)
            with b.else_():
                b.assign(a[i], 1.0)
        p = b.build()
        out = normalize_guard_contexts(p)
        assert out is p  # untouched


class TestEndToEnd:
    def test_fig6_normalization(self):
        from repro.programs import fig6_fused

        p = fig6_fused(8)
        out = normalize_guard_contexts(p)
        text = render(out)
        assert "b[i, N - 1]" not in text
        assert "a[i, N - 1]" not in text
        verify_equivalent(p, out, sizes=(2, 4, 8))

    def test_idempotent(self):
        from repro.programs import fig6_fused

        once = normalize_guard_contexts(fig6_fused(8))
        assert normalize_guard_contexts(once) is once

    def test_no_guards_identity(self):
        from tests.helpers import simple_stream_program

        p = simple_stream_program()
        assert normalize_guard_contexts(p) is p

    def test_conjunction_pins_both(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N", "N"), output=True)
        from repro.lang.affine import And

        with b.loop("j", 0, "N") as j:
            with b.loop("i", 0, "N") as i:
                with b.if_(And((j.eq(1), i.eq(2)))):
                    b.assign(a[2, 1], 4.0)
                with b.else_():
                    b.assign(a[i, j], a[i, j] + 0.0)
        p = b.build()
        out = normalize_guard_contexts(p)
        assert _subs_of(out, "a") == {(Affine.var("i"), Affine.var("j"))}
        verify_equivalent(p, out, sizes=(4, 8))

"""Tests for the reference interpreter and the machine executor."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.interp import Evaluator, MachineRun, evaluate, execute
from repro.lang import ProgramBuilder, call
from repro.machine import LayoutPolicy

from tests.helpers import reduction_program, simple_stream_program


class TestEvaluatorSemantics:
    def test_reduction_value(self):
        p = reduction_program(n=16)
        out = evaluate(p, {"N": 16})
        ev = Evaluator(p, {"N": 16})
        assert out.scalars["sum"] == pytest.approx(float(ev.arrays["a"].sum()), rel=1e-12)

    def test_initial_scalar_value(self):
        b = ProgramBuilder("p")
        s = b.scalar("s", output=True, initial=2.5)
        b.assign(s, s * 2.0)
        assert evaluate(b.build()).scalars["s"] == 5.0

    def test_index_value(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], i.as_value() * 2.0)
        out = evaluate(b.build())
        assert list(out.arrays["a"]) == [0.0, 2.0, 4.0, 6.0]

    def test_intrinsics(self):
        b = ProgramBuilder("p")
        s = b.scalar("s", output=True)
        b.assign(s, call("sqrt", 9.0) + call("f", 2.0, 4.0))
        out = evaluate(b.build())
        assert out.scalars["s"] == pytest.approx(3.0 + (0.5 * 2.0 + 0.25 * 4.0))

    def test_min_max_abs_div(self):
        from repro.lang.expr import BinOp, Const, UnaryOp

        b = ProgramBuilder("p")
        s = b.scalar("s", output=True)
        expr = BinOp("max", Const(1.0), BinOp("min", Const(2.0), Const(3.0))) + UnaryOp(
            "abs", Const(-4.0)
        ) + Const(9.0) / Const(3.0)
        b.assign(s, expr)
        assert evaluate(b.build()).scalars["s"] == pytest.approx(2.0 + 4.0 + 3.0)

    def test_guard_execution(self):
        b = ProgramBuilder("p", params={"N": 6})
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i < 2):
                b.assign(s, s + 1.0)
            with b.else_():
                b.assign(s, s + 10.0)
        assert evaluate(b.build()).scalars["s"] == 2 + 40

    def test_bounds_check(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i + 1], 1.0)
        with pytest.raises(ExecutionError, match="out of bounds"):
            evaluate(b.build())

    def test_read_stream_deterministic(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.read(a[i])
        p = b.build()
        r1 = evaluate(p, input_seed=5)
        r2 = evaluate(p, input_seed=5)
        r3 = evaluate(p, input_seed=6)
        assert np.array_equal(r1.arrays["a"], r2.arrays["a"])
        assert not np.array_equal(r1.arrays["a"], r3.arrays["a"])

    def test_array_init_independent_of_siblings(self):
        """Dropping an unrelated array must not change another's initial
        contents (transform verification depends on this)."""
        p1 = simple_stream_program(n=8)
        p2 = p1.adding_array(
            __import__("repro.lang.types", fromlist=["ArrayDecl"]).ArrayDecl(
                "zzz", (__import__("repro.lang.affine", fromlist=["Affine"]).Affine.var("N"),)
            )
        )
        e1 = Evaluator(p1, {"N": 8})
        e2 = Evaluator(p2, {"N": 8})
        assert np.array_equal(e1.arrays["a"], e2.arrays["a"])

    def test_param_override(self):
        p = reduction_program(n=64)
        small = evaluate(p, {"N": 2})
        assert small.scalars["sum"] != 0


class TestExecutor:
    def test_sec21_write_loop_twice_read_loop(self, tiny_machine):
        """The paper's §2.1 observation under the bandwidth model."""
        from repro.programs import sec21_read_loop, sec21_write_loop

        n = 512  # 4 KiB array, 4x the tiny L2
        w = execute(sec21_write_loop(n), tiny_machine)
        r = execute(sec21_read_loop(n), tiny_machine)
        assert w.seconds / r.seconds == pytest.approx(2.0, rel=0.05)

    def test_counters_for_stream(self, tiny_machine):
        p = simple_stream_program(n=512)  # two 4 KiB arrays
        run = execute(p, tiny_machine)
        c = run.counters
        assert c.graduated_flops == 512
        assert c.loads == 1024 and c.stores == 512
        assert c.register_bytes == 8 * 1536
        # memory traffic: read a+b (8 KiB) + write back a (4 KiB)
        assert c.memory_bytes == 3 * 4096

    def test_passes_scale_traffic(self, tiny_machine):
        p = simple_stream_program(n=512)
        one = execute(p, tiny_machine, passes=1)
        two = execute(p, tiny_machine, passes=2)
        assert two.counters.graduated_flops == 2 * one.counters.graduated_flops
        assert two.counters.memory_bytes == pytest.approx(
            2 * one.counters.memory_bytes, rel=0.05
        )

    def test_warmup_resident(self, tiny_machine):
        # array fits in L2 (1 KiB): after warmup, no memory traffic
        p = simple_stream_program(n=32)  # 256B x 2
        cold = execute(p, tiny_machine, flush=False)
        warm = execute(p, tiny_machine, warmup_passes=1, flush=False)
        assert warm.counters.memory_bytes == 0
        assert cold.counters.memory_bytes > 0

    def test_flush_adds_writebacks(self, tiny_machine):
        p = simple_stream_program(n=512)
        with_flush = execute(p, tiny_machine, flush=True)
        without = execute(p, tiny_machine, flush=False)
        assert with_flush.counters.memory_bytes > without.counters.memory_bytes

    def test_effective_bandwidth_saturates(self, tiny_machine):
        p = simple_stream_program(n=2048)
        run = execute(p, tiny_machine)
        assert run.effective_bandwidth == pytest.approx(
            tiny_machine.memory_bandwidth, rel=0.01
        )
        assert run.time.bound == "Mem-L2"

    def test_empty_program_rejected(self, tiny_machine):
        b = ProgramBuilder("p", params={"N": 0})
        a = b.array("a", 8, output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        with pytest.raises(ExecutionError, match="no work"):
            execute(b.build(), tiny_machine)

    def test_layout_policy_override(self, tiny_machine):
        p = simple_stream_program(n=512)
        run = execute(p, tiny_machine, layout_policy=LayoutPolicy(alignment=8, pad_bytes=0))
        assert isinstance(run, MachineRun)

    def test_mflops_and_describe(self, tiny_machine):
        p = simple_stream_program(n=512)
        run = execute(p, tiny_machine)
        assert run.mflops > 0
        assert "stream" in run.describe()

    def test_overlap_respects_bandwidth_floor(self, tiny_machine):
        """The overlap model can never beat the bandwidth bound (the
        paper's 'latency cannot be fully tolerated without infinite
        bandwidth'); the pure latency model ignores bandwidth and may be
        lower on a narrow-bandwidth machine."""
        p = simple_stream_program(n=2048)
        run = execute(p, tiny_machine)
        assert run.latency_time > 0
        assert run.overlap4_time >= run.seconds


class TestDirectMappedConflict:
    def test_period_five_thrash(self, one_level_machine):
        """Two arrays spaced a multiple of the cache apart thrash a
        direct-mapped cache; padding fixes it (footnote 3 mechanics)."""
        b = ProgramBuilder("p", params={"N": 96})
        x = b.array("x", "N", output=True)
        y = b.array("y", "N")
        with b.loop("i", 0, "N") as i:
            b.assign(x[i], x[i] + y[i])
        p = b.build()
        # 96 doubles = 768 B > the 640 B cache; x at base 0 and pad 512 puts
        # y at 1280 = 2 x 640, i.e. on exactly x's sets: total conflict.
        conflicted = execute(
            p, one_level_machine,
            layout_policy=LayoutPolicy(alignment=8, pad_bytes=512),
        )
        clean = execute(
            p, one_level_machine, layout_policy=LayoutPolicy(alignment=8, pad_bytes=64)
        )
        assert clean.counters.memory_bytes < conflicted.counters.memory_bytes

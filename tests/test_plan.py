"""The sweep query planner: shared-work batches must be bit-identical.

Every collapse rule — capacity profiles, trace sharing through the
level trie, prefix memoization, cache hits, per-point fallback — is
checked against pointwise ``execute`` on the same requests, counter for
counter.  The all-capacity :class:`StackProfile` is property-tested
against the reference cache, and the multi-consumer chunk fanout that
trace sharing rides on is exercised directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.executor import execute
from repro.machine.cache import Cache, CacheGeometry
from repro.machine.engine.simcache import SimulationCache
from repro.machine.engine.stack import StackProfile, stack_profile
from repro.machine.hierarchy import Hierarchy
from repro.machine.layout import LayoutPolicy
from repro.machine.spec import CacheLevelSpec, MachineSpec
from repro.trace.events import Trace
from repro.trace.stream import fanout_chunks
from repro.experiments.plan import (
    SimRequest,
    collect_plan_telemetry,
    execute_plan,
    run_batch,
    summarize_plan,
)

from .helpers import simple_stream_program, two_loop_chain

LINE = 32
LAYOUT = LayoutPolicy(alignment=32, pad_bytes=32)


def fa_machine(lines: int, name: str | None = None, line: int = LINE) -> MachineSpec:
    """Single-level fully-associative machine of ``lines`` lines."""
    return MachineSpec(
        name=name or f"fa{lines}",
        peak_flops=1e9,
        register_bandwidth=8e9,
        cache_levels=(
            CacheLevelSpec(
                name="C",
                geometry=CacheGeometry(lines * line, line, lines),
                downstream_bandwidth=1e9,
                downstream_latency=1e-7,
            ),
        ),
        default_layout=LAYOUT,
    )


def two_level_machine(name: str, l2_lines: int, l1_geom=(1024, 32, 2)) -> MachineSpec:
    """Two-level machine; every instance shares the same L1 geometry."""
    return MachineSpec(
        name=name,
        peak_flops=1e9,
        register_bandwidth=8e9,
        cache_levels=(
            CacheLevelSpec(
                name="L1",
                geometry=CacheGeometry(*l1_geom),
                downstream_bandwidth=4e9,
                downstream_latency=5e-8,
            ),
            CacheLevelSpec(
                name="L2",
                geometry=CacheGeometry(l2_lines * 64, 64, 4),
                downstream_bandwidth=1e9,
                downstream_latency=3e-7,
            ),
        ),
        default_layout=LAYOUT,
    )


def assert_same_run(a, b) -> None:
    """Bit-identical counters and timing-model outputs."""
    assert a.program == b.program
    assert a.counters.graduated_flops == b.counters.graduated_flops
    assert a.counters.loads == b.counters.loads
    assert a.counters.stores == b.counters.stores
    assert a.counters.downstream_bytes == b.counters.downstream_bytes
    assert len(a.counters.level_stats) == len(b.counters.level_stats)
    for sa, sb in zip(a.counters.level_stats, b.counters.level_stats):
        assert vars(sa) == vars(sb)
    assert a.seconds == b.seconds
    assert a.latency_time == b.latency_time
    assert a.overlap4_time == b.overlap4_time


def pointwise(requests, **kwargs):
    return [
        execute(
            r.program,
            r.machine,
            params=r.params,
            layout_policy=r.layout_policy,
            passes=r.passes,
            warmup_passes=r.warmup_passes,
            flush=r.flush,
            validate=r.validate,
            sim_cache=False,
            **kwargs,
        )
        for r in requests
    ]


# -- the all-capacity counter profile -----------------------------------------
class TestStackProfile:
    @given(
        data=st.lists(
            st.tuples(st.integers(0, 60), st.booleans()), min_size=0, max_size=250
        ),
        capacity=st.sampled_from([1, 2, 3, 7, 16, 64]),
        flush=st.booleans(),
    )
    @settings(max_examples=60)
    def test_matches_reference_cache_at_any_capacity(self, data, capacity, flush):
        addrs = np.array([line * LINE for line, _ in data], dtype=np.int64)
        writes = np.array([w for _, w in data], dtype=bool)
        profile = stack_profile(addrs, writes, LINE)
        ref = Cache("L", CacheGeometry(capacity * LINE, LINE, capacity))
        if len(addrs):
            ref.run(addrs, writes)
        if flush:
            ref.flush()
        got = profile.stats(capacity, flush=flush)
        assert vars(got) == vars(ref.stats)

    def test_empty_trace_profile(self):
        profile = stack_profile(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), LINE
        )
        for capacity in (1, 8):
            stats = profile.stats(capacity)
            assert stats.accesses == 0 and stats.events_out == 0

    def test_rejects_bad_line_size(self):
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            stack_profile(np.zeros(2, dtype=np.int64), np.zeros(2, dtype=bool), 48)

    def test_stats_for_size(self):
        addrs = (np.arange(100, dtype=np.int64) % 7) * LINE
        writes = np.zeros(100, dtype=bool)
        profile = stack_profile(addrs, writes, LINE)
        assert vars(profile.stats_for_size(4 * LINE)) == vars(profile.stats(4))
        assert isinstance(profile, StackProfile)


# -- chunk fanout -------------------------------------------------------------
def _chunks(n_chunks: int, per: int = 8):
    for i in range(n_chunks):
        addrs = (np.arange(per, dtype=np.int64) + i * per) * 8
        yield Trace(addrs, np.zeros(per, dtype=bool), per, per, 0)


class TestFanout:
    def test_lockstep_consumers_see_identical_chunks(self):
        streams = fanout_chunks(_chunks(5), 3, depth=1)
        seen = [[] for _ in streams]
        for chunk_set in zip(*streams):
            first = chunk_set[0]
            for i, chunk in enumerate(chunk_set):
                assert np.array_equal(chunk.addresses, first.addresses)
                seen[i].append(chunk)
        assert all(len(s) == 5 for s in seen)

    def test_skewed_consumer_beyond_depth_raises(self):
        streams = fanout_chunks(_chunks(6), 2, depth=1)
        next(streams[0])
        with pytest.raises(RuntimeError, match="chunks ahead"):
            next(streams[0])

    def test_larger_depth_allows_skew(self):
        streams = fanout_chunks(_chunks(6), 2, depth=3)
        for _ in range(3):
            next(streams[0])
        with pytest.raises(RuntimeError, match="chunks ahead"):
            next(streams[0])
        # The slow consumer still reads everything already buffered plus
        # its own depth window past the (stuck) fast consumer.
        got = [next(streams[1]) for _ in range(6)]
        assert [chunk.addresses[0] for chunk in got] == [i * 8 * 8 for i in range(6)]

    def test_slow_consumer_bounds_the_buffer(self):
        produced = {"n": 0}

        def src():
            for chunk in _chunks(10):
                produced["n"] += 1
                yield chunk

        streams = fanout_chunks(src(), 2, depth=2)
        next(streams[0])
        next(streams[0])
        # The tee generated exactly the depth window: the idle consumer
        # holds generation back instead of letting the buffer grow.
        assert produced["n"] == 2
        with pytest.raises(RuntimeError, match="chunks ahead"):
            next(streams[0])
        assert produced["n"] == 2

    def test_closed_consumer_releases_backpressure(self):
        streams = fanout_chunks(_chunks(6), 2, depth=1)
        next(streams[0])  # at the depth bound: one more pull would raise
        streams[1].close()  # the idle consumer leaves the tee
        got = [chunk.addresses[0] for chunk in streams[0]]
        assert got == [i * 8 * 8 for i in range(1, 6)]

    def test_last_consumer_close_drops_buffer_and_closes_upstream(self):
        closed = {"flag": False}

        def src():
            try:
                yield from _chunks(10)
            finally:
                closed["flag"] = True

        streams = fanout_chunks(src(), 2, depth=2)
        next(streams[0])
        next(streams[1])
        streams[0].close()
        assert not closed["flag"]  # one consumer still live
        streams[1].close()
        assert closed["flag"]

    def test_exhausting_all_consumers_closes_upstream(self):
        closed = {"flag": False}

        def src():
            try:
                yield from _chunks(3)
            finally:
                closed["flag"] = True

        streams = fanout_chunks(src(), 2, depth=1)
        for _ in zip(*streams):
            pass
        assert closed["flag"]

    def test_closing_consumers_stops_prefetch_thread(self):
        import threading

        from repro.trace.stream import prefetch_chunks

        streams = fanout_chunks(prefetch_chunks(_chunks(50)), 2, depth=2)
        next(streams[0])
        next(streams[1])
        for s in streams:
            s.close()
        # Closing the last consumer closes the prefetch generator, whose
        # cleanup joins the producer thread — nothing is left running.
        assert not any(
            t.name == "repro-trace-producer" and t.is_alive()
            for t in threading.enumerate()
        )

    def test_run_stream_multi_matches_run_stream(self):
        def hierarchy():
            return Hierarchy([Cache("L", CacheGeometry(4 * LINE, LINE, 4))])

        solo = hierarchy()
        totals_solo = solo.run_stream(_chunks(4))
        pair = [hierarchy(), hierarchy()]
        totals_multi = Hierarchy.run_stream_multi(pair, _chunks(4))
        assert totals_multi == totals_solo
        for h in pair:
            for mine, ref in zip(h.caches, solo.caches):
                assert vars(mine.stats) == vars(ref.stats)

    def test_run_stream_multi_needs_a_hierarchy(self):
        with pytest.raises(ValueError):
            Hierarchy.run_stream_multi([], _chunks(1))


# -- planner bit-identity -----------------------------------------------------
class TestExecutePlan:
    def test_empty_batch(self):
        assert execute_plan([]) == []

    def test_capacity_ladder_collapses_to_one_profile(self):
        prog = simple_stream_program("stream", 2048)
        requests = [SimRequest(prog, fa_machine(c)) for c in (1, 4, 16, 64, 256)]
        with collect_plan_telemetry() as session:
            planned = execute_plan(requests, sim_cache=False)
        for got, ref in zip(planned, pointwise(requests)):
            assert_same_run(got, ref)
        assert session.by_rule["capacity"] == 5
        assert session.groups == 1
        assert session.traces_generated == 1
        # One trace simulated instead of five.
        assert session.accesses_requested == 5 * session.accesses_simulated

    def test_trie_shares_common_l1(self):
        prog = simple_stream_program("stream", 2048)
        requests = [
            SimRequest(prog, two_level_machine("A", 64)),
            SimRequest(prog, two_level_machine("B", 128)),  # same L1 as A
            SimRequest(prog, two_level_machine("C", 64, l1_geom=(2048, 32, 2))),
        ]
        with collect_plan_telemetry() as session:
            planned = execute_plan(requests, sim_cache=False)
        for got, ref in zip(planned, pointwise(requests)):
            assert_same_run(got, ref)
        assert session.by_rule["prefix"] == 2  # A and B share their L1
        assert session.by_rule["trace"] == 1  # C shares only the trace
        assert session.traces_generated == 1

    def test_flush_and_no_flush_capacity_groups(self):
        prog = simple_stream_program("stream", 1024)
        for flush in (True, False):
            requests = [
                SimRequest(prog, fa_machine(c), flush=flush) for c in (2, 8, 32)
            ]
            with collect_plan_telemetry() as session:
                planned = execute_plan(requests, sim_cache=False)
            for got, ref in zip(planned, pointwise(requests)):
                assert_same_run(got, ref)
            assert session.by_rule["capacity"] == 3

    def test_warmup_passes_group_uses_trie_not_profile(self):
        prog = simple_stream_program("stream", 1024)
        requests = [
            SimRequest(prog, fa_machine(c), passes=2, warmup_passes=1)
            for c in (4, 16)
        ]
        with collect_plan_telemetry() as session:
            planned = execute_plan(requests, sim_cache=False)
        for got, ref in zip(planned, pointwise(requests)):
            assert_same_run(got, ref)
        assert session.by_rule["capacity"] == 0
        assert session.by_rule["trace"] + session.by_rule["prefix"] == 2

    def test_singleton_group_falls_back_pointwise(self):
        prog = simple_stream_program("stream", 512)
        requests = [SimRequest(prog, fa_machine(8))]
        with collect_plan_telemetry() as session:
            planned = execute_plan(requests, sim_cache=False)
        assert_same_run(planned[0], pointwise(requests)[0])
        assert session.by_rule["fallback"] == 1
        assert session.fallbacks[0]["reason"] == "no shared work in group"

    def test_mixed_programs_group_independently(self):
        a = simple_stream_program("stream", 1024)
        b = two_loop_chain("chain", 1024)
        requests = [
            SimRequest(a, fa_machine(4)),
            SimRequest(b, fa_machine(4)),
            SimRequest(a, fa_machine(32)),
            SimRequest(b, fa_machine(32)),
        ]
        with collect_plan_telemetry() as session:
            planned = execute_plan(requests, sim_cache=False)
        for got, ref in zip(planned, pointwise(requests)):
            assert_same_run(got, ref)
        assert session.groups == 2
        assert session.by_rule["capacity"] == 4

    def test_streamed_plan_is_bit_identical(self):
        prog = simple_stream_program("stream", 2048)
        requests = [
            SimRequest(prog, two_level_machine("A", 64)),
            SimRequest(prog, two_level_machine("B", 128)),
        ]
        planned = execute_plan(
            requests, sim_cache=False, stream="overlap", chunk_accesses=500
        )
        for got, ref in zip(planned, pointwise(requests)):
            assert_same_run(got, ref)

    def test_sharded_plan_is_bit_identical(self):
        prog = simple_stream_program("stream", 2048)
        machines = [
            two_level_machine("A", 64),
            two_level_machine("B", 128),
        ]
        requests = [SimRequest(prog, m) for m in machines]
        with collect_plan_telemetry() as session:
            planned = execute_plan(requests, sim_cache=False, shards=2)
        refs = pointwise(requests, shards=2)
        for got, ref in zip(planned, refs):
            assert_same_run(got, ref)
        assert session.by_rule["trace"] == 2  # sharded groups share the trace only

    def test_plan_telemetry_summary_shape(self):
        prog = simple_stream_program("stream", 512)
        with collect_plan_telemetry() as session:
            execute_plan(
                [SimRequest(prog, fa_machine(c)) for c in (2, 8)], sim_cache=False
            )
        summary = summarize_plan(session)
        assert summary["points"] == 2
        assert summary["by_rule"]["capacity"] == 2
        assert summary["accesses_requested"] > 0
        assert summarize_plan(None) == {}


class TestPlanMemoization:
    def test_second_plan_answers_from_cache(self):
        prog = simple_stream_program("stream", 1024)
        memo = SimulationCache()
        requests = [SimRequest(prog, fa_machine(c)) for c in (2, 8, 32)]
        first = execute_plan(requests, sim_cache=memo)
        with collect_plan_telemetry() as session:
            second = execute_plan(requests, sim_cache=memo)
        assert session.by_rule["cache"] == 3
        assert session.traces_generated == 0
        for a, b in zip(first, second):
            assert_same_run(a, b)

    def test_prefix_key_survives_machine_rename(self):
        # The chain key is name-independent: a renamed (but geometrically
        # identical) machine must hit the memo.
        prog = simple_stream_program("stream", 1024)
        memo = SimulationCache()
        first = execute_plan(
            [SimRequest(prog, fa_machine(16, name="one"))], sim_cache=memo
        )
        with collect_plan_telemetry() as session:
            second = execute_plan(
                [SimRequest(prog, fa_machine(16, name="two"))], sim_cache=memo
            )
        assert session.by_rule["cache"] == 1
        assert_same_run(first[0], second[0])

    def test_planned_results_seed_pointwise_cache(self):
        # A planned run must leave the same memo entries a pointwise run
        # would, so later execute() calls hit.
        prog = simple_stream_program("stream", 1024)
        memo = SimulationCache()
        planned = execute_plan(
            [SimRequest(prog, fa_machine(c)) for c in (4, 64)], sim_cache=memo
        )
        before = memo.counters.snapshot()
        for request, planned_run in zip(
            [SimRequest(prog, fa_machine(c)) for c in (4, 64)], planned
        ):
            again = execute(request.program, request.machine, sim_cache=memo)
            assert_same_run(again, planned_run)
        delta = memo.counters.since(before)
        assert delta.hits == 2 and delta.misses == 0


class TestRunBatch:
    def teardown_method(self):
        from repro.experiments.plan import configure_plan
        from repro.experiments.predict import configure_predict

        configure_plan(False)
        configure_predict(False)

    def test_pointwise_default_matches_execute(self):
        prog = simple_stream_program("stream", 512)
        requests = [SimRequest(prog, fa_machine(c)) for c in (2, 8)]
        got = run_batch(requests, plan=False, sim_cache=False)
        for a, b in zip(got, pointwise(requests)):
            assert_same_run(a, b)

    def test_plan_follows_process_default(self):
        from repro.experiments.plan import configure_plan

        prog = simple_stream_program("stream", 512)
        requests = [SimRequest(prog, fa_machine(c)) for c in (2, 8)]
        configure_plan(True)
        with collect_plan_telemetry() as session:
            run_batch(requests, sim_cache=False)
        assert session.points == 2

    def test_predict_composition_matches_pointwise_accounting(self):
        from repro.experiments.predict import (
            collect_analytic_telemetry,
            configure_predict,
        )
        from repro.experiments.predict import run_or_predict

        prog = simple_stream_program("stream", 2048)
        requests = [SimRequest(prog, fa_machine(c)) for c in (2, 4, 16, 64, 256)]
        configure_predict(True, spot_check=0.5, tolerance=10.0)

        with collect_analytic_telemetry() as ref_session:
            ref = [
                run_or_predict(r.program, r.machine, sim_cache=False)
                for r in requests
            ]
        with collect_analytic_telemetry() as plan_session:
            got = run_batch(requests, plan=True, sim_cache=False)

        for a, b in zip(got, ref):
            assert_same_run(a, b)
        assert plan_session.points == ref_session.points
        assert plan_session.predicted == ref_session.predicted
        assert plan_session.checked == ref_session.checked
        assert plan_session.fallbacks == ref_session.fallbacks

    def test_predict_without_session_simulates_only_unanalyzable(self):
        from repro.experiments.predict import configure_predict

        prog = simple_stream_program("stream", 1024)
        requests = [SimRequest(prog, fa_machine(c)) for c in (4, 16)]
        configure_predict(True, spot_check=0.05, tolerance=10.0)
        got = run_batch(requests, plan=True, sim_cache=False)
        assert len(got) == 2  # analytic estimates ship unchecked

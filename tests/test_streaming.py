"""Streaming trace pipeline: chunked generation, producer/consumer
overlap, streamed hierarchy simulation, and the plumbing around them.

The contract under test is *bit-identity*: chunked generation concatenates
to exactly the materialized trace, ``run_stream`` over arbitrary chunk
boundaries produces exactly the counters of ``run_trace``, and a streamed
``execute`` matches a materialized one down to the last writeback — the
streaming pipeline buys bounded memory, never different numbers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.experiments.config import ExperimentConfig
from repro.experiments.result import SCHEMA_VERSION, ExperimentResult
from repro.interp.executor import configure_streaming, execute, get_streaming
from repro.machine import LayoutPolicy, build_layout
from repro.machine.cache import Cache, CacheGeometry
from repro.machine.engine import (
    DirectMappedEngine,
    SetAssociativeEngine,
    StackDistanceEngine,
)
from repro.machine.engine.verify import STAT_FIELDS, random_geometry, random_trace
from repro.machine.hierarchy import Hierarchy
from repro.machine.presets import origin2000
from repro.programs import (
    convolution,
    fft,
    fig6_fused,
    matmul,
    matmul_blocked,
    nas_sp,
    sweep3d,
)
from repro.trace import (
    DEFAULT_CHUNK_ACCESSES,
    TraceGenerator,
    chunked_trace_stats,
    concat_traces,
    iter_chunks,
    load_trace_chunks,
    prefetch_chunks,
    save_trace_chunks,
    trace_stats,
)
from repro.trace.events import EMPTY_TRACE, Trace
from repro.trace.telemetry import (
    collect_trace_telemetry,
    peak_rss_bytes,
    summarize_memory,
    summarize_stream,
)

from tests.helpers import simple_stream_program, two_loop_chain

FLAT = LayoutPolicy(alignment=8, pad_bytes=0)


def generator_for(program):
    layout = build_layout(program, None, FLAT)
    return TraceGenerator(program, dict(program.params), layout)


def assert_traces_equal(a: Trace, b: Trace) -> None:
    assert np.array_equal(a.addresses, b.addresses)
    assert np.array_equal(a.is_write, b.is_write)
    assert (a.flops, a.loads, a.stores) == (b.flops, b.loads, b.stores)


#: Programs spanning the generator's structural space: perfect nests,
#: guard-heavy bodies, imperfect nests, multi-statement top level, tiling
#: (inner bounds depending on outer loop variables).
PROGRAMS = {
    "stream": simple_stream_program(n=64),
    "chain": two_loop_chain(n=48),
    "matmul": matmul(12),
    "matmul_blocked": matmul_blocked(30, tile=15),
    "convolution": convolution(50),
    "fig6_fused": fig6_fused(40),
    "nas_sp": nas_sp(8, 6),
    "sweep3d": sweep3d(6),
    "fft": fft(64),
}


class TestChunkedGeneration:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_chunks_concatenate_to_generate(self, name):
        gen = generator_for(PROGRAMS[name])
        full = gen.generate()
        for max_accesses in (1, 17, 256, DEFAULT_CHUNK_ACCESSES):
            chunks = list(gen.chunks(max_accesses))
            assert_traces_equal(concat_traces(chunks), full)

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_chunk_counts_are_exact_per_chunk(self, name):
        """Every chunk's loads/stores describe that chunk alone (not a
        smeared share of the totals)."""
        gen = generator_for(PROGRAMS[name])
        for chunk in gen.chunks(64):
            assert chunk.stores == int(chunk.is_write.sum())
            assert chunk.loads == len(chunk) - chunk.stores

    def test_chunks_are_bounded_for_nested_loops(self):
        # matmul at N=12: 12 iterations of the outer loop, each generating
        # 12*12*width accesses; a cap above one outer iteration must bound
        # every chunk by whole outer iterations.
        gen = generator_for(matmul(12))
        full = gen.generate()
        per_outer = len(full) // 12
        for chunk in gen.chunks(per_outer * 3):
            assert len(chunk) <= per_outer * 3

    def test_tiny_cap_still_yields_whole_outer_iterations(self):
        # A cap below one outer iteration cannot split an iteration; it
        # degrades to one outer iteration per chunk, never corruption.
        gen = generator_for(matmul(6))
        full = gen.generate()
        chunks = list(gen.chunks(1))
        assert len(chunks) == 6
        assert_traces_equal(concat_traces(chunks), full)

    def test_invalid_cap_rejected(self):
        gen = generator_for(simple_stream_program(n=4))
        with pytest.raises(ValueError):
            list(gen.chunks(0))

    @given(
        n=st.integers(min_value=1, max_value=30),
        cap=st.integers(min_value=1, max_value=5000),
    )
    @settings(settings.get_profile("repro-thorough"))
    def test_random_caps_random_sizes(self, n, cap):
        gen = generator_for(two_loop_chain(n=n))
        assert_traces_equal(concat_traces(list(gen.chunks(cap))), gen.generate())

    def test_generate_matches_multi_statement_presize(self):
        # generate() pre-sizes one buffer for multi-statement bodies; the
        # chain program has two top-level loops, exercising that path.
        gen = generator_for(two_loop_chain(n=16))
        full = gen.generate()
        assert full.loads + full.stores == len(full)
        assert_traces_equal(concat_traces(list(gen.chunks(10))), full)


class TestIterChunks:
    def test_slices_and_totals(self):
        gen = generator_for(matmul(8))
        full = gen.generate()
        chunks = list(iter_chunks(full, 100))
        assert all(len(c) <= 100 for c in chunks)
        assert_traces_equal(concat_traces(chunks), full)
        # flops ride on the last chunk only
        assert all(c.flops == 0 for c in chunks[:-1])
        assert chunks[-1].flops == full.flops

    def test_views_not_copies(self):
        gen = generator_for(simple_stream_program(n=32))
        full = gen.generate()
        chunk = next(iter_chunks(full, 10))
        assert np.shares_memory(chunk.addresses, full.addresses)

    def test_empty_trace_with_flops(self):
        t = Trace(np.empty(0, np.int64), np.empty(0, np.bool_), 7, 0, 0)
        chunks = list(iter_chunks(t, 4))
        assert len(chunks) == 1 and chunks[0].flops == 7
        assert list(iter_chunks(EMPTY_TRACE, 4)) == []

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            list(iter_chunks(EMPTY_TRACE, 0))


class TestPrefetch:
    def test_order_and_content_preserved(self):
        gen = generator_for(matmul(10))
        direct = list(gen.chunks(500))
        prefetched = list(prefetch_chunks(gen.chunks(500)))
        assert len(direct) == len(prefetched)
        for a, b in zip(direct, prefetched):
            assert_traces_equal(a, b)

    def test_exception_propagates(self):
        def boom():
            yield next(iter(generator_for(simple_stream_program(n=4)).chunks(2)))
            raise RuntimeError("producer failed")

        it = prefetch_chunks(boom())
        next(it)
        with pytest.raises(RuntimeError, match="producer failed"):
            list(it)

    def test_early_close_stops_producer(self):
        produced = []

        def source():
            gen = generator_for(simple_stream_program(n=64))
            for chunk in gen.chunks(8):
                produced.append(chunk)
                yield chunk

        it = prefetch_chunks(source(), depth=1)
        next(it)
        it.close()  # must not hang or leak the producer thread
        assert len(produced) < 24  # bounded buffering: far from everything

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            next(prefetch_chunks(iter([]), depth=0))

    def test_records_overlap_telemetry(self):
        gen = generator_for(matmul(8))
        with collect_trace_telemetry() as acc:
            list(prefetch_chunks(gen.chunks(100)))
        summary = summarize_stream(acc)
        assert summary["runs"] == 1
        assert summary["chunks"] == len(list(gen.chunks(100)))
        assert summary["overlap"] is None or 0.0 <= summary["overlap"] <= 1.0


ENGINE_CLASSES = {
    "reference": Cache,
    "direct": DirectMappedEngine,
    "setassoc": SetAssociativeEngine,
    "stack": StackDistanceEngine,
}


def _geometry_for(name: str, rng: np.random.Generator) -> CacheGeometry:
    if name == "direct":
        n_sets = int(rng.integers(1, 33))
        return CacheGeometry(n_sets * 32, 32, 1)
    if name == "stack":  # fully associative
        lines = int(rng.integers(2, 33))
        return CacheGeometry(lines * 32, 32, lines)
    return random_geometry(rng)


class TestRunStreamEquivalence:
    @pytest.mark.parametrize("engine", sorted(ENGINE_CLASSES))
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(settings.get_profile("repro-fast"))
    def test_bit_identical_to_run_trace(self, engine, seed):
        """run_stream over random chunk boundaries == run_trace, for every
        engine, including flush — the core streamed-simulation contract."""
        rng = np.random.default_rng(seed)
        geometry = _geometry_for(engine, rng)
        cls = ENGINE_CLASSES[engine]
        n = int(rng.integers(1, 600))
        addrs, writes = random_trace(rng, n, n_lines=40, line_size=32)
        loads = int((~writes).sum())
        trace = Trace(addrs, writes, 0, loads, n - loads)

        mono = Hierarchy([cls("L", geometry)])
        mono.run_trace(addrs, writes)
        mono.flush()

        # random chunk boundaries, including empty chunks
        cuts = sorted(rng.integers(0, n + 1, size=int(rng.integers(0, 6))))
        bounds = [0, *cuts, n]
        chunks = []
        for lo, hi in zip(bounds, bounds[1:]):
            w = writes[lo:hi]
            s = int(w.sum())
            chunks.append(Trace(addrs[lo:hi], w, 0, (hi - lo) - s, s))
        streamed = Hierarchy([cls("L", geometry)])
        totals = streamed.run_stream(chunks)
        streamed.flush()

        assert totals.accesses == n
        assert totals.loads == trace.loads and totals.stores == trace.stores
        for f in STAT_FIELDS:
            assert getattr(mono.caches[0].stats, f) == getattr(
                streamed.caches[0].stats, f
            ), f

    def test_multi_level_hierarchy_stream(self):
        spec = origin2000(256)
        gen_prog = matmul(18)
        layout = build_layout(gen_prog, None, FLAT)
        gen = TraceGenerator(gen_prog, dict(gen_prog.params), layout)
        full = gen.generate()

        mono = Hierarchy.from_spec(spec)
        mono.run_trace(full.addresses, full.is_write)
        mono.flush()

        streamed = Hierarchy.from_spec(spec)
        totals = streamed.run_stream(prefetch_chunks(gen.chunks(700)))
        streamed.flush()

        assert totals.accesses == len(full)
        assert mono.result() == streamed.result()


class TestStreamedExecute:
    @pytest.mark.parametrize("mode", [True, "serial", "overlap"])
    def test_counters_match_materialized(self, mode):
        prog = matmul(18)
        machine = origin2000(256)
        base = execute(prog, machine, sim_cache=False, passes=2, warmup_passes=1)
        run = execute(
            prog,
            machine,
            sim_cache=False,
            passes=2,
            warmup_passes=1,
            stream=mode,
            chunk_accesses=500,
        )
        assert run.counters == base.counters
        assert run.time == base.time

    def test_no_work_detected(self):
        from repro.lang import ProgramBuilder

        b = ProgramBuilder("empty", params={"N": 0})
        a = b.array("a", 4, output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], a[i])
        with pytest.raises(ExecutionError, match="no work"):
            execute(b.build(), origin2000(256), sim_cache=False, stream=True)

    def test_invalid_stream_value(self):
        with pytest.raises(ExecutionError, match="stream"):
            execute(matmul(6), origin2000(256), sim_cache=False, stream="bogus")

    def test_process_default_roundtrip(self):
        old = get_streaming()
        try:
            configure_streaming("serial", 123)
            assert get_streaming() == ("serial", 123)
            run = execute(matmul(12), origin2000(256), sim_cache=False)
            base = execute(matmul(12), origin2000(256), sim_cache=False, stream=False)
            assert run.counters == base.counters
            with pytest.raises(ValueError):
                configure_streaming("nope")
            with pytest.raises(ValueError):
                configure_streaming(True, 0)
        finally:
            configure_streaming(*old)

    def test_sim_cache_shared_between_pipelines(self):
        from repro.machine.engine.simcache import SimulationCache

        memo = SimulationCache()
        first = execute(matmul(12), origin2000(256), sim_cache=memo, stream="overlap")
        second = execute(matmul(12), origin2000(256), sim_cache=memo, stream=False)
        assert first.counters == second.counters
        assert memo.counters.hits == 1

    def test_simulate_stream_api(self):
        import repro

        prog = matmul(12)
        machine = origin2000(256)
        a = repro.simulate(prog, machine)
        b = repro.simulate_stream(prog, machine, chunk_accesses=300)
        c = repro.simulate_stream(prog, machine, overlap=False)
        assert a.memory_bytes == b.memory_bytes == c.memory_bytes
        assert a.seconds == b.seconds == c.seconds


class TestChunkedIOAndStats:
    def test_save_load_roundtrip(self, tmp_path):
        gen = generator_for(matmul(10))
        full = gen.generate()
        path = tmp_path / "trace.zip"
        written = save_trace_chunks(gen.chunks(300), path)
        assert written == len(full)
        assert_traces_equal(concat_traces(list(load_trace_chunks(path))), full)

    def test_load_rejects_garbage(self, tmp_path):
        from repro.errors import ReproError

        path = tmp_path / "junk.zip"
        path.write_bytes(b"not a zip")
        with pytest.raises(ReproError):
            list(load_trace_chunks(path))

    def test_chunked_stats_match(self):
        gen = generator_for(fig6_fused(30))
        full = gen.generate()
        assert chunked_trace_stats(gen.chunks(64)) == trace_stats(full)

    def test_trace_nbytes(self):
        gen = generator_for(simple_stream_program(n=16))
        t = gen.generate()
        assert t.nbytes == t.addresses.nbytes + t.is_write.nbytes == 9 * len(t)

    def test_concat_singleton_no_copy(self):
        t = generator_for(simple_stream_program(n=8)).generate()
        assert concat_traces([t]) is t


class TestExperimentPlumbing:
    def test_config_roundtrip_and_apply(self):
        cfg = ExperimentConfig(scale=256, stream=True, chunk_accesses=4096)
        assert ExperimentConfig.from_json(cfg.to_json()) == cfg
        old = get_streaming()
        try:
            cfg.apply()
            assert get_streaming() == (True, 4096)
        finally:
            configure_streaming(*old)

    def test_result_schema_has_memory_and_stream(self):
        assert SCHEMA_VERSION >= 3  # v3 introduced memory/stream telemetry
        res = ExperimentResult(
            experiment="x",
            memory={"peak_rss_bytes": 1, "trace_bytes": 2},
            stream={"runs": 1, "chunks": 3, "produce_s": 0.1, "wait_s": 0.0,
                    "overlap": 1.0},
        )
        data = res.to_json()
        assert data["memory"]["trace_bytes"] == 2
        assert data["stream"]["chunks"] == 3
        back = ExperimentResult.from_json(data)
        assert back.memory == res.memory and back.stream == res.stream
        # volatile telemetry must not affect equivalence comparisons
        comparable = res.comparable_json()
        assert "memory" not in comparable and "stream" not in comparable

    def test_experiment_decorator_populates_telemetry(self):
        from repro.experiments.fig1_balance import run_fig1

        cfg = ExperimentConfig(
            scale=256, sim_cache=False, stream=True, chunk_accesses=10_000
        )
        old = get_streaming()
        try:
            result = run_fig1(cfg)
        finally:
            configure_streaming(*old)
        assert result.ok
        assert result.memory.get("trace_bytes", 0) > 0
        assert result.stream.get("runs", 0) > 0
        assert result.config["stream"] is True

    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 0
        with collect_trace_telemetry() as acc:
            pass
        summary = summarize_memory(acc)
        if rss is not None:
            assert summary["peak_rss_bytes"] >= rss

"""Property-based cross-validation on *randomly generated programs*.

A hypothesis strategy builds small but structurally diverse IR programs
(nested loops, guards, reductions, stencil offsets, read() inputs), and
three independent implementations are pitted against each other:

* the vectorized trace engine vs an instrumented interpretation
  (load/store counts must match exactly);
* the printer/parser round trip vs the interpreter (same observables);
* the LRU hierarchy vs the intrinsic floor (traffic can never go below
  compulsory + writeback).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse, render
from repro.lang.affine import Affine, Cmp
from repro.lang.expr import ArrayRef, BinOp, Const, ScalarRef
from repro.lang.program import Program
from repro.lang.stmt import Assign, ExternalRead, If, Loop
from repro.lang.types import ArrayDecl, ScalarDecl, make_shape

N_VALUE = 7  # small fixed size: bounds below keep subscripts in range

ARRAYS = ("arr_a", "arr_b", "arr_c")


@st.composite
def small_exprs(draw, var: str, depth: int = 0):
    choice = draw(st.integers(0, 3 if depth < 2 else 1))
    if choice == 0:
        return Const(draw(st.sampled_from([0.5, 1.0, 2.0, -1.5])))
    if choice == 1:
        arr = draw(st.sampled_from(ARRAYS))
        offset = draw(st.sampled_from([-1, 0, 1]))
        return ArrayRef(arr, (Affine({var: 1}, offset),))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return BinOp(
        op,
        draw(small_exprs(var, depth + 1)),
        draw(small_exprs(var, depth + 1)),
    )


@st.composite
def leaf_stmts(draw, var: str):
    kind = draw(st.integers(0, 3))
    if kind == 0:  # array assignment (in-range subscript: var in [1, N-1))
        arr = draw(st.sampled_from(ARRAYS))
        return Assign(ArrayRef(arr, (Affine.var(var),)), draw(small_exprs(var)))
    if kind == 1:  # reduction
        return Assign(ScalarRef("acc"), ScalarRef("acc") + draw(small_exprs(var)))
    if kind == 2:  # external input
        arr = draw(st.sampled_from(ARRAYS))
        return ExternalRead(ArrayRef(arr, (Affine.var(var),)))
    return Assign(ScalarRef("tmp"), draw(small_exprs(var)))


@st.composite
def loop_bodies(draw, var: str):
    n_stmts = draw(st.integers(1, 3))
    body = []
    for _ in range(n_stmts):
        stmt = draw(leaf_stmts(var))
        if draw(st.booleans()):
            op = draw(st.sampled_from(["<", "<=", ">=", "=="]))
            pivot = draw(st.integers(1, N_VALUE - 2))
            cond = Cmp(op, Affine.var(var), Affine.const_of(pivot))
            if draw(st.booleans()):
                orelse = (draw(leaf_stmts(var)),)
            else:
                orelse = ()
            stmt = If(cond, (stmt,), orelse)
        body.append(stmt)
    return body


@st.composite
def programs(draw):
    n_loops = draw(st.integers(1, 3))
    body = []
    for k in range(n_loops):
        var = f"v{k}"
        if draw(st.booleans()):
            inner_var = f"w{k}"
            inner = Loop(
                inner_var,
                Affine.const_of(1),
                Affine({"N": 1}, -1),
                tuple(draw(loop_bodies(inner_var))),
            )
            body.append(Loop(var, Affine.const_of(0), Affine.const_of(2), (inner,)))
        else:
            body.append(
                Loop(var, Affine.const_of(1), Affine({"N": 1}, -1), tuple(draw(loop_bodies(var))))
            )
    return Program(
        "generated",
        params={"N": N_VALUE},
        arrays=tuple(ArrayDecl(a, make_shape("N")) for a in ARRAYS),
        scalars=(ScalarDecl("acc", output=True), ScalarDecl("tmp", output=True)),
        body=tuple(body),
        outputs=frozenset(ARRAYS),
    )


def _instrumented_counts(program: Program) -> tuple[int, int]:
    from repro.interp.evaluator import Evaluator

    ev = Evaluator(program)
    loads = [0]
    stores = [0]
    orig_eval, orig_store = ev._eval, ev._store

    def counting_eval(expr, env):
        if isinstance(expr, ArrayRef):
            loads[0] += 1
        return orig_eval(expr, env)

    def counting_store(ref, env, value):
        stores[0] += 1
        return orig_store(ref, env, value)

    ev._eval, ev._store = counting_eval, counting_store
    ev.run()
    return loads[0], stores[0]


@settings(max_examples=60, deadline=None)
@given(programs())
def test_trace_matches_interpretation(program):
    from repro.machine import LayoutPolicy, build_layout
    from repro.trace import generate_trace

    layout = build_layout(program, None, LayoutPolicy(alignment=8, pad_bytes=0))
    trace = generate_trace(program, layout=layout)
    assert (trace.loads, trace.stores) == _instrumented_counts(program)


@settings(max_examples=40, deadline=None)
@given(programs())
def test_parse_render_roundtrip_semantics(program):
    from repro.interp import evaluate

    text = render(program)
    reparsed = parse(text)
    assert render(reparsed) == text
    a = evaluate(program, input_seed=3)
    b = evaluate(reparsed, input_seed=3)
    assert a.scalars == b.scalars
    for name in program.output_arrays:
        assert np.array_equal(a.arrays[name], b.arrays[name])


@settings(max_examples=25, deadline=None)
@given(programs())
def test_hierarchy_traffic_at_least_intrinsic(program):
    from repro.balance import intrinsic_traffic
    from repro.interp import execute
    from repro.machine import build_layout, origin2000
    from repro.trace import generate_trace

    machine = origin2000(scale=512)  # tiny caches: plenty of misses
    try:
        run = execute(program, machine)
    except Exception as exc:  # zero-work programs are legal draws
        if "no work" in str(exc):
            return
        raise
    layout = build_layout(program, None, machine.default_layout)
    trace = generate_trace(program, layout=layout)
    floor = intrinsic_traffic(trace, machine.cache_levels[-1].geometry.line_size)
    assert run.counters.memory_bytes >= floor.total_bytes


@settings(max_examples=25, deadline=None)
@given(programs())
def test_opt_never_worse_than_lru_on_programs(program):
    from repro.machine import CacheGeometry, LayoutPolicy, build_layout, lru_vs_opt
    from repro.trace import generate_trace

    layout = build_layout(program, None, LayoutPolicy(alignment=8, pad_bytes=0))
    trace = generate_trace(program, layout=layout)
    if len(trace) == 0:
        return
    geom = CacheGeometry(64, 32, 2)
    lru, opt = lru_vs_opt(trace.addresses, trace.is_write, geom)
    assert opt <= lru

"""Engine subsystem: bit-identity, miss curves, chunking, simulation cache.

The vectorized engines exist to be *fast and invisible*: every counter,
event stream, and flush drain must match the reference ``Cache`` exactly.
These tests enforce that with property-based randomized traces, validate
``miss_curve()`` against repeated reference simulations, and check the
wiring (engine selection, chunked streaming, content-keyed memoization).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp.executor import execute
from repro.machine.cache import Cache, CacheGeometry
from repro.machine.engine import (
    DirectMappedEngine,
    SetAssociativeEngine,
    StackDistanceEngine,
    make_cache,
    miss_curve,
    select_engine,
)
from repro.machine.engine.distinct import (
    COLD,
    count_prior_leq,
    previous_occurrences,
    reuse_distances,
)
from repro.machine.engine.simcache import (
    SimulationCache,
    configure_sim_cache,
    get_sim_cache,
)
from repro.machine.engine.verify import (
    STAT_FIELDS,
    assert_equivalent,
    check_equivalence,
)
from repro.machine.hierarchy import Hierarchy
from repro.machine.presets import exemplar, origin2000

LINE = 32


@pytest.fixture
def isolated_sim_cache():
    """Give a test its own process-default simulation cache."""
    old = get_sim_cache()
    fresh = configure_sim_cache()
    yield fresh
    import repro.machine.engine.simcache as simcache

    simcache._default = old


# -- offline reuse-distance machinery ----------------------------------------
class TestDistinct:
    @given(st.lists(st.integers(0, 12), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_previous_occurrences_matches_brute_force(self, keys):
        keys = np.asarray(keys, dtype=np.int64)
        prev = previous_occurrences(keys)
        for i, k in enumerate(keys):
            expected = max((j for j in range(i) if keys[j] == k), default=-1)
            assert prev[i] == expected

    @given(st.lists(st.integers(-50, 50), max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_count_prior_leq_matches_brute_force(self, values):
        values = np.asarray(values, dtype=np.int64)
        out = count_prior_leq(values)
        for i, v in enumerate(values):
            assert out[i] == sum(1 for j in range(i) if values[j] <= v)

    @given(st.lists(st.integers(0, 9), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_reuse_distances_match_brute_force(self, keys):
        keys = np.asarray(keys, dtype=np.int64)
        delta = reuse_distances(keys)
        seen_before = set()
        for i, k in enumerate(keys):
            prior = [j for j in range(i) if keys[j] == k]
            if not prior:
                assert delta[i] == COLD
                assert k not in seen_before
            else:
                distinct = len(set(keys[prior[-1] + 1 : i].tolist()))
                assert delta[i] == distinct
            seen_before.add(int(k))


# -- property-based engine equivalence ---------------------------------------
POLICIES = [(True, True), (True, False), (False, False)]


def _drive_pair(ref, eng, batches, compare_events=True):
    """Run both simulators over the same batches, compare everything."""
    for addrs, writes in batches:
        r_out, r_w = ref.run(addrs, writes)
        if compare_events:
            e_out, e_w = eng.run(addrs, writes)
            np.testing.assert_array_equal(r_out, e_out)
            np.testing.assert_array_equal(r_w, e_w)
        else:
            eng.run(addrs, writes, collect_events=False)
    r_out, r_w = ref.flush()
    e_out, e_w = eng.flush()
    np.testing.assert_array_equal(r_out, e_out)
    np.testing.assert_array_equal(r_w, e_w)
    for f in STAT_FIELDS:
        assert getattr(ref.stats, f) == getattr(eng.stats, f), f


@st.composite
def trace_batches(draw, max_lines=64):
    n_batches = draw(st.integers(1, 3))
    n_lines = draw(st.integers(1, max_lines))
    batches = []
    for _ in range(n_batches):
        n = draw(st.integers(0, 120))
        lines = draw(
            st.lists(st.integers(0, n_lines - 1), min_size=n, max_size=n)
        )
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        addrs = np.asarray(lines, dtype=np.int64) * LINE
        batches.append((addrs, np.asarray(writes, dtype=bool)))
    return batches


class TestDirectMappedEquivalence:
    @given(
        n_sets=st.sampled_from([1, 2, 5, 8, 13, 32]),
        policy=st.sampled_from(POLICIES),
        batches=trace_batches(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_exactly(self, n_sets, policy, batches):
        wb, wa = policy
        geom = CacheGeometry(n_sets * LINE, LINE, 1)
        ref = Cache("L", geom, wb, wa)
        eng = DirectMappedEngine("L", geom, wb, wa)
        _drive_pair(ref, eng, batches)

    def test_randomized_harness_across_geometries(self):
        for n_sets in (1, 7, 64, 320):
            for wb, wa in POLICIES:
                assert_equivalent(
                    DirectMappedEngine,
                    CacheGeometry(n_sets * LINE, LINE, 1),
                    write_back=wb,
                    write_allocate=wa,
                    trials=20,
                    seed=n_sets + wb * 2 + wa,
                )

    def test_rejects_set_associative_geometry(self):
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            DirectMappedEngine("L", CacheGeometry(4 * LINE, LINE, 2))

    def test_single_access_api_matches_reference(self):
        geom = CacheGeometry(5 * LINE, LINE, 1)
        ref, eng = Cache("L", geom), DirectMappedEngine("L", geom)
        rng = np.random.default_rng(3)
        for _ in range(200):
            addr = int(rng.integers(0, 20)) * LINE
            w = bool(rng.random() < 0.5)
            assert ref.access(addr, w) == eng.access(addr, w)


class TestStackDistanceEquivalence:
    @given(
        capacity=st.integers(1, 16),
        batches=trace_batches(max_lines=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_counters_match_reference_exactly(self, capacity, batches):
        geom = CacheGeometry(capacity * LINE, LINE, capacity)
        assert geom.n_sets == 1
        ref = Cache("L", geom)
        eng = StackDistanceEngine("L", geom)
        _drive_pair(ref, eng, batches, compare_events=False)

    def test_randomized_harness(self):
        for capacity in (1, 3, 8, 32):
            assert_equivalent(
                StackDistanceEngine,
                CacheGeometry(capacity * LINE, LINE, capacity),
                trials=20,
                seed=capacity,
                compare_events=False,
            )

    def test_rejects_event_collection_and_bad_config(self):
        from repro.errors import MachineError

        geom = CacheGeometry(4 * LINE, LINE, 4)
        eng = StackDistanceEngine("L", geom)
        with pytest.raises(MachineError):
            eng.run(np.zeros(3, dtype=np.int64), np.zeros(3, dtype=bool))
        with pytest.raises(MachineError):
            StackDistanceEngine("L", CacheGeometry(4 * LINE, LINE, 2))
        with pytest.raises(MachineError):
            StackDistanceEngine("L", geom, write_back=False, write_allocate=False)


# -- miss curves --------------------------------------------------------------
class TestMissCurve:
    def test_exact_at_many_sizes_against_reference(self):
        # The acceptance criterion: one pass must reproduce repeated
        # reference simulations at >= 5 cache sizes, exactly.
        rng = np.random.default_rng(11)
        # Mix of a streaming kernel and a reuse-heavy random trace.
        stream = np.arange(4000, dtype=np.int64) * 8
        hot = rng.integers(0, 300, 6000) * LINE
        for addrs in (stream, hot.astype(np.int64), np.concatenate([stream, hot])):
            curve = miss_curve(addrs, LINE)
            for capacity in (1, 2, 4, 8, 16, 64, 256):
                ref = Cache("L", CacheGeometry(capacity * LINE, LINE, capacity))
                ref.run(addrs, np.zeros(len(addrs), dtype=bool))
                assert curve.misses(capacity) == ref.stats.misses, capacity
                assert curve.hits(capacity) == ref.stats.hits, capacity

    def test_curve_is_monotone_and_vectorized(self):
        rng = np.random.default_rng(5)
        addrs = (rng.integers(0, 100, 3000) * LINE).astype(np.int64)
        curve = miss_curve(addrs, LINE)
        caps = np.arange(0, 130)
        values = curve.curve(caps)
        assert values[0] == curve.total  # capacity 0 misses everything
        assert np.all(np.diff(values) <= 0)  # more cache never hurts (LRU)
        assert values[-1] == curve.cold  # big enough -> only cold misses
        assert curve.misses_for_size(64 * LINE) == curve.misses(64)

    def test_empty_trace(self):
        curve = miss_curve(np.empty(0, dtype=np.int64), LINE)
        assert curve.total == 0 and curve.cold == 0
        for capacity in (0, 1, 7, 1024):
            assert curve.misses(capacity) == 0
            assert curve.hits(capacity) == 0
            assert curve.miss_ratio(capacity) == 0.0
        assert list(curve.curve(np.array([0, 1, 16]))) == [0, 0, 0]

    def test_single_distinct_line(self):
        # Every access lands in one line: one cold miss, all else hits at
        # any capacity >= 1 (and everything misses at capacity 0).
        addrs = np.zeros(57, dtype=np.int64) + 8  # same line, varied offset
        addrs[1::2] += 16
        curve = miss_curve(addrs, LINE)
        assert curve.cold == 1
        assert curve.misses(0) == 57
        for capacity in (1, 2, 100):
            assert curve.misses(capacity) == 1
            assert curve.hits(capacity) == 56

    @pytest.mark.parametrize("bad_line", [0, -32, 3, 24, 100])
    def test_non_power_of_two_line_size_rejected(self, bad_line):
        from repro.errors import MachineError

        with pytest.raises(MachineError):
            miss_curve(np.zeros(4, dtype=np.int64), bad_line)

    @given(
        data=st.lists(st.integers(0, 200), min_size=0, max_size=400),
        line_shift=st.integers(5, 8),
    )
    @settings(max_examples=25)
    def test_curve_monotone_and_reference_exact_on_random_traces(
        self, data, line_shift
    ):
        line = 1 << line_shift
        addrs = (np.asarray(data, dtype=np.int64)) * 16  # sub-line strides
        curve = miss_curve(addrs, line)
        caps = np.arange(0, 70)
        values = curve.curve(caps)
        assert np.all(np.diff(values) <= 0)
        # Spot-check one mid-size capacity against the reference cache.
        for capacity in (1, 3, 17):
            ref = Cache("L", CacheGeometry(capacity * line, line, capacity))
            if len(addrs):
                ref.run(addrs, np.zeros(len(addrs), dtype=bool))
            assert curve.misses(capacity) == ref.stats.misses


# -- selection and hierarchy wiring -------------------------------------------
class TestSelectionAndHierarchy:
    def test_select_engine_rules(self):
        direct = CacheGeometry(13 * LINE, LINE, 1)
        full = CacheGeometry(8 * LINE, LINE, 8)
        twoway = CacheGeometry(8 * LINE, LINE, 2)
        assert select_engine(direct) is DirectMappedEngine
        assert select_engine(full) is StackDistanceEngine
        # A fully-associative *intermediate* level needs an event stream,
        # which the stack engine cannot emit; setassoc can.
        assert select_engine(full, last_level=False) is SetAssociativeEngine
        assert select_engine(full, write_back=False, write_allocate=False) is Cache
        assert select_engine(twoway) is SetAssociativeEngine
        assert select_engine(twoway, write_back=False) is Cache
        assert select_engine(direct, engine="reference") is Cache
        assert select_engine(twoway, engine="setassoc") is SetAssociativeEngine
        assert make_cache("L", direct).engine == "direct"
        assert make_cache("L", twoway).engine == "setassoc"

    def test_spec_builds_selected_engines(self):
        spec = exemplar(128)  # direct-mapped single level
        caches = spec.build_caches()
        assert [c.engine for c in caches] == ["direct"]
        assert [c.engine for c in spec.build_caches("reference")] == ["reference"]
        origin = origin2000(128)  # 2-way levels -> setassoc on every level
        assert [c.engine for c in origin.build_caches()] == ["setassoc", "setassoc"]

    @pytest.mark.parametrize("engine", ["reference", "auto"])
    def test_chunked_streaming_is_invisible(self, engine):
        # Chunk boundaries must not change any counter: engines persist
        # cache contents between run() calls.
        spec = exemplar(128)
        rng = np.random.default_rng(9)
        addrs = (rng.integers(0, 2000, 5000) * 8).astype(np.int64)
        writes = rng.random(5000) < 0.3
        whole = Hierarchy.from_spec(spec, engine)
        whole.run_trace(addrs, writes)
        whole.flush()
        chunked = Hierarchy.from_spec(spec, engine, chunk_size=257)
        chunked.run_trace(addrs, writes)
        chunked.flush()
        for a, b in zip(whole.result().level_stats, chunked.result().level_stats):
            assert vars(a) == vars(b)
        assert whole.result().downstream_bytes == chunked.result().downstream_bytes

    def test_multi_level_auto_matches_reference(self):
        # Origin 2000: 2-way L1/L2 -> auto selects setassoc on both
        # levels, so this checks the full vectorized hierarchy (ordered
        # L1 events feeding L2) against the reference dict loop.
        spec = origin2000(256)
        rng = np.random.default_rng(21)
        addrs = (rng.integers(0, 4000, 8000) * 8).astype(np.int64)
        writes = rng.random(8000) < 0.25
        results = []
        for engine in ("reference", "auto"):
            h = Hierarchy.from_spec(spec, engine)
            h.run_trace(addrs, writes)
            h.flush()
            results.append(h.result())
        for a, b in zip(results[0].level_stats, results[1].level_stats):
            assert vars(a) == vars(b)


# -- the simulation cache ------------------------------------------------------
class TestSimulationCache:
    def test_executor_memoizes_identical_runs(self, isolated_sim_cache, tmp_path):
        from repro.programs import make_kernel

        prog = make_kernel("1w1r")
        spec = exemplar(512)
        memo = isolated_sim_cache
        r1 = execute(prog, spec, params={"N": 512})
        assert memo.counters.misses == 1 and memo.counters.hits == 0
        r2 = execute(prog, spec, params={"N": 512})
        assert memo.counters.hits == 1  # second run did zero simulation
        assert r1.counters == r2.counters
        assert r1.seconds == r2.seconds
        # Different params or machine -> different key, fresh simulation.
        execute(prog, spec, params={"N": 768})
        assert memo.counters.misses == 2
        execute(prog, exemplar(256), params={"N": 512})
        assert memo.counters.misses == 3
        # Opting out per call bypasses the memo entirely.
        before = memo.counters.snapshot()
        r3 = execute(prog, spec, params={"N": 512}, sim_cache=False)
        delta = memo.counters.since(before)
        assert delta.hits == delta.misses == 0
        assert r3.counters == r1.counters

    def test_disk_tier_survives_a_new_cache(self, tmp_path):
        from repro.programs import make_kernel

        prog = make_kernel("1w1r")
        spec = exemplar(512)
        cold = SimulationCache(tmp_path / "simc")
        r1 = execute(prog, spec, params={"N": 512}, sim_cache=cold)
        assert cold.counters.puts == 1
        # A brand-new cache instance (fresh process, same directory) hits
        # the persisted entry without simulating.
        warm = SimulationCache(tmp_path / "simc")
        r2 = execute(prog, spec, params={"N": 512}, sim_cache=warm)
        assert warm.counters.disk_hits == 1 and warm.counters.misses == 0
        assert r1.counters == r2.counters

    def test_cached_results_are_isolated_copies(self, tmp_path):
        from repro.programs import make_kernel

        prog = make_kernel("1w1r")
        spec = exemplar(512)
        memo = SimulationCache()
        r1 = execute(prog, spec, params={"N": 512}, sim_cache=memo)
        r1.counters.level_stats[0].misses += 999  # vandalize the returned copy
        r2 = execute(prog, spec, params={"N": 512}, sim_cache=memo)
        assert r2.counters.level_stats[0].misses != r1.counters.level_stats[0].misses

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        memo = SimulationCache(tmp_path / "simc")
        assert memo.get("00" * 32) is None
        path = memo._path("00" * 32)
        path.parent.mkdir(parents=True)
        path.write_text("not json {")
        assert memo.get("00" * 32) is None


# -- single-access invariant (Cache.access satellite) -------------------------
class TestAccessInvariant:
    def test_access_returns_the_single_writeback(self):
        geom = CacheGeometry(2 * LINE, LINE, 1)
        c = Cache("L", geom)
        assert c.access(0 * LINE, True) == (False, None)  # cold write miss
        hit, wb = c.access(2 * LINE, False)  # evicts dirty line 0
        assert not hit and wb == 0


def test_verify_harness_reports_mismatches():
    # The harness must actually detect divergence, not vacuously pass: a
    # "cache" that lies about hits must be flagged.
    class Broken(Cache):
        def run(self, a, w, collect_events=True):
            out = super().run(a, w)
            self.stats.hits += 1
            return out

    mismatches = check_equivalence(
        Broken, CacheGeometry(4 * LINE, LINE, 1), trials=3, seed=0
    )
    assert any(m.what == "stats:hits" for m in mismatches)

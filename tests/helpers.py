"""Shared program factories for the test suite."""

from __future__ import annotations

from repro.lang import ProgramBuilder


def simple_stream_program(name: str = "stream", n: int = 64):
    """``a[i] = a[i] + b[i]`` — the workhorse fixture program."""
    b = ProgramBuilder(name, params={"N": n})
    a = b.array("a", "N", output=True)
    bb = b.array("b", "N")
    with b.loop("i", 0, "N") as i:
        b.assign(a[i], a[i] + bb[i])
    return b.build()


def reduction_program(name: str = "reduce", n: int = 64):
    """``sum += a[i]``."""
    b = ProgramBuilder(name, params={"N": n})
    a = b.array("a", "N")
    s = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(s, s + a[i])
    return b.build()


def two_loop_chain(name: str = "chain", n: int = 64):
    """Producer loop then consumer reduction — fusable pair."""
    b = ProgramBuilder(name, params={"N": n})
    src = b.array("src", "N")
    tmp = b.array("tmp", "N")
    s = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(tmp[i], src[i] * 2.0)
    with b.loop("i", 0, "N") as i:
        b.assign(s, s + tmp[i])
    return b.build()

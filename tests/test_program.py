"""Tests for the Program container and its validation."""

import pytest

from repro.errors import IRError
from repro.lang import ProgramBuilder
from repro.lang.affine import Affine
from repro.lang.expr import ArrayRef, Const, ScalarRef
from repro.lang.program import Program
from repro.lang.stmt import Assign, Loop
from repro.lang.types import ArrayDecl, ScalarDecl, make_shape

from tests.helpers import reduction_program, simple_stream_program


def loop_over(var, upper, body):
    return Loop(var, Affine.const_of(0), Affine.of(upper), tuple(body))


class TestValidation:
    def test_duplicate_declaration(self):
        with pytest.raises(IRError, match="duplicate"):
            Program(
                "p",
                arrays=(ArrayDecl("x", make_shape(4)),),
                scalars=(ScalarDecl("x"),),
            )

    def test_param_collision(self):
        with pytest.raises(IRError, match="collides"):
            Program("p", params={"a": 1}, arrays=(ArrayDecl("a", make_shape(4)),))

    def test_undeclared_output(self):
        with pytest.raises(IRError, match="not declared"):
            Program("p", outputs=frozenset({"ghost"}))

    def test_unbound_loop_bound(self):
        body = (loop_over("i", "M", [Assign(ScalarRef("s"), Const(1.0))]),)
        with pytest.raises(IRError, match="unbound"):
            Program("p", params={"N": 4}, scalars=(ScalarDecl("s"),), body=body)

    def test_undeclared_array(self):
        body = (loop_over("i", "N", [Assign(ArrayRef("a", (Affine.var("i"),)), Const(1.0))]),)
        with pytest.raises(IRError, match="undeclared array"):
            Program("p", params={"N": 4}, body=body)

    def test_undeclared_scalar(self):
        body = (Assign(ScalarRef("s"), Const(1.0)),)
        with pytest.raises(IRError, match="undeclared scalar"):
            Program("p", body=body)

    def test_rank_mismatch(self):
        body = (
            loop_over("i", "N", [Assign(ArrayRef("a", (Affine.var("i"),)), Const(1.0))]),
        )
        with pytest.raises(IRError, match="rank"):
            Program(
                "p",
                params={"N": 4},
                arrays=(ArrayDecl("a", make_shape("N", "N")),),
                body=body,
            )

    def test_unbound_subscript(self):
        body = (
            loop_over("i", "N", [Assign(ArrayRef("a", (Affine.var("j"),)), Const(1.0))]),
        )
        with pytest.raises(IRError, match="unbound"):
            Program(
                "p",
                params={"N": 4},
                arrays=(ArrayDecl("a", make_shape("N")),),
                body=body,
            )

    def test_shadowing_rejected(self):
        inner = loop_over("i", "N", [Assign(ScalarRef("s"), Const(1.0))])
        outer = loop_over("i", "N", [inner])
        with pytest.raises(IRError, match="shadows"):
            Program("p", params={"N": 4}, scalars=(ScalarDecl("s"),), body=(outer,))


class TestAccessors:
    def test_lookups(self):
        p = simple_stream_program()
        assert p.array("a").name == "a"
        assert p.has_array("b")
        assert not p.has_array("zzz")
        with pytest.raises(IRError):
            p.array("zzz")
        with pytest.raises(IRError):
            p.scalar("zzz")

    def test_outputs(self):
        p = simple_stream_program()
        assert p.output_arrays == ("a",)
        r = reduction_program()
        assert r.output_scalars == ("sum",)
        assert r.output_arrays == ()

    def test_bind_params(self):
        p = simple_stream_program(n=64)
        assert p.bind_params(None) == {"N": 64}
        assert p.bind_params({"N": 8}) == {"N": 8}
        with pytest.raises(IRError):
            p.bind_params({"M": 3})

    def test_data_bytes(self):
        p = simple_stream_program(n=64)
        assert p.data_bytes() == 2 * 64 * 8
        assert p.data_bytes({"N": 10}) == 160

    def test_top_level_loops(self):
        p = reduction_program()
        assert len(p.top_level_loops()) == 1


class TestDerivation:
    def test_with_body_revalidates(self):
        p = simple_stream_program()
        bad = (Assign(ScalarRef("ghost"), Const(1.0)),)
        with pytest.raises(IRError):
            p.with_body(bad)

    def test_with_name(self):
        assert simple_stream_program().with_name("other").name == "other"

    def test_adding_and_dropping(self):
        p = reduction_program()
        p2 = p.adding_array(ArrayDecl("extra", make_shape("N")))
        assert p2.has_array("extra")
        p3 = p2.dropping_arrays({"extra"})
        assert not p3.has_array("extra")

    def test_dropping_used_array_fails(self):
        p = reduction_program()
        with pytest.raises(IRError):
            p.dropping_arrays({"a"})

    def test_str_renders(self):
        text = str(simple_stream_program())
        assert "program stream" in text
        assert "for i = 0, N {" in text


class TestBuilder:
    def test_unclosed_loop(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N")
        cm = b.loop("i", 0, "N")
        i = cm.__enter__()
        b.assign(a[i], 1.0)
        # never exited
        with pytest.raises(IRError):
            b._frames.append([])  # simulate imbalance
            b.build()

    def test_else_requires_if(self):
        b = ProgramBuilder("p", params={"N": 4})
        s = b.scalar("s")
        with pytest.raises(IRError):
            with b.else_():
                b.assign(s, 1.0)

    def test_double_build_rejected(self):
        b = ProgramBuilder("p")
        b.scalar("s")
        b.assign(ScalarRef("s"), 1.0)
        b.build()
        with pytest.raises(IRError):
            b.build()

    def test_subscript_arity_checked(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", ("N", "N"))
        with pytest.raises(IRError):
            with b.loop("i", 0, "N") as i:
                b.assign(a[i], 1.0)

    def test_param_and_sym(self):
        b = ProgramBuilder("p")
        n = b.param("N", 16)
        assert str(n) == "N"
        assert str(b.sym("N") - 1) == "N - 1"
        with pytest.raises(IRError):
            b.sym("M")

    def test_accumulate(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N")
        s = b.scalar("sum", output=True)
        with b.loop("i", 0, "N") as i:
            b.accumulate(s, a[i])
        p = b.build()
        stmt = p.top_level_loops()[0].body[0]
        assert str(stmt.rhs).startswith("(sum +")

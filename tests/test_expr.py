"""Tests for the expression AST."""

import pytest

from repro.errors import IRError
from repro.lang.affine import Affine
from repro.lang.expr import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    IndexValue,
    ScalarRef,
    UnaryOp,
    array_refs,
    as_expr,
    flop_count,
    replace_array,
    replace_refs,
    scalar_refs,
    substitute_expr,
)


def ref(name, *subs):
    return ArrayRef(name, tuple(Affine.of(s) for s in subs))


class TestNodes:
    def test_const_str(self):
        assert str(Const(3.0)) == "3"
        assert str(Const(0.4)) == "0.4"

    def test_as_expr(self):
        assert as_expr(2) == Const(2.0)
        assert as_expr(Const(1.0)) == Const(1.0)
        with pytest.raises(IRError):
            as_expr("nope")

    def test_array_ref_requires_subscripts(self):
        with pytest.raises(IRError):
            ArrayRef("a", ())

    def test_binop_validation(self):
        with pytest.raises(IRError):
            BinOp("%", Const(1.0), Const(2.0))

    def test_unary_validation(self):
        with pytest.raises(IRError):
            UnaryOp("!", Const(1.0))

    def test_call_unknown(self):
        with pytest.raises(IRError):
            Call("mystery", (Const(1.0),))

    def test_call_arity(self):
        with pytest.raises(IRError):
            Call("f", (Const(1.0),))  # f takes two args

    def test_index_value(self):
        iv = IndexValue(Affine({"i": 1}, 1))
        assert iv.affine == Affine({"i": 1}, 1)


class TestOperators:
    def test_sugar_builds_tree(self):
        a = ref("a", "i")
        expr = a + 1
        assert isinstance(expr, BinOp) and expr.op == "+"
        expr = 2 * a
        assert isinstance(expr, BinOp) and expr.op == "*"
        expr = a / 2 - 1
        assert expr.op == "-"
        assert isinstance(-a, UnaryOp)

    def test_reflected(self):
        a = ref("a", "i")
        assert (1 - a).op == "-"
        assert (1 - a).lhs == Const(1.0)
        assert (2 / a).op == "/"


class TestWalkAndCollect:
    def test_walk_order(self):
        e = ref("a", "i") + ref("b", "i") * ref("c", "i")
        names = [n.array for n in e.walk() if isinstance(n, ArrayRef)]
        assert names == ["a", "b", "c"]

    def test_array_refs_left_to_right(self):
        e = (ref("x", "i") + 1) * ref("y", "i", "j")
        assert [r.array for r in array_refs(e)] == ["x", "y"]

    def test_scalar_refs(self):
        e = ScalarRef("s") + ref("a", "i") + ScalarRef("t")
        assert [s.name for s in scalar_refs(e)] == ["s", "t"]


class TestFlopCount:
    def test_simple(self):
        assert flop_count(ref("a", "i") + ref("b", "i")) == 1
        assert flop_count(ref("a", "i") + ref("b", "i") * 2) == 2

    def test_const_only(self):
        assert flop_count(Const(1.0)) == 0

    def test_unary(self):
        assert flop_count(-ref("a", "i")) == 1

    def test_intrinsics(self):
        assert flop_count(Call("sqrt", (Const(2.0),))) == 1
        assert flop_count(Call("f", (Const(1.0), Const(2.0)))) == 3
        assert flop_count(Call("g", (Const(1.0), Const(2.0)))) == 2

    def test_nested_call_args(self):
        e = Call("sqrt", (ref("a", "i") + 1,))
        assert flop_count(e) == 2


class TestRewrites:
    def test_substitute_expr(self):
        e = ref("a", "i") + IndexValue(Affine.var("i"))
        out = substitute_expr(e, {"i": Affine({"t": 1}, 1)})
        refs = array_refs(out)
        assert refs[0].index[0] == Affine({"t": 1}, 1)

    def test_replace_refs_exact(self):
        a_i = ref("a", "i")
        e = a_i + ref("a", Affine({"i": 1}, 1))
        out = replace_refs(e, {a_i: ScalarRef("t")})
        assert isinstance(out.lhs, ScalarRef)
        assert isinstance(out.rhs, ArrayRef)  # a[i+1] untouched

    def test_replace_array_transform(self):
        e = ref("a", "i") * ref("b", "i")
        out = replace_array(
            e, lambda r: ScalarRef("z") if r.array == "a" else r
        )
        assert isinstance(out.lhs, ScalarRef)
        assert isinstance(out.rhs, ArrayRef)

    def test_replace_inside_call(self):
        e = Call("f", (ref("a", "i"), Const(1.0)))
        out = replace_array(e, lambda r: ScalarRef("t"))
        assert isinstance(out.args[0], ScalarRef)

    def test_array_ref_substitute(self):
        r = ref("a", "i", Affine({"j": 1}, -1))
        out = r.substitute({"j": Affine.var("t")})
        assert out.index[1] == Affine({"t": 1}, -1)

"""Tests for affine expressions, comparisons and conjunctions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import IRError
from repro.lang.affine import Affine, And, Cmp, conjoin


class TestConstruction:
    def test_constant(self):
        a = Affine.const_of(5)
        assert a.is_constant
        assert a.constant_value() == 5
        assert a.symbols == frozenset()

    def test_variable(self):
        v = Affine.var("i")
        assert not v.is_constant
        assert v.coeff("i") == 1
        assert v.symbols == {"i"}

    def test_zero_coefficients_dropped(self):
        a = Affine({"i": 0, "j": 2}, 1)
        assert a.symbols == {"j"}
        assert a == Affine({"j": 2}, 1)

    def test_of_int_str_affine(self):
        assert Affine.of(3) == Affine.const_of(3)
        assert Affine.of("k") == Affine.var("k")
        a = Affine({"i": 1}, 2)
        assert Affine.of(a) is a

    def test_of_rejects_junk(self):
        with pytest.raises(IRError):
            Affine.of(3.5)

    def test_constant_value_rejects_symbolic(self):
        with pytest.raises(IRError):
            Affine.var("i").constant_value()


class TestArithmetic:
    def test_add(self):
        assert Affine.var("i") + 1 == Affine({"i": 1}, 1)
        assert Affine.var("i") + Affine.var("j") == Affine({"i": 1, "j": 1}, 0)

    def test_add_cancels(self):
        a = Affine({"i": 2}, 0) + Affine({"i": -2}, 3)
        assert a == Affine.const_of(3)

    def test_sub(self):
        assert Affine.var("i") - Affine.var("i") == Affine.const_of(0)
        assert 5 - Affine.var("i") == Affine({"i": -1}, 5)

    def test_neg(self):
        assert -Affine({"i": 2}, -1) == Affine({"i": -2}, 1)

    def test_mul_scalar(self):
        assert Affine({"i": 2}, 1) * 3 == Affine({"i": 6}, 3)
        assert 0 * Affine.var("i") == Affine.const_of(0)

    def test_mul_by_constant_affine(self):
        assert Affine.var("i") * Affine.const_of(4) == Affine({"i": 4}, 0)

    def test_mul_by_symbolic_affine_rejected(self):
        with pytest.raises(IRError):
            Affine.var("i") * Affine.var("j")


class TestEvaluation:
    def test_evaluate(self):
        a = Affine({"i": 3, "j": -1}, 2)
        assert a.evaluate({"i": 4, "j": 5}) == 3 * 4 - 5 + 2

    def test_evaluate_unbound(self):
        with pytest.raises(IRError):
            Affine.var("i").evaluate({})

    def test_evaluate_vec(self):
        a = Affine({"i": 2}, 1)
        out = a.evaluate_vec({"i": np.arange(4)})
        assert list(out) == [1, 3, 5, 7]

    def test_evaluate_vec_broadcast(self):
        a = Affine({"i": 1, "j": 1}, 0)
        i = np.arange(3).reshape(3, 1)
        j = np.arange(2).reshape(1, 2)
        out = a.evaluate_vec({"i": i, "j": j})
        assert out.shape == (3, 2)
        assert out[2, 1] == 3

    def test_substitute(self):
        a = Affine({"i": 2, "j": 1}, 1)
        out = a.substitute({"i": Affine({"k": 1}, 3)})
        assert out == Affine({"k": 2, "j": 1}, 7)

    def test_rename(self):
        a = Affine({"i": 2}, 0)
        assert a.rename({"i": "t"}) == Affine({"t": 2}, 0)


class TestHashEq:
    def test_equal_hash(self):
        a = Affine({"i": 1, "j": 2}, 3)
        b = Affine({"j": 2, "i": 1}, 3)
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_in_sets(self):
        s = {Affine.var("i"), Affine.var("i") + 0, Affine.var("j")}
        assert len(s) == 2


class TestRendering:
    @pytest.mark.parametrize(
        "affine, text",
        [
            (Affine.const_of(0), "0"),
            (Affine.const_of(-2), "-2"),
            (Affine.var("i"), "i"),
            (Affine({"i": -1}, 0), "-i"),
            (Affine({"i": 2}, 0), "2*i"),
            (Affine({"i": 1}, -1), "i - 1"),
            (Affine({"i": 1, "j": 3}, 2), "i + 3*j + 2"),
            (Affine({"i": -2}, 5), "-2*i + 5"),
        ],
    )
    def test_str(self, affine, text):
        assert str(affine) == text


class TestCmp:
    def test_evaluate(self):
        c = Cmp("<=", Affine.var("i"), Affine.const_of(3))
        assert c.evaluate({"i": 3})
        assert not c.evaluate({"i": 4})

    def test_negate_roundtrip(self):
        for op in ("<", "<=", ">", ">=", "==", "!="):
            c = Cmp(op, Affine.var("i"), Affine.const_of(0))
            assert c.negate().negate() == c

    def test_negate_semantics(self):
        c = Cmp("<", Affine.var("i"), Affine.const_of(2))
        for v in range(-2, 5):
            assert c.evaluate({"i": v}) != c.negate().evaluate({"i": v})

    def test_unknown_op(self):
        with pytest.raises(IRError):
            Cmp("<>", Affine.var("i"), Affine.const_of(0))

    def test_vec(self):
        c = Cmp("==", Affine.var("i"), Affine.const_of(2))
        out = c.evaluate_vec({"i": np.arange(4)})
        assert list(out) == [False, False, True, False]

    def test_substitute(self):
        c = Cmp("<", Affine.var("i"), Affine.var("n"))
        out = c.substitute({"i": Affine({"t": 1}, 1)})
        assert out.evaluate({"t": 1, "n": 3})
        assert not out.evaluate({"t": 2, "n": 3})


class TestAnd:
    def test_evaluate(self):
        cond = And(
            (
                Cmp(">=", Affine.var("i"), Affine.const_of(1)),
                Cmp("<", Affine.var("i"), Affine.const_of(4)),
            )
        )
        assert [cond.evaluate({"i": v}) for v in range(5)] == [
            False,
            True,
            True,
            True,
            False,
        ]

    def test_vec(self):
        cond = And(
            (
                Cmp(">=", Affine.var("i"), Affine.const_of(1)),
                Cmp("<", Affine.var("i"), Affine.const_of(3)),
            )
        )
        out = cond.evaluate_vec({"i": np.arange(4)})
        assert list(out) == [False, True, True, False]

    def test_conjoin_single(self):
        c = Cmp("<", Affine.var("i"), Affine.const_of(2))
        assert conjoin([c]) == c

    def test_conjoin_flattens(self):
        c1 = Cmp("<", Affine.var("i"), Affine.const_of(2))
        c2 = Cmp(">", Affine.var("j"), Affine.const_of(0))
        inner = And((c1, c2))
        out = conjoin([inner, c1])
        assert isinstance(out, And)
        assert len(out.parts) == 3


# -- property-based tests ---------------------------------------------------

coeffs = st.dictionaries(st.sampled_from("ijkn"), st.integers(-5, 5), max_size=3)
consts = st.integers(-10, 10)
envs = st.fixed_dictionaries({v: st.integers(-7, 7) for v in "ijkn"})


@st.composite
def affines(draw):
    return Affine(draw(coeffs), draw(consts))


@given(affines(), affines(), envs)
def test_add_homomorphic(a, b, env):
    assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)


@given(affines(), affines(), envs)
def test_sub_homomorphic(a, b, env):
    assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)


@given(affines(), st.integers(-4, 4), envs)
def test_mul_homomorphic(a, k, env):
    assert (a * k).evaluate(env) == a.evaluate(env) * k


@given(affines(), affines(), envs)
def test_substitution_composes(a, b, env):
    """Substituting then evaluating equals evaluating the composition."""
    substituted = a.substitute({"i": b})
    env_inner = dict(env)
    env_inner["i"] = b.evaluate(env)
    assert substituted.evaluate(env) == a.evaluate(env_inner)


@given(affines())
def test_str_parse_roundtrip_via_parser_grammar(a):
    """The printer's affine rendering is parseable by the parser."""
    from repro.lang.parser import _Parser

    text = str(a)
    parsed = _Parser(text).parse_affine()
    assert parsed == a


@given(affines(), affines())
def test_hash_consistent_with_eq(a, b):
    if a == b:
        assert hash(a) == hash(b)

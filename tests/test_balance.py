"""Tests for the balance model, STREAM and CacheBench analogs."""

import pytest

from repro.balance import (
    aggregate_balance,
    bandwidth_utilization,
    demand_supply_ratios,
    machine_balance,
    measure_cachebench,
    measure_stream,
    program_balance,
    required_memory_bandwidth,
)
from repro.balance.model import ProgramBalance
from repro.errors import ReproError
from repro.interp import execute
from repro.machine import exemplar, origin2000

from tests.helpers import simple_stream_program


@pytest.fixture(scope="module")
def stream_run():
    return execute(simple_stream_program(n=8192), origin2000(scale=256))


class TestProgramBalance:
    def test_bytes_per_flop(self, stream_run):
        b = program_balance(stream_run)
        # one flop per iteration; 3 element refs -> 24 B/flop registers
        assert b.bytes_per_flop[0] == pytest.approx(24.0)
        # memory: a read+write, b read -> ~24 B/flop too
        assert b.memory_balance == pytest.approx(24.0, rel=0.05)
        assert b.flops == 8192

    def test_requires_flops(self, stream_run):
        from dataclasses import replace
        from repro.interp.counters import HardwareCounters

        broken = replace(
            stream_run,
            counters=HardwareCounters(
                stream_run.counters.machine,
                0,
                0,
                0,
                stream_run.counters.level_stats,
                stream_run.counters.downstream_bytes,
            ),
        )
        with pytest.raises(ReproError):
            program_balance(broken)

    def test_describe(self, stream_run):
        assert "B/flop" in program_balance(stream_run).describe()


class TestMachineBalance:
    def test_origin_row(self):
        assert machine_balance(origin2000()) == pytest.approx((4.0, 4.0, 0.8))

    def test_exemplar_row(self):
        bal = machine_balance(exemplar())
        assert len(bal) == 2
        assert bal[0] == pytest.approx(4.0)


class TestRatios:
    def test_ratio_math(self, stream_run):
        b = program_balance(stream_run)
        r = demand_supply_ratios(b, stream_run.machine)
        assert r.ratios[0] == pytest.approx(b.bytes_per_flop[0] / 4.0)
        assert r.ratios[-1] == pytest.approx(b.memory_balance / 0.8)
        assert r.limiting_channel == "Mem-L2"
        assert r.max_ratio == max(r.ratios)

    def test_utilization_bound(self, stream_run):
        r = demand_supply_ratios(program_balance(stream_run), stream_run.machine)
        assert r.cpu_utilization_bound == pytest.approx(1.0 / r.max_ratio)

    def test_utilization_capped_at_one(self):
        b = ProgramBalance("x", ("L1-Reg", "L2-L1", "Mem-L2"), (0.1, 0.1, 0.1), 100, (10, 10, 10))
        r = demand_supply_ratios(b, origin2000())
        assert r.cpu_utilization_bound == 1.0

    def test_channel_mismatch(self, stream_run):
        b = program_balance(stream_run)
        with pytest.raises(ReproError):
            demand_supply_ratios(b, exemplar())

    def test_required_bandwidth(self, stream_run):
        b = program_balance(stream_run)
        r = demand_supply_ratios(b, stream_run.machine)
        need = required_memory_bandwidth(r, stream_run.machine)
        assert need == pytest.approx(stream_run.machine.memory_bandwidth * r.ratios[-1])

    def test_bound_matches_executor_utilization(self, stream_run):
        """The static bound (1/max-ratio) equals the executor's measured
        CPU utilization when the same channel binds both."""
        r = demand_supply_ratios(program_balance(stream_run), stream_run.machine)
        assert stream_run.cpu_utilization == pytest.approx(
            r.cpu_utilization_bound, rel=1e-6
        )


class TestAggregate:
    def test_weighted_not_averaged(self):
        names = ("L1-Reg", "L2-L1", "Mem-L2")
        b1 = ProgramBalance("a", names, (8.0, 8.0, 8.0), 100, (800, 800, 800))
        b2 = ProgramBalance("b", names, (1.0, 1.0, 1.0), 900, (900, 900, 900))
        agg = aggregate_balance([b1, b2], "ab")
        assert agg.flops == 1000
        assert agg.bytes_per_flop[0] == pytest.approx(1.7)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            aggregate_balance([], "x")


class TestUtilizationMeasure:
    def test_saturating_kernel(self):
        run = execute(simple_stream_program(n=8192), origin2000(scale=256))
        assert bandwidth_utilization(run) == pytest.approx(1.0, rel=0.01)


class TestStreamAndCacheBench:
    def test_stream_measures_spec_bandwidth(self):
        m = origin2000(scale=256)
        res = measure_stream(m)
        for rate in (res.copy, res.scale, res.add, res.triad):
            assert rate == pytest.approx(m.memory_bandwidth, rel=0.02)
        assert res.best >= res.copy
        assert "STREAM" in res.describe()

    def test_cachebench_measures_every_channel(self):
        m = origin2000(scale=256)
        res = measure_cachebench(m)
        assert len(res.bandwidths) == 3
        assert res.bandwidths[0] == pytest.approx(m.register_bandwidth, rel=0.05)
        assert res.bandwidths[1] == pytest.approx(m.bandwidths[1], rel=0.25)
        assert res.bandwidths[2] == pytest.approx(m.memory_bandwidth, rel=0.1)

    def test_exemplar_single_level(self):
        m = exemplar(scale=256)
        res = measure_cachebench(m)
        assert len(res.bandwidths) == 2

    def test_measured_machine_balance_matches_spec(self):
        """The paper's methodology closes: STREAM/CacheBench on the
        simulated machine recover the machine-balance row of Figure 1."""
        m = origin2000(scale=256)
        stream = measure_stream(m)
        measured_mem_balance = stream.best / m.peak_flops
        assert measured_mem_balance == pytest.approx(0.8, rel=0.02)

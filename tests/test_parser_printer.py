"""Parser and printer tests, including the round-trip property."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.lang import parse, render
from repro.lang.expr import BinOp, Call, Const, IndexValue, UnaryOp
from repro.lang.stmt import ExternalRead, If

from tests.helpers import simple_stream_program, two_loop_chain


class TestParseBasics:
    def test_minimal(self):
        p = parse("program p()\nscalar s out\ns = 1\n")
        assert p.name == "p"
        assert p.output_scalars == ("s",)

    def test_params(self):
        p = parse("program p(N=4, M=8)\nscalar s\ns = 0\n")
        assert p.params == {"N": 4, "M": 8}

    def test_array_decl_dtype_and_out(self):
        p = parse(
            "program p(N=4)\narray a[N] float32 out\nscalar s\n"
            "for i = 0, N {\n  a[i] = 1\n}\n"
        )
        from repro.lang.types import DType

        assert p.array("a").dtype is DType.FLOAT32
        assert "a" in p.outputs

    def test_scalar_initial(self):
        p = parse("program p()\nscalar s = 2.5 out\ns = s + 1\n")
        assert p.scalar("s").initial == 2.5

    def test_negative_initial(self):
        p = parse("program p()\nscalar s = -1.5\ns = s + 1\n")
        assert p.scalar("s").initial == -1.5

    def test_read_array_and_scalar(self):
        p = parse(
            "program p(N=4)\narray a[N]\nscalar t\n"
            "for i = 0, N {\n  read(a[i])\n  read(t)\n}\n"
        )
        loop = p.top_level_loops()[0]
        assert isinstance(loop.body[0], ExternalRead)
        assert isinstance(loop.body[1], ExternalRead)

    def test_if_else(self):
        p = parse(
            "program p(N=8)\nscalar s out\n"
            "for i = 0, N {\n  if i <= N - 2 {\n    s = s + 1\n  } else {\n"
            "    s = s + 2\n  }\n}\n"
        )
        guard = p.top_level_loops()[0].body[0]
        assert isinstance(guard, If)
        assert guard.orelse

    def test_and_condition(self):
        p = parse(
            "program p(N=8)\nscalar s out\n"
            "for i = 0, N {\n  if i >= 1 and i < N - 1 {\n    s = s + 1\n  }\n}\n"
        )
        guard = p.top_level_loops()[0].body[0]
        assert len(guard.cond.parts) == 2

    def test_intrinsic_call(self):
        p = parse(
            "program p(N=4)\narray a[N] out\narray b[N]\n"
            "for i = 0, N {\n  a[i] = f(b[i], 2.0)\n}\n"
        )
        stmt = p.top_level_loops()[0].body[0]
        assert isinstance(stmt.rhs, Call)

    def test_min_max_abs(self):
        p = parse(
            "program p(N=4)\narray a[N] out\n"
            "for i = 0, N {\n  a[i] = min(a[i], 1) + max(a[i], 0) + abs(a[i])\n}\n"
        )
        refs = list(p.walk())
        assert refs  # parsed fine

    def test_idx_value(self):
        p = parse(
            "program p(N=4)\narray a[N] out\n"
            "for i = 0, N {\n  a[i] = idx(i + 1) * 0.5\n}\n"
        )
        stmt = p.top_level_loops()[0].body[0]
        assert any(isinstance(n, IndexValue) for n in stmt.rhs.walk())

    def test_comments_and_blank_lines(self):
        p = parse(
            "# a comment\nprogram p(N=4)\n\narray a[N] out\n"
            "for i = 0, N {\n  # inner comment\n  a[i] = 1\n}\n"
        )
        assert p.name == "p"

    def test_multichar_affine_subscripts(self):
        p = parse(
            "program p(N=8)\narray a[N, N] out\n"
            "for i = 1, N - 1 {\n  for j = 1, N {\n    a[i, j] = a[i - 1, j - 1] + 1\n  }\n}\n"
        )
        from repro.lang import array_refs

        stmt = list(p.walk())[-1]
        read = array_refs(stmt.rhs)[0]
        assert read.index[0].const == -1


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "program p(\n",  # unterminated params
            "program p()\nfor i = 0, N {\n",  # unterminated block
            "program p()\nscalar s\ns = *\n",  # bad expression
            "program p()\nscalar s\ns = unknownfn(1)\n",  # unknown function
            "program p(N=4)\narray a[N]\nfor i = 0 N { a[i] = 1 }\n",  # missing comma
            "banana\n",  # not a program
            "program p()\nscalar s\nif 1 << 2 { s = 1 }\n",  # bad operator
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_has_location(self):
        try:
            parse("program p()\nscalar s\ns = @\n")
        except ParseError as exc:
            assert exc.line == 3
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_float_in_affine_rejected(self):
        with pytest.raises(ParseError):
            parse("program p(N=4)\narray a[N]\nfor i = 0, N {\n  a[i + 0.5] = 1\n}\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "program",
        [
            simple_stream_program(),
            two_loop_chain(),
        ],
        ids=["stream", "chain"],
    )
    def test_simple_programs(self, program):
        text = render(program)
        assert render(parse(text)) == text

    def test_paper_programs_roundtrip(self):
        from repro.programs import (
            fig4_program,
            fig6_fused,
            fig6_optimized,
            fig6_original,
            fig7_original,
            sec21_program,
        )

        for prog in (
            sec21_program(16),
            fig4_program(16),
            fig6_original(8),
            fig6_fused(8),
            fig6_optimized(8),
            fig7_original(16),
        ):
            text = render(prog)
            reparsed = parse(text)
            assert render(reparsed) == text
            assert reparsed.params == dict(prog.params)
            assert reparsed.outputs == prog.outputs

    def test_workload_programs_roundtrip(self):
        from repro.programs import convolution, dmxpy, matmul, matmul_blocked, sweep3d

        for prog in (
            convolution(32),
            dmxpy(32, 4),
            matmul(12),
            matmul_blocked(12, 4),
            sweep3d(8),
        ):
            text = render(prog)
            assert render(parse(text)) == text

    def test_roundtrip_preserves_semantics(self):
        from repro.interp import evaluate
        from repro.programs import fig6_fused

        prog = fig6_fused(6)
        reparsed = parse(render(prog))
        a = evaluate(prog, {"N": 6})
        b = evaluate(reparsed, {"N": 6})
        assert a.scalars == b.scalars


# -- property-based round-trip on random straight-line programs --------------

exprs = st.deferred(
    lambda: st.one_of(
        st.floats(min_value=-4, max_value=4, allow_nan=False).map(Const),
        st.builds(
            BinOp,
            st.sampled_from(["+", "-", "*"]),
            exprs,
            exprs,
        ),
        st.builds(UnaryOp, st.just("-"), exprs),
    )
)


@given(exprs)
def test_expression_roundtrip(expr):
    """Any constant expression the printer emits parses back equal-valued."""
    from repro.lang.printer import render_expr

    source = (
        "program p()\nscalar s out\ns = " + render_expr(expr) + "\n"
    )
    reparsed = parse(source)
    stmt = reparsed.body[0]
    from repro.interp.evaluator import Evaluator

    ev = Evaluator(reparsed)
    got = ev._eval(stmt.rhs, {})
    want = ev._eval(expr, {})
    assert got == want or (got != got and want != want)

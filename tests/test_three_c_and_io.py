"""Tests for 3C miss classification, trace serialization, and E18."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError, ReproError
from repro.machine import CacheGeometry, MissClassification
from repro.machine.three_c import classify_misses as classify
from repro.trace import generate_trace, load_trace, save_trace

from tests.helpers import simple_stream_program


def arrs(addrs, writes=None):
    a = np.asarray(addrs, dtype=np.int64)
    w = np.asarray(writes if writes is not None else [False] * len(a), dtype=bool)
    return a, w


class TestThreeC:
    GEOM = CacheGeometry(64, 32, 1)  # 2 sets, direct-mapped

    def test_pure_compulsory(self):
        a, w = arrs([0, 32, 0, 32])
        c = classify(a, w, self.GEOM)
        assert (c.total, c.compulsory, c.capacity, c.conflict) == (2, 2, 0, 0)

    def test_pure_conflict(self):
        # lines 0 and 64 both map to set 0 of the direct-mapped cache, but
        # a fully associative cache of the same size holds both.
        a, w = arrs([0, 64, 0, 64])
        c = classify(a, w, self.GEOM)
        assert c.compulsory == 2
        assert c.conflict == 2
        assert c.capacity == 0

    def test_pure_capacity(self):
        # 3 distinct lines cycled through a 2-line cache: even fully
        # associative LRU misses every access.
        a, w = arrs([0, 32, 64, 0, 32, 64])
        c = classify(a, w, CacheGeometry(64, 32, 2))
        assert c.compulsory == 3
        assert c.capacity == 3
        assert c.conflict == 0

    def test_classes_sum(self):
        rng = np.random.default_rng(2)
        a = (rng.integers(0, 64, size=400) * 8).astype(np.int64)
        w = rng.random(400) < 0.5
        c = classify(a, w, CacheGeometry(128, 32, 2))
        assert c.compulsory + c.capacity + c.conflict == c.total

    def test_length_mismatch(self):
        with pytest.raises(MachineError):
            classify(np.zeros(2, dtype=np.int64), np.zeros(1, dtype=bool), self.GEOM)

    def test_describe(self):
        a, w = arrs([0, 64, 0])
        text = classify(a, w, self.GEOM).describe()
        assert "conflict" in text

    def test_validation_of_sum(self):
        with pytest.raises(MachineError):
            MissClassification(self.GEOM, 5, 1, 1, 1)

    @settings(max_examples=40, deadline=None)
    @given(addrs=st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_invariants(self, addrs):
        a, w = arrs([x * 8 for x in addrs])
        c = classify(a, w, CacheGeometry(128, 32, 2))
        assert 0 <= c.compulsory <= c.total
        assert c.capacity >= 0 and c.conflict >= 0
        assert c.compulsory == len({x * 8 // 32 for x in addrs})

    def test_full_associativity_has_no_conflicts(self):
        rng = np.random.default_rng(3)
        a = (rng.integers(0, 64, size=300) * 8).astype(np.int64)
        w = np.zeros(300, dtype=bool)
        geom = CacheGeometry(128, 32, 4)  # fully associative already
        c = classify(a, w, geom)
        assert c.conflict == 0


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        p = simple_stream_program(n=32)
        t = generate_trace(p)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.addresses, t.addresses)
        assert np.array_equal(loaded.is_write, t.is_write)
        assert (loaded.flops, loaded.loads, loaded.stores) == (t.flops, t.loads, t.stores)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_trace(tmp_path / "nope.npz")

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.int64(99),
            addresses=np.zeros(1, dtype=np.int64),
            is_write=np.zeros(1, dtype=bool),
            counts=np.array([0, 1, 0], dtype=np.int64),
        )
        with pytest.raises(ReproError, match="format"):
            load_trace(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(ReproError):
            load_trace(path)

    def test_analysis_on_loaded_trace(self, tmp_path):
        """A loaded trace feeds every downstream analysis unchanged."""
        from repro.balance import intrinsic_traffic
        from repro.machine import lru_vs_opt

        p = simple_stream_program(n=64)
        t = generate_trace(p)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        loaded = load_trace(path)
        geom = CacheGeometry(128, 32, 2)
        assert lru_vs_opt(loaded.addresses, loaded.is_write, geom) == lru_vs_opt(
            t.addresses, t.is_write, geom
        )
        assert intrinsic_traffic(loaded, 32) == intrinsic_traffic(t, 32)


class TestE18:
    def test_footnote3_measured(self):
        from repro.experiments import ExperimentConfig
        from repro.experiments.e18_three_c import run_e18

        r = run_e18(ExperimentConfig(scale=256))
        ex = [row for row in r.detail.rows if row.machine.startswith("Exemplar")]
        anomaly = next(row for row in ex if row.kernel == "3w6r")
        clean = next(row for row in ex if row.kernel == "2w5r")
        assert anomaly.classification.conflict > 0
        assert anomaly.classification.conflict_fraction >= 0.4
        assert clean.classification.conflict == 0
        origin = [row for row in r.detail.rows if row.machine.startswith("Origin")]
        assert all(row.classification.conflict == 0 for row in origin)
        assert "E18" in r.table().render()

"""Tests for the compiler transformations (paper section 3)."""

import pytest

from repro.errors import TransformError, VerificationError
from repro.lang import ProgramBuilder, render
from repro.lang.analysis import access_sets, static_counts
from repro.transforms import (
    contract_arrays,
    contractible_arrays,
    eliminate_stores,
    is_equivalent,
    optimize,
    peel_array,
    permute_nest,
    replace_scalars,
    shrink_array,
    tile_nest,
    verify_equivalent,
)

from tests.helpers import two_loop_chain


def fused_fig7(n=64):
    b = ProgramBuilder("fig7f", params={"N": n})
    res = b.array("res", "N")
    data = b.array("data", "N")
    s = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(res[i], res[i] + data[i])
        b.assign(s, s + res[i])
    return b.build()


class TestStoreElimination:
    def test_fig7(self):
        p = fused_fig7()
        out = eliminate_stores(p)
        loop = out.body[0]
        # no array store remains
        writes = access_sets(loop).writes
        assert writes == frozenset()
        verify_equivalent(p, out)

    def test_reads_of_old_value_kept(self):
        """The rhs still reads res[i] from memory (old value semantics)."""
        p = fused_fig7()
        out = eliminate_stores(p)
        assert access_sets(out.body[0]).reads == {"res", "data"}

    def test_store_count_drops(self):
        p = fused_fig7(n=32)
        out = eliminate_stores(p)
        assert static_counts(out).array_stores == 0
        assert static_counts(p).array_stores == 32

    def test_output_array_protected(self):
        b = ProgramBuilder("p", params={"N": 16})
        a = b.array("a", "N", output=True)
        d = b.array("d", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], d[i] * 2.0)
            b.assign(s, s + a[i])
        p = b.build()
        with pytest.raises(TransformError, match="output"):
            eliminate_stores(p, arrays=["a"])
        assert eliminate_stores(p) is p  # auto mode skips silently

    def test_later_read_blocks(self):
        p = two_loop_chain()  # tmp read in second loop
        with pytest.raises(TransformError, match="read after"):
            eliminate_stores(p, arrays=["tmp"])

    def test_different_subscript_blocks(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 1, "N") as i:
            b.assign(t[i], 1.0 + s)
            b.assign(s, s + t[i - 1])  # reads previous iteration
        with pytest.raises(TransformError, match="different"):
            eliminate_stores(b.build(), arrays=["t"])

    def test_read_under_guard_after_store_blocks(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(t[i], 2.0)
            with b.if_(i < 4):
                b.assign(s, s + t[i])
        with pytest.raises(TransformError, match="guard"):
            eliminate_stores(b.build(), arrays=["t"])

    def test_externalread_filled_array_skipped(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.read(t[i])
            b.assign(s, s + t[i])
        with pytest.raises(TransformError, match="read\\(\\)"):
            eliminate_stores(b.build(), arrays=["t"])

    def test_two_arrays_eliminated(self):
        b = ProgramBuilder("p", params={"N": 16})
        x = b.array("x", "N")
        y = b.array("y", "N")
        d = b.array("d", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(x[i], d[i] + 1.0)
            b.assign(y[i], d[i] * 2.0)
            b.assign(s, s + x[i] * y[i])
        p = b.build()
        out = eliminate_stores(p)
        assert static_counts(out).array_stores == 0
        verify_equivalent(p, out)

    def test_multiple_stores_same_array(self):
        """A second write to the same element forwards through scalars."""
        b = ProgramBuilder("p", params={"N": 16})
        x = b.array("x", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(x[i], 1.0 + s * 0.0)
            b.assign(x[i], x[i] * 2.0)
            b.assign(s, s + x[i])
        p = b.build()
        out = eliminate_stores(p)
        assert static_counts(out).array_stores == 0
        verify_equivalent(p, out)


class TestContraction:
    def chain(self, n=32):
        b = ProgramBuilder("p", params={"N": n})
        t = b.array("t", "N")
        src = b.array("src", "N")
        dst = b.array("dst", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(t[i], src[i] * 2.0)
            b.assign(dst[i], t[i] + 1.0)
        return b.build()

    def test_candidates(self):
        assert contractible_arrays(self.chain()) == {"t"}

    def test_contract(self):
        p = self.chain()
        out = contract_arrays(p)
        assert not out.has_array("t")
        assert any(s.name == "_tc" for s in out.scalars)
        verify_equivalent(p, out)

    def test_register_traffic_drops(self):
        p = self.chain(n=16)
        out = contract_arrays(p)
        assert static_counts(out).array_refs < static_counts(p).array_refs

    def test_read_before_write_rejected(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        dst = b.array("dst", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(dst[i], t[i])  # reads t's initial values
            b.assign(t[i], 1.0)
        with pytest.raises(TransformError, match="read before"):
            contract_arrays(b.build(), arrays=["t"])

    def test_cross_iteration_rejected(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        dst = b.array("dst", "N", output=True)
        with b.loop("i", 1, "N") as i:
            b.assign(t[i], 1.0)
            b.assign(dst[i], t[i - 1])
        with pytest.raises(TransformError, match="multiple subscripts"):
            contract_arrays(b.build(), arrays=["t"])

    def test_live_across_loops_rejected(self):
        with pytest.raises(TransformError, match="live across"):
            contract_arrays(two_loop_chain(), arrays=["tmp"])

    def test_output_rejected(self):
        p = self.chain()
        with pytest.raises(TransformError, match="output"):
            contract_arrays(p, arrays=["dst"])

    def test_2d_contraction(self):
        b = ProgramBuilder("p", params={"N": 8})
        t = b.array("t", ("N", "N"))
        src = b.array("src", ("N", "N"))
        dst = b.array("dst", ("N", "N"), output=True)
        with b.loop("i", 0, "N") as i:
            with b.loop("j", 0, "N") as j:
                b.assign(t[i, j], src[i, j] * 3.0)
                b.assign(dst[i, j], t[i, j] - 1.0)
        p = b.build()
        out = contract_arrays(p)
        assert not out.has_array("t")
        verify_equivalent(p, out, params_list=[{"N": 8}])


class TestShrinking:
    def stencil(self, n=16):
        """b[i,j] computed from carried a-values — Figure 6 shape."""
        b = ProgramBuilder("p", params={"N": n})
        a = b.array("a", ("N", "N"))
        s = b.scalar("s", output=True)
        with b.loop("j", 1, "N") as j:
            with b.loop("i", 0, "N") as i:
                b.read(a[i, j])
                b.assign(s, s + a[i, j - 1] * 0.5 + a[i, j])
        return b.build()

    def test_needs_peel_first_for_initial_column(self):
        """The raw stencil reads a[i,0] (initial contents) at j=1 — the
        shrink is statically constructible but semantically wrong, and the
        oracle catches it."""
        p = self.stencil()
        out = shrink_array(p, "a")
        assert not is_equivalent(p, out, sizes=(4, 6))

    def test_shrink_after_init_loop(self):
        """With the first column produced by reads too, shrinking is valid."""
        n = 16
        b = ProgramBuilder("p", params={"N": n})
        a = b.array("a", ("N", "N"))
        s = b.scalar("s", output=True)
        with b.loop("j", 0, "N") as j:
            with b.loop("i", 0, "N") as i:
                b.read(a[i, j])
                with b.if_(j >= 1):
                    b.assign(s, s + a[i, j - 1] * 0.5 + a[i, j])
        p = b.build()
        out = shrink_array(p, "a")
        assert not out.has_array("a")
        assert out.has_array("_abuf")
        assert any(sc.name == "_acur" for sc in out.scalars)
        verify_equivalent(p, out, sizes=(3, 6, 9))

    def test_storage_reduction_amount(self):
        p = self.stencil(n=16)
        out = shrink_array(p, "a")
        assert out.data_bytes() == 16 * 8  # N buffer instead of N^2
        assert p.data_bytes() == 16 * 16 * 8

    def test_distance_zero_scalar_only(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        d = b.array("d", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(t[i], d[i] * 2.0)
            b.assign(s, s + t[i])
        p = b.build()
        out = shrink_array(p, "t")
        assert not out.has_array("_tbuf")  # no carried values -> no buffer
        verify_equivalent(p, out)

    def test_distance_two_rejected(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 2, "N") as i:
            b.assign(t[i], 1.0 + s * 0.0)
            b.assign(s, s + t[i - 2])
        with pytest.raises(TransformError, match="distances 0 and 1"):
            shrink_array(b.build(), "t")

    def test_two_writes_same_subscript_accepted(self):
        """Re-updates of the same element (Figure 6's boundary fix) shrink
        fine: every write becomes a current-scalar update."""
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(t[i], 1.0 + s * 0.0)
            b.assign(t[i], t[i] * 2.0)
            b.assign(s, s + t[i])
        p = b.build()
        out = shrink_array(p, "t")
        verify_equivalent(p, out)

    def test_two_writes_different_subscripts_rejected(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 1, b.sym("N") - 1) as i:
            b.assign(t[i], 1.0 + s * 0.0)
            b.assign(t[i + 1], 2.0 + s * 0.0)
            b.assign(s, s + t[i])
        with pytest.raises(TransformError, match="different subscripts"):
            shrink_array(b.build(), "t")

    def test_guarded_first_write_rejected(self):
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i < 8):
                b.assign(t[i], 1.0 + s * 0.0)
            b.assign(s, s + t[i])
        with pytest.raises(TransformError, match="first write under a guard"):
            shrink_array(b.build(), "t")

    def test_auto_derives_fig6c(self):
        """The headline: normalize + peel + shrink mechanically derives the
        paper's Figure 6(c) from Figure 6(b), verified equivalent and with
        identical storage (two N-vectors plus two scalars)."""
        from repro.programs import fig6_fused, fig6_optimized

        p = fig6_fused(16)
        result = optimize(p)
        assert "normalize" in result.applied_stages
        assert "peeling" in result.applied_stages
        assert "shrinking" in result.applied_stages
        assert result.final.data_bytes() == fig6_optimized(16).data_bytes()
        verify_equivalent(p, result.final, sizes=(2, 3, 5, 9))

    def test_output_rejected(self):
        b = ProgramBuilder("p", params={"N": 8})
        t = b.array("t", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(t[i], 1.0)
        with pytest.raises(TransformError, match="output"):
            shrink_array(b.build(), "t")

    def test_carried_read_before_write_ok(self):
        """Distance-1 read textually before the write (the buffer serves it)."""
        b = ProgramBuilder("p", params={"N": 16})
        t = b.array("t", "N")
        d = b.array("d", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 1, "N") as i:
            b.assign(s, s + t[i - 1])
            b.assign(t[i], d[i] * 1.5)
        p = b.build()
        out = shrink_array(p, "t")
        # first iteration reads t[0]'s initial value -> oracle must reject
        assert not is_equivalent(p, out, sizes=(4, 8))


class TestPeeling:
    def test_exact_slice_refs(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N", "N"))
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i, 0], 1.0 + s * 0.0)
            b.assign(s, s + a[i, 0])
        p = b.build()
        out = peel_array(p, "a", dim=1, at=0)
        assert out.has_array("a_peel1")
        verify_equivalent(p, out, sizes=(4, 8))

    def test_alias_split_inserts_guard(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N", "N"))
        s = b.scalar("s", output=True)
        with b.loop("j", 0, "N") as j:
            with b.loop("i", 0, "N") as i:
                b.assign(a[i, j], 2.0 + s * 0.0)
        with b.loop("j2", 1, "N") as j:
            with b.loop("i2", 0, "N") as i:
                b.assign(s, s + a[i, j - 1])  # hits slice 0 at j2=1
        p = b.build()
        out = peel_array(p, "a", dim=1, at=0)
        from repro.lang.stmt import If

        assert any(isinstance(st, If) for st in out.walk())
        verify_equivalent(p, out, sizes=(4, 7))

    def test_fig6_like_peel(self):
        """Peel the first column of the fused Figure 6 program and verify."""
        from repro.programs import fig6_fused

        p = fig6_fused(8)
        out = peel_array(p, "a", dim=1, at=0)
        verify_equivalent(p, out, sizes=(4, 7))

    def test_never_aliasing_constant_left_alone(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N", 4))
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i, 0], 1.0 + s * 0.0)
            b.assign(s, s + a[i, 2])  # constant 2 != 0: untouched
        p = b.build()
        out = peel_array(p, "a", dim=1, at=0)
        from repro.lang.analysis import access_sets

        assert "a" in access_sets(out.body[0]).reads  # a[i,2] still on a

    def test_output_rejected(self):
        from repro.programs import matmul

        with pytest.raises(TransformError, match="output"):
            peel_array(matmul(4), "c", dim=1, at=0)

    def test_no_touching_refs_rejected(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N", "N"))
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + a[i, 3])
        with pytest.raises(TransformError, match="no reference"):
            peel_array(b.build(), "a", dim=1, at=Affine_of_zero())

    def test_bad_dim(self):
        b = ProgramBuilder("p", params={"N": 8})
        b.array("a", "N")
        s = b.scalar("s", output=True)
        b.assign(s, 0.0)
        with pytest.raises(TransformError):
            peel_array(b.build(), "a", dim=3, at=0)


def Affine_of_zero():
    from repro.lang.affine import Affine

    return Affine.const_of(0)


class TestScalarReplacement:
    def test_matmul_register_traffic(self):
        from repro.programs import matmul

        p = matmul(6, order="jki")
        out = replace_scalars(p)
        # b[j,k] invariant in inner i: 1 load hoisted out of N iterations
        before = static_counts(p)
        after = static_counts(out)
        assert after.array_loads < before.array_loads
        verify_equivalent(p, out, params_list=[{"N": 6}])

    def test_written_invariant_gets_store(self):
        b = ProgramBuilder("p", params={"N": 8})
        acc = b.array("acc", 4, output=True)
        d = b.array("d", "N")
        with b.loop("i", 0, "N") as i:
            b.assign(acc[2], acc[2] + d[i])
        p = b.build()
        out = replace_scalars(p)
        # hoisted: load before, store after, scalar inside
        assert len(out.body) == 3
        verify_equivalent(p, out)

    def test_no_candidates_identity(self):
        from tests.helpers import simple_stream_program

        p = simple_stream_program()
        assert replace_scalars(p) is p

    def test_variant_subscripts_not_hoisted(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N", "N"), output=True)
        with b.loop("i", 0, "N") as i:
            with b.loop("j", 0, "N") as j:
                b.assign(a[i, j], a[i, 0] + 1.0)  # two subscripts of a
        p = b.build()
        assert replace_scalars(p) is p


class TestInterchangeAndTiling:
    def test_all_orders_equivalent(self):
        from repro.programs import matmul

        base = matmul(5, order="ijk")
        for order in ("ikj", "jik", "jki", "kij", "kji"):
            permuted = permute_nest(base, 0, list(order))
            verify_equivalent(base, permuted, params_list=[{"N": 5}])

    def test_permute_validation(self):
        from repro.programs import matmul

        p = matmul(4)
        with pytest.raises(TransformError):
            permute_nest(p, 0, ["i", "j"])  # missing k
        with pytest.raises(TransformError):
            permute_nest(two_loop_chain(), 0, ["i", "j"])

    def test_tile_divisibility(self):
        from repro.programs import matmul

        with pytest.raises(TransformError, match="divide"):
            tile_nest(matmul(5), 0, {"k": 2})

    def test_tile_order_constraints(self):
        from repro.programs import matmul

        p = matmul(4)
        with pytest.raises(TransformError, match="enclose"):
            tile_nest(p, 0, {"k": 2}, order=["j", "k", "k_t", "i"])
        with pytest.raises(TransformError, match="permutation"):
            tile_nest(p, 0, {"k": 2}, order=["k_t", "j", "k"])

    def test_tiled_equivalent(self):
        from repro.programs import matmul

        base = matmul(6)
        tiled = tile_nest(base, 0, {"k": 3, "j": 2}, order=["k_t", "j_t", "j", "i", "k"])
        verify_equivalent(base, tiled, params_list=[{"N": 6}])

    def test_unknown_var(self):
        from repro.programs import matmul

        with pytest.raises(TransformError, match="no loop variable"):
            tile_nest(matmul(4), 0, {"z": 2})

    def test_blocked_matmul_reduces_memory_traffic(self, tiny_machine):
        from repro.interp import execute
        from repro.programs import matmul, matmul_blocked

        n = 16  # arrays 2 KiB each, > 1 KiB tiny L2
        plain = execute(matmul(n, order="jki"), tiny_machine)
        blocked = execute(matmul_blocked(n, tile=4), tiny_machine)
        assert blocked.counters.memory_bytes < plain.counters.memory_bytes


class TestVerifier:
    def test_detects_wrong_transform(self):
        p = two_loop_chain(n=16)
        # a "transform" that changes the constant is caught
        text = render(p).replace("* 2)", "* 3)")
        from repro.lang import parse

        broken = parse(text)
        with pytest.raises(VerificationError):
            verify_equivalent(p, broken)

    def test_detects_missing_output(self):
        p = two_loop_chain(n=16)
        from dataclasses import replace

        stripped = replace(p, scalars=tuple(
            type(s)(s.name, s.dtype, False, s.initial) for s in p.scalars
        ))
        with pytest.raises(VerificationError, match="output scalars"):
            verify_equivalent(p, stripped)

    def test_detects_crash(self):
        b = ProgramBuilder("bad", params={"N": 8})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i + 1], 1.0)  # out of bounds at runtime
        from tests.helpers import simple_stream_program

        with pytest.raises(VerificationError, match="run failed"):
            verify_equivalent(simple_stream_program(), b.build())

    def test_is_equivalent_bool(self):
        p = two_loop_chain(n=8)
        assert is_equivalent(p, p)


class TestPipeline:
    def test_full_chain(self):
        from repro.experiments.e12_pipeline import multi_stage_workload

        p = multi_stage_workload(32)
        result = optimize(p)
        assert "fusion" in result.applied_stages
        assert "store-elim" in result.applied_stages
        verify_equivalent(p, result.final)

    def test_traffic_monotonically_improves(self, tiny_machine):
        from repro.interp import execute
        from repro.machine import LayoutPolicy
        from repro.experiments.e12_pipeline import multi_stage_workload

        # Pad arrays apart: 4 KiB arrays on the tiny machine's 8-set L2
        # would otherwise alias set-for-set and fusing loops then *hurts*
        # (a genuine effect; the Figure 3 experiment studies it), which
        # would mask the pipeline's improvement being tested here.
        policy = LayoutPolicy(alignment=32, pad_bytes=96)
        p = multi_stage_workload(512)
        result = optimize(p)
        times = [execute(p, tiny_machine, layout_policy=policy).seconds]
        for stage in result.stages:
            if stage.applied:
                times.append(
                    execute(stage.program, tiny_machine, layout_policy=policy).seconds
                )
        assert all(b <= a * 1.001 for a, b in zip(times, times[1:]))
        assert times[-1] < times[0]

    def test_single_loop_no_fusion(self):
        from tests.helpers import simple_stream_program

        result = optimize(simple_stream_program())
        fusion = [s for s in result.stages if s.stage == "fusion"][0]
        assert not fusion.applied

    def test_describe(self):
        result = optimize(two_loop_chain(n=16))
        assert "pipeline" in result.describe()

    def test_stages_disable(self):
        p = two_loop_chain(n=16)
        result = optimize(p, fuse=False, reduce_storage=False, eliminate=False)
        assert result.final is p

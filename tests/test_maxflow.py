"""Max-flow tests: hand graphs, min-cut duality, and a cross-check against
networkx's independent implementation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FusionError
from repro.fusion.maxflow import FlowNetwork, max_flow


class TestBasics:
    def test_single_edge(self):
        r = max_flow({("s", "t"): 3.0}, "s", "t")
        assert r.value == 3.0
        assert r.cut_edges == {("s", "t")}
        assert r.source_side == {"s"}

    def test_two_paths(self):
        edges = {("s", "a"): 2, ("a", "t"): 2, ("s", "b"): 3, ("b", "t"): 1}
        r = max_flow(edges, "s", "t")
        assert r.value == 3

    def test_bottleneck(self):
        edges = {("s", "a"): 10, ("a", "b"): 1, ("b", "t"): 10}
        r = max_flow(edges, "s", "t")
        assert r.value == 1
        assert r.cut_edges == {("a", "b")}

    def test_classic_clrs(self):
        edges = {
            ("s", "v1"): 16, ("s", "v2"): 13,
            ("v1", "v3"): 12, ("v2", "v1"): 4, ("v2", "v4"): 14,
            ("v3", "v2"): 9, ("v3", "t"): 20,
            ("v4", "v3"): 7, ("v4", "t"): 4,
        }
        assert max_flow(edges, "s", "t").value == 23

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_edge("s", "a", 1)
        net.add_node("t")
        r = net.max_flow("s", "t")
        assert r.value == 0
        assert not r.cut_edges

    def test_parallel_edges_accumulate(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 1)
        net.add_edge("s", "t", 2)
        assert net.max_flow("s", "t").value == 3

    def test_infinite_capacity_mid_path(self):
        edges = {("s", "a"): 5, ("a", "t"): math.inf, ("s", "b"): math.inf, ("b", "t"): 2}
        r = max_flow(edges, "s", "t")
        assert r.value == 7

    def test_infinite_st_path_rejected(self):
        with pytest.raises(FusionError, match="infinite"):
            max_flow({("s", "t"): math.inf}, "s", "t")

    def test_validation(self):
        net = FlowNetwork()
        with pytest.raises(FusionError):
            net.add_edge("a", "a", 1)
        with pytest.raises(FusionError):
            net.add_edge("a", "b", -1)
        net.add_edge("a", "b", 1)
        with pytest.raises(FusionError):
            net.max_flow("a", "zzz")
        with pytest.raises(FusionError):
            net.max_flow("a", "a")

    def test_cut_separates(self):
        edges = {("s", "a"): 2, ("a", "t"): 1, ("s", "t"): 1}
        r = max_flow(edges, "s", "t")
        assert "t" not in r.source_side
        cut_weight = sum(edges[e] for e in r.cut_edges)
        assert cut_weight == r.value


# -- cross-check against networkx ---------------------------------------------

node_ids = st.integers(0, 7)


@settings(max_examples=80, deadline=None)
@given(
    edges=st.dictionaries(
        st.tuples(node_ids, node_ids).filter(lambda p: p[0] != p[1]),
        st.integers(1, 10),
        min_size=1,
        max_size=20,
    )
)
def test_against_networkx(edges):
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from([0, 7])
    for (u, v), c in edges.items():
        if g.has_edge(u, v):
            g[u][v]["capacity"] += c
        else:
            g.add_edge(u, v, capacity=c)
    want = nx.maximum_flow_value(g, 0, 7)
    got = max_flow({k: float(v) for k, v in edges.items()}, 0, 7)
    assert got.value == pytest.approx(want)
    # min-cut weight equals max flow (duality)
    cut_weight = sum(edges[e] for e in got.cut_edges)
    assert cut_weight == pytest.approx(want)

"""Differential + property suite for the multicore contention model.

The contended timing overlay (repro.machine.contention) must be a strict
*extension* of the paper's model, never a reinterpretation:

* at ``cores=1`` it reduces **bit-identically** to
  ``bandwidth_bound_time`` — asserted here over real simulated counters
  on every preset x paper workload, and over hypothesis-random counters;
* adding cores can only slow a weak-scaled workload down (the saturation
  curves are validated concave, so the contended total is monotonically
  non-decreasing in the core count);
* contention can never beat the bandwidth floor: no channel runs faster
  contended than a core running the same work alone;
* the analytic predictor prices the contended channel inside the same
  ±10% per-channel band it already guarantees for byte counts.

The last section property-tests ``overlap_time`` convergence (the
paper's "latency cannot be fully tolerated without infinite bandwidth")
and pins the ``cpu_utilization`` zero-work edge.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.contention import (
    CoreWork,
    collect_contention_telemetry,
    contended_balance,
    contended_bound_time,
    contended_time,
    machine_balance_at,
    resolve_cores,
    split_work,
)
from repro.machine.presets import (
    PRESETS,
    ddr_multicore,
    future_multicore,
    hbm_multicore,
)
from repro.machine.timing import (
    TimeBreakdown,
    bandwidth_bound_time,
    latency_bound_time,
    overlap_time,
)

SCALE = 128  # the experiments' default: tiny caches, fast traces

WORKLOADS = ("convolution", "dmxpy", "1w2r")


def _workload(name: str, spec):
    from repro.experiments.config import ExperimentConfig
    from repro.programs import convolution, dmxpy
    from repro.programs.kernels import make_kernel

    n = ExperimentConfig(scale=SCALE).stream_elements(spec)
    if name == "convolution":
        return convolution(n)
    if name == "dmxpy":
        return dmxpy(n, 16)
    return make_kernel(name, n)


@pytest.fixture(scope="module")
def simulated_counters():
    """(preset, workload) -> (spec, flops, register_bytes, downstream) from
    the real simulator — the shared input of the differential tests."""
    from repro.interp.executor import execute

    out = {}
    for preset, factory in PRESETS.items():
        spec = factory(SCALE)
        for wname in WORKLOADS:
            run = execute(_workload(wname, spec), spec, sim_cache=False)
            out[(preset, wname)] = (
                spec,
                run.counters.graduated_flops,
                run.counters.register_bytes,
                tuple(run.counters.downstream_bytes),
            )
    return out


# -- cores=1 differential: bit-identical to the paper's model ------------------


class TestCores1BitIdentity:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_simulated_counters(self, simulated_counters, preset, workload):
        spec, flops, reg, down = simulated_counters[(preset, workload)]
        base = bandwidth_bound_time(spec, flops, reg, down)
        cont = contended_time(spec, split_work(flops, reg, down, 1))
        # Bit-identity, not approx: n=1 must run the very same float ops.
        assert cont.flop_time == base.flop_time
        assert cont.channel_times == base.channel_times
        assert cont.total == base.total
        assert cont.bound == base.bound
        assert cont.cpu_utilization == base.cpu_utilization
        assert cont.saturation == (1.0,) * len(cont.channel_times)
        assert cont.per_core == (base,)

    def test_execute_cores1_has_no_overlay(self, simulated_counters):
        """cores=1 runs carry no contended breakdown: manifests stay
        bit-identical to the pre-contention baseline."""
        from repro.interp.executor import execute

        spec = ddr_multicore(SCALE)
        run = execute(_workload("1w2r", spec), spec, sim_cache=False, cores=1)
        assert run.contended is None
        assert run.effective_time is run.time

    def test_machine_balance_at_one_core_is_spec_balance(self):
        for factory in PRESETS.values():
            spec = factory(SCALE)
            assert machine_balance_at(spec, 1) == spec.balance
            assert contended_balance(spec, 1) == (1.0,) * len(spec.balance)


# -- weak-scaling properties over random counters ------------------------------

MULTICORE = (ddr_multicore, hbm_multicore, future_multicore)

counters_st = st.tuples(
    st.integers(min_value=0, max_value=10**12),  # flops
    st.integers(min_value=0, max_value=10**12),  # register bytes
    st.lists(
        st.integers(min_value=0, max_value=10**12), min_size=2, max_size=2
    ),  # downstream bytes (both multicore presets have two levels)
)


class TestWeakScaling:
    @given(factory=st.sampled_from(MULTICORE), counters=counters_st)
    def test_cores1_identity_on_random_counters(self, factory, counters):
        spec = factory()
        flops, reg, down = counters
        base = bandwidth_bound_time(spec, flops, reg, down)
        cont = contended_bound_time(spec, 1, flops, reg, down)
        assert cont.flop_time == base.flop_time
        assert cont.channel_times == base.channel_times
        assert cont.total == base.total

    @given(factory=st.sampled_from(MULTICORE), counters=counters_st)
    def test_total_monotone_in_cores(self, factory, counters):
        """Weak scaling: every core runs the same work, so adding a core
        can only contend — the total never improves."""
        spec = factory()
        flops, reg, down = counters
        work = CoreWork(flops, reg, tuple(down))
        totals = [
            contended_time(spec, (work,) * n).total
            for n in range(1, spec.cores + 1)
        ]
        assert all(a <= b + 1e-12 * max(1.0, b) for a, b in zip(totals, totals[1:]))

    @given(
        factory=st.sampled_from(MULTICORE),
        counters=counters_st,
        data=st.data(),
    )
    def test_bandwidth_floor_never_beaten(self, factory, counters, data):
        """No channel runs faster contended than a core running the same
        work alone at the full single-core bandwidth."""
        spec = factory()
        flops, reg, down = counters
        n = data.draw(st.integers(min_value=1, max_value=spec.cores))
        work = CoreWork(flops, reg, tuple(down))
        cont = contended_time(spec, (work,) * n)
        alone = bandwidth_bound_time(spec, flops, reg, down)
        for contended_t, alone_t in zip(cont.channel_times, alone.channel_times):
            assert contended_t >= alone_t - 1e-12 * max(1.0, alone_t)
        assert cont.total >= alone.total - 1e-12 * max(1.0, alone.total)
        for sat, gap in zip(cont.saturation, cont.balance_gap):
            assert 0.0 < sat <= 1.0
            assert gap >= 1.0

    @given(factory=st.sampled_from(MULTICORE))
    def test_balance_gap_monotone_in_cores(self, factory):
        spec = factory()
        for channel in range(len(spec.balance)):
            gaps = [
                contended_balance(spec, n)[channel]
                for n in range(1, spec.cores + 1)
            ]
            assert all(a <= b + 1e-12 for a, b in zip(gaps, gaps[1:]))

    def test_resolve_cores_clamps_with_telemetry(self):
        spec = ddr_multicore()
        with collect_contention_telemetry() as acc:
            assert resolve_cores(spec, spec.cores + 7) == spec.cores
        assert acc["fallback_runs"] == 1
        assert str(spec.cores + 7) in acc["fallback_reason"]
        assert resolve_cores(spec, 3) == 3


# -- analytic predictor prices the contended channel ---------------------------


class TestAnalyticContended:
    @pytest.mark.parametrize("factory", [ddr_multicore, hbm_multicore])
    def test_predicted_contended_total_in_band(self, factory):
        """predict-then-verify stays valid under --cores: the analytic
        contended total lands inside the ±10% per-channel byte band the
        predictor already guarantees (same arithmetic, predicted bytes)."""
        from repro.balance.analytic import predict_run
        from repro.interp.executor import execute

        spec = factory(SCALE)
        prog = _workload("convolution", spec)
        exact = execute(prog, spec, sim_cache=False, cores=spec.cores)
        predicted = predict_run(prog, spec, cores=spec.cores)
        assert exact.contended is not None and predicted.contended is not None
        assert predicted.contended.cores == exact.contended.cores == spec.cores
        err = abs(predicted.contended.total - exact.contended.total)
        assert err <= 0.10 * exact.contended.total
        # Saturation depends only on the spec, so it must agree exactly.
        assert predicted.contended.saturation == exact.contended.saturation


# -- overlap_time convergence + cpu_utilization edge (satellite) ---------------

overlap_counters_st = st.tuples(
    st.integers(min_value=0, max_value=10**9),  # flops
    st.integers(min_value=0, max_value=10**9),  # register bytes
    st.lists(st.integers(min_value=0, max_value=10**9), min_size=2, max_size=2),
    st.lists(st.integers(min_value=0, max_value=10**6), min_size=2, max_size=2),
)


def _tiny_spec():
    """The conftest tiny_machine, rebuilt inline (hypothesis forbids
    function-scoped fixtures inside @given; the spec is immutable so
    sharing one instance is safe)."""
    from repro.machine import CacheGeometry, CacheLevelSpec, LayoutPolicy, MachineSpec

    return MachineSpec(
        name="Tiny",
        peak_flops=100e6,
        register_bandwidth=400e6,
        cache_levels=(
            CacheLevelSpec("L1", CacheGeometry(128, 32, 2), 400e6, 10e-9),
            CacheLevelSpec("L2", CacheGeometry(1024, 64, 2), 100e6, 100e-9),
        ),
        default_layout=LayoutPolicy(alignment=32, pad_bytes=0),
    )


class TestOverlapConvergence:
    @given(counters=overlap_counters_st)
    @settings(max_examples=50)
    def test_converges_to_bandwidth_bound_from_above(self, counters):
        """As outstanding -> infinity, latency is amortized away and only
        the bandwidth floor remains — approached from above, never crossed
        (the paper's "latency cannot be fully tolerated without infinite
        bandwidth")."""
        spec = _tiny_spec()
        flops, reg, down, misses = counters
        floor = bandwidth_bound_time(spec, flops, reg, down).total
        lat = latency_bound_time(spec, flops, misses)
        cpu = flops / spec.peak_flops
        previous = float("inf")
        for outstanding in (1, 2, 4, 16, 256, 1 << 20):
            t = overlap_time(spec, flops, reg, down, misses, outstanding)
            assert t >= floor  # the floor is never beaten
            assert t <= previous + 1e-12 * max(1.0, previous)  # monotone
            previous = t
        # Convergence rate: the gap above the bandwidth bound shrinks as
        # (residual latency) / outstanding, so at 2**20 it is negligible.
        assert previous - floor <= (lat - cpu) / (1 << 20) + 1e-15

    def test_cpu_utilization_zero_work(self):
        """A run with no flops and no traffic uses none of the CPU."""
        empty = TimeBreakdown("m", 0.0, (0.0, 0.0), ("reg", "mem"))
        assert empty.total == 0.0
        assert empty.cpu_utilization == 0.0

    def test_cpu_utilization_flop_bound_is_one(self):
        b = TimeBreakdown("m", 2.0, (1.0, 0.5), ("reg", "mem"))
        assert b.cpu_utilization == 1.0

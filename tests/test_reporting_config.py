"""Tests for the report tables, experiment config, and remaining helpers."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import Table, fmt


class TestFmt:
    def test_float_rounding(self):
        assert fmt(3.14159) == "3.14"
        assert fmt(3.14159, digits=3) == "3.142"

    def test_zero_and_large(self):
        assert fmt(0.0) == "0"
        assert fmt(1234567.0) == "1,234,567"

    def test_non_float_passthrough(self):
        assert fmt("abc") == "abc"
        assert fmt(42) == "42"


class TestTable:
    def test_render_alignment(self):
        t = Table("title", ("name", "value"))
        t.add("alpha", 1.5)
        t.add("much_longer_name", 123456.0)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "title"
        assert lines[1] == "====="
        assert all(len(line) == len(lines[2]) for line in lines[2:4])

    def test_wrong_arity(self):
        t = Table("t", ("a", "b"))
        with pytest.raises(ValueError):
            t.add(1)

    def test_note(self):
        t = Table("t", ("a",))
        t.add(1)
        t.note = "hello"
        assert "note: hello" in t.render()

    def test_numeric_right_aligned(self):
        t = Table("t", ("name", "v"))
        t.add("x", 1.0)
        t.add("yy", 100.0)
        lines = t.render().splitlines()
        assert lines[-1].endswith("100.00")
        assert lines[-2].rstrip().endswith("1.00")


class TestExperimentConfig:
    def test_default_machines(self):
        cfg = ExperimentConfig()
        assert cfg.origin.name.startswith("Origin2000/")
        assert cfg.exemplar.name.startswith("Exemplar/")

    def test_stream_elements_scale(self):
        big = ExperimentConfig(scale=64).stream_elements()
        small = ExperimentConfig(scale=128).stream_elements()
        assert big == 2 * small

    def test_stream_elements_exceed_cache(self):
        cfg = ExperimentConfig()
        last = cfg.origin.cache_levels[-1].geometry.size_bytes
        assert cfg.stream_elements() * 8 >= cfg.array_cache_factor * last

    def test_grid_side_multiple_of_30(self):
        for scale in (64, 128, 256):
            side = ExperimentConfig(scale=scale).grid_side()
            assert side % 30 == 0
            assert side >= 120

    def test_mm_side_divisible_by_tiles(self):
        side = ExperimentConfig().mm_side()
        assert side % 30 == 0 or side % 10 == 0

    def test_fft_elements_power_of_two(self):
        n = ExperimentConfig().fft_elements()
        assert n & (n - 1) == 0

    def test_exemplar_kernel_spacing_is_conflict_period_five(self):
        cfg = ExperimentConfig()
        cache = cfg.exemplar.cache_levels[-1].geometry.size_bytes
        spacing = cfg.exemplar_kernel_elements() * 8
        assert (5 * spacing) % cache == 0
        assert spacing % cache != 0


class TestMemoryBytesEstimate:
    def test_estimate(self):
        from repro.fusion import FusionGraph, Partitioning, memory_bytes_estimate

        g = FusionGraph.build([{"a", "b"}, {"b"}])
        sizes = {"a": 100, "b": 10}
        singles = Partitioning.singletons(2)
        fused = Partitioning.of([{0, 1}])
        assert memory_bytes_estimate(g, singles, sizes) == 100 + 10 + 10
        assert memory_bytes_estimate(g, fused, sizes) == 110


class TestCountLeafStatements:
    def test_counts(self):
        from repro.lang.analysis import count_leaf_statements
        from repro.programs import fig6_fused

        loop = fig6_fused(8).body[1]
        # read, f-assign, then-branch sum, else-branch g-assign + sum
        assert count_leaf_statements(loop) == 5


class TestPresetRegistry:
    def test_presets_callable(self):
        from repro.machine import PRESETS

        for name, factory in PRESETS.items():
            spec = factory(128)
            assert spec.peak_flops > 0, name

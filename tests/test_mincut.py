"""Hypergraph minimal-cut (Figure 5 algorithm) tests with brute-force
cross-checks."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FusionError
from repro.fusion.hypergraph import Hyperedge, Hypergraph
from repro.fusion.mincut import minimal_hyperedge_cut


def hg(n, *edges, weights=None):
    return Hypergraph(
        n,
        tuple(
            Hyperedge(f"e{i}", frozenset(m), (weights or {}).get(i, 1.0))
            for i, m in enumerate(edges)
        ),
    )


def brute_force_cut(h: Hypergraph, s: int, t: int) -> float:
    """Minimal total weight over all hyperedge subsets disconnecting s,t."""
    best = None
    names = [e.name for e in h.edges]
    for r in range(len(names) + 1):
        for combo in itertools.combinations(names, r):
            if not h.connected(s, t, frozenset(combo)):
                weight = sum(h.edge(n).weight for n in combo)
                best = weight if best is None else min(best, weight)
    assert best is not None
    return best


class TestHypergraph:
    def test_component(self):
        h = hg(4, {0, 1}, {1, 2})
        assert h.component(0) == {0, 1, 2}
        assert h.component(3) == {3}

    def test_component_excluding(self):
        h = hg(4, {0, 1}, {1, 2})
        assert h.component(0, frozenset({"e1"})) == {0, 1}

    def test_connected(self):
        h = hg(3, {0, 1, 2})
        assert h.connected(0, 2)
        assert not h.connected(0, 2, frozenset({"e0"}))

    def test_from_fusion_graph(self):
        from repro.fusion import FusionGraph

        g = FusionGraph.build([{"A", "B"}, {"B"}, {"C"}])
        h = Hypergraph.from_fusion_graph(g)
        names = {e.name: e.members for e in h.edges}
        assert names == {"A": {0}, "B": {0, 1}, "C": {2}}

    def test_validation(self):
        with pytest.raises(FusionError):
            Hyperedge("x", frozenset())
        with pytest.raises(FusionError):
            Hyperedge("x", frozenset({0}), weight=0)
        with pytest.raises(FusionError):
            Hypergraph(2, (Hyperedge("a", frozenset({5})),))
        with pytest.raises(FusionError):
            Hypergraph(2, (Hyperedge("a", frozenset({0})), Hyperedge("a", frozenset({1}))))


class TestMinimalCut:
    def test_single_edge(self):
        h = hg(2, {0, 1})
        cut = minimal_hyperedge_cut(h, 0, 1)
        assert cut.cut == {"e0"}
        assert cut.weight == 1.0
        assert cut.side_s == {0}

    def test_chain_cuts_once(self):
        h = hg(4, {0, 1}, {1, 2}, {2, 3})
        cut = minimal_hyperedge_cut(h, 0, 3)
        assert len(cut.cut) == 1

    def test_parallel_paths_need_two(self):
        h = hg(4, {0, 1}, {1, 3}, {0, 2}, {2, 3})
        cut = minimal_hyperedge_cut(h, 0, 3)
        assert cut.weight == 2.0

    def test_shared_hyperedge_counted_once(self):
        """One array shared by three loops: separating any pair cuts one
        hyperedge — the aggregation the edge-weighted model gets wrong."""
        h = hg(3, {0, 1, 2})
        cut = minimal_hyperedge_cut(h, 0, 2)
        assert cut.weight == 1.0

    def test_weights_respected(self):
        h = hg(3, {0, 1}, {1, 2}, weights={0: 5.0, 1: 1.0})
        cut = minimal_hyperedge_cut(h, 0, 2)
        assert cut.cut == {"e1"}

    def test_terminals_sharing_edge(self):
        h = hg(2, {0, 1}, {0, 1})
        cut = minimal_hyperedge_cut(h, 0, 1)
        assert cut.weight == 2.0  # both must be cut

    def test_disconnected_terminals(self):
        h = hg(4, {0, 1}, {2, 3})
        cut = minimal_hyperedge_cut(h, 0, 3)
        assert cut.weight == 0
        assert cut.side_s == {0, 1}
        assert 3 in cut.side_t

    def test_validation(self):
        h = hg(2, {0, 1})
        with pytest.raises(FusionError):
            minimal_hyperedge_cut(h, 0, 0)
        with pytest.raises(FusionError):
            minimal_hyperedge_cut(h, 0, 9)

    def test_figure4_hypergraph(self):
        """The paper's example as a raw hypergraph: cutting A separates
        loop 5 from the rest at cost 1."""
        edges = {
            "A": {0, 1, 2, 4},
            "B": {3, 5},
            "C": {3, 5},
            "D": {0, 1, 2, 3},
            "E": {0, 1, 2, 3},
            "F": {0, 1, 2, 3},
        }
        h = Hypergraph(
            6, tuple(Hyperedge(k, frozenset(v)) for k, v in sorted(edges.items()))
        )
        cut = minimal_hyperedge_cut(h, 4, 5)
        assert cut.cut == {"A"}
        assert cut.side_s == {4}


# -- brute-force cross-check --------------------------------------------------


@st.composite
def small_hypergraphs(draw):
    n = draw(st.integers(3, 6))
    n_edges = draw(st.integers(1, 7))
    edges = []
    for i in range(n_edges):
        size = draw(st.integers(2, min(4, n)))
        members = draw(
            st.sets(st.integers(0, n - 1), min_size=size, max_size=size)
        )
        edges.append(Hyperedge(f"e{i}", frozenset(members)))
    return Hypergraph(n, tuple(edges))


@settings(max_examples=60, deadline=None)
@given(small_hypergraphs())
def test_matches_brute_force(h):
    cut = minimal_hyperedge_cut(h, 0, h.n_nodes - 1)
    assert cut.weight == brute_force_cut(h, 0, h.n_nodes - 1)
    # the returned cut really disconnects the terminals
    assert not h.connected(0, h.n_nodes - 1, cut.cut)

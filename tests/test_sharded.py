"""Set-sharded parallel simulation: bit-identity vs serial, and the edges.

The sharded hierarchy's contract is absolute: partitioning an access
stream by set index and merging the per-shard counters must reproduce
the serial counters *bit-identically* — for every engine, every chunk
boundary, pow2 and non-pow2 shard counts, mixed line sizes, and flushes
in the middle of the stream.  A hierarchy that cannot be partitioned
exactly must fall back to serial (same numbers, telemetry says why),
and a worker that dies must surface as :class:`MachineError`, never as
a hang or a wrong answer.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.experiments.config import ExperimentConfig
from repro.machine.cache import CacheGeometry
from repro.machine.engine.sharded import (
    ShardedHierarchy,
    build_hierarchy,
    collect_shard_telemetry,
    configure_sharding,
    get_default_shards,
    plan_shards,
    summarize_shards,
)
from repro.machine.hierarchy import Hierarchy
from repro.machine.presets import origin2000
from repro.machine.spec import CacheLevelSpec, MachineSpec


@pytest.fixture(autouse=True)
def _serial_default():
    """No test may leak a process-wide shard default into the suite."""
    yield
    configure_sharding(1)


def machine_of(*geometries: CacheGeometry, name: str = "M") -> MachineSpec:
    return MachineSpec(
        name=name,
        peak_flops=100e6,
        register_bandwidth=1e9,
        cache_levels=tuple(
            CacheLevelSpec(f"L{i + 1}", geom, 1e9, 1e-8)
            for i, geom in enumerate(geometries)
        ),
    )


def random_trace(seed: int, n: int, footprint_lines: int, line: int):
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, footprint_lines, n) * (line // 4) * 4).astype(np.int64)
    writes = rng.random(n) < 0.3
    return addrs, writes


def assert_same_result(a, b) -> None:
    for sa, sb in zip(a.level_stats, b.level_stats):
        assert vars(sa) == vars(sb)
    assert a.downstream_bytes == b.downstream_bytes


def drive_both(spec, engine, shards, addrs, writes, chunk_size, mid_flush):
    """Run the same trace serially and sharded (with a flush and a
    mid-stream counter snapshot between two halves) and demand equality
    at both observation points."""
    serial = Hierarchy.from_spec(spec, engine)
    sharded = build_hierarchy(spec, engine, chunk_size=chunk_size, shards=shards)
    assert isinstance(sharded, ShardedHierarchy), "case must be feasible"
    try:
        half = len(addrs) // 2
        for h in (serial, sharded):
            h.run_trace(addrs[:half], writes[:half])
            if mid_flush:
                h.flush()
        assert_same_result(serial.result(), sharded.result())  # mid-stream
        for h in (serial, sharded):
            h.run_trace(addrs[half:], writes[half:])
            h.flush()
        assert_same_result(serial.result(), sharded.result())
    finally:
        sharded.close()


# -- planning ------------------------------------------------------------------


class TestPlanning:
    def test_one_shard_is_always_serial(self):
        spec = origin2000(32)
        caches = spec.build_caches("auto")
        plan = plan_shards(caches, 1)
        assert (plan.shards, plan.reason) == (1, None)
        assert isinstance(build_hierarchy(spec, shards=1), Hierarchy)
        assert not isinstance(build_hierarchy(spec, shards=1), ShardedHierarchy)

    def test_origin2000_nesting(self):
        # scale 32: L1 has 16 sets of 32B lines, L2 1024 sets of 128B
        # lines -> L_max = 128, so L1 admits at most 16/(128/32) = 4.
        caches = origin2000(32).build_caches("auto")
        assert plan_shards(caches, 2).shards == 2
        assert plan_shards(caches, 4).shards == 4
        plan = plan_shards(caches, 8)
        assert plan.shards == 1
        assert "8 shards" in plan.reason and "L1" in plan.reason

    def test_non_pow2_divisible_set_count(self):
        # 20 sets, one level: 2, 4, 5 shards are exact; 8 is not.
        caches = [machine_of(CacheGeometry(640, 32, 1)).build_caches("auto")[0]]
        for n in (2, 4, 5):
            assert plan_shards(caches, n).shards == n
        assert plan_shards(caches, 8).shards == 1

    def test_fully_associative_level_falls_back(self):
        # One set: no partition of set indices exists.
        caches = machine_of(CacheGeometry(512, 32, 16)).build_caches("auto")
        plan = plan_shards(caches, 2)
        assert plan.shards == 1 and "sets" in plan.reason

    def test_stack_engine_counts_as_one_set(self):
        # The stack-distance engine simulates full associativity (one
        # set), so a level it owns can never be sharded.
        caches = machine_of(CacheGeometry(512, 32, 16)).build_caches("stack")
        assert caches[0].engine == "stack"
        assert plan_shards(caches, 2).shards == 1

    def test_infeasible_build_falls_back_with_telemetry(self):
        spec = machine_of(CacheGeometry(512, 32, 16))
        with collect_shard_telemetry() as acc:
            h = build_hierarchy(spec, shards=4)
        assert not isinstance(h, ShardedHierarchy)
        summary = summarize_shards(acc)
        assert summary["requested"] == 4
        assert summary["effective"] == 1
        assert summary["fallback_runs"] == 1
        assert "sets" in summary["fallback_reason"]

    def test_shard_count_validation(self):
        with pytest.raises(MachineError):
            build_hierarchy(origin2000(32), shards=0)
        with pytest.raises(MachineError):
            configure_sharding(0)
        configure_sharding(3)
        assert get_default_shards() == 3


# -- differential bit-identity -------------------------------------------------


@st.composite
def shard_cases(draw):
    """A feasible sharded hierarchy plus a trace to drive it.

    Set counts are drawn as multiples of each level's exactness stride,
    so every generated case must shard — the fallback path has its own
    tests.  Shard counts cover both the pow2 bitmask and the general
    modulo partition key.
    """
    shards = draw(st.sampled_from([2, 3, 4, 5, 8]))
    line1 = draw(st.sampled_from([32, 64]))
    two_levels = draw(st.booleans())
    line2 = draw(st.sampled_from([line1, line1 * 2])) if two_levels else line1
    line_max = max(line1, line2)
    geoms = []
    a1 = draw(st.sampled_from([1, 2, 4]))
    n1 = shards * (line_max // line1) * draw(st.integers(1, 3))
    geoms.append(CacheGeometry(n1 * a1 * line1, line1, a1))
    if two_levels:
        a2 = draw(st.sampled_from([2, 4]))
        n2 = shards * draw(st.integers(2, 4))
        geoms.append(CacheGeometry(n2 * a2 * line2, line2, a2))
    engine = draw(st.sampled_from(["auto", "reference", "setassoc"]))
    chunk_size = draw(st.sampled_from([64, 257, 1 << 20]))
    mid_flush = draw(st.booleans())
    seed = draw(st.integers(0, 2**31))
    n = draw(st.integers(200, 1500))
    footprint = draw(st.integers(8, 40)) * geoms[-1].n_lines // 4
    return geoms, shards, engine, chunk_size, mid_flush, seed, n, footprint


class TestDifferential:
    @given(case=shard_cases())
    @settings(settings.get_profile("repro-default"))
    def test_sharded_matches_serial_bit_identically(self, case):
        geoms, shards, engine, chunk_size, mid_flush, seed, n, footprint = case
        spec = machine_of(*geoms)
        addrs, writes = random_trace(seed, n, max(footprint, 4), geoms[0].line_size)
        drive_both(spec, engine, shards, addrs, writes, chunk_size, mid_flush)

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("engine", ["auto", "reference"])
    def test_origin2000_preset(self, shards, engine):
        spec = origin2000(32)
        addrs, writes = random_trace(11, 20_000, 4096, 32)
        drive_both(spec, engine, shards, addrs, writes, 1 << 14, mid_flush=True)

    def test_direct_mapped_engine(self):
        # Single direct-mapped level, non-pow2 sets, 5 shards: the
        # modulo partition key against the direct engine's fast path.
        spec = machine_of(CacheGeometry(640, 32, 1))
        addrs, writes = random_trace(23, 5_000, 200, 32)
        drive_both(spec, "direct", 5, addrs, writes, 301, mid_flush=False)

    def test_reset_starts_cold_again(self):
        spec = origin2000(32)
        addrs, writes = random_trace(5, 3_000, 1024, 32)
        sharded = build_hierarchy(spec, "auto", shards=2)
        try:
            sharded.run_trace(addrs, writes)
            sharded.flush()
            first = sharded.result()
            sharded.reset()
            sharded.run_trace(addrs, writes)
            sharded.flush()
            second = sharded.result()
        finally:
            sharded.close()
        # reset drops contents and counters: the second cold run is a
        # bit-identical replay of the first
        assert_same_result(first, second)
        serial = Hierarchy.from_spec(spec, "auto")
        serial.run_trace(addrs, writes)
        serial.flush()
        assert_same_result(serial.result(), second)

    def test_reset_stats_keeps_contents(self):
        # Warmup-pass protocol: reset_stats zeroes counters but keeps
        # cache contents, so the next pass measures the steady state.
        spec = origin2000(32)
        addrs, writes = random_trace(7, 3_000, 256, 32)

        def steady(h):
            h.run_trace(addrs, writes)
            h.reset_stats()
            h.run_trace(addrs, writes)
            h.flush()
            return h.result()

        serial = steady(Hierarchy.from_spec(spec, "auto"))
        sharded_h = build_hierarchy(spec, "auto", shards=4)
        try:
            sharded = steady(sharded_h)
        finally:
            sharded_h.close()
        assert_same_result(serial, sharded)
        # the warm pass must actually be warmer than a cold one
        cold = Hierarchy.from_spec(spec, "auto")
        cold.run_trace(addrs, writes)
        cold.flush()
        assert serial.level_stats[0].misses < cold.result().level_stats[0].misses


# -- telemetry -----------------------------------------------------------------


class TestTelemetry:
    def test_run_telemetry_shape(self):
        spec = origin2000(32)
        addrs, writes = random_trace(3, 8_000, 2048, 32)
        with collect_shard_telemetry() as acc:
            h = build_hierarchy(spec, "auto", shards=4)
            try:
                h.run_trace(addrs, writes)
                h.flush()
                h.result()
            finally:
                h.close()
        summary = summarize_shards(acc)
        assert summary["requested"] == summary["effective"] == 4
        assert summary["runs"] == 1
        workers = summary["workers"]
        assert [w["shard"] for w in workers] == [0, 1, 2, 3]
        assert sum(w["accesses"] for w in workers) == len(addrs)
        assert all(w["busy_s"] >= 0 for w in workers)
        assert summary["imbalance"] is None or summary["imbalance"] >= 1.0

    def test_repeated_result_calls_do_not_double_count(self):
        spec = origin2000(32)
        addrs, writes = random_trace(9, 4_000, 1024, 32)
        with collect_shard_telemetry() as acc:
            h = build_hierarchy(spec, "auto", shards=2)
            try:
                h.run_trace(addrs, writes)
                h.flush()
                first = h.result()
                again = h.result()  # same snapshot, no new work
            finally:
                h.close()
        assert_same_result(first, again)
        summary = summarize_shards(acc)
        # the delta-encoded replay attributes each access exactly once
        assert sum(w["accesses"] for w in summary["workers"]) == len(addrs)

    def test_no_telemetry_outside_collector(self):
        # Recording into zero collectors is a no-op, not an error.
        spec = machine_of(CacheGeometry(640, 32, 1))
        h = build_hierarchy(spec, shards=2)
        try:
            addrs, writes = random_trace(1, 500, 50, 32)
            h.run_trace(addrs, writes)
            h.result()
        finally:
            h.close()


# -- worker lifecycle ----------------------------------------------------------


class TestWorkerLifecycle:
    def test_close_reaps_children(self):
        h = build_hierarchy(origin2000(32), shards=4)
        pids = [w.pid for w in h._workers]
        assert len(pids) == 4
        h.close()
        for pid in pids:
            with pytest.raises((ProcessLookupError, PermissionError)):
                os.kill(pid, 0)  # reaped: pid no longer ours

    def test_close_is_idempotent_and_final(self):
        h = build_hierarchy(origin2000(32), shards=2)
        h.close()
        h.close()
        addrs, writes = random_trace(2, 100, 50, 32)
        with pytest.raises(MachineError, match="closed"):
            h.run_trace(addrs, writes)
        with pytest.raises(MachineError, match="closed"):
            h.result()

    def test_killed_worker_surfaces_as_machine_error(self):
        h = build_hierarchy(origin2000(32), shards=2)
        try:
            victim = h._workers[0].pid
            os.kill(victim, signal.SIGKILL)
            os.waitpid(victim, 0)
            addrs, writes = random_trace(4, 2_000, 512, 32)
            with pytest.raises(MachineError, match="shard worker"):
                h.run_trace(addrs, writes)
                h.result()
        finally:
            h.close()

    def test_child_error_report_reaches_parent(self):
        # Protocol-level failure inside the child (not a kill): the
        # child ships the exception text, then dies; the parent's next
        # synchronization raises it.
        h = build_hierarchy(origin2000(32), shards=2)
        try:
            h._workers[0].conn.send(("bogus-command",))
            with pytest.raises(MachineError, match="bogus-command"):
                h.shard_results()
        finally:
            h.close()


# -- configuration and API plumbing -------------------------------------------


class TestConfigAndApi:
    def test_experiment_config_applies_default(self):
        cfg = ExperimentConfig(shards=3)
        assert cfg.to_json()["shards"] == 3
        assert ExperimentConfig.from_json(cfg.to_json()).shards == 3
        cfg.apply()
        assert get_default_shards() == 3

    def test_default_feeds_build_hierarchy(self):
        configure_sharding(2)
        h = build_hierarchy(origin2000(32))
        try:
            assert isinstance(h, ShardedHierarchy)
            assert h.plan.shards == 2
        finally:
            h.close()

    def test_api_simulate_is_bit_identical(self, two_loop_program):
        import repro

        spec = machine_of(
            CacheGeometry(640, 32, 1), name="TinyDM-sharded"
        )
        base = repro.simulate(two_loop_program, spec)
        sharded = repro.simulate(two_loop_program, spec, shards=4)
        assert sharded.run.counters == base.run.counters
        assert sharded.seconds == base.seconds

    def test_api_simulate_stream_composes_with_shards(self, two_loop_program):
        import repro

        spec = machine_of(CacheGeometry(640, 32, 1), name="TinyDM-sharded")
        base = repro.simulate(two_loop_program, spec)
        streamed = repro.simulate_stream(
            two_loop_program, spec, shards=5, chunk_accesses=256
        )
        assert streamed.run.counters == base.run.counters
        assert streamed.seconds == base.seconds

    def test_api_fallback_still_matches_serial(self, two_loop_program, tiny_machine):
        # tiny_machine's L1 (2 sets of 32B lines under a 64B L2) cannot
        # nest even 2 shards: the request must degrade to serial, not
        # change numbers or raise.
        import repro

        base = repro.simulate(two_loop_program, tiny_machine)
        requested = repro.simulate(two_loop_program, tiny_machine, shards=2)
        assert requested.run.counters == base.run.counters

    def test_executor_rejects_bad_shards(self, two_loop_program, tiny_machine):
        import repro
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            repro.simulate(two_loop_program, tiny_machine, shards=0)


@pytest.fixture
def two_loop_program():
    from repro.lang import ProgramBuilder

    b = ProgramBuilder("sharded-facade", params={"N": 512})
    res = b.array("res", "N")
    data = b.array("data", "N")
    total = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(res[i], res[i] + data[i])
    with b.loop("i", 0, "N") as i:
        b.assign(total, total + res[i])
    return b.build()

"""The experiment orchestrator: parallel == serial, graceful degradation,
structured results and run manifests."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.orchestrator import (
    ExperimentTask,
    OrchestratorOptions,
    RunStats,
    build_manifest,
    build_plan,
    comparable_manifest,
    run_battery,
    run_tasks,
    summary_table,
    write_manifest,
)
from repro.experiments.result import ExperimentResult, failed_result

TOOLS = Path(__file__).resolve().parent.parent / "tools"
SCHEMA = Path(__file__).resolve().parent.parent / "docs" / "result.schema.json"


# -- injected experiments (module level: importable after fork/spawn) ----------


def _ok_experiment(config):
    return ExperimentResult(
        experiment="fake_ok",
        title="Fake",
        headers=("k", "v"),
        rows=[["answer", 42]],
        config=config.to_json(),
    )


def _crash_experiment(config):
    raise RuntimeError("boom")


def _hang_experiment(config):
    time.sleep(60)


def _flaky_experiment(config):
    flag = Path(os.environ["REPRO_TEST_FLAKY_FLAG"])
    if not flag.exists():
        flag.write_text("crashed once")
        raise RuntimeError("first attempt fails")
    return _ok_experiment(config)


def _count_experiment(config):
    # Append-mode writes are atomic enough for the line counts these
    # tests assert (single writer at a time by construction).
    with Path(os.environ["REPRO_TEST_COUNT_FILE"]).open("a") as fh:
        fh.write("ran\n")
    return ExperimentResult(
        experiment="count",
        title="Count",
        headers=("k", "v"),
        rows=[["answer", 42]],
        config=config.to_json(),
    )


def _shard_spec():
    from repro.machine.presets import origin2000

    return origin2000(32)


def _shard_trace():
    import numpy as np

    rng = np.random.default_rng(77)
    addrs = (rng.integers(0, 2048, 6000) * 8).astype(np.int64)
    writes = rng.random(6000) < 0.3
    return addrs, writes


def _record_pids(pids):
    with Path(os.environ["REPRO_TEST_SHARD_PIDS"]).open("a") as fh:
        fh.writelines(f"{p}\n" for p in pids)


def _shard_crash_experiment(config):
    """First attempt: SIGKILL one shard worker mid-stream (the crash must
    surface, not hang or corrupt).  Second attempt: clean sharded run."""
    import signal

    from repro.machine.engine.sharded import ShardedHierarchy, build_hierarchy

    flag = Path(os.environ["REPRO_TEST_SHARD_FLAG"])
    h = build_hierarchy(_shard_spec(), "auto", shards=2)
    assert isinstance(h, ShardedHierarchy)
    _record_pids([w.pid for w in h._workers])
    addrs, writes = _shard_trace()
    try:
        h.run_trace(addrs[:3000], writes[:3000])
        h.shard_results()  # sync point: both workers alive and caught up
        if not flag.exists():
            flag.write_text("killed a shard")
            os.kill(h._workers[0].pid, signal.SIGKILL)
            h.run_trace(addrs[3000:], writes[3000:])
            h.result()  # must raise MachineError at the merge sync
            raise AssertionError("dead shard worker went unnoticed")
        h.run_trace(addrs[3000:], writes[3000:])
        h.flush()
        res = h.result()
    finally:
        h.close()
    return ExperimentResult(
        experiment="shard_crash",
        title="Sharded",
        headers=("k", "v"),
        rows=[["memory_bytes", res.memory_bytes]],
        config=config.to_json(),
    )


def _shard_hang_experiment(config):
    """Simulate with live shard workers and a fresh disk sim-cache entry,
    then wedge: the orchestrator's timeout kill must take the whole
    process tree down and leave no temp files behind."""
    from repro.machine.engine import simcache
    from repro.machine.engine.sharded import build_hierarchy

    h = build_hierarchy(_shard_spec(), "auto", shards=2)
    _record_pids([os.getpid()] + [w.pid for w in h._workers])
    addrs, writes = _shard_trace()
    h.run_trace(addrs, writes)
    res = h.result()  # partial per-shard results exist when the axe falls
    cache = simcache.get_sim_cache()
    cache.put("hangkey", simcache.SimulationResult(res, 1, 2, 3))
    time.sleep(60)


def _slow_ok_experiment(config):
    time.sleep(1.5)
    return _ok_experiment(config)


def _drain_trigger_experiment(config):
    from repro.experiments.orchestrator import request_drain

    request_drain()
    return _ok_experiment(config)


REGISTRY = {
    "ok": _ok_experiment,
    "boom": _crash_experiment,
    "hang": _hang_experiment,
    "flaky": _flaky_experiment,
    "count": _count_experiment,
    "slow_ok": _slow_ok_experiment,
    "drain_trigger": _drain_trigger_experiment,
    "shard_crash": _shard_crash_experiment,
    "shard_hang": _shard_hang_experiment,
}


def _tasks(*names):
    cfg = ExperimentConfig(sim_cache=False)
    return [ExperimentTask(n, cfg, n) for n in names]


class TestPlan:
    def test_single_scale(self):
        tasks = build_plan(["fig1", "fig5"], ExperimentConfig(), [64])
        assert [t.display() for t in tasks] == ["fig1", "fig5"]
        assert all(t.config.scale == 64 for t in tasks)

    def test_sweep_labels_and_order(self):
        tasks = build_plan(["fig1", "fig5"], ExperimentConfig(), [16, 32])
        assert [t.display() for t in tasks] == [
            "fig1@1/16",
            "fig5@1/16",
            "fig1@1/32",
            "fig5@1/32",
        ]

    def test_unknown_experiment_rejected(self):
        options = OrchestratorOptions(registry=REGISTRY)
        with pytest.raises(ReproError):
            options.resolve("nope")


class TestSchedulerDedup:
    """Identical in-flight tasks are answered by one execution."""

    def test_inline_duplicates_run_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_COUNT_FILE", str(tmp_path / "count"))
        stats = RunStats()
        results = list(
            run_tasks(
                _tasks("count", "count", "count"),
                OrchestratorOptions(registry=REGISTRY),
                stats,
            )
        )
        assert [r.ok for r in results] == [True, True, True]
        assert all(r.rows == results[0].rows for r in results)
        assert stats.dedup_hits == 2
        assert (tmp_path / "count").read_text().count("ran") == 1

    def test_pool_duplicates_join_inflight_worker(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_COUNT_FILE", str(tmp_path / "count"))
        stats = RunStats()
        results = list(
            run_tasks(
                _tasks("count", "count", "count"),
                OrchestratorOptions(jobs=3, registry=REGISTRY),
                stats,
            )
        )
        assert [r.ok for r in results] == [True, True, True]
        assert all(r.rows == results[0].rows for r in results)
        assert stats.dedup_hits == 2
        assert (tmp_path / "count").read_text().count("ran") == 1

    def test_distinct_configs_are_not_deduped(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_COUNT_FILE", str(tmp_path / "count"))
        tasks = [
            ExperimentTask("count", ExperimentConfig(scale=s, sim_cache=False), "count")
            for s in (16, 32)
        ]
        stats = RunStats()
        results = list(
            run_tasks(tasks, OrchestratorOptions(registry=REGISTRY), stats)
        )
        assert [r.ok for r in results] == [True, True]
        assert stats.dedup_hits == 0
        assert (tmp_path / "count").read_text().count("ran") == 2

    def test_failed_leader_fails_followers_in_pool(self, monkeypatch):
        stats = RunStats()
        results = list(
            run_tasks(
                _tasks("boom", "boom"),
                OrchestratorOptions(jobs=2, retries=0, registry=REGISTRY),
                stats,
            )
        )
        assert [r.status for r in results] == ["failed", "failed"]
        assert stats.dedup_hits == 1

    def test_manifest_records_dedup_hits(self):
        manifest = build_manifest([], dedup_hits=3)
        assert manifest["dedup_hits"] == 3
        assert build_manifest([])["dedup_hits"] == 0


class TestGracefulDegradation:
    def test_inline_crash_is_recorded_not_raised(self):
        options = OrchestratorOptions(jobs=1, retries=1, registry=REGISTRY)
        results = list(run_tasks(_tasks("boom", "ok"), options))
        assert [r.status for r in results] == ["failed", "ok"]
        assert results[0].attempts == 2
        assert "boom" in results[0].error
        assert results[1].rows == [["answer", 42]]

    def test_pool_crash_is_recorded_not_raised(self):
        options = OrchestratorOptions(jobs=2, retries=1, registry=REGISTRY)
        results = list(run_tasks(_tasks("boom", "ok"), options))
        assert [r.status for r in results] == ["failed", "ok"]
        assert results[0].attempts == 2

    def test_pool_timeout_terminates_worker(self):
        options = OrchestratorOptions(
            jobs=2, timeout=1.0, retries=0, registry=REGISTRY
        )
        start = time.monotonic()
        results = list(run_tasks(_tasks("hang", "ok"), options))
        assert time.monotonic() - start < 30
        assert [r.status for r in results] == ["timeout", "ok"]
        assert "timed out" in results[0].error

    def test_pool_retry_succeeds_second_attempt(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_FLAG", str(tmp_path / "flag"))
        options = OrchestratorOptions(jobs=2, retries=1, registry=REGISTRY)
        results = list(run_tasks(_tasks("flaky"), options))
        assert results[0].status == "ok"
        assert results[0].attempts == 2

    def test_results_come_back_in_plan_order(self):
        options = OrchestratorOptions(jobs=3, timeout=5.0, retries=0, registry=REGISTRY)
        results = list(run_tasks(_tasks("ok", "boom", "ok"), options))
        assert [r.status for r in results] == ["ok", "failed", "ok"]


class TestDrain:
    """SIGTERM drain: in-flight experiments finish, pending ones are
    cancelled (not abandoned), and the manifest still validates."""

    def test_pool_drain_finishes_inflight_cancels_pending(self):
        from repro.experiments.orchestrator import request_drain, reset_drain

        # Distinct configs so the scheduler does not dedup the two slow
        # tasks into one execution: both must be genuinely in flight.
        tasks = [
            ExperimentTask(name, ExperimentConfig(scale=scale, sim_cache=False), name)
            for name, scale in (("slow_ok", 64), ("slow_ok", 65), ("ok", 66))
        ]
        options = OrchestratorOptions(jobs=2, timeout=60, retries=0, registry=REGISTRY)
        timer = threading.Timer(0.3, request_drain)
        timer.start()
        try:
            results = list(run_tasks(tasks, options))
        finally:
            timer.cancel()
            reset_drain()
        assert [r.status for r in results] == ["ok", "ok", "cancelled"]
        assert "drained" in results[2].error

    def test_inline_drain_cancels_the_rest(self):
        from repro.experiments.orchestrator import reset_drain

        options = OrchestratorOptions(jobs=1, retries=0, registry=REGISTRY)
        try:
            results = list(run_tasks(_tasks("drain_trigger", "ok", "ok"), options))
        finally:
            reset_drain()
        assert [r.status for r in results] == ["ok", "cancelled", "cancelled"]
        assert all("drained" in r.error for r in results[1:])

    def test_drained_manifest_validates_and_leaves_no_tmp(self, tmp_path):
        from repro.experiments.orchestrator import reset_drain

        options = OrchestratorOptions(jobs=1, retries=0, registry=REGISTRY)
        try:
            results = list(run_tasks(_tasks("drain_trigger", "ok"), options))
        finally:
            reset_drain()
        manifest = build_manifest(results, jobs=1, run_id="drained")
        sys.path.insert(0, str(TOOLS))
        try:
            from validate_manifest import validate
        finally:
            sys.path.remove(str(TOOLS))
        validate(manifest, json.loads(SCHEMA.read_text()))
        path = write_manifest(manifest, tmp_path)
        statuses = [r["status"] for r in json.loads(path.read_text())["results"]]
        assert statuses == ["ok", "cancelled"]
        assert not list(tmp_path.glob("*.tmp"))

    def test_runner_sigterm_drains_cleanly(self, tmp_path):
        """End to end: SIGTERM a running battery process.  The in-flight
        experiment finishes, the rest are cancelled, a valid manifest is
        written (no .tmp litter), and the exit code flags the gap."""
        results_dir = tmp_path / "results"
        code = textwrap.dedent(
            """
            import sys, time

            import repro.experiments.registry as registry
            from repro.experiments import runner
            from repro.experiments.result import ExperimentResult

            def _fast(config):
                return ExperimentResult(
                    experiment="fast", title="Fast", headers=("k", "v"),
                    rows=[["answer", 42]], config=config.to_json(),
                )

            def _slow(config):
                time.sleep(2.5)
                return _fast(config)

            registry.EXPERIMENTS.clear()
            registry.EXPERIMENTS.update({"slow": _slow, "fast": _fast})
            print("READY", flush=True)
            sys.exit(runner.main([
                "slow", "fast", "fast", "--jobs", "1", "--timeout", "60",
                "--retries", "0", "--no-sim-cache",
                "--results-dir", sys.argv[1],
            ]))
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", code, str(results_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            for line in proc.stdout:
                if "READY" in line:
                    break
            time.sleep(1.0)  # SIGTERM lands while "slow" is in flight
            proc.send_signal(signal.SIGTERM)
            out = proc.stdout.read()
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert rc == 1, out
        assert "drained on SIGTERM" in out
        manifests = list(results_dir.glob("run-*.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        statuses = [r["status"] for r in manifest["results"]]
        assert statuses == ["ok", "cancelled", "cancelled"]
        sys.path.insert(0, str(TOOLS))
        try:
            from validate_manifest import validate
        finally:
            sys.path.remove(str(TOOLS))
        validate(manifest, json.loads(SCHEMA.read_text()))
        assert not list(results_dir.glob("*.tmp"))


class TestShardedFailurePaths:
    """A sharded simulation dying inside an orchestrator worker: the
    failure must stay contained (retry -> clean manifest), and neither
    path may leak shard worker processes or cache temp files."""

    @staticmethod
    def _assert_all_gone(pid_file: Path, deadline_s: float = 15.0):
        pids = [int(line) for line in pid_file.read_text().split()]
        assert pids, "experiment never recorded its worker pids"
        deadline = time.monotonic() + deadline_s
        for pid in pids:
            while True:
                try:
                    os.kill(pid, 0)
                except (ProcessLookupError, PermissionError):
                    break  # reaped (or reused by another uid): not ours
                assert time.monotonic() < deadline, f"pid {pid} still alive"
                time.sleep(0.05)
        return pids

    def test_crash_mid_shard_retries_to_clean_manifest(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SHARD_FLAG", str(tmp_path / "flag"))
        monkeypatch.setenv("REPRO_TEST_SHARD_PIDS", str(tmp_path / "pids"))
        options = OrchestratorOptions(jobs=2, retries=1, registry=REGISTRY)
        results = list(run_tasks(_tasks("shard_crash"), options))
        assert results[0].status == "ok"
        assert results[0].attempts == 2  # first attempt lost a shard worker

        # the retried run's numbers equal an undisturbed serial run
        from repro.machine.hierarchy import Hierarchy

        serial = Hierarchy.from_spec(_shard_spec(), "auto")
        addrs, writes = _shard_trace()
        serial.run_trace(addrs, writes)
        serial.flush()
        assert results[0].rows == [["memory_bytes", serial.result().memory_bytes]]

        # 2 shard pids per attempt, all reaped: no zombies, no orphans
        pids = self._assert_all_gone(tmp_path / "pids")
        assert len(pids) == 4

        manifest = build_manifest(results, jobs=2, run_id="shardcrash")
        out = tmp_path / "results"
        write_manifest(manifest, out)
        assert json.loads((out / "run-shardcrash.json").read_text())["results"][0][
            "status"
        ] == "ok"
        assert not list(out.glob("*.tmp"))

    def test_timeout_with_partial_shards_reaps_process_tree(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_SHARD_PIDS", str(tmp_path / "pids"))
        cache_dir = tmp_path / "cache"
        cfg = ExperimentConfig(sim_cache=True, sim_cache_dir=str(cache_dir))
        tasks = [ExperimentTask("shard_hang", cfg, "shard_hang")]
        options = OrchestratorOptions(
            jobs=2, timeout=2.0, retries=0, registry=REGISTRY
        )
        start = time.monotonic()
        results = list(run_tasks(tasks, options))
        assert time.monotonic() - start < 30
        assert results[0].status == "timeout"

        # orchestrator worker + its 2 shard children, all gone
        pids = self._assert_all_gone(tmp_path / "pids")
        assert len(pids) == 3

        # the disk put before the hang landed atomically; the kill left
        # no .repro_cache temp files behind
        assert any(cache_dir.rglob("*")), "disk sim-cache entry missing"
        assert not list(cache_dir.rglob("*.tmp"))


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def manifests(self, tmp_path_factory):
        """The same battery serially and with 4 workers, sharing one
        on-disk sim cache (the second run also exercises warm reads)."""
        cache_dir = str(tmp_path_factory.mktemp("simcache"))
        cfg = ExperimentConfig(scale=256, sim_cache=True, sim_cache_dir=cache_dir)
        names = ["fig1", "fig3", "fig5"]
        serial = run_battery(names, cfg, jobs=1)
        parallel = run_battery(names, cfg, jobs=4)
        return (
            build_manifest(serial, jobs=1, run_id="serial"),
            build_manifest(parallel, jobs=4, run_id="parallel"),
        )

    def test_all_ok(self, manifests):
        for manifest in manifests:
            assert [r["status"] for r in manifest["results"]] == ["ok"] * 3

    def test_bit_identical_comparable_portion(self, manifests):
        serial, parallel = manifests
        assert comparable_manifest(serial) == comparable_manifest(parallel)

    def test_rendered_tables_identical(self, manifests):
        serial, parallel = manifests
        for a, b in zip(serial["results"], parallel["results"]):
            ta = ExperimentResult.from_json(a).table()
            tb = ExperimentResult.from_json(b).table()
            if not ta.volatile and not tb.volatile:
                assert ta.render() == tb.render()

    def test_manifest_validates_against_schema(self, manifests, tmp_path):
        sys.path.insert(0, str(TOOLS))
        try:
            from validate_manifest import validate
        finally:
            sys.path.remove(str(TOOLS))
        schema = json.loads(SCHEMA.read_text())
        for manifest in manifests:
            validate(manifest, schema)

    def test_write_manifest_atomic_and_readable(self, manifests, tmp_path):
        path = write_manifest(manifests[0], tmp_path)
        assert path == tmp_path / "run-serial.json"
        data = json.loads(path.read_text())
        from repro.experiments.result import SCHEMA_VERSION

        assert data["schema_version"] == SCHEMA_VERSION
        assert not list(tmp_path.glob("*.tmp"))


class TestResultRecord:
    def test_json_roundtrip_renders_identically(self):
        cfg = ExperimentConfig(sim_cache=False)
        result = run_battery(["fig4"], cfg)[0]
        clone = ExperimentResult.from_json(result.to_json())
        assert clone.table().render() == result.table().render()
        assert clone.comparable_json() == result.comparable_json()
        assert clone.detail is None  # detail never crosses serialization

    def test_comparable_json_masks_volatile_columns(self):
        r = ExperimentResult(
            experiment="x",
            headers=("name", "time (ms)"),
            rows=[["a", 1.23], ["b", 4.56]],
            volatile_columns=("time (ms)",),
            timings={"total": 9.0},
        )
        data = r.comparable_json()
        assert data["rows"] == [["a", None], ["b", None]]
        assert "timings" not in data and "attempts" not in data

    def test_failed_result_schema(self):
        r = failed_result("fig1", ExperimentConfig(), "boom", status="timeout", attempts=3)
        assert not r.ok
        assert "timeout" in r.describe_failure()
        data = ExperimentResult.from_json(r.to_json())
        assert data.status == "timeout" and data.attempts == 3

    def test_legacy_passthrough_warns(self):
        cfg = ExperimentConfig(sim_cache=False)
        result = run_battery(["fig4"], cfg)[0]
        with pytest.warns(DeprecationWarning, match="deprecated passthrough"):
            assert result.optimal_cost == 7

    def test_summary_table_lists_failures(self):
        ok = ExperimentResult(experiment="fig1", timings={"total": 0.1})
        bad = failed_result("e9", ExperimentConfig(), "boom", attempts=2)
        table = summary_table([ok, bad])
        assert "e9" in table.note and "boom" in table.note
        assert len(table.rows) == 2

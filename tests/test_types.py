"""Tests for dtypes and declarations."""

import pytest

from repro.errors import IRError
from repro.lang.affine import Affine
from repro.lang.types import ArrayDecl, DType, ScalarDecl, make_shape


class TestDType:
    def test_sizes(self):
        assert DType.FLOAT64.size == 8
        assert DType.FLOAT32.size == 4
        assert DType.INT64.size == 8

    def test_numpy_dtype(self):
        import numpy as np

        assert DType.FLOAT64.numpy_dtype == np.dtype("f8")
        assert DType.FLOAT32.numpy_dtype == np.dtype("f4")

    def test_str(self):
        assert str(DType.FLOAT64) == "float64"


class TestArrayDecl:
    def test_basic(self):
        d = ArrayDecl("a", make_shape("N"))
        assert d.rank == 1
        assert d.extents({"N": 10}) == (10,)
        assert d.element_count({"N": 10}) == 10
        assert d.size_bytes({"N": 10}) == 80

    def test_2d(self):
        d = ArrayDecl("m", make_shape("N", "M"))
        assert d.rank == 2
        assert d.size_bytes({"N": 3, "M": 4}) == 96

    def test_affine_extent(self):
        d = ArrayDecl("a", make_shape(Affine({"N": 1}, -1)))
        assert d.extents({"N": 5}) == (4,)

    def test_invalid_name(self):
        with pytest.raises(IRError):
            ArrayDecl("2bad", make_shape(4))

    def test_empty_shape(self):
        with pytest.raises(IRError):
            ArrayDecl("a", ())

    def test_nonpositive_extent(self):
        d = ArrayDecl("a", make_shape("N"))
        with pytest.raises(IRError):
            d.extents({"N": 0})

    def test_float32_bytes(self):
        d = ArrayDecl("a", make_shape(8), DType.FLOAT32)
        assert d.size_bytes({}) == 32

    def test_str(self):
        assert str(ArrayDecl("a", make_shape("N", 4))) == "a[N, 4]"


class TestScalarDecl:
    def test_basic(self):
        s = ScalarDecl("sum", output=True, initial=1.5)
        assert s.output
        assert s.initial == 1.5

    def test_invalid_name(self):
        with pytest.raises(IRError):
            ScalarDecl("bad name")

    def test_str(self):
        assert str(ScalarDecl("x", output=True)) == "x out"
        assert str(ScalarDecl("x")) == "x"


def test_make_shape_mixed():
    shape = make_shape("N", 4, Affine({"N": 1}, 1))
    assert shape[0] == Affine.var("N")
    assert shape[1] == Affine.const_of(4)
    assert shape[2] == Affine({"N": 1}, 1)

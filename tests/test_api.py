"""The stable ``repro.api`` facade and its lazy re-export from ``repro``."""

from __future__ import annotations

import pytest

import repro
from repro.errors import ReproError
from repro.lang import ProgramBuilder


@pytest.fixture
def two_loop_program():
    """Figure 7's pattern: update an array, then reduce it."""
    b = ProgramBuilder("facade", params={"N": 512})
    res = b.array("res", "N")
    data = b.array("data", "N")
    total = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(res[i], res[i] + data[i])
    with b.loop("i", 0, "N") as i:
        b.assign(total, total + res[i])
    return b.build()


class TestLazyExports:
    def test_top_level_names(self):
        for name in (
            "simulate",
            "optimize",
            "measure_balance",
            "run_experiment",
            "run_experiments",
        ):
            assert callable(getattr(repro, name))
        assert repro.ExperimentConfig is repro.api.ExperimentConfig

    def test_dir_lists_api(self):
        names = dir(repro)
        assert "simulate" in names and "OptimizationReport" in names

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing


class TestSimulate:
    def test_measures_the_program(self, two_loop_program, tiny_machine):
        sim = repro.simulate(two_loop_program, tiny_machine)
        assert sim.program == "facade"
        assert sim.machine == "Tiny"
        assert sim.seconds > 0
        assert sim.flops == 2 * 512
        assert len(sim.channel_bytes) == len(sim.channel_names) == 3
        assert sim.memory_bytes == sim.channel_bytes[-1]
        assert sim.effective_bandwidth == pytest.approx(
            sim.memory_bytes / sim.seconds
        )
        assert "Tiny" in sim.describe()

    def test_engine_and_params_pass_through(self, two_loop_program, tiny_machine):
        a = repro.simulate(two_loop_program, tiny_machine, engine="reference")
        b = repro.simulate(
            two_loop_program, tiny_machine, params={"N": 256}, engine="reference"
        )
        assert b.flops == 2 * 256 < a.flops


class TestSimulateBatch:
    def test_planned_batch_matches_pointwise(self, two_loop_program, tiny_machine):
        requests = [
            repro.SimRequest(two_loop_program, tiny_machine),
            repro.SimRequest(two_loop_program, tiny_machine, params={"N": 256}),
        ]
        batch = repro.simulate_batch(requests)
        solo = [
            repro.simulate(two_loop_program, tiny_machine),
            repro.simulate(two_loop_program, tiny_machine, params={"N": 256}),
        ]
        assert len(batch) == 2
        for got, ref in zip(batch, solo):
            assert got.program == ref.program
            assert got.machine == ref.machine
            assert got.flops == ref.flops
            assert got.channel_bytes == ref.channel_bytes
            assert got.seconds == ref.seconds

    def test_plan_false_is_the_pointwise_loop(self, two_loop_program, tiny_machine):
        requests = [repro.SimRequest(two_loop_program, tiny_machine)]
        a = repro.simulate_batch(requests, plan=True)
        b = repro.simulate_batch(requests, plan=False)
        assert a[0].channel_bytes == b[0].channel_bytes
        assert a[0].seconds == b[0].seconds


class TestMeasureBalance:
    def test_demand_supply_and_bound(self, two_loop_program, tiny_machine):
        report = repro.measure_balance(two_loop_program, tiny_machine)
        assert report.memory_balance > 0
        assert report.limiting_channel in tiny_machine.level_names
        assert 0 < report.cpu_utilization_bound <= 1
        assert len(report.machine_balance) == len(tiny_machine.level_names)
        assert report.required_memory_bandwidth > 0
        assert "B/flop" in report.describe()


class TestOptimize:
    def test_without_machine(self, two_loop_program):
        opt = repro.optimize(two_loop_program)
        assert opt.changed
        assert "fusion" in opt.applied_stages
        assert opt.before is None and opt.after is None
        assert opt.speedup is None and opt.memory_bytes_saved is None

    def test_with_machine_measures_speedup(self, two_loop_program, tiny_machine):
        opt = repro.optimize(two_loop_program, tiny_machine)
        assert opt.speedup is not None and opt.speedup > 1
        assert opt.memory_bytes_saved > 0
        assert "measured:" in opt.describe()


class TestExperiments:
    def test_run_experiment(self):
        result = repro.run_experiment(
            "fig4", repro.ExperimentConfig(sim_cache=False)
        )
        assert result.ok and result.experiment == "fig4"
        assert result.rows

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            repro.run_experiment("fig99")
        with pytest.raises(ReproError, match="unknown experiment"):
            repro.run_experiments(["fig4", "fig99"])

    def test_run_experiments_battery(self):
        results = repro.run_experiments(
            ["fig4", "e9"], repro.ExperimentConfig(sim_cache=False), jobs=2
        )
        assert [r.experiment for r in results] == ["fig4", "e9"]
        assert all(r.ok for r in results)


class TestDeprecations:
    def test_runner_registry_moved(self):
        from repro.experiments import runner

        with pytest.warns(DeprecationWarning, match="moved to"):
            registry = runner.EXPERIMENTS
        assert "fig1" in registry

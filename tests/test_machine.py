"""Tests for hierarchy, layout, machine specs/presets, and timing models."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine import (
    CacheGeometry,
    CacheLevelSpec,
    Hierarchy,
    LayoutPolicy,
    MachineSpec,
    bandwidth_bound_time,
    build_layout,
    exemplar,
    future_machine,
    latency_bound_time,
    origin2000,
    overlap_time,
)
from repro.machine.layout import ArrayPlacement

from tests.helpers import simple_stream_program


class TestHierarchy:
    def test_two_level_traffic(self, tiny_machine):
        h = Hierarchy.from_spec(tiny_machine)
        # Stream 512 bytes (64 doubles), read-only: 16 L1 lines, 8 L2 lines.
        addrs = np.arange(64, dtype=np.int64) * 8
        h.run_trace(addrs, np.zeros(64, dtype=bool))
        res = h.result()
        assert res.level_stats[0].misses == 16
        assert res.level_stats[1].misses == 8
        assert res.downstream_bytes[0] == 16 * 32
        assert res.downstream_bytes[1] == 8 * 64
        assert res.memory_bytes == 512

    def test_write_traffic_with_flush(self, tiny_machine):
        h = Hierarchy.from_spec(tiny_machine)
        addrs = np.arange(64, dtype=np.int64) * 8
        h.run_trace(addrs, np.ones(64, dtype=bool))
        h.flush()
        res = h.result()
        # every line written then flushed: read fill + writeback both levels
        assert res.downstream_bytes[1] == 2 * 512

    def test_l2_filters_l1_misses(self, tiny_machine):
        h = Hierarchy.from_spec(tiny_machine)
        addrs = np.tile(np.arange(32, dtype=np.int64) * 8, 4)  # 256B, fits L2 not L1
        h.run_trace(addrs, np.zeros(len(addrs), dtype=bool))
        res = h.result()
        assert res.level_stats[0].misses > res.level_stats[1].misses
        assert res.level_stats[1].misses == 4  # 256B / 64B lines, only cold

    def test_merged(self, tiny_machine):
        h = Hierarchy.from_spec(tiny_machine)
        addrs = np.arange(16, dtype=np.int64) * 8
        h.run_trace(addrs, np.zeros(16, dtype=bool))
        r1 = h.result()
        merged = r1.merged(r1)
        assert merged.level_stats[0].misses == 2 * r1.level_stats[0].misses
        assert merged.downstream_bytes[0] == 2 * r1.downstream_bytes[0]

    def test_requires_cache(self):
        with pytest.raises(ValueError):
            Hierarchy([])


class TestLayout:
    def test_sequential_placement(self):
        p = simple_stream_program(n=8)
        layout = build_layout(p, policy=LayoutPolicy(alignment=32, pad_bytes=0))
        a, b = layout["a"], layout["b"]
        assert a.base == 0
        assert b.base == 64  # 8 doubles
        assert layout.total_bytes == 128

    def test_padding_and_alignment(self):
        p = simple_stream_program(n=3)  # 24 bytes
        layout = build_layout(p, policy=LayoutPolicy(alignment=64, pad_bytes=10))
        assert layout["a"].base == 0
        # end=24, +10 pad = 34, aligned up to 64
        assert layout["b"].base == 64

    def test_element_address_row_major(self):
        from repro.programs import matmul

        p = matmul(4)
        layout = build_layout(p)
        base = layout["a"].base
        assert layout.element_address("a", (1, 2)) == base + (1 * 4 + 2) * 8

    def test_element_address_bounds(self):
        p = simple_stream_program(n=4)
        layout = build_layout(p)
        with pytest.raises(MachineError):
            layout.element_address("a", (4,))
        with pytest.raises(MachineError):
            layout.element_address("a", (1, 1))

    def test_vectorized_addresses(self):
        p = simple_stream_program(n=8)
        layout = build_layout(p)
        subs = (np.array([0, 3, 7]),)
        out = layout.element_addresses("a", subs)
        assert list(out) == [0, 24, 56]

    def test_no_overlap(self):
        from repro.programs import nas_sp

        layout = build_layout(nas_sp(8, 8))
        spans = sorted((pl.base, pl.end) for pl in layout.placements.values())
        for (b1, e1), (b2, e2) in zip(spans, spans[1:]):
            assert e1 <= b2

    def test_unknown_array(self):
        p = simple_stream_program()
        layout = build_layout(p)
        with pytest.raises(MachineError):
            layout["zzz"]

    def test_policy_validation(self):
        with pytest.raises(MachineError):
            LayoutPolicy(alignment=48)
        with pytest.raises(MachineError):
            LayoutPolicy(pad_bytes=-1)

    def test_strides(self):
        pl = ArrayPlacement("x", 0, (3, 4, 5), 8)
        assert pl.strides == (20, 5, 1)
        assert pl.size_bytes == 3 * 4 * 5 * 8


class TestSpecs:
    def test_level_names_two_cache(self):
        m = origin2000()
        assert m.level_names == ("L1-Reg", "L2-L1", "Mem-L2")

    def test_level_names_one_cache(self):
        m = exemplar()
        assert m.level_names == ("L1-Reg", "Mem-L1")

    def test_origin_balance_matches_paper(self):
        m = origin2000()
        balance = m.balance
        assert balance[0] == pytest.approx(4.0)
        assert balance[1] == pytest.approx(4.0)
        assert balance[2] == pytest.approx(0.8)

    def test_origin_memory_bandwidth_near_stream_value(self):
        assert origin2000().memory_bandwidth == pytest.approx(312e6)

    def test_exemplar_direct_mapped(self):
        m = exemplar()
        assert m.cache_levels[0].geometry.associativity == 1
        assert m.cache_levels[0].geometry.size_bytes % 5 == 0

    def test_scaled_preserves_balance(self):
        for scale in (4, 16, 64):
            m = origin2000(scale)
            assert m.balance == origin2000().balance
            assert m.cache_levels[0].geometry.size_bytes == 32 * 1024 // scale

    def test_scale_one_identity(self):
        assert origin2000(1).name == "Origin2000"

    def test_future_machine_worse_balance(self):
        base = origin2000()
        fut = future_machine(4.0)
        assert fut.balance[-1] == pytest.approx(base.balance[-1] / 4.0)
        assert fut.balance[0] == pytest.approx(base.balance[0])

    def test_validation(self):
        with pytest.raises(MachineError):
            MachineSpec("x", 0, 1e6, (CacheLevelSpec("L1", CacheGeometry(128, 32, 2), 1e6, 0),))
        with pytest.raises(MachineError):
            MachineSpec("x", 1e6, 1e6, ())
        with pytest.raises(MachineError):
            CacheLevelSpec("L1", CacheGeometry(128, 32, 2), -1, 0)

    def test_describe(self):
        text = origin2000().describe()
        assert "Origin2000" in text and "MB/s" in text


class TestTiming:
    def test_bandwidth_bound_picks_max(self, tiny_machine):
        t = bandwidth_bound_time(tiny_machine, flops=100, register_bytes=400, downstream_bytes=[400, 1000])
        # cpu 1us, reg 1us, L2-L1 1us, mem 10us
        assert t.total == pytest.approx(10e-6)
        assert t.bound == "Mem-L2"
        assert t.cpu_utilization == pytest.approx(0.1)

    def test_cpu_bound(self, tiny_machine):
        t = bandwidth_bound_time(tiny_machine, flops=10000, register_bytes=8, downstream_bytes=[8, 8])
        assert t.bound == "cpu"
        assert t.cpu_utilization == 1.0

    def test_wrong_channel_count(self, tiny_machine):
        with pytest.raises(MachineError):
            bandwidth_bound_time(tiny_machine, 1, 1, [1])

    def test_latency_model(self, tiny_machine):
        t = latency_bound_time(tiny_machine, flops=100, level_misses=[10, 5])
        expected = 100 / 100e6 + 10 * 10e-9 + 5 * 100e-9
        assert t == pytest.approx(expected)

    def test_overlap_never_beats_bandwidth(self, tiny_machine):
        bw = bandwidth_bound_time(tiny_machine, 100, 400, [400, 1000]).total
        for outstanding in (1, 2, 8, 64):
            t = overlap_time(tiny_machine, 100, 400, [400, 1000], [10, 5], outstanding)
            assert t >= bw

    def test_overlap_converges_to_bandwidth(self, tiny_machine):
        t = overlap_time(tiny_machine, 100, 400, [400, 1000], [1000, 1000], 10**9)
        bw = bandwidth_bound_time(tiny_machine, 100, 400, [400, 1000]).total
        assert t == pytest.approx(bw)

    def test_overlap_validation(self, tiny_machine):
        with pytest.raises(MachineError):
            overlap_time(tiny_machine, 1, 1, [1, 1], [0, 0], 0)

    def test_describe(self, tiny_machine):
        t = bandwidth_bound_time(tiny_machine, 100, 400, [400, 1000])
        assert "bound" in t.describe()

"""Tests for the static analyses: access sets, dependences, distances,
liveness, legality and static counts."""


from repro.lang import ProgramBuilder
from repro.lang.analysis import (
    access_sets,
    arrays_touched,
    build_dependence_graph,
    dead_after,
    fused_distance,
    fusion_constraints,
    fusion_preventing_pairs,
    headers_conformable,
    live_ranges,
    local_arrays,
    offset_profile,
    refs_of_array,
    scalar_access_sets,
    static_counts,
    unused_arrays,
)
from repro.lang.analysis.distance import loop_nest_vars

from tests.helpers import reduction_program, simple_stream_program, two_loop_chain


class TestAccessSets:
    def test_stream(self):
        p = simple_stream_program()
        sets = access_sets(p.body[0])
        assert sets.reads == {"a", "b"}
        assert sets.writes == {"a"}
        assert sets.touched == {"a", "b"}

    def test_reduction_scalars(self):
        p = reduction_program()
        s = scalar_access_sets(p.body[0])
        assert s.reads == {"sum"}
        assert s.writes == {"sum"}

    def test_external_read_is_write(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.read(a[i])
        p = b.build()
        sets = access_sets(p.body[0])
        assert sets.writes == {"a"}
        assert sets.reads == frozenset()

    def test_guard_branches_counted(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        c = b.array("c", "N")
        with b.loop("i", 0, "N") as i:
            with b.if_(i < 4):
                b.assign(a[i], c[i])
            with b.else_():
                b.assign(a[i], 0.0)
        sets = access_sets(b.build().body[0])
        assert sets.reads == {"c"}
        assert sets.writes == {"a"}

    def test_refs_of_array(self):
        p = simple_stream_program()
        reads, writes = refs_of_array(p.body[0], "a")
        assert len(reads) == 1 and len(writes) == 1

    def test_arrays_touched_matches_paper_counting(self):
        from repro.programs import fig4_program

        p = fig4_program(8)
        counts = [len(arrays_touched(s)) for s in p.body]
        assert counts == [4, 4, 4, 5, 1, 2]  # paper: total 20 without fusion
        assert sum(counts) == 20


class TestDependences:
    def test_flow_dep(self):
        p = two_loop_chain()
        g = build_dependence_graph(p)
        kinds = {(e.src, e.dst, e.kind) for e in g}
        assert (0, 1, "flow") in kinds

    def test_anti_and_output(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        c = b.array("c", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(c[i], a[i])  # reads a
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)  # writes a -> anti
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 2.0)  # writes a again -> output
        g = build_dependence_graph(b.build())
        kinds = {(e.src, e.dst, e.kind) for e in g if not e.scalar}
        assert (0, 1, "anti") in kinds
        assert (1, 2, "output") in kinds

    def test_scalar_dep_marked(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N")
        c = b.array("c", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + a[i])
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + c[i])
        g = build_dependence_graph(b.build())
        assert any(e.scalar and e.kind == "flow" for e in g)

    def test_adjacency_helpers(self):
        p = two_loop_chain()
        g = build_dependence_graph(p)
        assert g.successors(0) == {1}
        assert g.predecessors(1) == {0}
        assert (0, 1) in g.pairs()

    def test_transitive_pairs(self):
        b = ProgramBuilder("p", params={"N": 8})
        x = b.array("x", "N")
        y = b.array("y", "N")
        z = b.array("z", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(y[i], x[i])
        with b.loop("i", 0, "N") as i:
            b.assign(z[i], y[i])
        with b.loop("i", 0, "N") as i:
            b.assign(z[i], z[i] * 2.0)
        g = build_dependence_graph(b.build())
        assert (0, 2) in g.transitive_pairs()


class TestDistance:
    def make_loop(self, write_off, read_off):
        b = ProgramBuilder("p", params={"N": 16})
        a = b.array("a", "N", output=True)
        c = b.array("c", "N", output=True)
        with b.loop("i", 1, b.sym("N") - 1) as i:
            b.assign(a[i + write_off], c[i] + 1.0)
            b.assign(c[i], a[i + read_off] * 0.5)
        return b.build().body[0]

    def test_offset_profile(self):
        loop = self.make_loop(0, -1)
        prof = offset_profile(loop, "a", "i", 0, frozenset({"i"}))
        assert prof.uniform
        assert prof.write_offsets == (0,)
        assert prof.read_offsets == (-1,)
        assert prof.max_flow_distance() == 1

    def test_nonuniform_coefficient(self):
        b = ProgramBuilder("p", params={"N": 16})
        a = b.array("a", (2, "N"), output=True)
        with b.loop("i", 0, 8) as i:
            b.assign(a[0, i * 2], 1.0)
        prof = offset_profile(b.build().body[0], "a", "i", 1, frozenset({"i"}))
        assert not prof.uniform

    def test_fused_distance_flow(self):
        b = ProgramBuilder("p", params={"N": 16})
        a = b.array("a", "N")
        c = b.array("c", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        with b.loop("j", 1, "N") as j:
            b.assign(c[j], a[j - 1])
        p = b.build()
        # write a[i], read a[j-1]: kw=0, kr=-1 -> distance +1 (legal)
        d = fused_distance(p.body[0], p.body[1], "a", "i", "j")
        assert d == 1

    def test_fused_distance_negative(self):
        b = ProgramBuilder("p", params={"N": 16})
        a = b.array("a", "N")
        c = b.array("c", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        with b.loop("j", 0, b.sym("N") - 1) as j:
            b.assign(c[j], a[j + 1])
        p = b.build()
        d = fused_distance(p.body[0], p.body[1], "a", "i", "j")
        assert d == -1

    def test_fused_distance_anti(self):
        b = ProgramBuilder("p", params={"N": 16})
        a = b.array("a", "N", output=True)
        c = b.array("c", "N", output=True)
        with b.loop("i", 0, b.sym("N") - 1) as i:
            b.assign(c[i], a[i + 1])  # reads a ahead
        with b.loop("j", 0, "N") as j:
            b.assign(a[j], 0.0)  # overwrites
        p = b.build()
        # read a[i+1] then write a[j]: kr=1, kw=0 -> distance 1-0 = 1 legal?
        # the read of element e happens at t=e-1, the write at t=e: ok.
        d = fused_distance(p.body[0], p.body[1], "a", "i", "j")
        assert d == 1

    def test_loop_nest_vars(self):
        from repro.programs import matmul

        loop = matmul(6).body[0]
        assert loop_nest_vars(loop) == {"i", "j", "k"}


class TestLiveness:
    def test_live_ranges(self):
        p = two_loop_chain()
        lr = live_ranges(p)
        assert lr["tmp"].writes == (0,)
        assert lr["tmp"].reads == (1,)
        assert lr["tmp"].last_access == 1

    def test_dead_after(self):
        p = two_loop_chain()
        assert not dead_after(p, "tmp", 0)  # read later
        assert dead_after(p, "tmp", 1)
        assert dead_after(p, "src", 1)

    def test_output_never_dead(self):
        p = simple_stream_program()
        assert not dead_after(p, "a", 0)

    def test_local_arrays(self):
        b = ProgramBuilder("p", params={"N": 8})
        t = b.array("t", "N")
        out = b.array("out", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(t[i], 1.0)
            b.assign(out[i], t[i] * 2.0)
        assert local_arrays(b.build()) == {"t"}

    def test_unused_arrays(self):
        b = ProgramBuilder("p", params={"N": 8})
        b.array("ghost", "N")
        s = b.scalar("s", output=True)
        b.assign(s, 1.0)
        assert unused_arrays(b.build()) == {"ghost"}


class TestLegality:
    def test_conformable(self):
        p = two_loop_chain()
        l0, l1 = p.top_level_loops()
        assert headers_conformable(l0, l1)

    def test_nonconformable_prevented(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        with b.loop("j", 1, "N") as j:
            b.assign(a[j], a[j] + 1.0)
        assert (0, 1) in fusion_preventing_pairs(b.build())

    def test_negative_distance_prevented(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", ("N",))
        c = b.array("c", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 2.0)
        with b.loop("j", 0, "N") as j:
            with b.if_(j <= b.sym("N") - 2):
                b.assign(c[j], a[j + 1])
        assert (0, 1) in fusion_preventing_pairs(b.build())

    def test_clean_pair_not_prevented(self):
        p = two_loop_chain()
        assert fusion_preventing_pairs(p) == frozenset()

    def test_non_loop_statement_prevented(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        s = b.scalar("s", output=True)
        b.assign(s, 0.0)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        assert (0, 1) in fusion_preventing_pairs(b.build())

    def test_scalar_reduction_not_prevented(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N")
        c = b.array("c", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + a[i])
        with b.loop("i2", 0, "N") as i:
            b.assign(s, s + c[i])
        assert fusion_preventing_pairs(b.build()) == frozenset()

    def test_constraints_bundle(self):
        p = two_loop_chain()
        c = fusion_constraints(p)
        assert c.n_nodes == 2
        assert c.node_arrays[0] == {"src", "tmp"}
        assert not c.prevented(0, 1)


class TestStaticCounts:
    def test_stream(self):
        p = simple_stream_program(n=16)
        counts = static_counts(p)
        assert counts.flops == 16
        assert counts.array_loads == 32
        assert counts.array_stores == 16

    def test_matches_trace_on_guard_free(self):
        from repro.programs import convolution, matmul
        from repro.trace import generate_trace

        for prog in (simple_stream_program(n=32), convolution(32), matmul(8)):
            st = static_counts(prog)
            tr = generate_trace(prog)
            assert st.flops == tr.flops
            assert st.array_loads == tr.loads
            assert st.array_stores == tr.stores

    def test_scaled_by_params(self):
        p = simple_stream_program(n=16)
        assert static_counts(p, {"N": 4}).flops == 4

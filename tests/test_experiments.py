"""End-to-end experiment tests: every headline claim of the paper, checked
against the reproduction's measured output."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    run_e9,
    run_e10,
    run_e11,
    run_e12,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig8,
)

CFG = ExperimentConfig(scale=128)


@pytest.fixture(scope="module")
def fig1():
    return run_fig1(CFG)


@pytest.fixture(scope="module")
def fig2(fig1):
    return run_fig2(CFG, fig1)


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(CFG)


class TestFig1:
    def test_all_programs_present(self, fig1):
        names = {b.program for b in fig1.balances}
        assert names == {
            "convolution", "dmxpy", "mm(-O2)", "mm(-O3)", "FFT", "NAS/SP", "Sweep3D",
        }

    def test_memory_demand_exceeds_machine(self, fig1):
        """Every application (except blocked mm) demands far more memory
        bandwidth than the machine's 0.8 B/flop."""
        machine_mem = fig1.machine.balance[-1]
        for b in fig1.balances:
            if b.program == "mm(-O3)":
                continue
            assert b.memory_balance > 3 * machine_mem, b.program

    def test_blocked_mm_collapses(self, fig1):
        o2 = fig1.by_name("mm(-O2)").memory_balance
        o3 = fig1.by_name("mm(-O3)").memory_balance
        assert o3 < o2 / 4  # paper: 5.9 -> 0.04; shape: large collapse
        # the paper's striking point: blocked mm is the ONLY program whose
        # demand fits under the machine's memory balance
        assert o3 < fig1.machine.balance[-1]

    def test_register_balance_positive_everywhere(self, fig1):
        for b in fig1.balances:
            assert all(x > 0 for x in b.bytes_per_flop)

    def test_machine_row(self, fig1):
        assert fig1.machine.balance == pytest.approx((4.0, 4.0, 0.8))

    def test_table_renders(self, fig1):
        text = fig1.table().render()
        assert "Origin2000" in text and "convolution" in text


class TestFig2:
    def test_memory_is_binding_everywhere(self, fig2):
        """The paper's core finding: the memory channel has the largest
        demand/supply ratio for every application."""
        for r in fig2.ratios:
            assert r.limiting_channel == "Mem-L2", r.program

    def test_ratio_range_matches_paper_band(self, fig2):
        """Paper: memory ratios 3.4-10.5; ours land in the same decade."""
        mems = [r.ratios[-1] for r in fig2.ratios]
        assert min(mems) > 3.0
        assert max(mems) < 20.0

    def test_cpu_utilization_mostly_idle(self, fig2):
        """'over 80% of CPU capacity is left unused'."""
        for r in fig2.ratios:
            assert r.cpu_utilization_bound < 0.25, r.program

    def test_needed_bandwidth_argument(self, fig2):
        """Paper: fixing the bottleneck needs 1.02-3.15 GB/s class memory
        bandwidth — ours lands in the same range (GB/s scale)."""
        from repro.balance import required_memory_bandwidth

        needs = [required_memory_bandwidth(r, fig2.machine) for r in fig2.ratios]
        assert all(1e9 < n < 6e9 for n in needs)

    def test_blocked_mm_excluded(self, fig2):
        assert all(r.program != "mm(-O3)" for r in fig2.ratios)


class TestFig3:
    def test_origin_flat(self, fig3):
        """'On Origin2000, the difference is within 20% among all kernels.'"""
        assert fig3.origin.spread() < 0.20

    def test_origin_saturates(self, fig3):
        for name, bw in fig3.origin.bandwidths.items():
            assert bw == pytest.approx(fig3.origin.machine.memory_bandwidth, rel=0.05), name

    def test_exemplar_3w6r_dip(self, fig3):
        """Footnote 3: the six-array kernel falls below the rest on the
        direct-mapped machine."""
        bws = fig3.exemplar.bandwidths
        others_min = min(bw for k, bw in bws.items() if k != "3w6r")
        assert bws["3w6r"] < 0.7 * others_min
        assert fig3.exemplar.spread(exclude=("3w6r",)) < 0.2

    def test_padding_ablation_fixes_dip(self, fig3):
        """Our extension: one line of padding removes the conflict, which
        confirms the paper's conjecture causally."""
        padded = fig3.exemplar_padded.bandwidths
        spread = fig3.exemplar_padded.spread()
        assert spread < 0.2
        assert padded["3w6r"] > 1.5 * fig3.exemplar.bandwidths["3w6r"]

    def test_table_lists_all_kernels(self, fig3):
        from repro.programs import KERNEL_NAMES

        text = fig3.table().render()
        for k in KERNEL_NAMES:
            assert k in text


class TestFig4:
    @pytest.fixture(scope="class")
    def fig4(self):
        return run_fig4(CFG)

    def test_paper_costs(self, fig4):
        assert fig4.no_fusion_cost == 20
        assert fig4.optimal_cost == 7
        assert fig4.edge_weighted_bandwidth_cost == 8
        assert fig4.edge_weighted_cross == 2
        assert fig4.optimal_edge_weight == 3

    def test_partitionings_match_paper(self, fig4):
        from repro.fusion import Partitioning

        assert fig4.optimal == Partitioning.of([{4}, {0, 1, 2, 3, 5}])
        assert fig4.edge_weighted == Partitioning.of([{0, 1, 2, 3, 4}, {5}])

    def test_simulated_traffic_agrees_with_model(self, fig4):
        """Measured memory bytes rank exactly as the model's array loads:
        none > edge-weighted > bandwidth-minimal."""
        m = fig4.memory_bytes
        assert m["none"] > m["edge"] > m["bandwidth"]
        # ratios roughly proportional to the load counts 20 : 8 : 7
        assert m["none"] / m["bandwidth"] == pytest.approx(20 / 7, rel=0.25)


class TestFig5:
    def test_scaling_and_correctness(self):
        r = run_fig5(edge_counts=(8, 16, 32), node_counts=(16, 64, 256))
        # node sweep: constant structure, flat cut weight
        weights = {p.cut_weight for p in r.node_scaling}
        assert len(weights) == 1
        # edge sweep timings grow (polynomial in E), sanity only
        assert r.edge_scaling[-1].seconds >= r.edge_scaling[0].seconds
        assert "Figure 5" in r.table().render()

    def test_node_scaling_nearly_linear(self):
        r = run_fig5(edge_counts=(8,), node_counts=(16, 512))
        t_small = r.node_scaling[0].seconds
        t_large = r.node_scaling[-1].seconds
        # 32x the nodes must cost far less than 32x the time
        assert t_large < 8 * max(t_small, 1e-4)


class TestFig6:
    @pytest.fixture(scope="class")
    def fig6(self):
        return run_fig6(CFG)

    def test_storage_drop(self, fig6):
        n = fig6.n
        assert fig6.storage_bytes("original") == 2 * n * n * 8
        assert fig6.storage_bytes("optimized") == 2 * n * 8

    def test_traffic_drops_at_every_level(self, fig6):
        for level in range(3):
            orig = fig6.runs["original"].counters.channel_bytes[level]
            opt = fig6.runs["optimized"].counters.channel_bytes[level]
            assert opt < orig, level

    def test_fusion_already_helps(self, fig6):
        assert (
            fig6.runs["fused"].counters.memory_bytes
            < fig6.runs["original"].counters.memory_bytes
        )

    def test_optimized_runs_much_faster(self, fig6):
        assert fig6.runs["optimized"].seconds < fig6.runs["original"].seconds / 10


class TestFig8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run_fig8(CFG)

    def test_two_machines(self, fig8):
        assert len(fig8.runs) == 2

    def test_monotone_stage_times(self, fig8):
        for machine, runs in fig8.runs.items():
            secs = [r.seconds for r in runs]
            assert secs[0] > secs[1] > secs[2], machine

    def test_speedup_near_two(self, fig8):
        """Paper: 2.0x on Origin, 1.7x on Exemplar."""
        for machine in fig8.runs:
            assert fig8.speedup(machine) == pytest.approx(2.0, rel=0.2)

    def test_store_elim_touches_only_writebacks(self, fig8):
        """The defining property: memory *read* traffic is unchanged ('it
        does not affect the performance of memory reads at all'), while
        the writebacks disappear entirely. (Register traffic also drops:
        the forwarding scalar removes the redundant re-load of res[i].)"""
        for machine, (orig, fused, se) in fig8.runs.items():
            assert (
                se.counters.level_stats[-1].read_misses
                == fused.counters.level_stats[-1].read_misses
            )
            assert se.counters.level_stats[-1].writebacks == 0
            assert fused.counters.level_stats[-1].writebacks > 0

    def test_programs_produced_by_compiler(self, fig8):
        """The fused/eliminated stages come from the transformation passes
        (build_stages verifies them against the interpreter)."""
        names = [p.name for p in fig8.programs]
        assert names == ["fig7", "fig7_fused", "fig7_se"]


class TestE9:
    def test_reduction_agrees(self):
        r = run_e9(trials=5)
        assert r.all_equal
        assert "E9" in r.table().render()


class TestE10:
    @pytest.fixture(scope="class")
    def e10(self):
        return run_e10(CFG, tiles=(10, 30))

    def test_blocking_monotone_in_tile(self, e10):
        assert e10.memory_balance("blocked t=30") < e10.memory_balance("jki (-O2)")

    def test_scalar_replacement_cuts_register_traffic(self, e10):
        with_sr = [b for n, b, _ in e10.variants if n == "blocked t=30"][0]
        without = [b for n, b, _ in e10.variants if n == "blocked t=30 no-SR"][0]
        assert with_sr.bytes_per_flop[0] < without.bytes_per_flop[0]

    def test_blocked_is_faster(self, e10):
        runs = {n: r for n, _, r in e10.variants}
        assert runs["blocked t=30"].seconds < runs["jki (-O2)"].seconds


class TestE11:
    def test_five_of_seven(self):
        r = run_e11(CFG)
        assert r.saturated_count == 5
        util = {s.name: s.utilization for s in r.subroutines}
        assert util["y_solve"] < 0.84
        assert util["z_solve"] < 0.84
        assert util["compute_rhs"] >= 0.84


class TestE12:
    def test_stages_improve(self):
        r = run_e12(CFG)
        times = [run.seconds for _, run in r.runs]
        assert times[-1] < times[0]
        assert len(r.runs) >= 3
        assert "E12" in r.table().render()


class TestLadder:
    @pytest.fixture(scope="class")
    def small_ladder(self):
        """Shrink the ladder so pointwise-vs-planned comparison stays
        cheap: three rungs, the two cheapest workloads."""
        import repro.experiments.ladder_capacity as lc

        old_steps, old_workloads = lc.LADDER_STEPS, lc.ladder_workloads
        lc.LADDER_STEPS = (-6, -3, 0)

        def cheap_workloads(config):
            return old_workloads(config)[:2]  # convolution, dmxpy

        lc.ladder_workloads = cheap_workloads
        yield lc
        lc.LADDER_STEPS = old_steps
        lc.ladder_workloads = old_workloads

    @pytest.fixture(scope="class")
    def both_modes(self, small_ladder):
        import repro.machine.engine.simcache as simcache
        from repro.experiments.ladder_capacity import run_ladder
        from repro.experiments.plan import configure_plan

        cfg = ExperimentConfig(scale=128, sim_cache=False)
        old_cache = simcache.get_sim_cache()
        simcache.configure_sim_cache(enabled=False)  # no cross-mode warm hits
        configure_plan(False)
        try:
            point = run_ladder(cfg)
            configure_plan(True)
            planned = run_ladder(cfg)
        finally:
            configure_plan(False)
            simcache._default = old_cache
        return point, planned

    def test_planned_is_bit_identical_to_pointwise(self, both_modes):
        point, planned = both_modes
        a, b = point.comparable_json(), planned.comparable_json()
        a["config"].pop("plan"), b["config"].pop("plan")
        assert a == b

    def test_plan_telemetry_recorded(self, both_modes):
        _, planned = both_modes
        assert planned.plan["points"] == 6
        assert planned.plan["by_rule"]["capacity"] == 6
        assert planned.plan["traces_generated"] == 2
        assert planned.plan["accesses_simulated"] * 3 == planned.plan["accesses_requested"]
        # The pointwise run records no plan block at all.
        assert both_modes[0].plan == {}

    def test_miss_ratio_monotone(self, both_modes):
        point, _ = both_modes
        detail = point.detail
        for name in detail.programs:
            ratios = [detail.miss_ratio(name, s) for s in detail.sizes]
            assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_registered(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "ladder" in EXPERIMENTS

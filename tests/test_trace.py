"""Trace-engine tests: exact address sequences, guards, imperfect nests,
tiled bounds, and cross-validation against the reference interpreter."""

import pytest

from repro.errors import ExecutionError, IRError
from repro.lang import ProgramBuilder
from repro.machine import LayoutPolicy, build_layout
from repro.trace import TraceGenerator, generate_trace, trace_stats
from repro.trace.events import EMPTY_TRACE, concat_traces
from repro.trace.stats import per_array_accesses, stride_histogram

from tests.helpers import simple_stream_program

FLAT = LayoutPolicy(alignment=8, pad_bytes=0)


def trace_of(program, **kw):
    layout = build_layout(program, None, FLAT)
    return generate_trace(program, layout=layout, **kw)


class TestExactSequences:
    def test_stream_interleave(self):
        p = simple_stream_program(n=4)
        t = trace_of(p)
        # per iteration: read a[i], read b[i], write a[i]; b starts at 32
        expected = []
        for i in range(4):
            expected += [(i * 8, False), (32 + i * 8, False), (i * 8, True)]
        assert list(zip(t.addresses.tolist(), t.is_write.tolist())) == expected
        assert t.flops == 4
        assert t.loads == 8
        assert t.stores == 4

    def test_two_statements_order(self):
        b = ProgramBuilder("p", params={"N": 2})
        x = b.array("x", "N", output=True)
        y = b.array("y", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(x[i], 1.0)
            b.assign(y[i], x[i])
        t = trace_of(b.build())
        # iter0: w x0, r x0, w y0; iter1: ...
        assert t.addresses.tolist() == [0, 0, 16, 8, 8, 24]
        assert t.is_write.tolist() == [True, False, True, True, False, True]

    def test_2d_row_major(self):
        b = ProgramBuilder("p", params={"N": 2})
        a = b.array("a", ("N", "N"), output=True)
        with b.loop("i", 0, "N") as i:
            with b.loop("j", 0, "N") as j:
                b.assign(a[i, j], 1.0)
        t = trace_of(b.build())
        assert t.addresses.tolist() == [0, 8, 16, 24]

    def test_column_sweep_strided(self):
        b = ProgramBuilder("p", params={"N": 3})
        a = b.array("a", ("N", "N"), output=True)
        with b.loop("j", 0, "N") as j:
            with b.loop("i", 0, "N") as i:
                b.assign(a[i, j], 1.0)
        t = trace_of(b.build())
        assert t.addresses.tolist() == [0, 24, 48, 8, 32, 56, 16, 40, 64]

    def test_external_read_store_only(self):
        b = ProgramBuilder("p", params={"N": 3})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.read(a[i])
        t = trace_of(b.build())
        assert t.loads == 0
        assert t.stores == 3
        assert t.is_write.all()

    def test_scalar_read_no_traffic(self):
        b = ProgramBuilder("p", params={"N": 3})
        b.scalar("s", output=True)
        from repro.lang.stmt import ExternalRead
        from repro.lang.expr import ScalarRef

        with b.loop("i", 0, "N") as i:
            b._emit(ExternalRead(ScalarRef("s")))
        t = trace_of(b.build())
        assert len(t) == 0


class TestGuards:
    def test_masked_iterations(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i >= 2):
                b.assign(a[i], 1.0)
        t = trace_of(b.build())
        assert t.addresses.tolist() == [16, 24]
        assert t.stores == 2
        assert t.flops == 0

    def test_else_branch(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N", output=True)
        c = b.array("c", "N", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i < 2):
                b.assign(a[i], 1.0)
            with b.else_():
                b.assign(c[i], 2.0)
        t = trace_of(b.build())
        assert t.addresses.tolist() == [0, 8, 32 + 16, 32 + 24]

    def test_guard_flop_accounting(self):
        b = ProgramBuilder("p", params={"N": 6})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i < 2):
                b.assign(a[i], a[i] + 1.0)  # 1 flop x2
            with b.else_():
                b.assign(a[i], a[i] * 2.0 + 1.0)  # 2 flops x4
        t = trace_of(b.build())
        assert t.flops == 2 * 1 + 4 * 2

    def test_nested_guards(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i >= 2):
                with b.if_(i < 5):
                    b.assign(a[i], 1.0)
        t = trace_of(b.build())
        assert t.addresses.tolist() == [16, 24, 32]

    def test_guard_matches_evaluator_on_fig6(self):
        """The trace's store count equals the interpreter's store count on
        the guard-heavy Figure 6 fused program."""
        from repro.programs import fig6_fused

        p = fig6_fused(7)
        t = trace_of(p)
        # count stores by interpretation
        from repro.interp.evaluator import Evaluator

        ev = Evaluator(p)
        stores = [0]
        orig = ev._store

        def counting(ref, env, value):
            stores[0] += 1
            return orig(ref, env, value)

        ev._store = counting
        ev.run()
        assert t.stores == stores[0]


class TestImperfectNests:
    def test_pre_loop_post_order(self):
        b = ProgramBuilder("p", params={"N": 2, "M": 2})
        c = b.array("c", "N", output=True)
        a = b.array("a", ("N", "M"))
        with b.loop("i", 0, "N") as i:
            b.assign(c[i], 0.0)  # pre
            with b.loop("j", 0, "M") as j:
                b.assign(c[i], c[i] + a[i, j])
            b.assign(c[i], c[i] * 2.0)  # post
        t = trace_of(b.build())
        c0, a0 = 0, 16
        expected = [
            (0, True),  # c[0] = 0
            (0, False), (a0 + 0, False), (0, True),  # j=0
            (0, False), (a0 + 8, False), (0, True),  # j=1
            (0, False), (0, True),  # post
            (8, True),
            (8, False), (a0 + 16, False), (8, True),
            (8, False), (a0 + 24, False), (8, True),
            (8, False), (8, True),
        ]
        assert list(zip(t.addresses.tolist(), t.is_write.tolist())) == expected

    def test_scalar_replaced_matmul_order_is_exact(self):
        """Scalar replacement's pre/loop/post structure traces in execution
        order (load, k-loop, store per (i,j))."""
        from repro.programs import matmul_blocked

        p = matmul_blocked(4, tile=2)
        t = trace_of(p)
        ev_count = _count_accesses_by_interpretation(p)
        assert (t.loads, t.stores) == ev_count


class TestTiledLoops:
    def test_tiled_bounds(self):
        b = ProgramBuilder("p", params={"N": 8})
        b.array("a", "N", output=True)
        from repro.lang.affine import Affine
        from repro.lang.stmt import Assign, Loop
        from repro.lang.expr import ArrayRef, Const

        inner = Loop(
            "i",
            Affine({"t": 4}, 0),
            Affine({"t": 4}, 4),
            (Assign(ArrayRef("a", (Affine.var("i"),)), Const(1.0)),),
        )
        outer = Loop("t", Affine.const_of(0), Affine.const_of(2), (inner,))
        p = b.build().with_body([outer])
        t = trace_of(p)
        assert t.addresses.tolist() == [i * 8 for i in range(8)]

    def test_tile_transform_same_addresses(self):
        from repro.programs import matmul
        from repro.transforms import tile_nest

        base = matmul(4)
        tiled = tile_nest(base, 0, {"k": 2}, order=["k_t", "j", "k", "i"])
        t1, t2 = trace_of(base), trace_of(tiled)
        assert len(t1) == len(t2)
        assert sorted(t1.addresses.tolist()) == sorted(t2.addresses.tolist())
        assert t1.flops == t2.flops

    def test_variable_trip_rejected(self):
        from repro.lang.affine import Affine
        from repro.lang.stmt import Assign, Loop
        from repro.lang.expr import ArrayRef, Const

        b = ProgramBuilder("p", params={"N": 4})
        b.array("a", ("N", "N"), output=True)
        prog = b.build()
        inner = Loop(
            "j",
            Affine.const_of(0),
            Affine.var("i"),  # triangular
            (Assign(ArrayRef("a", (Affine.var("i"), Affine.var("j"))), Const(1.0)),),
        )
        outer = Loop("i", Affine.const_of(1), Affine.var("N"), (inner,))
        prog = prog.with_body([outer])
        with pytest.raises(IRError, match="trip count"):
            trace_of(prog)


class TestValidationAndEdges:
    def test_out_of_bounds_detected(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i + 1], 1.0)
        with pytest.raises(ExecutionError, match="outside extent"):
            trace_of(b.build())

    def test_guarded_out_of_bounds_ok(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            with b.if_(i < 3):
                b.assign(a[i + 1], 1.0)
        t = trace_of(b.build())
        assert t.addresses.tolist() == [8, 16, 24]

    def test_validate_off_skips_check(self):
        b = ProgramBuilder("p", params={"N": 4})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i + 1], 1.0)
        t = trace_of(b.build(), validate=False)
        assert len(t) == 4

    def test_zero_trip_loop(self):
        b = ProgramBuilder("p", params={"N": 0})
        a = b.array("a", 8, output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        t = trace_of(b.build())
        assert len(t) == 0

    def test_statement_trace(self):
        from tests.helpers import two_loop_chain

        p = two_loop_chain(n=4)
        layout = build_layout(p, None, FLAT)
        gen = TraceGenerator(p, layout=layout)
        t0 = gen.statement_trace(0)
        t1 = gen.statement_trace(1)
        assert t0.stores == 4 and t1.stores == 0
        full = gen.generate()
        assert len(full) == len(t0) + len(t1)

    def test_scalar_only_flops_counted(self):
        b = ProgramBuilder("p", params={"N": 4})
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(s, s * 2.0 + 1.0)
        t = trace_of(b.build())
        assert len(t) == 0
        assert t.flops == 8


class TestTraceContainers:
    def test_concat_and_repeat(self):
        p = simple_stream_program(n=2)
        t = trace_of(p)
        double = t.repeated(2)
        assert len(double) == 2 * len(t)
        assert double.flops == 2 * t.flops
        joined = concat_traces([t, t, t])
        assert len(joined) == 3 * len(t)
        assert t.concat(t).loads == 2 * t.loads

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            EMPTY_TRACE.repeated(0)

    def test_register_bytes(self):
        p = simple_stream_program(n=4)
        t = trace_of(p)
        assert t.register_bytes == 8 * (t.loads + t.stores)


class TestStats:
    def test_trace_stats(self):
        p = simple_stream_program(n=8)
        t = trace_of(p)
        s = trace_stats(t, line_size=32)
        assert s.length == len(t)
        assert s.writes == 8
        assert s.distinct_bytes == 2 * 8 * 8
        assert s.distinct_lines == 4  # 128B over 32B lines

    def test_per_array(self):
        p = simple_stream_program(n=8)
        layout = build_layout(p, None, FLAT)
        t = generate_trace(p, layout=layout)
        per = per_array_accesses(t, layout)
        assert per["a"] == (8, 8)
        assert per["b"] == (8, 0)

    def test_stride_histogram(self):
        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        t = trace_of(b.build())
        hist = stride_histogram(t)
        assert hist == {8: 7}


def _count_accesses_by_interpretation(program):
    """Independent load/store counter: instrument the evaluator."""
    from repro.interp.evaluator import Evaluator

    ev = Evaluator(program)
    loads = [0]
    stores = [0]
    orig_eval = ev._eval
    orig_store = ev._store

    from repro.lang.expr import ArrayRef

    def counting_eval(expr, env):
        if isinstance(expr, ArrayRef):
            loads[0] += 1
        return orig_eval(expr, env)

    def counting_store(ref, env, value):
        stores[0] += 1
        return orig_store(ref, env, value)

    ev._eval = counting_eval
    ev._store = counting_store
    ev.run()
    return loads[0], stores[0]


class TestCrossValidation:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: simple_stream_program(n=12),
            lambda: __import__("repro.programs", fromlist=["convolution"]).convolution(16),
            lambda: __import__("repro.programs", fromlist=["matmul"]).matmul(5),
            lambda: __import__("repro.programs", fromlist=["sweep3d"]).sweep3d(5),
            lambda: __import__("repro.programs", fromlist=["fig6_fused"]).fig6_fused(5),
            lambda: __import__("repro.programs", fromlist=["fig6_optimized"]).fig6_optimized(5),
            lambda: __import__("repro.programs", fromlist=["nas_sp"]).nas_sp(6, 5),
        ],
        ids=["stream", "conv", "mm", "sweep", "fig6b", "fig6c", "sp"],
    )
    def test_trace_counts_match_interpreter(self, factory):
        """The vectorized trace's load/store counts equal an instrumented
        interpretation — guards, nests and all."""
        p = factory()
        t = trace_of(p)
        assert (t.loads, t.stores) == _count_accesses_by_interpretation(p)

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.lang import ProgramBuilder  # noqa: F401
from repro.machine import CacheGeometry, CacheLevelSpec, LayoutPolicy, MachineSpec

# Shared hypothesis profiles: property tests reference one of these
# instead of scattering ad-hoc @settings literals, and CI can dial the
# effort for the whole suite via HYPOTHESIS_PROFILE.
settings.register_profile("repro-fast", max_examples=15, deadline=None)
settings.register_profile("repro-default", max_examples=25, deadline=None)
settings.register_profile("repro-thorough", max_examples=40, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-default"))


@pytest.fixture
def tiny_machine() -> MachineSpec:
    """A two-level machine small enough that tiny arrays spill: L1 128 B
    (2-way, 32 B lines), L2 1 KiB (2-way, 64 B lines)."""
    return MachineSpec(
        name="Tiny",
        peak_flops=100e6,
        register_bandwidth=400e6,
        cache_levels=(
            CacheLevelSpec("L1", CacheGeometry(128, 32, 2), 400e6, 10e-9),
            CacheLevelSpec("L2", CacheGeometry(1024, 64, 2), 100e6, 100e-9),
        ),
        default_layout=LayoutPolicy(alignment=32, pad_bytes=0),
    )


@pytest.fixture
def one_level_machine() -> MachineSpec:
    """Single direct-mapped cache (Exemplar-like), 640 B (divisible by 5)."""
    return MachineSpec(
        name="TinyDM",
        peak_flops=100e6,
        register_bandwidth=400e6,
        cache_levels=(
            CacheLevelSpec("L1", CacheGeometry(640, 32, 1), 100e6, 100e-9),
        ),
        default_layout=LayoutPolicy(alignment=32, pad_bytes=0),
    )



"""The micro-batching service: wire protocol, bit-identity with local
execution, dedup, admission control, progress streaming, drain."""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.errors import ReproError
from repro.experiments.plan import SimRequest
from repro.service.client import ServiceClient, ServiceError, _parse_address
from repro.service.protocol import (
    ProtocolError,
    decode,
    encode,
    sim_request_from_json,
    sim_request_to_json,
)
from repro.service.server import BackgroundServer, ServeConfig

from .helpers import reduction_program, simple_stream_program

TOOLS = Path(__file__).resolve().parent.parent / "tools"
SCHEMA = Path(__file__).resolve().parent.parent / "docs" / "result.schema.json"


def _requests(machine, sizes=(32, 64, 96), program=None):
    program = program or simple_stream_program(n=128)
    return [
        SimRequest(program=program, machine=machine, params={"N": n}) for n in sizes
    ]


def _counters(result):
    return (result.run.counters, result.run.time, result.seconds)


def _validate_manifest(manifest):
    sys.path.insert(0, str(TOOLS))
    try:
        from validate_manifest import validate
    finally:
        sys.path.remove(str(TOOLS))
    validate(manifest, json.loads(SCHEMA.read_text()))


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        msg = {"op": "ping", "id": 7, "nested": {"a": [1, 2]}}
        assert decode(encode(msg)) == msg

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")

    def test_sim_request_roundtrip(self, tiny_machine):
        request = SimRequest(
            program=simple_stream_program(),
            machine=tiny_machine,
            params={"N": 48},
            passes=2,
            warmup_passes=1,
            flush=False,
        )
        clone = sim_request_from_json(sim_request_to_json(request))
        from repro.experiments.plan import request_key

        assert request_key(clone) == request_key(request)
        assert clone.passes == 2 and clone.warmup_passes == 1 and clone.flush is False

    def test_sim_request_validation(self, tiny_machine):
        good = sim_request_to_json(
            SimRequest(program=simple_stream_program(), machine=tiny_machine)
        )
        for breakage in (
            lambda d: d.pop("program"),
            lambda d: d.update(program="not a program {"),
            lambda d: d.pop("machine"),
            lambda d: d.update(machine={"name": "x"}),
            lambda d: d.update(params=[1, 2]),
            lambda d: d.update(passes=0),
            lambda d: d.update(passes="many"),
        ):
            broken = json.loads(json.dumps(good))
            breakage(broken)
            with pytest.raises(ProtocolError):
                sim_request_from_json(broken)

    def test_parse_address_forms(self):
        assert _parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert _parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert _parse_address("tcp:127.0.0.1:9178") == ("tcp", ("127.0.0.1", 9178))
        assert _parse_address("127.0.0.1:9178") == ("tcp", ("127.0.0.1", 9178))
        with pytest.raises(ReproError):
            _parse_address("9178")


class TestServedBitIdentity:
    @pytest.fixture(scope="class")
    def background(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("sock") / "repro.sock")
        with BackgroundServer(ServeConfig(unix_path=path, max_wait_ms=5.0)) as bg:
            yield bg

    def test_single_point_matches_local_simulate(self, background, tiny_machine):
        program = simple_stream_program(n=128)
        direct = repro.simulate(program, tiny_machine, params={"N": 64})
        with ServiceClient(background.address) as client:
            served = client.simulate(program, tiny_machine, params={"N": 64})
        assert _counters(served) == _counters(direct)

    def test_sweep_matches_simulate_batch(self, background, tiny_machine):
        requests = _requests(tiny_machine) + _requests(
            tiny_machine, sizes=(16, 48), program=reduction_program()
        )
        direct = repro.simulate_batch(requests, plan=True)
        with ServiceClient(background.address) as client:
            served = client.simulate_batch(requests)
        assert [_counters(s) for s in served] == [_counters(d) for d in direct]

    def test_predict_matches_local_predict(self, background, tiny_machine):
        program = simple_stream_program(n=128)
        direct = repro.predict(program, tiny_machine, params={"N": 64})
        with ServiceClient(background.address) as client:
            served = client.predict_batch(
                [SimRequest(program=program, machine=tiny_machine, params={"N": 64})]
            )
        assert _counters(served[0]) == _counters(direct)

    def test_progress_events_stream_in_order(self, background, tiny_machine):
        events = []
        with ServiceClient(background.address) as client:
            client.simulate_batch(
                _requests(tiny_machine), progress=lambda d, t: events.append((d, t))
            )
        assert events == [(1, 3), (2, 3), (3, 3)]

    def test_concurrent_clients_all_bit_identical(self, background, tiny_machine):
        requests = _requests(tiny_machine, sizes=(32, 64, 96, 128))
        direct = [_counters(r) for r in repro.simulate_batch(requests, plan=True)]
        outcomes: dict[int, object] = {}

        def one_client(i):
            try:
                with ServiceClient(background.address, tenant=f"t{i}") as client:
                    outcomes[i] = [_counters(r) for r in client.simulate_batch(requests)]
            except Exception as exc:  # noqa: BLE001 — surfaced by the assert below
                outcomes[i] = exc

        threads = [threading.Thread(target=one_client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert outcomes and all(outcomes[i] == direct for i in outcomes), outcomes

    def test_duplicate_points_dedup_onto_one_future(self, background, tiny_machine):
        # Fresh machine name -> fresh content keys -> the duplicates in
        # this sweep must be answered by the one in-flight execution.
        from dataclasses import replace

        machine = replace(tiny_machine, name="TinyDedup")
        r = _requests(machine, sizes=(40,))[0]
        with ServiceClient(background.address) as client:
            before = client.stats()["dedup_hits"]
            served = client.simulate_batch([r, r, r])
            after = client.stats()["dedup_hits"]
        assert after - before == 2
        assert _counters(served[0]) == _counters(served[1]) == _counters(served[2])

    def test_stats_shape_and_telemetry(self, background):
        with ServiceClient(background.address, tenant="probe") as client:
            assert client.ping()
            stats = client.stats()
        assert stats["requests"] > 0 and stats["completed"] > 0
        assert stats["batches"] > 0 and stats["batch_max"] >= 1
        assert stats["latency_p50_ms"] is not None
        assert stats["uptime_s"] > 0
        assert "probe" in stats["tenants"]
        # The block is exactly what the manifest schema pins down.
        from repro.experiments.orchestrator import build_manifest

        _validate_manifest(build_manifest([], jobs=1, service=stats))


class TestAdmissionControl:
    def test_oversized_sweep_rejected_queue_full(self, tiny_machine):
        config = ServeConfig(max_queue=2, max_wait_ms=1.0)
        with BackgroundServer(config) as bg, ServiceClient(bg.address) as client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as info:
                client.simulate_batch(_requests(tiny_machine, sizes=(8, 16, 32, 64)))
            assert info.value.code == "queue_full"
            assert time.monotonic() - start < 10  # explicit reject, no hang
            # The connection survives a reject and smaller work succeeds.
            assert len(client.simulate_batch(_requests(tiny_machine, sizes=(8,)))) == 1
            assert client.stats()["rejected"] == {"queue_full": 1}

    def test_tenant_quota_rejected_over_quota(self, tiny_machine):
        config = ServeConfig(tenant_quota=2, max_wait_ms=1.0)
        with BackgroundServer(config) as bg, ServiceClient(bg.address, tenant="greedy") as client:
            with pytest.raises(ServiceError) as info:
                client.simulate_batch(_requests(tiny_machine, sizes=(8, 16, 32)))
            assert info.value.code == "over_quota"
            stats = client.stats()
            assert stats["tenants"]["greedy"]["rejected"] == 1

    def test_invalid_requests_rejected_not_fatal(self, tiny_machine):
        with BackgroundServer(ServeConfig(max_wait_ms=1.0)) as bg:
            with ServiceClient(bg.address) as client:
                # Raw garbage line: explicit invalid reject, connection lives.
                client._file.write(b"this is not json\n")
                client._file.flush()
                reply = decode(client._file.readline())
                assert reply["ok"] is False and reply["error"]["code"] == "invalid"
                with pytest.raises(ServiceError) as info:
                    client._call({"op": "frobnicate"})
                assert info.value.code == "invalid"
                with pytest.raises(ServiceError) as info:
                    client._call({"op": "simulate", "request": {"program": "x("}})
                assert info.value.code == "invalid"
                assert client.ping()

    def test_draining_server_rejects_new_work(self, tiny_machine):
        """While a drain is in progress (in-flight sweep gathering in a
        long micro-batch window), new submissions get an explicit
        ``draining`` reject — and the in-flight sweep still completes."""
        requests = _requests(tiny_machine, sizes=(32, 64))
        direct = [_counters(r) for r in repro.simulate_batch(requests, plan=True)]
        with BackgroundServer(ServeConfig(max_wait_ms=500.0)) as bg:
            served: list = []

            def submit():
                with ServiceClient(bg.address) as client:
                    served.extend(client.simulate_batch(requests))

            worker = threading.Thread(target=submit)
            worker.start()
            time.sleep(0.05)  # sweep admitted, batch window still open
            with ServiceClient(bg.address) as other:
                other.shutdown()
                with pytest.raises(ServiceError) as info:
                    other.simulate_batch(_requests(tiny_machine, sizes=(8,)))
                assert info.value.code == "draining"
            worker.join(timeout=120)
        assert [_counters(s) for s in served] == direct


class TestDrainAndManifest:
    def test_drain_writes_manifest_with_service_block(self, tiny_machine, tmp_path):
        config = ServeConfig(
            max_wait_ms=1.0, results_dir=str(tmp_path), unix_path=str(tmp_path / "s.sock")
        )
        with BackgroundServer(config) as bg:
            with ServiceClient(bg.address) as client:
                result = client.run_experiment("fig4", {"sim_cache": False})
                assert result.status == "ok"
                client.simulate_batch(_requests(tiny_machine, sizes=(16,)))
        manifests = list(tmp_path.glob("run-*.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        _validate_manifest(manifest)
        assert [r["experiment"] for r in manifest["results"]] == ["fig4"]
        service = manifest["service"]
        assert service["completed"] == 2
        assert service["batches"] >= 2  # experiment batch + simulate batch
        assert not list(tmp_path.glob("*.tmp"))

    def test_inflight_work_finishes_during_drain(self, tiny_machine):
        """shutdown() while a sweep is queued: the waiting client still
        gets its (bit-identical) answer before the server exits."""
        requests = _requests(tiny_machine, sizes=(32, 64))
        direct = [_counters(r) for r in repro.simulate_batch(requests, plan=True)]
        # A long gathering window keeps the sweep queued while shutdown lands.
        with BackgroundServer(ServeConfig(max_wait_ms=300.0)) as bg:
            served: list = []

            def submit():
                with ServiceClient(bg.address) as client:
                    served.extend(client.simulate_batch(requests))

            worker = threading.Thread(target=submit)
            worker.start()
            time.sleep(0.05)  # let the sweep enter the queue
            with ServiceClient(bg.address) as other:
                other.shutdown()
            worker.join(timeout=120)
        assert [_counters(s) for s in served] == direct


class TestExperimentOp:
    def test_unknown_experiment_is_a_failed_record(self):
        with BackgroundServer(ServeConfig(max_wait_ms=1.0)) as bg:
            with ServiceClient(bg.address) as client:
                result = client.run_experiment("not_an_experiment")
        assert result.status == "failed"
        assert "unknown experiment" in result.error

"""Tests for the CLIs, charts, the extra workloads, and E17."""

import pytest

from repro.experiments.charts import BarChart, bar
from repro.interp import evaluate, execute
from repro.lang.cli import main as loopc_main
from repro.machine import origin2000
from repro.programs import (
    BLAS1_KERNELS,
    EXPECTED_MEMORY_BALANCE,
    blas1,
    blas1_suite,
    jacobi,
)

SOURCE = """\
program demo(N=256)
array x[N]
array y[N]
scalar s out

for i = 0, N {
  y[i] = x[i] * 2
}
for i = 0, N {
  s = s + y[i]
}
"""


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "demo.loop"
    path.write_text(SOURCE)
    return str(path)


class TestLoopcCLI:
    def test_measure(self, loop_file, capsys):
        assert loopc_main([loop_file]) == 0
        out = capsys.readouterr().out
        assert "demo on Origin2000/64" in out
        assert "B/flop" in out

    def test_optimize_reports_speedup(self, loop_file, capsys):
        assert loopc_main([loop_file, "--optimize"]) == 0
        captured = capsys.readouterr()
        assert "pipeline[demo]" in captured.err
        assert "speedup over unoptimized" in captured.out

    def test_emit(self, loop_file, capsys):
        assert loopc_main([loop_file, "--optimize", "--emit"]) == 0
        emitted = capsys.readouterr().out
        from repro.lang import parse

        program = parse(emitted)  # the emitted text is valid source
        assert program.name.startswith("demo")

    def test_set_override(self, loop_file, capsys):
        assert loopc_main([loop_file, "--set", "N=512"]) == 0

    def test_bad_override(self, loop_file, capsys):
        assert loopc_main([loop_file, "--set", "N=abc"]) == 1
        assert loopc_main([loop_file, "--set", "whoops"]) == 1

    def test_machine_choice(self, loop_file, capsys):
        assert loopc_main([loop_file, "--machine", "exemplar"]) == 0
        assert "Exemplar" in capsys.readouterr().out

    def test_parse_error_exit(self, tmp_path, capsys):
        bad = tmp_path / "bad.loop"
        bad.write_text("program (\n")
        assert loopc_main([str(bad)]) == 1
        assert "parse error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert loopc_main(["/nonexistent.loop"]) == 2

    def test_no_run(self, loop_file, capsys):
        assert loopc_main([loop_file, "--no-run"]) == 0
        assert "2 top-level statements" in capsys.readouterr().out

    def test_example_loop_file(self, capsys):
        assert loopc_main(["examples/loops/pipeline_demo.loop", "--no-run"]) == 0


class TestExperimentsRunnerCLI:
    def test_subset_run(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "bandwidth-minimal" in out

    def test_charts_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig3", "--charts"]) == 0
        out = capsys.readouterr().out
        assert "█" in out

    def test_scale_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["e9", "--scale", "256"]) == 0

    def test_plan_flag_runs_ladder_planned(self, capsys, tmp_path):
        from repro.experiments.runner import main

        assert main(
            ["ladder", "--plan", "--no-sim-cache", "--results-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "batches: planned" in out
        assert ", plan 36 pts" in out  # planner suffix with telemetry
        assert "fewer accesses" in out

    def test_duplicate_tasks_deduped(self, capsys, tmp_path):
        import json

        from repro.experiments.runner import main

        assert main(["e9", "e9", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "scheduler dedup: 1 duplicate" in out
        manifest = json.loads(next(tmp_path.glob("run-*.json")).read_text())
        assert manifest["dedup_hits"] == 1


class TestCharts:
    def test_bar_widths(self):
        assert bar(0, 10, width=10) == ""
        assert bar(10, 10, width=10) == "█" * 10
        assert len(bar(5, 10, width=10)) == 5
        assert bar(1, 0) == ""

    def test_partial_blocks(self):
        # 1/16 of width 2 = one eighth of a cell
        assert bar(1, 16, width=2) == "▏"

    def test_chart_renders(self):
        chart = BarChart("demo", width=10, unit="x")
        chart.add("alpha", v=10.0)
        chart.add("beta", v=5.0)
        text = chart.render()
        assert "alpha" in text and "beta" in text
        assert "10.0x" in text

    def test_multi_series(self):
        chart = BarChart("demo", width=8)
        chart.add("row", a=4.0, b=2.0)
        text = chart.render()
        assert " a " in text and " b " in text

    def test_empty(self):
        assert BarChart("nothing").render() == "nothing"

    def test_fig3_chart_shows_dip(self):
        from repro.experiments import ExperimentConfig, run_fig3
        from repro.experiments.charts import fig3_chart

        text = fig3_chart(run_fig3(ExperimentConfig(scale=256)))
        assert "3w6r" in text and "Exemplar" in text


class TestBlas1:
    @pytest.mark.parametrize("kind", BLAS1_KERNELS)
    def test_builds_and_evaluates(self, kind):
        evaluate(blas1(kind, 32))

    def test_suite(self):
        assert set(blas1_suite(16)) == set(BLAS1_KERNELS)

    def test_bad_kind(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            blas1("gemm")

    @pytest.mark.parametrize("kind", ["scal", "axpy", "dot"])
    def test_memory_balance_matches_closed_form(self, kind):
        """The calibration property: measured balance == textbook value."""
        from repro.balance import program_balance

        machine = origin2000(scale=256)
        n = 4 * machine.cache_levels[-1].geometry.size_bytes // 8
        run = execute(blas1(kind, n), machine)
        measured = program_balance(run).memory_balance
        assert measured == pytest.approx(EXPECTED_MEMORY_BALANCE[kind], rel=0.02)

    def test_dot_value_correct(self):
        import numpy as np
        from repro.interp.evaluator import Evaluator

        p = blas1("dot", 64)
        ev = Evaluator(p)
        x, y = ev.arrays["x"].copy(), ev.arrays["y"].copy()
        out = ev.run()
        assert out.scalars["dotp"] == pytest.approx(float(np.dot(x, y)))


class TestJacobi:
    def test_evaluates(self):
        evaluate(jacobi(8, sweeps=2))

    def test_relaxation_converges_toward_mean(self):
        """Sanity on the numerics: sweeps reduce the residual."""
        from repro.interp import evaluate as ev

        small = ev(jacobi(10, sweeps=1)).scalars["resid"]
        more = ev(jacobi(10, sweeps=4)).scalars["resid"]
        assert more < small

    def test_pipeline_rejects_shrinking(self):
        """Both grids live across top-level statements: the storage stages
        must decline, and the verified pipeline must still end legal."""
        from repro.transforms import optimize, verify_equivalent

        p = jacobi(8, sweeps=2)
        result = optimize(p)
        assert "shrinking" not in result.applied_stages
        verify_equivalent(p, result.final, params_list=[{"N": 8}])

    def test_e17_survey(self):
        from repro.experiments import ExperimentConfig, run_e17

        r = run_e17(ExperimentConfig(scale=256))
        for kind in ("scal", "axpy", "dot"):
            row = r.row(f"blas1_{kind}")
            assert row.balance.memory_balance == pytest.approx(
                row.expected_memory, rel=0.02
            )
            assert row.memory_ratio > 5
        assert r.row("jacobi").memory_ratio > 3
        assert "E17" in r.table().render()

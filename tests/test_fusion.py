"""Fusion tests: graph/partitioning model, two-partitioning, exact and
greedy multi-partitioning, the edge-weighted baseline, the k-way-cut
reduction, and the loop-fusion rewriter."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FusionError
from repro.fusion import (
    FusionGraph,
    KWayCutInstance,
    Partitioning,
    apply_partitioning,
    bandwidth_cost,
    brute_force_kway_cut,
    check_legal,
    edge_weight_cost,
    fuse_loops,
    fusion_graph_from_program,
    greedy_edge_weighted,
    greedy_partitioning,
    hyperedge_length_cost,
    is_legal,
    optimal_edge_weighted,
    optimal_partitioning,
    orient_terminals,
    reload_count,
    to_fusion_graph,
    two_partition,
    verify_reduction,
)

from tests.helpers import two_loop_chain


def fig4_graph():
    return FusionGraph.build(
        [
            {"A", "D", "E", "F"},
            {"A", "D", "E", "F"},
            {"A", "D", "E", "F"},
            {"B", "C", "D", "E", "F"},
            {"A"},
            {"B", "C"},
        ],
        deps=[(4, 5)],
        preventing=[(4, 5)],
    )


class TestGraphModel:
    def test_build_and_inspect(self):
        g = fig4_graph()
        assert g.n_nodes == 6
        assert g.all_arrays == {"A", "B", "C", "D", "E", "F"}
        assert g.arrays_of({4, 5}) == {"A", "B", "C"}
        assert g.prevented(5, 4)
        assert g.shared_weight(0, 1) == 4
        assert g.shared_weight(0, 4) == 1

    def test_hyperedges(self):
        g = fig4_graph()
        he = g.hyperedges()
        assert he["A"] == {0, 1, 2, 4}
        assert he["B"] == {3, 5}

    def test_cycle_rejected(self):
        with pytest.raises(FusionError):
            FusionGraph.build([{"a"}, {"b"}], deps=[(0, 1), (1, 0)])

    def test_bad_edges(self):
        with pytest.raises(FusionError):
            FusionGraph.build([{"a"}], deps=[(0, 5)])

    def test_legality_checks(self):
        g = fig4_graph()
        assert is_legal(g, Partitioning.singletons(6))
        assert check_legal(g, Partitioning.of([{0, 1, 2, 3, 4}, {5}])) is None
        # preventing pair together
        assert "fusion-preventing" in check_legal(g, Partitioning.of([{4, 5}, {0, 1, 2, 3}]))
        # dep backwards
        assert "backward" in check_legal(g, Partitioning.of([{5}, {0, 1, 2, 3, 4}]))
        # missing node
        assert "not placed" in check_legal(g, Partitioning.of([{0, 1, 2, 3, 4}]))
        # duplicate node
        assert "more than one" in check_legal(
            g, Partitioning.of([{0, 1}, {1, 2, 3, 4, 5}])
        )
        assert "empty" in check_legal(g, Partitioning.of([set(), {0, 1, 2, 3, 4, 5}]))

    def test_group_of(self):
        p = Partitioning.of([{0, 2}, {1}])
        assert p.group_of(2) == 0
        with pytest.raises(FusionError):
            p.group_of(9)


class TestCosts:
    def test_paper_numbers(self):
        g = fig4_graph()
        assert bandwidth_cost(g, Partitioning.singletons(6)) == 20
        best = Partitioning.of([{4}, {0, 1, 2, 3, 5}])
        assert bandwidth_cost(g, best) == 7
        ew_best = Partitioning.of([{0, 1, 2, 3, 4}, {5}])
        assert bandwidth_cost(g, ew_best) == 8
        assert edge_weight_cost(g, ew_best) == 2
        assert edge_weight_cost(g, best) == 3

    def test_hyperedge_length_equals_bandwidth_cost(self):
        g = fig4_graph()
        for groups in ([{0, 1, 2, 3, 4}, {5}], [{4}, {0, 1, 2, 3, 5}], [{i} for i in range(6)]):
            p = Partitioning.of(groups)
            assert hyperedge_length_cost(g, p) == bandwidth_cost(g, p)

    def test_reload_count(self):
        g = fig4_graph()
        assert reload_count(g, Partitioning.of([{4}, {0, 1, 2, 3, 5}])) == 1
        assert reload_count(g, Partitioning.singletons(6)) == 14


class TestTwoPartition:
    def test_fig4(self):
        g = fig4_graph()
        r = two_partition(g, 4, 5)
        assert r.partitioning == Partitioning.of([{4}, {0, 1, 2, 3, 5}])
        assert r.cost == 7
        assert r.cut_arrays == {"A"}

    def test_dependence_forces_side(self):
        # 0 -> 1 dep; terminals (s=2, t=3); node 1 shares an array with s's
        # side but must stay with/after 0.
        g = FusionGraph.build(
            [{"X"}, {"X", "Y"}, {"X"}, {"Y"}],
            deps=[(3, 1)],  # t-node depends: 1 must come after 3? no: 3->1
            preventing=[(2, 3)],
        )
        # dep (3,1): 3 before 1; terminal t=3 is late side, so 1 must be late.
        r = two_partition(g, 2, 3)
        assert r.partitioning.group_of(1) == 1

    def test_contradicting_terminals_rejected(self):
        g = FusionGraph.build([{"X"}, {"Y"}], deps=[(1, 0)], preventing=[(0, 1)])
        with pytest.raises(FusionError):
            two_partition(g, 0, 1)  # 1 precedes 0, cannot put 0 early

    def test_orient_terminals(self):
        g = FusionGraph.build([{"X"}, {"Y"}, {"Z"}], deps=[(1, 0)], preventing=[(0, 1)])
        assert orient_terminals(g, 0, 1) == (1, 0)
        assert orient_terminals(g, 1, 0) == (1, 0)
        g2 = FusionGraph.build([{"X"}, {"Y"}], preventing=[(0, 1)])
        assert orient_terminals(g2, 1, 0) == (0, 1)

    def test_brute_force_agreement(self):
        """Exact enumeration over all 2-splits agrees with the min-cut."""
        rng_graphs = [
            FusionGraph.build(
                [
                    {"A", "B"},
                    {"B", "C"},
                    {"C", "D"},
                    {"A", "D", "E"},
                    {"E"},
                ],
                preventing=[(0, 4)],
            ),
            fig4_graph(),
        ]
        for g in rng_graphs:
            pairs = sorted(g.preventing)[0]
            s, t = pairs
            r = two_partition(g, s, t)
            best = None
            nodes = set(range(g.n_nodes)) - {s, t}
            for mask in itertools.product([0, 1], repeat=len(nodes)):
                early = {s} | {n for n, m in zip(sorted(nodes), mask) if m == 0}
                late = set(range(g.n_nodes)) - early
                p = Partitioning.of([early, late])
                if any(a in late and b in early for a, b in g.deps):
                    continue
                cost = bandwidth_cost(g, p)
                best = cost if best is None else min(best, cost)
            assert r.cost == best


class TestMultiPartition:
    def test_fig4_exact(self):
        sol = optimal_partitioning(fig4_graph())
        assert sol.cost == 7

    def test_no_constraints_fuses_everything(self):
        g = FusionGraph.build([{"a", "b"}, {"b", "c"}, {"c"}])
        sol = optimal_partitioning(g)
        assert sol.partitioning.n_groups == 1
        assert sol.cost == 3

    def test_all_prevented_stays_apart(self):
        g = FusionGraph.build(
            [{"a"}, {"a"}, {"a"}],
            preventing=[(0, 1), (0, 2), (1, 2)],
        )
        sol = optimal_partitioning(g)
        assert sol.partitioning.n_groups == 3
        assert sol.cost == 3

    def test_size_guard(self):
        g = FusionGraph.build([{f"x{i}"} for i in range(15)])
        with pytest.raises(FusionError):
            optimal_partitioning(g)

    def test_greedy_legal_and_reasonable(self):
        g = fig4_graph()
        sol = greedy_partitioning(g)
        assert is_legal(g, sol.partitioning)
        assert sol.cost == 7  # on Figure 4 the heuristic is optimal

    def test_greedy_on_unconstrained(self):
        g = FusionGraph.build([{"a"}, {"a", "b"}, {"b"}])
        sol = greedy_partitioning(g)
        assert sol.partitioning.n_groups == 1

    def test_exact_beats_or_ties_greedy(self):
        """Exhaustive check on random graphs: exact <= greedy, both legal."""
        import numpy as np

        rng = np.random.default_rng(42)
        arrays = list("ABCDEFG")
        for trial in range(15):
            n = int(rng.integers(3, 7))
            node_arrays = [
                set(rng.choice(arrays, size=rng.integers(1, 4), replace=False))
                for _ in range(n)
            ]
            prevent = set()
            for _ in range(rng.integers(1, 3)):
                u, v = sorted(rng.choice(n, size=2, replace=False))
                prevent.add((int(u), int(v)))
            deps = set()
            for _ in range(rng.integers(0, 3)):
                u, v = sorted(rng.choice(n, size=2, replace=False))
                deps.add((int(u), int(v)))
            g = FusionGraph.build(node_arrays, deps=deps, preventing=prevent)
            exact = optimal_partitioning(g)
            greedy = greedy_partitioning(g)
            assert is_legal(g, exact.partitioning)
            assert is_legal(g, greedy.partitioning)
            assert exact.cost <= greedy.cost


class TestEdgeWeighted:
    def test_fig4_optimal(self):
        g = fig4_graph()
        sol = optimal_edge_weighted(g)
        assert sol.cross_weight == 2
        assert sol.partitioning == Partitioning.of([{0, 1, 2, 3, 4}, {5}])

    def test_counterexample_holds(self):
        """The paper's core claim: the two objectives pick different
        partitionings, and the edge-weighted one moves more data."""
        g = fig4_graph()
        ew = optimal_edge_weighted(g)
        bw = optimal_partitioning(g)
        assert bandwidth_cost(g, ew.partitioning) > bw.cost
        assert edge_weight_cost(g, bw.partitioning) > ew.cross_weight

    def test_greedy_edge_weighted_legal(self):
        g = fig4_graph()
        sol = greedy_edge_weighted(g)
        assert is_legal(g, sol.partitioning)

    def test_exact_edge_weighted_brute_force(self):
        g = FusionGraph.build(
            [{"a", "b"}, {"b", "c"}, {"a", "c"}, {"c"}],
            preventing=[(0, 3)],
        )
        sol = optimal_edge_weighted(g)
        # brute force over 2..4 ordered groups
        best = None
        for p in _all_partitionings(4):
            if not is_legal(g, p):
                continue
            w = edge_weight_cost(g, p)
            best = w if best is None else min(best, w)
        assert sol.cross_weight == best


def _all_partitionings(n):
    """All ordered set partitions of range(n)."""
    if n == 0:
        yield Partitioning(())
        return
    items = list(range(n))

    def rec(remaining):
        if not remaining:
            yield ()
            return
        rest = list(remaining)
        first_sets = []
        for mask in range(1, 1 << len(rest)):
            group = frozenset(rest[i] for i in range(len(rest)) if mask & (1 << i))
            first_sets.append(group)
        for group in first_sets:
            for tail in rec([x for x in rest if x not in group]):
                yield (group,) + tail

    for groups in rec(items):
        yield Partitioning(groups)


class TestKWayCut:
    def test_reduction_on_triangle(self):
        inst = KWayCutInstance(3, ((0, 1), (1, 2), (0, 2)), (0, 2))
        fusion, cut = verify_reduction(inst)
        assert fusion == cut == 3 + 2

    def test_three_terminals(self):
        inst = KWayCutInstance(5, ((0, 1), (1, 2), (2, 3), (3, 4), (0, 4)), (0, 2, 4))
        fusion, cut = verify_reduction(inst)
        assert fusion == cut

    def test_brute_force_basics(self):
        inst = KWayCutInstance(4, ((0, 1), (1, 2), (2, 3)), (0, 3))
        weight, assign = brute_force_kway_cut(inst)
        assert weight == 1
        assert assign[0] != assign[3]

    def test_construction_shape(self):
        inst = KWayCutInstance(4, ((0, 1), (2, 3)), (0, 3))
        g = to_fusion_graph(inst)
        assert g.n_nodes == 4
        assert g.prevented(0, 3)
        assert len(g.all_arrays) == 2

    def test_validation(self):
        with pytest.raises(FusionError):
            KWayCutInstance(3, ((0, 0),), (0, 1))
        with pytest.raises(FusionError):
            KWayCutInstance(3, ((0, 1),), (0,))
        with pytest.raises(FusionError):
            KWayCutInstance(3, ((0, 1),), (0, 9))


class TestApply:
    def test_fuse_chain(self):
        p = two_loop_chain(n=16)
        g = fusion_graph_from_program(p)
        fused = apply_partitioning(p, Partitioning.of([{0, 1}]), g)
        assert len(fused.body) == 1
        loop = fused.body[0]
        assert len(loop.body) == 2

    def test_fusion_renames_vars(self):
        from repro.lang import ProgramBuilder

        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N")
        c = b.array("c", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        with b.loop("j", 0, "N") as j:
            b.assign(c[j], a[j])
        p = b.build()
        fused = apply_partitioning(p, Partitioning.of([{0, 1}]))
        loop = fused.body[0]
        assert loop.var == "i"
        from repro.lang.analysis import access_sets

        assert access_sets(loop).reads == {"a"}

    def test_fusion_preserves_semantics(self):
        from repro.transforms import verify_equivalent

        p = two_loop_chain(n=16)
        fused = apply_partitioning(p, Partitioning.of([{0, 1}]))
        verify_equivalent(p, fused)

    def test_inner_fusion_of_2d_nests(self):
        from repro.lang import ProgramBuilder
        from repro.transforms import verify_equivalent

        b = ProgramBuilder("p", params={"N": 6})
        x = b.array("x", ("N", "N"))
        y = b.array("y", ("N", "N"), output=True)
        with b.loop("i1", 0, "N") as i:
            with b.loop("j1", 0, "N") as j:
                b.assign(x[i, j], 2.0)
        with b.loop("i2", 0, "N") as i:
            with b.loop("j2", 0, "N") as j:
                b.assign(y[i, j], x[i, j] + 1.0)
        p = b.build()
        fused = apply_partitioning(p, Partitioning.of([{0, 1}]))
        inner = fused.body[0].body
        assert len(inner) == 1  # inner loops fused too
        verify_equivalent(p, fused, params_list=[{"N": 6}])

    def test_nonconformable_rejected(self):
        from repro.lang import ProgramBuilder

        b = ProgramBuilder("p", params={"N": 8})
        a = b.array("a", "N", output=True)
        c = b.array("c", "N", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(a[i], 1.0)
        with b.loop("j", 1, "N") as j:
            b.assign(c[j], 1.0)
        p = b.build()
        with pytest.raises(FusionError):
            fuse_loops(list(p.top_level_loops()))

    def test_illegal_partitioning_rejected(self):
        p = two_loop_chain(n=8)
        g = fusion_graph_from_program(p)
        with pytest.raises(FusionError):
            apply_partitioning(p, Partitioning.of([{1}, {0}]), g)  # dep backwards

    def test_graph_from_program_matches_fig4(self):
        from repro.programs import FIG4_PREVENTING, fig4_program

        g = fusion_graph_from_program(fig4_program(16), extra_preventing=FIG4_PREVENTING)
        assert g.n_nodes == 6
        assert [len(node.arrays) for node in g.nodes] == [4, 4, 4, 5, 1, 2]
        assert g.prevented(4, 5)
        sol = optimal_partitioning(g)
        assert sol.cost == 7


# -- property: exact DP solver is truly optimal -------------------------------


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_exact_matches_exhaustive(data):
    n = data.draw(st.integers(2, 4))
    arrays = "ABCD"
    node_arrays = [
        data.draw(st.sets(st.sampled_from(arrays), min_size=1, max_size=3))
        for _ in range(n)
    ]
    n_prevent = data.draw(st.integers(0, 2))
    preventing = set()
    for _ in range(n_prevent):
        u = data.draw(st.integers(0, n - 2))
        v = data.draw(st.integers(u + 1, n - 1))
        preventing.add((u, v))
    g = FusionGraph.build(node_arrays, preventing=preventing)
    sol = optimal_partitioning(g)
    best = min(
        bandwidth_cost(g, p) for p in _all_partitionings(n) if is_legal(g, p)
    )
    assert sol.cost == best

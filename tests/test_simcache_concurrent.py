"""Multi-process safety of the persistent simulation cache.

Several processes hammer the same key concurrently; the atomic-rename
protocol must leave no torn files, no stray temporaries, and every read
must see either a miss or a complete entry.
"""

from __future__ import annotations

import json
import multiprocessing

from repro.machine.cache import CacheStats
from repro.machine.hierarchy import HierarchyResult
from repro.machine.engine.simcache import (
    FORMAT_VERSION,
    SimulationCache,
    SimulationResult,
)

KEY = "ab" + "0" * 38  # two-char shard prefix + arbitrary tail


def _entry(flops: int = 1000) -> SimulationResult:
    stats = (CacheStats(accesses=10, misses=2, writebacks=1),)
    return SimulationResult(HierarchyResult(stats, (128,)), flops, 20, 10)


def _writer(directory: str, rounds: int) -> None:
    cache = SimulationCache(directory)
    value = _entry()
    for _ in range(rounds):
        cache.put(KEY, value)


def test_concurrent_same_key_writes_never_tear(tmp_path):
    ctx = multiprocessing.get_context("fork")
    rounds = 200
    procs = [
        ctx.Process(target=_writer, args=(str(tmp_path), rounds)) for _ in range(4)
    ]
    for p in procs:
        p.start()

    # Read concurrently with the writers from a fresh cache each time, so
    # every get() goes to disk: each must be a miss or a complete entry.
    reference = _entry()
    saw_entry = False
    while any(p.is_alive() for p in procs):
        got = SimulationCache(str(tmp_path)).get(KEY)
        if got is not None:
            saw_entry = True
            assert got.to_json() == reference.to_json()
    for p in procs:
        p.join()
        assert p.exitcode == 0

    final = SimulationCache(str(tmp_path)).get(KEY)
    assert final is not None and final.to_json() == reference.to_json()
    assert saw_entry
    # the rename protocol leaves no temporaries behind
    assert not list(tmp_path.rglob("*.tmp"))
    # and the on-disk bytes are one complete JSON document
    path = tmp_path / KEY[:2] / f"{KEY}.json"
    data = json.loads(path.read_text())
    assert data["version"] == FORMAT_VERSION


def test_two_caches_share_the_disk_tier(tmp_path):
    a = SimulationCache(tmp_path)
    b = SimulationCache(tmp_path)
    a.put(KEY, _entry())
    got = b.get(KEY)
    assert got is not None
    assert b.counters.disk_hits == 1
    assert got.to_json() == _entry().to_json()

"""Multi-process safety of the persistent simulation cache.

Several processes hammer the same key concurrently; the atomic-rename
protocol must leave no torn files, no stray temporaries, and every read
must see either a miss or a complete entry.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from repro.machine.cache import CacheStats
from repro.machine.hierarchy import HierarchyResult
from repro.machine.engine.simcache import (
    FORMAT_VERSION,
    SimulationCache,
    SimulationResult,
)

KEY = "ab" + "0" * 38  # two-char shard prefix + arbitrary tail


def _entry(flops: int = 1000) -> SimulationResult:
    stats = (CacheStats(accesses=10, misses=2, writebacks=1),)
    return SimulationResult(HierarchyResult(stats, (128,)), flops, 20, 10)


def _writer(directory: str, rounds: int) -> None:
    cache = SimulationCache(directory)
    value = _entry()
    for _ in range(rounds):
        cache.put(KEY, value)


def test_concurrent_same_key_writes_never_tear(tmp_path):
    ctx = multiprocessing.get_context("fork")
    rounds = 200
    procs = [
        ctx.Process(target=_writer, args=(str(tmp_path), rounds)) for _ in range(4)
    ]
    for p in procs:
        p.start()

    # Read concurrently with the writers from a fresh cache each time, so
    # every get() goes to disk: each must be a miss or a complete entry.
    reference = _entry()
    saw_entry = False
    while any(p.is_alive() for p in procs):
        got = SimulationCache(str(tmp_path)).get(KEY)
        if got is not None:
            saw_entry = True
            assert got.to_json() == reference.to_json()
    for p in procs:
        p.join()
        assert p.exitcode == 0

    final = SimulationCache(str(tmp_path)).get(KEY)
    assert final is not None and final.to_json() == reference.to_json()
    assert saw_entry
    # the rename protocol leaves no temporaries behind
    assert not list(tmp_path.rglob("*.tmp"))
    # and the on-disk bytes are one complete JSON document
    path = tmp_path / KEY[:2] / f"{KEY}.json"
    data = json.loads(path.read_text())
    assert data["version"] == FORMAT_VERSION


def test_two_caches_share_the_disk_tier(tmp_path):
    a = SimulationCache(tmp_path)
    b = SimulationCache(tmp_path)
    a.put(KEY, _entry())
    got = b.get(KEY)
    assert got is not None
    assert b.counters.disk_hits == 1
    assert got.to_json() == _entry().to_json()


def _key(i: int) -> str:
    return f"{i:02d}" + "c" * 38


class TestSizeCap:
    """LRU-by-mtime size cap of the disk tier (REPRO_CACHE_MAX_BYTES)."""

    def test_evict_removes_oldest_until_under_cap(self, tmp_path):
        import os
        import time

        cache = SimulationCache(tmp_path, max_bytes=1)  # force everything out
        for i in range(5):
            cache.put(_key(i), _entry())
        # Make the LRU order unambiguous regardless of filesystem
        # timestamp granularity.
        for i in range(5):
            os.utime(cache._path(_key(i)), (i, i))
        assert cache.evict() >= 4  # at most one survivor over a 1-byte cap
        assert cache.counters.evictions >= 4
        survivors = {p.name for p, _, _ in cache.disk_entries()}
        # Whatever survives is the newest-stamped entry (or nothing).
        assert survivors <= {f"{_key(4)}.json"}

    def test_under_cap_evicts_nothing(self, tmp_path):
        cache = SimulationCache(tmp_path, max_bytes=1 << 30)
        for i in range(5):
            cache.put(_key(i), _entry())
        assert cache.evict() == 0
        assert len(cache.disk_entries()) == 5
        assert cache.counters.evictions == 0

    def test_cap_zero_disables_eviction(self, tmp_path):
        cache = SimulationCache(tmp_path, max_bytes=0)
        for i in range(3):
            cache.put(_key(i), _entry())
        assert cache.evict() == 0
        assert len(cache.disk_entries()) == 3

    def test_env_var_sets_default_cap(self, tmp_path, monkeypatch):
        from repro.machine.engine.simcache import DEFAULT_MAX_BYTES, cache_max_bytes

        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert cache_max_bytes() == DEFAULT_MAX_BYTES
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert cache_max_bytes() == 12345
        assert SimulationCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
        assert cache_max_bytes() == DEFAULT_MAX_BYTES
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert SimulationCache(tmp_path).max_bytes == 0

    def test_disk_hit_refreshes_recency(self, tmp_path):
        import os

        cache = SimulationCache(tmp_path, max_bytes=0)
        for i in range(2):
            cache.put(_key(i), _entry())
            os.utime(cache._path(_key(i)), (i, i))
        # A disk hit on the older entry bumps its mtime past the other's.
        reader = SimulationCache(tmp_path, max_bytes=0)
        assert reader.get(_key(0)) is not None
        entries = {p.name: m for p, _, m in reader.disk_entries()}
        assert entries[f"{_key(0)}.json"] > entries[f"{_key(1)}.json"]

    def test_memory_tier_survives_eviction(self, tmp_path):
        cache = SimulationCache(tmp_path, max_bytes=1)
        cache.put(_key(0), _entry())
        cache.evict()
        assert not cache.disk_entries()
        assert cache.get(_key(0)) is not None  # memory tier still answers

    def test_throttled_sweep_runs_during_puts(self, tmp_path):
        from repro.machine.engine import simcache

        cache = SimulationCache(tmp_path, max_bytes=1)
        for i in range(simcache._EVICT_EVERY):
            cache.put(f"{i:02d}" + "d" * 38, _entry())
        # The 64th put triggered a sweep: the tier was cut back.
        assert len(cache.disk_entries()) < simcache._EVICT_EVERY
        assert cache.counters.evictions > 0


# -- cross-process in-flight claim guard --------------------------------------
def _dead_pid() -> int:
    """A pid guaranteed to belong to no live process (just exited)."""
    ctx = multiprocessing.get_context("fork")
    p = ctx.Process(target=_noop)
    p.start()
    p.join()
    return p.pid


def _noop() -> None:
    pass


def _forge_claim(cache: SimulationCache, key: str, pid: int) -> None:
    path = cache._claim_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"pid": pid}))


def _claim_holder(directory: str, ready, entry_json: str, hold_s: float) -> None:
    cache = SimulationCache(directory)
    assert cache.claim(KEY)
    ready.set()
    time.sleep(hold_s)
    cache.put(KEY, SimulationResult.from_json(json.loads(entry_json)))
    cache.release(KEY)


class TestClaimGuard:
    """Sidecar claim files: one simulating process per key across the
    machine, with stale-owner takeover and bounded waits."""

    def test_claim_is_exclusive_until_released(self, tmp_path):
        a = SimulationCache(tmp_path)
        b = SimulationCache(tmp_path)
        assert a.claim(KEY)
        assert a.counters.claims == 1
        assert not b.claim(KEY)  # live owner (this pid) holds it
        a.release(KEY)
        assert b.claim(KEY)
        b.release(KEY)
        assert not list(tmp_path.rglob("*.claim"))

    def test_claim_without_disk_tier_is_a_noop(self):
        cache = SimulationCache()
        assert cache.claim(KEY)
        cache.release(KEY)
        assert cache.counters.claims == 0

    def test_dead_owner_claim_taken_over(self, tmp_path):
        cache = SimulationCache(tmp_path)
        _forge_claim(cache, KEY, _dead_pid())
        assert cache.claim(KEY)
        assert cache.counters.takeovers == 1
        assert cache.counters.claims == 1
        cache.release(KEY)

    def test_ancient_claim_taken_over_despite_live_pid(self, tmp_path):
        cache = SimulationCache(tmp_path)
        _forge_claim(cache, KEY, os.getpid())
        os.utime(cache._claim_path(KEY), (0, 0))  # epoch: ancient
        assert cache.claim(KEY)
        assert cache.counters.takeovers == 1
        cache.release(KEY)

    def test_wait_for_times_out_against_live_owner(self, tmp_path):
        a = SimulationCache(tmp_path)
        b = SimulationCache(tmp_path)
        assert a.claim(KEY)
        start = time.monotonic()
        assert b.wait_for(KEY, timeout=0.1) is None
        assert time.monotonic() - start < 5.0  # bounded, never hangs
        assert b.counters.claim_waits == 0
        a.release(KEY)

    def test_wait_for_gives_up_when_owner_releases_without_result(self, tmp_path):
        a = SimulationCache(tmp_path)
        b = SimulationCache(tmp_path)
        assert a.claim(KEY)
        a.release(KEY)  # owner failed: no result ever published
        assert b.wait_for(KEY, timeout=5.0) is None

    def test_waiter_receives_other_process_result(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        ready = ctx.Event()
        reference = _entry()
        p = ctx.Process(
            target=_claim_holder,
            args=(str(tmp_path), ready, json.dumps(reference.to_json()), 0.3),
        )
        p.start()
        try:
            assert ready.wait(10)
            cache = SimulationCache(str(tmp_path))
            assert not cache.claim(KEY)  # the child holds it
            got = cache.wait_for(KEY, timeout=30)
            assert got is not None
            assert got.to_json() == reference.to_json()
            assert cache.counters.claim_waits == 1
        finally:
            p.join()
        assert p.exitcode == 0
        assert not list(tmp_path.rglob("*.claim"))


# -- executor integration -----------------------------------------------------
def _race_machine():
    from repro.machine import CacheGeometry, CacheLevelSpec, LayoutPolicy, MachineSpec

    return MachineSpec(
        name="ClaimRace",
        peak_flops=100e6,
        register_bandwidth=400e6,
        cache_levels=(
            CacheLevelSpec("L1", CacheGeometry(128, 32, 2), 400e6, 10e-9),
            CacheLevelSpec("L2", CacheGeometry(1024, 64, 2), 100e6, 100e-9),
        ),
        default_layout=LayoutPolicy(alignment=32, pad_bytes=0),
    )


def _race_key(program, machine) -> str:
    from repro.experiments.plan import SimRequest, request_key

    return request_key(SimRequest(program, machine))


def _exec_publisher(directory: str, ready, hold_s: float) -> None:
    """Simulate uncached, then publish under the executor's real key while
    holding the claim — modelling a process mid-simulation of that key."""
    from tests.helpers import simple_stream_program
    from repro.interp.executor import execute

    program = simple_stream_program()
    machine = _race_machine()
    run = execute(program, machine, sim_cache=False)
    cache = SimulationCache(directory)
    key = _race_key(program, machine)
    assert cache.claim(key)
    ready.set()
    time.sleep(hold_s)
    result = HierarchyResult(run.counters.level_stats, run.counters.downstream_bytes)
    cache.put(
        key,
        SimulationResult(
            result, run.counters.graduated_flops, run.counters.loads,
            run.counters.stores,
        ),
    )
    cache.release(key)


class TestExecuteClaimGuard:
    def test_execute_waits_on_in_flight_process_and_matches(self, tmp_path):
        from tests.helpers import simple_stream_program
        from repro.interp.executor import execute

        program = simple_stream_program()
        machine = _race_machine()
        direct = execute(program, machine, sim_cache=False)

        ctx = multiprocessing.get_context("fork")
        ready = ctx.Event()
        p = ctx.Process(target=_exec_publisher, args=(str(tmp_path), ready, 0.3))
        p.start()
        try:
            assert ready.wait(30)
            cache = SimulationCache(str(tmp_path))
            run = execute(program, machine, sim_cache=cache)
        finally:
            p.join()
        assert p.exitcode == 0
        # The waiter simulated nothing: it consumed the other process's
        # in-flight result, bit-identically.
        assert cache.counters.claim_waits == 1
        assert cache.counters.puts == 0
        assert run.counters == direct.counters
        assert run.time == direct.time
        assert not list(tmp_path.rglob("*.claim"))

    def test_execute_takes_over_stale_claim(self, tmp_path):
        from tests.helpers import simple_stream_program
        from repro.interp.executor import execute

        program = simple_stream_program()
        machine = _race_machine()
        cache = SimulationCache(tmp_path)
        _forge_claim(cache, _race_key(program, machine), _dead_pid())
        run = execute(program, machine, sim_cache=cache)
        assert cache.counters.takeovers == 1
        assert cache.counters.puts == 1  # it simulated and published
        assert run.counters == execute(program, machine, sim_cache=False).counters
        assert not list(tmp_path.rglob("*.claim"))


class TestDiskReport:
    """The shared disk-tier report behind ``cache_stats --json`` and the
    service's ``disk_cache`` stats block."""

    def test_report_counts_entries_and_claims(self, tmp_path):
        from repro.machine.engine.simcache import disk_report

        cache = SimulationCache(str(tmp_path))
        cache.put(KEY, _entry())
        _forge_claim(cache, "cd" + "0" * 38, os.getpid())
        report = disk_report(cache)
        assert report["entries"] == 1
        assert report["live_claims"] == 1
        assert report["total_bytes"] > 0
        assert report["age_newest_s"] >= 0
        assert disk_report(SimulationCache()) is None  # no disk tier

    def test_cache_stats_tool_json(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        cache = SimulationCache(str(tmp_path))
        cache.put(KEY, _entry())
        root = Path(__file__).resolve().parent.parent
        out = subprocess.run(
            [sys.executable, str(root / "tools" / "cache_stats.py"),
             "--dir", str(tmp_path), "--json"],
            capture_output=True, text=True, check=True,
        )
        report = json.loads(out.stdout)
        assert report["entries"] == 1
        assert report["directory"] == str(tmp_path)
        assert report["live_claims"] == 0

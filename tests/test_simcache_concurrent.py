"""Multi-process safety of the persistent simulation cache.

Several processes hammer the same key concurrently; the atomic-rename
protocol must leave no torn files, no stray temporaries, and every read
must see either a miss or a complete entry.
"""

from __future__ import annotations

import json
import multiprocessing

from repro.machine.cache import CacheStats
from repro.machine.hierarchy import HierarchyResult
from repro.machine.engine.simcache import (
    FORMAT_VERSION,
    SimulationCache,
    SimulationResult,
)

KEY = "ab" + "0" * 38  # two-char shard prefix + arbitrary tail


def _entry(flops: int = 1000) -> SimulationResult:
    stats = (CacheStats(accesses=10, misses=2, writebacks=1),)
    return SimulationResult(HierarchyResult(stats, (128,)), flops, 20, 10)


def _writer(directory: str, rounds: int) -> None:
    cache = SimulationCache(directory)
    value = _entry()
    for _ in range(rounds):
        cache.put(KEY, value)


def test_concurrent_same_key_writes_never_tear(tmp_path):
    ctx = multiprocessing.get_context("fork")
    rounds = 200
    procs = [
        ctx.Process(target=_writer, args=(str(tmp_path), rounds)) for _ in range(4)
    ]
    for p in procs:
        p.start()

    # Read concurrently with the writers from a fresh cache each time, so
    # every get() goes to disk: each must be a miss or a complete entry.
    reference = _entry()
    saw_entry = False
    while any(p.is_alive() for p in procs):
        got = SimulationCache(str(tmp_path)).get(KEY)
        if got is not None:
            saw_entry = True
            assert got.to_json() == reference.to_json()
    for p in procs:
        p.join()
        assert p.exitcode == 0

    final = SimulationCache(str(tmp_path)).get(KEY)
    assert final is not None and final.to_json() == reference.to_json()
    assert saw_entry
    # the rename protocol leaves no temporaries behind
    assert not list(tmp_path.rglob("*.tmp"))
    # and the on-disk bytes are one complete JSON document
    path = tmp_path / KEY[:2] / f"{KEY}.json"
    data = json.loads(path.read_text())
    assert data["version"] == FORMAT_VERSION


def test_two_caches_share_the_disk_tier(tmp_path):
    a = SimulationCache(tmp_path)
    b = SimulationCache(tmp_path)
    a.put(KEY, _entry())
    got = b.get(KEY)
    assert got is not None
    assert b.counters.disk_hits == 1
    assert got.to_json() == _entry().to_json()


def _key(i: int) -> str:
    return f"{i:02d}" + "c" * 38


class TestSizeCap:
    """LRU-by-mtime size cap of the disk tier (REPRO_CACHE_MAX_BYTES)."""

    def test_evict_removes_oldest_until_under_cap(self, tmp_path):
        import os
        import time

        cache = SimulationCache(tmp_path, max_bytes=1)  # force everything out
        for i in range(5):
            cache.put(_key(i), _entry())
        # Make the LRU order unambiguous regardless of filesystem
        # timestamp granularity.
        for i in range(5):
            os.utime(cache._path(_key(i)), (i, i))
        assert cache.evict() >= 4  # at most one survivor over a 1-byte cap
        assert cache.counters.evictions >= 4
        survivors = {p.name for p, _, _ in cache.disk_entries()}
        # Whatever survives is the newest-stamped entry (or nothing).
        assert survivors <= {f"{_key(4)}.json"}

    def test_under_cap_evicts_nothing(self, tmp_path):
        cache = SimulationCache(tmp_path, max_bytes=1 << 30)
        for i in range(5):
            cache.put(_key(i), _entry())
        assert cache.evict() == 0
        assert len(cache.disk_entries()) == 5
        assert cache.counters.evictions == 0

    def test_cap_zero_disables_eviction(self, tmp_path):
        cache = SimulationCache(tmp_path, max_bytes=0)
        for i in range(3):
            cache.put(_key(i), _entry())
        assert cache.evict() == 0
        assert len(cache.disk_entries()) == 3

    def test_env_var_sets_default_cap(self, tmp_path, monkeypatch):
        from repro.machine.engine.simcache import DEFAULT_MAX_BYTES, cache_max_bytes

        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert cache_max_bytes() == DEFAULT_MAX_BYTES
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert cache_max_bytes() == 12345
        assert SimulationCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
        assert cache_max_bytes() == DEFAULT_MAX_BYTES
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert SimulationCache(tmp_path).max_bytes == 0

    def test_disk_hit_refreshes_recency(self, tmp_path):
        import os

        cache = SimulationCache(tmp_path, max_bytes=0)
        for i in range(2):
            cache.put(_key(i), _entry())
            os.utime(cache._path(_key(i)), (i, i))
        # A disk hit on the older entry bumps its mtime past the other's.
        reader = SimulationCache(tmp_path, max_bytes=0)
        assert reader.get(_key(0)) is not None
        entries = {p.name: m for p, _, m in reader.disk_entries()}
        assert entries[f"{_key(0)}.json"] > entries[f"{_key(1)}.json"]

    def test_memory_tier_survives_eviction(self, tmp_path):
        cache = SimulationCache(tmp_path, max_bytes=1)
        cache.put(_key(0), _entry())
        cache.evict()
        assert not cache.disk_entries()
        assert cache.get(_key(0)) is not None  # memory tier still answers

    def test_throttled_sweep_runs_during_puts(self, tmp_path):
        from repro.machine.engine import simcache

        cache = SimulationCache(tmp_path, max_bytes=1)
        for i in range(simcache._EVICT_EVERY):
            cache.put(f"{i:02d}" + "d" * 38, _entry())
        # The 64th put triggered a sweep: the tier was cut back.
        assert len(cache.disk_entries()) < simcache._EVICT_EVERY
        assert cache.counters.evictions > 0

"""Tests for typed fusion and size-weighted fusion."""

import pytest

from repro.errors import FusionError
from repro.fusion import (
    FusionGraph,
    Partitioning,
    array_weights_from_program,
    bandwidth_cost,
    is_legal,
    optimal_partitioning,
    optimal_weighted_partitioning,
    typed_fusion,
    weighted_bandwidth_cost,
    weighted_two_partition_cut,
)


class TestTypedFusion:
    def test_same_type_fuses(self):
        g = FusionGraph.build([{"a"}, {"a"}, {"a"}])
        sol = typed_fusion(g, types=["t", "t", "t"])
        assert sol.partitioning.n_groups == 1

    def test_types_separate(self):
        g = FusionGraph.build([{"a"}, {"a"}, {"a"}])
        sol = typed_fusion(g, types=["t", "u", "t"])
        # loop 1 (type u) breaks the run; loop 2 rejoins type t's group
        # only if no dependence forbids it — here none do.
        assert sol.partitioning.group_of(0) == sol.partitioning.group_of(2)
        assert sol.partitioning.group_of(1) != sol.partitioning.group_of(0)

    def test_dependence_through_other_type_blocks_rejoin(self):
        # 0 (t) -> 1 (u) -> 2 (t): 2 cannot rejoin 0's group because its
        # predecessor 1 lives in a later-created group.
        g = FusionGraph.build([{"a"}, {"b"}, {"a", "b"}], deps=[(0, 1), (1, 2)])
        sol = typed_fusion(g, types=["t", "u", "t"])
        assert sol.partitioning.n_groups == 3
        assert is_legal(g, sol.partitioning)

    def test_preventing_respected(self):
        g = FusionGraph.build([{"a"}, {"a"}], preventing=[(0, 1)])
        sol = typed_fusion(g, types=["t", "t"])
        assert sol.partitioning.n_groups == 2

    def test_default_types(self):
        g = FusionGraph.build([{"a"}, {"b"}])
        assert typed_fusion(g).partitioning.n_groups == 1

    def test_arity_check(self):
        g = FusionGraph.build([{"a"}, {"b"}])
        with pytest.raises(FusionError):
            typed_fusion(g, types=["t"])

    def test_never_beats_exact(self):
        import numpy as np

        rng = np.random.default_rng(5)
        arrays = list("ABCDE")
        for _ in range(10):
            n = int(rng.integers(3, 6))
            node_arrays = [
                set(rng.choice(arrays, size=2, replace=False)) for _ in range(n)
            ]
            prevent = set()
            if n > 2:
                u, v = sorted(rng.choice(n, size=2, replace=False))
                prevent.add((int(u), int(v)))
            g = FusionGraph.build(node_arrays, preventing=prevent)
            types = [int(x) for x in rng.integers(0, 2, size=n)]
            typed = typed_fusion(g, types)
            exact = optimal_partitioning(g)
            assert is_legal(g, typed.partitioning)
            assert exact.cost <= typed.cost


class TestWeightedFusion:
    def divergent_graph(self):
        """Unweighted prefers cutting the shared 'big' array once; with
        big's real size the optimizer keeps big uncut and re-loads the
        small arrays instead."""
        return FusionGraph.build(
            [{"big"}, {"big", "s1", "s2"}, {"s1", "s2"}],
            preventing=[(0, 2)],
        )

    def test_objectives_diverge(self):
        g = self.divergent_graph()
        unweighted = optimal_partitioning(g)
        assert unweighted.partitioning == Partitioning.of([{0}, {1, 2}])
        weights = {"big": 1000.0, "s1": 1.0, "s2": 1.0}
        weighted, cost = optimal_weighted_partitioning(g, weights)
        assert weighted == Partitioning.of([{0, 1}, {2}])
        assert cost == pytest.approx(1004.0)

    def test_unit_weights_degenerate_to_paper_objective(self):
        g = self.divergent_graph()
        unit = {a: 1.0 for a in g.all_arrays}
        weighted, cost = optimal_weighted_partitioning(g, unit)
        assert cost == optimal_partitioning(g).cost
        assert bandwidth_cost(g, weighted) == optimal_partitioning(g).cost

    def test_weighted_cost_function(self):
        g = self.divergent_graph()
        p = Partitioning.of([{0}, {1, 2}])
        w = {"big": 10.0, "s1": 1.0, "s2": 2.0}
        assert weighted_bandwidth_cost(g, p, w) == 10.0 + 13.0

    def test_missing_weight(self):
        g = self.divergent_graph()
        with pytest.raises(FusionError):
            weighted_bandwidth_cost(g, Partitioning.singletons(3), {"big": 1.0})

    def test_weighted_cut(self):
        g = self.divergent_graph()
        cut = weighted_two_partition_cut(g, 0, 2, {"big": 1000.0, "s1": 1.0, "s2": 1.0})
        assert cut == {"s1", "s2"}
        cut_unit = weighted_two_partition_cut(g, 0, 2, {a: 1.0 for a in g.all_arrays})
        assert cut_unit == {"big"}

    def test_weights_from_program(self):
        from tests.helpers import simple_stream_program

        weights = array_weights_from_program(simple_stream_program(n=64))
        assert weights == {"a": 512.0, "b": 512.0}

    def test_fig4_unchanged_under_equal_sizes(self):
        """The paper's Figure 4 instance keeps its optimum when weighted by
        (equal) array sizes — the unit model is the equal-size special case."""
        from repro.fusion import fusion_graph_from_program
        from repro.programs import FIG4_PREVENTING, fig4_program

        program = fig4_program(64)
        g = fusion_graph_from_program(program, extra_preventing=FIG4_PREVENTING)
        weights = array_weights_from_program(program)
        weighted, _ = optimal_weighted_partitioning(g, weights)
        assert weighted == optimal_partitioning(g).partitioning

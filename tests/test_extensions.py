"""Tests for the lineage extensions: Belady-OPT replacement, intrinsic
bandwidth, bandwidth-based prediction, inter-array regrouping, and the
program-order fusion baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance import (
    bandwidth_headroom,
    intrinsic_balance,
    intrinsic_traffic,
    predict_speedup,
    predict_time,
    program_balance,
    utilization_bound_from_balance,
)
from repro.errors import MachineError, ReproError, TransformError
from repro.interp import execute
from repro.lang import ProgramBuilder
from repro.machine import (
    Cache,
    CacheGeometry,
    LayoutPolicy,
    lru_vs_opt,
    origin2000,
    simulate_opt,
)
from repro.transforms import regroup_arrays, regroupable_sets, verify_equivalent

from tests.helpers import simple_stream_program


class TestBeladyOpt:
    GEOM = CacheGeometry(128, 32, 2)  # 4 lines, 2 sets

    def as_arrays(self, addrs, writes=None):
        a = np.asarray(addrs, dtype=np.int64)
        w = np.asarray(writes if writes is not None else [False] * len(addrs), dtype=bool)
        return a, w

    def test_compulsory_only(self):
        a, w = self.as_arrays([0, 32, 0, 32])
        res = simulate_opt(a, w, self.GEOM)
        assert res.misses == 2
        assert res.stats.hits == 2

    def test_opt_keeps_sooner_needed_line(self):
        # one set (use direct geometry with 1 set, 2 ways): lines 0,2,4 map
        # to set 0 of a 2-set cache when even.
        geom = CacheGeometry(64, 32, 2)  # single set, 2 ways
        # access 0, 32, 64 then 0: OPT evicts 32 (never reused), LRU evicts 0.
        addrs = [0, 32, 64, 0]
        a, w = self.as_arrays(addrs)
        opt = simulate_opt(a, w, geom, flush=False)
        assert opt.misses == 3  # 0,32,64 cold; final 0 hits under OPT
        lru = Cache("l", geom)
        lru.run(a, w)
        assert lru.stats.misses == 4  # LRU evicted 0

    def test_writeback_accounting(self):
        geom = CacheGeometry(32, 32, 1)  # one line total
        a, w = self.as_arrays([0, 32], [True, False])
        res = simulate_opt(a, w, geom, flush=False)
        assert res.writebacks == 1
        assert res.downstream_bytes == (2 + 1) * 32

    def test_flush_counts_dirty(self):
        geom = CacheGeometry(64, 32, 2)
        a, w = self.as_arrays([0, 32], [True, True])
        res = simulate_opt(a, w, geom, flush=True)
        assert res.writebacks == 2

    def test_validation(self):
        with pytest.raises(MachineError):
            simulate_opt(np.zeros(2, dtype=np.int64), np.zeros(3, dtype=bool), self.GEOM)

    def test_empty(self):
        res = simulate_opt(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool), self.GEOM)
        assert res.downstream_bytes == 0

    @settings(max_examples=60, deadline=None)
    @given(
        addrs=st.lists(st.integers(0, 31), min_size=1, max_size=150),
        data=st.data(),
    )
    def test_opt_never_worse_than_lru(self, addrs, data):
        """The defining property of Belady's policy."""
        writes = [data.draw(st.booleans()) for _ in addrs]
        a, w = self.as_arrays([x * 8 for x in addrs], writes)
        lru_bytes, opt_bytes = lru_vs_opt(a, w, self.GEOM)
        assert opt_bytes <= lru_bytes

    @settings(max_examples=40, deadline=None)
    @given(addrs=st.lists(st.integers(0, 15), min_size=1, max_size=80))
    def test_opt_at_least_compulsory(self, addrs):
        a, w = self.as_arrays([x * 32 for x in addrs])
        res = simulate_opt(a, w, self.GEOM, flush=False)
        distinct = len({x for x in addrs})
        assert res.misses >= distinct


class TestIntrinsic:
    def test_stream_floor(self):
        from repro.machine import build_layout
        from repro.trace import generate_trace

        p = simple_stream_program(n=64)  # a rw, b r: 1 KiB total
        layout = build_layout(p, None, LayoutPolicy(alignment=8, pad_bytes=0))
        t = generate_trace(p, layout=layout)
        intr = intrinsic_traffic(t, line_size=64)
        assert intr.distinct_lines == 16  # 1 KiB / 64
        assert intr.dirty_lines == 8  # only a written
        assert intr.total_bytes == 24 * 64

    def test_headroom(self):
        from repro.balance.intrinsic import IntrinsicTraffic

        intr = IntrinsicTraffic(64, 10, 5)
        assert bandwidth_headroom(2 * intr.total_bytes, intr) == pytest.approx(2.0)
        assert bandwidth_headroom(0, IntrinsicTraffic(64, 0, 0)) == 1.0

    def test_intrinsic_balance(self):
        from repro.machine import build_layout
        from repro.trace import generate_trace

        p = simple_stream_program(n=64)
        t = generate_trace(p, layout=build_layout(p))
        assert intrinsic_balance(t, 64) == pytest.approx(
            intrinsic_traffic(t, 64).total_bytes / t.flops
        )

    def test_measured_never_below_intrinsic(self):
        """The floor really is a floor for the LRU hierarchy."""
        from repro.machine import build_layout
        from repro.programs import convolution, matmul
        from repro.trace import generate_trace

        machine = origin2000(scale=256)
        for prog in (simple_stream_program(n=4096), convolution(4096), matmul(24)):
            run = execute(prog, machine)
            layout = build_layout(prog, None, machine.default_layout)
            t = generate_trace(prog, layout=layout)
            intr = intrinsic_traffic(t, machine.cache_levels[-1].geometry.line_size)
            assert run.counters.memory_bytes >= intr.total_bytes


class TestPrediction:
    def test_exact_same_machine(self):
        machine = origin2000(scale=256)
        run = execute(simple_stream_program(n=4096), machine)
        pred = predict_time(program_balance(run), machine)
        assert pred.seconds == pytest.approx(run.seconds)
        assert pred.bound == run.time.bound

    def test_exact_same_geometry(self):
        from repro.machine import future_machine

        base = origin2000(scale=256)
        target = future_machine(4.0, scale=256)
        prog = simple_stream_program(n=4096)
        balance = program_balance(execute(prog, base))
        pred = predict_time(balance, target)
        actual = execute(prog, target)
        assert pred.seconds == pytest.approx(actual.seconds)

    def test_channel_mismatch_rejected(self):
        from repro.machine import exemplar

        machine = origin2000(scale=256)
        run = execute(simple_stream_program(n=4096), machine)
        with pytest.raises(ReproError):
            predict_time(program_balance(run), exemplar(scale=256))

    def test_channel_mismatch_projected(self):
        from repro.machine import exemplar

        machine = origin2000(scale=256)
        target = exemplar(scale=256)
        run = execute(simple_stream_program(n=4096), machine)
        balance = program_balance(run)
        pred = predict_time(balance, target, project=True)
        assert pred.projected
        assert pred.warning is not None and "resampled" in pred.warning
        # Register and memory channels are physical invariants of the
        # program, so the projected prediction must equal one computed
        # from them directly on the target's bandwidths.
        times = [
            balance.flops / target.peak_flops,
            balance.channel_bytes[0] / target.bandwidths[0],
            balance.channel_bytes[-1] / target.bandwidths[-1],
        ]
        assert pred.seconds == pytest.approx(max(times))

    def test_predict_speedup(self):
        machine = origin2000(scale=256)
        from repro.programs import fig7_original, fig7_store_eliminated

        b0 = program_balance(execute(fig7_original(4096), machine))
        b1 = program_balance(execute(fig7_store_eliminated(4096), machine))
        s = predict_speedup(b0, b1, machine)
        assert s == pytest.approx(2.0, rel=0.05)

    def test_utilization_bound(self):
        machine = origin2000(scale=256)
        run = execute(simple_stream_program(n=4096), machine)
        u = utilization_bound_from_balance(program_balance(run), machine)
        assert u == pytest.approx(run.cpu_utilization, rel=1e-6)


class TestRegrouping:
    def kernel(self, n=64):
        b = ProgramBuilder("k", params={"N": n})
        x = b.array("x", "N")
        y = b.array("y", "N")
        z = b.array("z", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + x[i] * y[i] + z[i])
        return b.build()

    def test_basic(self):
        p = self.kernel()
        out = regroup_arrays(p, ("x", "y", "z"))
        assert out.has_array("x_y_z_pk")
        assert not out.has_array("x")
        decl = out.array("x_y_z_pk")
        assert decl.rank == 2
        assert decl.init_names == ("x", "y", "z")

    def test_semantics_preserved(self):
        p = self.kernel()
        out = regroup_arrays(p, ("x", "y", "z"))
        verify_equivalent(p, out)

    def test_addresses_interleave(self):
        from repro.machine import build_layout
        from repro.trace import generate_trace

        p = self.kernel(n=4)
        out = regroup_arrays(p, ("x", "y", "z"))
        layout = build_layout(out, None, LayoutPolicy(alignment=8, pad_bytes=0))
        t = generate_trace(out, layout=layout)
        # iteration i touches 3 consecutive slots: 24*i, 24*i+8, 24*i+16
        assert t.addresses.tolist() == [
            24 * i + 8 * j for i in range(4) for j in range(3)
        ]

    def test_writes_supported(self):
        b = ProgramBuilder("w", params={"N": 32})
        x = b.array("x", "N")
        y = b.array("y", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(x[i], x[i] + y[i])
            b.assign(s, s + x[i])
        p = b.build()
        out = regroup_arrays(p, ("x", "y"))
        verify_equivalent(p, out)

    def test_external_read_supported(self):
        b = ProgramBuilder("r", params={"N": 16})
        x = b.array("x", "N")
        y = b.array("y", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.read(x[i])
            b.read(y[i])
            b.assign(s, s + x[i] * y[i])
        p = b.build()
        out = regroup_arrays(p, ("x", "y"))
        verify_equivalent(p, out)

    def test_output_rejected(self):
        p = simple_stream_program()
        with pytest.raises(TransformError, match="output"):
            regroup_arrays(p, ("a", "b"))

    def test_shape_mismatch_rejected(self):
        b = ProgramBuilder("m", params={"N": 8})
        b.array("x", "N")
        b.array("y", ("N", "N"))
        s = b.scalar("s", output=True)
        b.assign(s, 0.0)
        with pytest.raises(TransformError, match="shapes differ"):
            regroup_arrays(b.build(), ("x", "y"))

    def test_too_few(self):
        with pytest.raises(TransformError):
            regroup_arrays(self.kernel(), ("x",))
        with pytest.raises(TransformError):
            regroup_arrays(self.kernel(), ("x", "x"))

    def test_regroupable_sets(self):
        p = self.kernel()
        sets = regroupable_sets(p)
        assert ("x", "y", "z") in sets

    def test_regrouping_breaks_direct_mapped_conflict(self, one_level_machine):
        """Two arrays one cache apart thrash; regrouped they cannot."""
        b = ProgramBuilder("c", params={"N": 96})
        x = b.array("x", "N")
        y = b.array("y", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + x[i] * y[i])
        p = b.build()
        conflicted = execute(
            p, one_level_machine, layout_policy=LayoutPolicy(alignment=8, pad_bytes=512)
        )
        grouped = execute(regroup_arrays(p, ("x", "y")), one_level_machine)
        assert grouped.counters.memory_bytes < conflicted.counters.memory_bytes / 2


class TestProgramOrderFusion:
    def test_fig4_baseline(self):
        from repro.fusion import FusionGraph, program_order_fusion

        g = FusionGraph.build(
            [
                {"A", "D", "E", "F"},
                {"A", "D", "E", "F"},
                {"A", "D", "E", "F"},
                {"B", "C", "D", "E", "F"},
                {"A"},
                {"B", "C"},
            ],
            deps=[(4, 5)],
            preventing=[(4, 5)],
        )
        sol = program_order_fusion(g)
        # sweeps 1..5 into one group, 6 alone: cost 6 + 2 = 8 (same as the
        # edge-weighted optimum; worse than the bandwidth optimum 7)
        assert sol.cost == 8
        assert sol.method == "program-order"

    def test_no_constraints_single_group(self):
        from repro.fusion import FusionGraph, program_order_fusion

        g = FusionGraph.build([{"a"}, {"b"}, {"c"}])
        assert program_order_fusion(g).partitioning.n_groups == 1


class TestNewExperiments:
    def test_e13(self):
        from repro.experiments import ExperimentConfig, run_e13

        r = run_e13(ExperimentConfig(scale=256))
        for row in r.detail.rows:
            assert row.opt_bytes <= row.lru_bytes
        fig7 = r.row("fig7")
        assert fig7.compiler_gain > fig7.opt_gain  # rescheduling beats OPT
        assert "E13" in r.table().render()

    def test_e14(self):
        from repro.experiments import ExperimentConfig, run_e14

        r = run_e14(ExperimentConfig(scale=256))
        for row in r.detail.rows:
            assert row.measured_bytes >= row.intrinsic.total_bytes * 0.999
        # the transformed fig6 floor is ~N/2 times lower than the original's
        assert (
            r.row("fig6_optimized").intrinsic.total_bytes
            < r.row("fig6_original").intrinsic.total_bytes / 10
        )

    def test_e15(self):
        from repro.experiments import ExperimentConfig, run_e15

        r = run_e15(ExperimentConfig(scale=256))
        # The method's claim: exact across machines sharing cache geometry.
        assert r.max_error(same_geometry=True) < 1e-9
        # Cross-geometry predictions degrade with the miss-count mismatch
        # (the experiment's own caveat); they stay the right order of
        # magnitude but are NOT exact — especially at extreme cache scales.
        assert r.max_error(same_geometry=False) < 1.0

    def test_e16(self):
        from repro.experiments import ExperimentConfig, run_e16

        r = run_e16(ExperimentConfig(scale=256))
        assert r.bandwidths["padded"] > 1.5 * r.bandwidths["conflicted"]
        assert r.bandwidths["regrouped"] > 1.5 * r.bandwidths["conflicted"]

"""SetAssociativeEngine: bit-identity on counters, events, and state.

The set-associative engine is the one that runs the paper's headline
machine (every Origin2000/R10K level is 2-way), so its equivalence bar
is the full one: counters, the *ordered* downstream event stream, the
flush drain, and cache contents persisted across chunk boundaries must
all match the reference ``Cache`` exactly — on power-of-two and
non-power-of-two set counts, associativities past the closed-form A <= 2
fast path, and the Exemplar's footnote-3 conflict anomaly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.machine.cache import Cache, CacheGeometry
from repro.machine.engine import SetAssociativeEngine, select_engine
from repro.machine.engine.verify import (
    assert_equivalent,
    check_equivalence,
    random_geometry,
)
from repro.machine.hierarchy import Hierarchy
from repro.machine.presets import exemplar, origin2000
from tests.test_engine import LINE, _drive_pair, trace_batches


class TestSetAssociativeEquivalence:
    @given(
        assoc=st.integers(2, 8),
        n_sets=st.sampled_from([1, 2, 3, 5, 7, 8, 13, 150]),
        batches=trace_batches(max_lines=96),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_exactly(self, assoc, n_sets, batches):
        # Multiple batches per example drive the warm-state prologue: the
        # engine must splice persisted residents back in bit-identically.
        geom = CacheGeometry(n_sets * assoc * LINE, LINE, assoc)
        ref = Cache("L", geom)
        eng = SetAssociativeEngine("L", geom)
        _drive_pair(ref, eng, batches)

    @given(batches=trace_batches(max_lines=24))
    @settings(max_examples=40, deadline=None)
    def test_direct_mapped_geometry_matches_too(self, batches):
        # A == 1 exercises the degenerate closed form (every run is a
        # tenure); the direct engine normally owns this geometry, but
        # ``--engine setassoc`` forces it here and must stay exact.
        geom = CacheGeometry(8 * LINE, LINE, 1)
        _drive_pair(Cache("L", geom), SetAssociativeEngine("L", geom), batches)

    def test_randomized_harness_across_geometries(self):
        # Dense fixed sweep: closed-form (A <= 2) and general (A >= 3)
        # paths, tiny counting-sort set counts and radix-sorted ones.
        for assoc in (2, 3, 4, 8):
            for n_sets in (1, 2, 5, 7, 16, 33):
                assert_equivalent(
                    SetAssociativeEngine,
                    CacheGeometry(n_sets * assoc * LINE, LINE, assoc),
                    trials=15,
                    seed=assoc * 100 + n_sets,
                    flush_prob=0.4,
                )

    def test_randomized_harness_on_random_geometries(self):
        rng = np.random.default_rng(7)
        for trial in range(12):
            geom = random_geometry(rng)
            mismatches = check_equivalence(
                SetAssociativeEngine, geom, trials=10, seed=trial
            )
            assert not mismatches, (geom, mismatches[:3])

    def test_rejects_non_writeback_policies(self):
        geom = CacheGeometry(4 * LINE, LINE, 2)
        with pytest.raises(MachineError):
            SetAssociativeEngine("L", geom, write_back=False, write_allocate=False)
        with pytest.raises(MachineError):
            SetAssociativeEngine("L", geom, write_back=True, write_allocate=False)
        # auto never routes those policies here
        assert select_engine(geom, write_back=False, write_allocate=False) is Cache


class TestChunkedStreaming:
    @pytest.mark.parametrize("spec_fn", [origin2000, exemplar])
    def test_chunk_boundaries_are_invisible(self, spec_fn):
        # Same trace, whole vs 257-access chunks: persisted state must
        # make every counter and the downstream traffic bit-identical.
        spec = spec_fn(128)
        rng = np.random.default_rng(13)
        addrs = (rng.integers(0, 3000, 6000) * 8).astype(np.int64)
        writes = rng.random(6000) < 0.3
        whole = Hierarchy.from_spec(spec, "setassoc")
        whole.run_trace(addrs, writes)
        whole.flush()
        chunked = Hierarchy.from_spec(spec, "setassoc", chunk_size=257)
        chunked.run_trace(addrs, writes)
        chunked.flush()
        for a, b in zip(whole.result().level_stats, chunked.result().level_stats):
            assert vars(a) == vars(b)
        assert whole.result().downstream_bytes == chunked.result().downstream_bytes

    def test_chunked_events_match_reference_stream(self):
        # The ordered event stream itself — not just counters — must be
        # identical across chunk boundaries, or downstream levels would
        # see a different trace.
        geom = CacheGeometry(6 * LINE, LINE, 2)
        rng = np.random.default_rng(29)
        addrs = (rng.integers(0, 40, 1200) * LINE).astype(np.int64)
        writes = rng.random(1200) < 0.4
        ref = Cache("L", geom)
        r_out = [ref.run(addrs, writes), ref.flush()]
        eng = SetAssociativeEngine("L", geom)
        e_lines, e_writes = [], []
        for start in range(0, 1200, 111):
            out, w = eng.run(addrs[start : start + 111], writes[start : start + 111])
            e_lines.append(out)
            e_writes.append(w)
        fl = eng.flush()
        np.testing.assert_array_equal(
            np.concatenate([r_out[0][0], r_out[1][0]]),
            np.concatenate(e_lines + [fl[0]]),
        )
        np.testing.assert_array_equal(
            np.concatenate([r_out[0][1], r_out[1][1]]),
            np.concatenate(e_writes + [fl[1]]),
        )
        for f in ("accesses", "hits", "misses", "evictions", "writebacks"):
            assert getattr(ref.stats, f) == getattr(eng.stats, f), f


class TestExemplarAnomaly:
    def test_footnote3_conflict_anomaly_stays_exact(self):
        # The 3w6r kernel's five arrays at C + C/5 spacing collide in the
        # Exemplar's direct-mapped cache (the paper's footnote 3).  Forcing
        # the setassoc engine onto that geometry must reproduce the
        # anomalous miss counts access-for-access, not just statistically.
        from repro.experiments.config import ExperimentConfig
        from repro.machine.layout import build_layout
        from repro.programs import make_kernel
        from repro.trace.generator import TraceGenerator

        cfg = ExperimentConfig()
        spec = cfg.exemplar
        prog = make_kernel("3w6r", cfg.exemplar_kernel_elements())
        bound = prog.bind_params(None)
        layout = build_layout(prog, bound, spec.default_layout)
        tr = TraceGenerator(prog, bound, layout).generate()
        geom = spec.cache_levels[0].geometry
        ref = Cache("L1", geom)
        eng = SetAssociativeEngine("L1", geom)
        _drive_pair(ref, eng, [(tr.addresses, tr.is_write)])
        # The anomaly is real on this geometry: conflict misses at least
        # double the compulsory floor (every distinct line once).
        distinct = len(np.unique(tr.addresses // geom.line_size))
        assert ref.stats.misses >= 2 * distinct

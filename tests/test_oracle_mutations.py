"""Mutation tests for the equivalence oracle.

The transformation pipeline's safety rests on the verifier: if a rewrite
is wrong, `verify_equivalent` must say so. Each test below constructs a
*plausible-looking but wrong* variant of a real transformation output —
the bug classes a storage/fusion pass could realistically have — and
asserts the oracle rejects it. (The correct counterpart is accepted in
each case, so these are genuine discriminations, not trivial failures.)
"""


import pytest

from repro.lang import ProgramBuilder, parse, render
from repro.transforms import is_equivalent, verify_equivalent

from tests.helpers import two_loop_chain


def mutate(program, old: str, new: str):
    """Textual mutation through the parser (keeps everything else equal)."""
    text = render(program)
    assert old in text, f"mutation anchor {old!r} not found"
    return parse(text.replace(old, new))


class TestShrinkingBugs:
    def base(self, n=24):
        b = ProgramBuilder("p", params={"N": n})
        t = b.array("t", "N")
        d = b.array("d", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 1, "N") as i:
            b.assign(t[i], d[i] * 1.5)
            b.assign(s, s + t[i] + t[i - 1] * 0.25)
        return b.build()

    def test_correct_shrink_accepted(self):
        from repro.transforms import shrink_array

        p = self.base()
        out = shrink_array(p, "t")
        # distance-1 read at i=1 touches t[0]'s initial value -> must fail!
        assert not is_equivalent(p, out, sizes=(4, 8))

    def grid_program(self, n=12):
        """2-D carried pattern: the shrink buffer stays indexed by i."""
        b = ProgramBuilder("q", params={"N": n})
        t = b.array("t", ("N", "N"))
        s = b.scalar("s", output=True)
        with b.loop("j", 0, "N") as j:
            with b.loop("i", 0, "N") as i:
                b.read(t[i, j])
                with b.if_(j >= 1):
                    b.assign(s, s + t[i, j] + t[i, j - 1] * 0.25)
                with b.else_():
                    b.assign(s, s + t[i, j])
        return b.build()

    def test_off_by_one_buffer_copy(self):
        """A shrink whose carry copy lands at the wrong slot."""
        from repro.transforms import shrink_array

        p = self.grid_program()
        good = shrink_array(p, "t")
        verify_equivalent(p, good, sizes=(4, 8))
        # sabotage: read the wrong carry slot (a fixed slot instead of i)
        bad = mutate(good, "s = ((s + _tcur) + (_tbuf[i] * 0.25))",
                     "s = ((s + _tcur) + (_tbuf[0] * 0.25))")
        assert not is_equivalent(p, bad, sizes=(4, 8))

    def test_dropped_carry_copy(self):
        from repro.transforms import shrink_array

        p = self.grid_program()
        good = shrink_array(p, "t")
        verify_equivalent(p, good, sizes=(4, 8))
        harmless = mutate(good, "_tbuf[i] = _tcur", "_tbuf[i] = (_tcur * 1)")
        verify_equivalent(p, harmless, sizes=(4, 8))
        # truly drop the copy's effect:
        broken = mutate(good, "_tbuf[i] = _tcur", "_tbuf[i] = (_tcur * 0)")
        assert not is_equivalent(p, broken, sizes=(4, 8))


class TestStoreEliminationBugs:
    def test_eliminating_live_store_rejected(self):
        """Removing a store whose array IS read later must be caught."""
        p = two_loop_chain(n=24)  # tmp produced in loop 0, read in loop 1
        bad = mutate(p, "tmp[i] = (src[i] * 2)", "tmp[i] = (tmp[i] * 1)")
        assert not is_equivalent(p, bad)

    def test_forwarding_wrong_value(self):
        from repro.programs import fig7_original
        from repro.transforms import eliminate_stores
        from repro.fusion import Partitioning, apply_partitioning

        p = fig7_original(64)
        fused = apply_partitioning(p, Partitioning.of([{0, 1}]))
        good = eliminate_stores(fused)
        verify_equivalent(p, good)
        bad = mutate(good, "(res[i] + data[i])", "(res[i] + (data[i] * 1.0001))")
        assert not is_equivalent(p, bad)


class TestFusionBugs:
    def test_reversed_dependence_order(self):
        """Fusing in the wrong statement order (consumer before producer)."""
        p = two_loop_chain(n=24)
        b = ProgramBuilder("bad", params={"N": 24})
        src = b.array("src", "N")
        tmp = b.array("tmp", "N")
        s = b.scalar("sum", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + tmp[i])  # consumer FIRST: reads stale tmp
            b.assign(tmp[i], src[i] * 2.0)
        assert not is_equivalent(p, b.build())

    def test_correct_fusion_accepted(self):
        from repro.fusion import Partitioning, apply_partitioning

        p = two_loop_chain(n=24)
        fused = apply_partitioning(p, Partitioning.of([{0, 1}]))
        verify_equivalent(p, fused)


class TestRegroupingBugs:
    def test_swapped_slots_rejected(self):
        from repro.transforms import regroup_arrays

        b = ProgramBuilder("k", params={"N": 24})
        x = b.array("x", "N")
        y = b.array("y", "N")
        s = b.scalar("s", output=True)
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + x[i] - y[i])
        p = b.build()
        good = regroup_arrays(p, ("x", "y"))
        verify_equivalent(p, good)
        # sabotage: read the slots crossed (x<->y) — initial values differ,
        # and subtraction is order-sensitive.
        bad = mutate(good, "(s + x_y_pk[i, 0]) - x_y_pk[i, 1]",
                     "(s + x_y_pk[i, 1]) - x_y_pk[i, 0]")
        assert not is_equivalent(p, bad)


class TestNormalizationBugs:
    def test_wrong_pin_rejected(self):
        """Substituting a constant subscript with the variable under a
        guard that does NOT pin it must fail."""
        b = ProgramBuilder("p", params={"N": 12})
        a = b.array("a", ("N", "N"))
        s = b.scalar("s", output=True)
        with b.loop("j", 1, "N") as j:
            with b.loop("i", 0, "N") as i:
                with b.if_(j <= 4):  # j in [1,4]: NOT pinned
                    b.assign(s, s + a[i, 1])
        p = b.build()
        bad = mutate(p, "a[i, 1]", "a[i, j]")
        assert not is_equivalent(p, bad, sizes=(8, 12))

    def test_normalizer_does_not_make_that_mistake(self):
        from repro.transforms import normalize_guard_contexts

        b = ProgramBuilder("p", params={"N": 12})
        a = b.array("a", ("N", "N"))
        s = b.scalar("s", output=True)
        with b.loop("j", 1, "N") as j:
            with b.loop("i", 0, "N") as i:
                with b.if_(j <= 4):
                    b.assign(s, s + a[i, 1])
        p = b.build()
        assert normalize_guard_contexts(p) is p


class TestShardMergeBugs:
    """Mutation tests for the sharded-vs-serial differential oracle.

    The sharded engine's safety rests on the same logic: if a shard
    merge is wrong, comparing against the serial counters must say so.
    Each mutation below is a bug a shard-merge implementation could
    realistically have — dropping a shard, double-counting a counter,
    violating per-set access order — and each must be *rejected* by the
    differential comparison, while the correct merge is accepted (so
    these are genuine discriminations, not trivial failures).
    """

    SHARDS = 4

    def _spec_and_trace(self):
        import numpy as np

        from repro.machine.presets import origin2000

        spec = origin2000(32)
        rng = np.random.default_rng(1234)
        addrs = (rng.integers(0, 4096, 12_000) * 8).astype(np.int64)
        writes = rng.random(12_000) < 0.4
        return spec, addrs, writes

    def _serial_result(self, spec, addrs, writes):
        from repro.machine.hierarchy import Hierarchy

        h = Hierarchy.from_spec(spec, "auto")
        h.run_trace(addrs, writes)
        h.flush()
        return h.result()

    def _shard_snapshots(self, spec, addrs, writes):
        from repro.machine.engine.sharded import ShardedHierarchy, build_hierarchy

        h = build_hierarchy(spec, "auto", shards=self.SHARDS)
        assert isinstance(h, ShardedHierarchy)
        try:
            h.run_trace(addrs, writes)
            h.flush()
            return h.shard_results()
        finally:
            h.close()

    @staticmethod
    def _merge(results):
        merged = results[0]
        for res in results[1:]:
            merged = merged.merged(res)
        return merged

    @staticmethod
    def _same(a, b) -> bool:
        return a.downstream_bytes == b.downstream_bytes and all(
            vars(sa) == vars(sb) for sa, sb in zip(a.level_stats, b.level_stats)
        )

    def test_correct_merge_accepted(self):
        spec, addrs, writes = self._spec_and_trace()
        serial = self._serial_result(spec, addrs, writes)
        shards = self._shard_snapshots(spec, addrs, writes)
        assert self._same(self._merge([res for _, res, *_ in shards]), serial)

    def test_dropped_shard_rejected(self):
        spec, addrs, writes = self._spec_and_trace()
        serial = self._serial_result(spec, addrs, writes)
        shards = self._shard_snapshots(spec, addrs, writes)
        results = [res for _, res, *_ in shards]
        assert results[0].level_stats[0].accesses > 0  # a real shard is lost
        assert not self._same(self._merge(results[1:]), serial)

    def test_double_counted_writebacks_rejected(self):
        from dataclasses import replace as dc_replace

        from repro.machine.hierarchy import HierarchyResult

        spec, addrs, writes = self._spec_and_trace()
        serial = self._serial_result(spec, addrs, writes)
        shards = self._shard_snapshots(spec, addrs, writes)
        results = [res for _, res, *_ in shards]
        first = results[0]
        assert first.level_stats[0].writebacks > 0  # mutation must bite
        doubled_l1 = dc_replace(
            first.level_stats[0],
            writebacks=2 * first.level_stats[0].writebacks,
        )
        results[0] = HierarchyResult(
            (doubled_l1,) + first.level_stats[1:], first.downstream_bytes
        )
        assert not self._same(self._merge(results), serial)

    def test_reordered_per_set_events_rejected(self):
        """The exactness theorem needs each shard to see its subsequence
        in serial order.  Replaying the partition by hand accepts; one
        shard replayed in reverse (same multiset of accesses, wrong
        within-set order) perturbs LRU state and must be rejected."""
        import numpy as np

        from repro.machine.engine.sharded import plan_shards
        from repro.machine.hierarchy import Hierarchy

        spec, addrs, writes = self._spec_and_trace()
        serial = self._serial_result(spec, addrs, writes)
        plan = plan_shards(spec.build_caches("auto"), self.SHARDS)
        assert plan.shards == self.SHARDS
        key = (addrs >> plan.key_shift) % self.SHARDS

        def replay(order_of_shard0):
            partial = []
            for shard in range(self.SHARDS):
                idx = np.flatnonzero(key == shard)
                if shard == 0:
                    idx = idx[order_of_shard0]
                h = Hierarchy.from_spec(spec, "auto")
                h.run_trace(addrs[idx], writes[idx])
                h.flush()
                partial.append(h.result())
            return self._merge(partial)

        in_order = replay(slice(None))
        assert self._same(in_order, serial)  # hand partition is exact
        reversed_shard0 = replay(slice(None, None, -1))
        assert not self._same(reversed_shard0, serial)


class TestContentionMergeBugs:
    """Mutation tests for the contended-timing shard mapping.

    When per-shard counters feed the contention telemetry
    (``works_from_shards`` -> ``contended_time``), the oracle is traffic
    conservation — the per-core works must account for exactly the
    merged serial counters — plus the telemetry's per-channel saturation
    values, which depend only on the spec's curves.  Each mutation below
    is a bug the mapping could realistically have (a shard dropped, a
    shard's traffic double-counted, the wrong saturation curve priced)
    and each must be *rejected* by those asserts, while the correct
    mapping is accepted.
    """

    SHARDS = 4

    def _multicore(self, spec):
        """``spec`` with 4 cores sharing the memory channel (power-law
        saturation, 4x ceiling so the curve, not the cap, governs) — the
        contended pricing target."""
        from dataclasses import replace

        from repro.machine.spec import ChannelContention, SaturationCurve

        last = spec.cache_levels[-1]
        shared = replace(
            last,
            contention=ChannelContention(
                sharers=self.SHARDS,
                ceiling=4 * last.downstream_bandwidth,
                curve=SaturationCurve("power", alpha=0.5),
            ),
        )
        return replace(
            spec,
            name=spec.name + "x4",
            cores=self.SHARDS,
            cache_levels=spec.cache_levels[:-1] + (shared,),
        )

    def _setup(self):
        shard_bugs = TestShardMergeBugs()
        spec, addrs, writes = shard_bugs._spec_and_trace()
        serial = shard_bugs._serial_result(spec, addrs, writes)
        snapshots = shard_bugs._shard_snapshots(spec, addrs, writes)
        return self._multicore(spec), serial, snapshots

    @staticmethod
    def _conserves(works, serial) -> bool:
        """The manifest-side oracle: per-core works must add up to the
        merged serial traffic, level by level."""
        per_level = [
            sum(w.downstream_bytes[i] for w in works)
            for i in range(len(serial.downstream_bytes))
        ]
        return per_level == list(serial.downstream_bytes)

    def test_correct_shard_mapping_accepted(self):
        from repro.machine.contention import contended_time, works_from_shards

        mc, serial, snapshots = self._setup()
        works = works_from_shards(snapshots, flops=4000, register_bytes=96_000)
        assert self._conserves(works, serial)
        breakdown = contended_time(mc, works)
        assert breakdown.cores == self.SHARDS
        # The shared channel saturates: sqrt(4)/4 = 0.5 per-core share.
        assert breakdown.saturation[-1] == pytest.approx(0.5)
        assert breakdown.balance_gap[-1] == pytest.approx(2.0)

    def test_dropped_shard_counters_rejected(self):
        from repro.machine.contention import works_from_shards

        mc, serial, snapshots = self._setup()
        works = works_from_shards(snapshots, flops=4000, register_bytes=96_000)
        assert works[0].downstream_bytes[-1] > 0  # a real shard is lost
        assert not self._conserves(works[1:], serial)

    def test_double_counted_shard_traffic_rejected(self):
        from repro.machine.contention import (
            CoreWork,
            contended_time,
            works_from_shards,
        )

        mc, serial, snapshots = self._setup()
        works = list(works_from_shards(snapshots, flops=4000, register_bytes=96_000))
        honest = contended_time(mc, tuple(works))
        first = works[0]
        assert any(first.downstream_bytes)  # mutation must bite
        works[0] = CoreWork(
            first.flops,
            first.register_bytes,
            tuple(2 * b for b in first.downstream_bytes),
        )
        assert not self._conserves(works, serial)
        # ... and the inflation is visible in the priced time, not just
        # the byte audit: the shared channel carries phantom traffic.
        mutated = contended_time(mc, tuple(works))
        assert mutated.channel_times[-1] > honest.channel_times[-1]

    def test_misassigned_saturation_curve_rejected(self):
        """Pricing the shared channel with the wrong curve (perfect linear
        scaling instead of the spec's sqrt law) must show up in the
        telemetry: saturation and the contended channel time both move."""
        from dataclasses import replace

        from repro.machine.contention import contended_time, works_from_shards
        from repro.machine.spec import ChannelContention, SaturationCurve

        mc, serial, snapshots = self._setup()
        works = works_from_shards(snapshots, flops=4000, register_bytes=96_000)
        honest = contended_time(mc, works)

        last = mc.cache_levels[-1]
        wrong = replace(
            mc,
            cache_levels=mc.cache_levels[:-1]
            + (
                replace(
                    last,
                    contention=ChannelContention(
                        sharers=self.SHARDS,
                        ceiling=last.contention.ceiling,
                        curve=SaturationCurve("linear"),
                    ),
                ),
            ),
        )
        mutated = contended_time(wrong, works)
        # linear would claim perfect scaling up to the ceiling ...
        assert mutated.saturation[-1] > honest.saturation[-1]
        # ... so the telemetry assert (saturation is spec-determined)
        # and the priced channel time both reject the mis-assignment.
        assert mutated.saturation[-1] != honest.saturation[-1]
        assert mutated.channel_times[-1] < honest.channel_times[-1]


class TestTilingBugs:
    def test_wrong_tile_base_rejected(self):
        from repro.programs import matmul
        from repro.transforms import tile_nest

        p = matmul(8)
        tiled = tile_nest(p, 0, {"k": 4}, order=["k_t", "j", "k", "i"])
        verify_equivalent(p, tiled, params_list=[{"N": 8}])
        # sabotage: shift the inner tile window by one
        bad = mutate(tiled, "for k = 4*k_t, 4*k_t + 4", "for k = 4*k_t + 1, 4*k_t + 5")
        assert not is_equivalent(p, bad, params_list=[{"N": 8}])

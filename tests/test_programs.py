"""Tests for the workload programs: structure, counts and the paper's
example-program equivalences."""

import pytest

from repro.errors import ReproError
from repro.interp import evaluate
from repro.lang.analysis import access_sets, arrays_touched, static_counts
from repro.programs import (
    KERNEL_NAMES,
    STRIDED_SUBROUTINES,
    SUBROUTINES,
    all_kernels,
    convolution,
    dmxpy,
    fft,
    fig4_program,
    fig6_fused,
    fig6_optimized,
    fig6_original,
    fig7_fused,
    fig7_original,
    fig7_store_eliminated,
    kernel_spec,
    make_kernel,
    matmul,
    matmul_blocked,
    nas_sp,
    sec21_program,
    sec21_read_loop,
    sec21_write_loop,
    sweep3d,
)
from repro.transforms import verify_equivalent


class TestKernels:
    def test_twelve_names(self):
        assert len(KERNEL_NAMES) == 12

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_array_counts_match_name(self, name):
        w, r = kernel_spec(name)
        prog = make_kernel(name, 32)
        sets = access_sets(list(prog.body))
        assert len(sets.writes) == w
        assert len(sets.reads | sets.writes) == r
        if w:
            assert len(sets.reads) == r  # written arrays are also read

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_evaluates(self, name):
        evaluate(make_kernel(name, 16))

    def test_declaration_order_is_a0_first(self):
        prog = make_kernel("3w6r", 16)
        assert prog.array_names == ("a0", "a1", "a2", "a3", "a4", "a5")

    def test_flops_nonzero(self):
        for name, prog in all_kernels(16).items():
            assert static_counts(prog).flops > 0, name

    def test_bad_name(self):
        with pytest.raises(ReproError):
            make_kernel("9w9r")
        with pytest.raises(ReproError):
            kernel_spec("banana")


class TestApplications:
    def test_convolution_structure(self):
        p = convolution(64, taps=3)
        counts = static_counts(p)
        assert counts.flops == 62 * 5  # (N-2) iterations x (3 mul + 2 add)
        assert counts.array_loads == 62 * 3

    def test_convolution_taps_validation(self):
        with pytest.raises(ReproError):
            convolution(64, taps=0)

    def test_dmxpy_structure(self):
        p = dmxpy(32, 4)
        assert arrays_touched(list(p.body)) == {"x", "y", "m"}
        assert static_counts(p).flops == 2 * 32 * 4

    def test_matmul_orders(self):
        for order in ("ijk", "jki", "kij"):
            p = matmul(6, order=order)
            from repro.lang import loop_vars

            assert loop_vars(p.body[0]) == list(order)

    def test_matmul_bad_order(self):
        with pytest.raises(ReproError):
            matmul(6, order="abc")

    def test_matmul_flops(self):
        assert static_counts(matmul(8)).flops == 2 * 8**3

    def test_matmul_blocked_equivalent(self):
        verify_equivalent(matmul(8), matmul_blocked(8, tile=4), params_list=[{"N": 8}])
        verify_equivalent(
            matmul(8), matmul_blocked(8, tile=4, scalar_replace=False),
            params_list=[{"N": 8}],
        )

    def test_matmul_blocked_tile_divides(self):
        with pytest.raises(ReproError):
            matmul_blocked(10, tile=4)

    def test_fft_power_of_two(self):
        with pytest.raises(ReproError):
            fft(24)

    def test_fft_structure(self):
        p = fft(16)
        assert len(p.top_level_loops()) == 4  # log2(16) stages
        # per-stage twiddle tables
        assert p.has_array("wre0") and p.has_array("wim3")
        # butterflies per stage: N/2; flops per butterfly: 10
        assert static_counts(p).flops == 4 * 8 * 10

    def test_fft_is_actually_an_fft(self):
        """Feed a DC signal through the butterfly network: with zeroed
        twiddles... instead check linearity + energy growth is deterministic."""
        import numpy as np

        p = fft(8)
        r1 = evaluate(p, input_seed=1)
        r2 = evaluate(p, input_seed=1)
        assert np.array_equal(r1.arrays["re"], r2.arrays["re"])

    def test_nas_sp_seven_subroutines(self):
        p = nas_sp(12, 10)
        assert len(p.body) == len(SUBROUTINES) == 7
        evaluate(p)

    def test_nas_sp_strided_axes(self):
        """y/z solve sweeps have the row index innermost (strided)."""
        p = nas_sp(12, 10)
        for name in STRIDED_SUBROUTINES:
            idx = SUBROUTINES.index(name)
            loop = p.body[idx]
            inner = loop.body[0]
            from repro.lang.analysis import refs_of_array

            comp = 1 if name == "y_solve" else 2
            reads, writes = refs_of_array(loop, f"rhs{comp}")
            # inner var indexes dimension 0 (the row axis) -> stride NX
            assert writes[0].index[0].depends_on(inner.var)

    def test_sweep3d_recurrence(self):
        p = sweep3d(8, octants=2)
        assert len(p.top_level_loops()) == 2
        evaluate(p)

    def test_sweep3d_contiguous_inner(self):
        p = sweep3d(8, octants=1)
        loop = p.body[0]
        inner = loop.body[0]
        from repro.lang.analysis import refs_of_array

        _, writes = refs_of_array(loop, "phi")
        assert writes[0].index[1].depends_on(inner.var)  # last dim = inner


class TestPaperExamples:
    def test_sec21_programs(self):
        for p in (sec21_program(32), sec21_write_loop(32), sec21_read_loop(32)):
            evaluate(p)

    def test_fig4_array_counts(self):
        p = fig4_program(16)
        assert [len(arrays_touched(s)) for s in p.body] == [4, 4, 4, 5, 1, 2]

    def test_fig6_equivalences(self):
        """All three Figure 6 stages agree — including at the N=2 corner
        where the compute loop's only iteration is the boundary column."""
        o = fig6_original()
        verify_equivalent(o, fig6_fused(), sizes=(2, 3, 5, 10))
        verify_equivalent(o, fig6_optimized(), sizes=(2, 3, 5, 10))

    def test_fig6_storage_claim(self):
        """Two N^2 arrays -> two N-vectors (plus two scalars)."""
        n = 64
        assert fig6_original(n).data_bytes() == 2 * n * n * 8
        assert fig6_optimized(n).data_bytes() == 2 * n * 8

    def test_fig7_chain(self):
        o = fig7_original(64)
        verify_equivalent(o, fig7_fused(64))
        verify_equivalent(o, fig7_store_eliminated(64))

    def test_fig7_store_counts(self):
        n = 32
        assert static_counts(fig7_original(n)).array_stores == n
        assert static_counts(fig7_fused(n)).array_stores == n
        assert static_counts(fig7_store_eliminated(n)).array_stores == 0

    def test_fig6_read_order_preserved(self):
        """The three stages consume the identical input stream: same sum
        even though reads interleave differently with compute."""
        import numpy as np

        o = evaluate(fig6_original(5), input_seed=99)
        f = evaluate(fig6_fused(5), input_seed=99)
        c = evaluate(fig6_optimized(5), input_seed=99)
        assert np.isclose(o.scalars["sum"], f.scalars["sum"])
        assert np.isclose(o.scalars["sum"], c.scalars["sum"])

"""Tests for statements and loops."""

import pytest

from repro.errors import IRError
from repro.lang.affine import Affine, Cmp
from repro.lang.expr import ArrayRef, Const, ScalarRef
from repro.lang.stmt import (
    Assign,
    ExternalRead,
    If,
    Loop,
    innermost_loops,
    loop_vars,
    perfect_nest,
)


def ref(name, *subs):
    return ArrayRef(name, tuple(Affine.of(s) for s in subs))


class TestAssign:
    def test_valid_targets(self):
        Assign(ref("a", "i"), Const(1.0))
        Assign(ScalarRef("s"), Const(1.0))

    def test_invalid_target(self):
        with pytest.raises(IRError):
            Assign(Const(1.0), Const(2.0))

    def test_rhs_coerced(self):
        s = Assign(ScalarRef("s"), 3)
        assert s.rhs == Const(3.0)

    def test_substituted(self):
        s = Assign(ref("a", "i"), ref("a", Affine({"i": 1}, -1)))
        out = s.substituted({"i": Affine.var("t")})
        assert out.lhs.index[0] == Affine.var("t")
        assert out.rhs.index[0] == Affine({"t": 1}, -1)


class TestExternalRead:
    def test_array_target(self):
        r = ExternalRead(ref("a", "i"))
        assert str(r) == "read(a[i])"

    def test_scalar_target(self):
        r = ExternalRead(ScalarRef("a2"))
        assert str(r) == "read(a2)"

    def test_invalid_target(self):
        with pytest.raises(IRError):
            ExternalRead(Const(1.0))

    def test_substituted_scalar_noop(self):
        r = ExternalRead(ScalarRef("a2"))
        assert r.substituted({"i": Affine.var("t")}) is r


class TestIf:
    def cond(self):
        return Cmp("<", Affine.var("i"), Affine.const_of(3))

    def test_requires_branch(self):
        with pytest.raises(IRError):
            If(self.cond(), (), ())

    def test_walk_covers_both_branches(self):
        s1 = Assign(ScalarRef("x"), Const(1.0))
        s2 = Assign(ScalarRef("y"), Const(2.0))
        node = If(self.cond(), (s1,), (s2,))
        walked = list(node.walk())
        assert s1 in walked and s2 in walked

    def test_substituted(self):
        node = If(self.cond(), (Assign(ScalarRef("x"), Const(1.0)),))
        out = node.substituted({"i": Affine({"t": 1}, 2)})
        assert out.cond.lhs == Affine({"t": 1}, 2)


class TestLoop:
    def body(self):
        return (Assign(ref("a", "i"), Const(1.0)),)

    def test_empty_body_rejected(self):
        with pytest.raises(IRError):
            Loop("i", Affine.const_of(0), Affine.var("N"), ())

    def test_invalid_var(self):
        with pytest.raises(IRError):
            Loop("2i", Affine.const_of(0), Affine.var("N"), self.body())

    def test_trip_count(self):
        loop = Loop("i", Affine.const_of(2), Affine.var("N"), self.body())
        assert loop.trip_count({"N": 10}) == 8
        assert loop.trip_count({"N": 1}) == 0  # clamped at zero

    def test_renamed(self):
        loop = Loop("i", Affine.const_of(0), Affine.var("N"), self.body())
        out = loop.renamed("t")
        assert out.var == "t"
        inner = out.body[0]
        assert inner.lhs.index[0] == Affine.var("t")

    def test_renamed_same_is_identity(self):
        loop = Loop("i", Affine.const_of(0), Affine.var("N"), self.body())
        assert loop.renamed("i") is loop

    def test_substituted_rejects_bound_var(self):
        loop = Loop("i", Affine.const_of(0), Affine.var("N"), self.body())
        with pytest.raises(IRError):
            loop.substituted({"i": Affine.var("t")})

    def test_substituted_bounds(self):
        loop = Loop("i", Affine.var("lo"), Affine.var("hi"), self.body())
        out = loop.substituted({"lo": Affine.const_of(1), "hi": Affine.const_of(5)})
        assert out.trip_count({}) == 4

    def test_with_body(self):
        loop = Loop("i", Affine.const_of(0), Affine.var("N"), self.body())
        new = loop.with_body((Assign(ScalarRef("s"), Const(0.0)),))
        assert len(new.body) == 1
        assert isinstance(new.body[0].lhs, ScalarRef)


class TestHelpers:
    def nest(self):
        inner = Loop("j", Affine.const_of(0), Affine.var("N"),
                     (Assign(ref("a", "i", "j"), Const(1.0)),))
        return Loop("i", Affine.const_of(0), Affine.var("N"), (inner,))

    def test_loop_vars(self):
        assert loop_vars(self.nest()) == ["i", "j"]

    def test_innermost(self):
        loops = innermost_loops(self.nest())
        assert len(loops) == 1
        assert loops[0].var == "j"

    def test_perfect_nest(self):
        chain = perfect_nest(self.nest())
        assert [lp.var for lp in chain] == ["i", "j"]

    def test_imperfect_nest_stops(self):
        inner = Loop("j", Affine.const_of(0), Affine.var("N"),
                     (Assign(ref("a", "i", "j"), Const(1.0)),))
        outer = Loop(
            "i",
            Affine.const_of(0),
            Affine.var("N"),
            (Assign(ScalarRef("s"), Const(0.0)), inner),
        )
        assert [lp.var for lp in perfect_nest(outer)] == ["i"]

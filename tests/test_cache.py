"""Cache simulator tests: hand-computed sequences, policies, and a
property-based cross-check against an independent reference model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.machine.cache import Cache, CacheGeometry


def make(size=128, line=32, assoc=2, **kw):
    return Cache("T", CacheGeometry(size, line, assoc), **kw)


class TestGeometry:
    def test_sets_lines(self):
        g = CacheGeometry(32 * 1024, 32, 2)
        assert g.n_sets == 512
        assert g.n_lines == 1024

    def test_direct_mapped(self):
        g = CacheGeometry(640, 32, 1)
        assert g.n_sets == 20  # non-power-of-two allowed

    def test_bad_line(self):
        with pytest.raises(MachineError):
            CacheGeometry(128, 33, 1)
        with pytest.raises(MachineError):
            CacheGeometry(128, 0, 1)

    def test_bad_assoc(self):
        with pytest.raises(MachineError):
            CacheGeometry(128, 32, 0)

    def test_indivisible(self):
        with pytest.raises(MachineError):
            CacheGeometry(100, 32, 2)

    def test_scaled(self):
        g = CacheGeometry(4 * 1024 * 1024, 128, 2)
        s = g.scaled(64)
        assert s.size_bytes == 64 * 1024
        assert s.line_size == 128

    def test_scaled_too_far(self):
        with pytest.raises(MachineError):
            CacheGeometry(256, 32, 2).scaled(16)

    def test_str(self):
        assert "direct-mapped" in str(CacheGeometry(640, 32, 1))
        assert "2-way" in str(CacheGeometry(128, 32, 2))


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = make()
        hit, wb = c.access(0, False)
        assert not hit and wb is None
        hit, wb = c.access(8, False)  # same 32B line
        assert hit

    def test_write_sets_dirty_and_evicts_with_writeback(self):
        # direct-mapped, 2 sets of 32B lines (128B, assoc... use 64B 1-way 2 sets)
        c = make(size=64, line=32, assoc=1)
        c.access(0, True)  # set 0 dirty
        hit, wb = c.access(64, False)  # maps to set 0, evicts dirty line 0
        assert not hit
        assert wb == 0

    def test_clean_eviction_no_writeback(self):
        c = make(size=64, line=32, assoc=1)
        c.access(0, False)
        hit, wb = c.access(64, False)
        assert wb is None
        assert c.stats.evictions == 1
        assert c.stats.writebacks == 0

    def test_lru_order(self):
        # one set, 2 ways, lines 0 and 2 and 4 map to set 0
        c = make(size=64, line=32, assoc=2)  # 1 set
        c.access(0, False)
        c.access(32, False)
        c.access(0, False)  # refresh line 0
        c.access(64, False)  # evicts line 32 (LRU), not line 0
        hit, _ = c.access(0, False)
        assert hit
        hit, _ = c.access(32, False)
        assert not hit

    def test_write_hit_dirties(self):
        c = make(size=64, line=32, assoc=1)
        c.access(0, False)
        c.access(0, True)  # write hit -> dirty
        _, wb = c.access(64, False)
        assert wb == 0

    def test_stats_accumulate(self):
        c = make()
        for addr in (0, 32, 64, 0):
            c.access(addr, False)
        assert c.stats.accesses == 4
        assert c.stats.hits + c.stats.misses == 4

    def test_flush_writes_dirty(self):
        c = make(size=128, line=32, assoc=2)
        c.access(0, True)
        c.access(32, False)
        addrs, writes = c.flush()
        assert list(addrs) == [0]
        assert c.resident_lines == 0
        assert c.stats.writebacks == 1

    def test_reset_and_reset_stats(self):
        c = make()
        c.access(0, True)
        c.reset_stats()
        assert c.stats.accesses == 0
        hit, _ = c.access(0, False)
        assert hit  # contents survived reset_stats
        c.reset()
        hit, _ = c.access(0, False)
        assert not hit

    def test_events_out_counts_traffic(self):
        c = make(size=64, line=32, assoc=1)
        c.access(0, True)  # miss fill: 1 event
        c.access(64, False)  # evict dirty (1 wb) + fill: 2 events
        assert c.stats.events_out == 3


class TestWriteThrough:
    def test_validation(self):
        with pytest.raises(MachineError):
            make(write_back=False, write_allocate=True)

    def test_write_miss_no_allocate(self):
        c = make(write_back=False, write_allocate=False)
        out, out_w = c.run(np.array([0], dtype=np.int64), np.array([True]))
        assert c.stats.misses == 1
        assert list(out) == [0]
        assert list(out_w) == [True]
        # not resident afterwards
        hit, _ = c.access(0, False)
        assert not hit

    def test_write_hit_propagates(self):
        c = make(write_back=False, write_allocate=False)
        c.access(0, False)  # fill
        out, out_w = c.run(np.array([0], dtype=np.int64), np.array([True]))
        assert c.stats.hits == 1
        assert list(out_w) == [True]


class TestBatchEquivalence:
    def test_run_matches_single_access(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 512, size=200) * 8
        writes = rng.random(200) < 0.3
        a, b = make(), make()
        a.run(addrs.astype(np.int64), writes)
        for addr, w in zip(addrs, writes):
            b.access(int(addr), bool(w))
        assert a.stats.misses == b.stats.misses
        assert a.stats.writebacks == b.stats.writebacks
        assert a.stats.hits == b.stats.hits


# -- reference model cross-check ---------------------------------------------


class ReferenceLRU:
    """Straightforward list-based LRU write-back cache (independent code
    path from the production simulator)."""

    def __init__(self, size, line, assoc):
        self.line = line
        self.n_sets = size // (line * assoc)
        self.assoc = assoc
        self.sets = [[] for _ in range(self.n_sets)]  # list of [tag, dirty]
        self.misses = 0
        self.writebacks = 0

    def access(self, addr, is_write):
        lineno = addr // self.line
        s = lineno % self.n_sets
        tag = lineno // self.n_sets
        ways = self.sets[s]
        for entry in ways:
            if entry[0] == tag:
                ways.remove(entry)
                entry[1] = entry[1] or is_write
                ways.append(entry)
                return
        self.misses += 1
        if len(ways) >= self.assoc:
            victim = ways.pop(0)
            if victim[1]:
                self.writebacks += 1
        ways.append([tag, is_write])


@settings(max_examples=60, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 63), min_size=1, max_size=300),
    writes=st.data(),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_against_reference_model(addrs, writes, assoc):
    flags = [writes.draw(st.booleans()) for _ in addrs]
    cache = Cache("X", CacheGeometry(4 * 32 * assoc, 32, assoc))
    ref = ReferenceLRU(4 * 32 * assoc, 32, assoc)
    cache.run(
        np.array([a * 8 for a in addrs], dtype=np.int64),
        np.array(flags, dtype=bool),
    )
    for a, w in zip(addrs, flags):
        ref.access(a * 8, w)
    assert cache.stats.misses == ref.misses
    assert cache.stats.writebacks == ref.writebacks


@settings(max_examples=30, deadline=None)
@given(addrs=st.lists(st.integers(0, 127), min_size=1, max_size=200))
def test_invariants(addrs):
    cache = make(size=128, line=32, assoc=2)
    cache.run(np.array([a * 8 for a in addrs], dtype=np.int64),
              np.zeros(len(addrs), dtype=bool))
    st_ = cache.stats
    assert st_.hits + st_.misses == st_.accesses == len(addrs)
    assert st_.writebacks == 0  # read-only trace never writes back
    assert st_.evictions <= st_.misses
    assert cache.resident_lines <= cache.geometry.n_lines

"""Sweep query planner — each distinct trace simulated once.

The capacity-ladder sweep asks the same workload traces against a ladder
of fully-associative machines.  Pointwise execution regenerates and
re-simulates every (workload, capacity) point; the planner groups the
batch, generates each distinct trace once, and answers every capacity in
a group from a single stack-distance profile pass.

Two claims are asserted here:

* counters are bit-identical per point across the two executions (the
  planner exists to change wall clock, never numbers);
* the planned sweep simulates an order of magnitude fewer accesses and
  is several times faster end to end.

The committed trajectory (``BENCH_sweep.json``, written by
``tools/bench_report.py --sweep``) records the headline >=5x at the
acceptance scale; here a moderate scale keeps CI fast and the assertion
conservative.
"""

from __future__ import annotations

import time

from conftest import attempt_rounds, once

from repro.experiments.config import ExperimentConfig
from repro.experiments.ladder_capacity import ladder_requests
from repro.experiments.plan import collect_plan_telemetry, execute_plan
from repro.interp.executor import execute


def _pointwise(requests):
    start = time.perf_counter()
    runs = [
        execute(
            r.program,
            r.machine,
            r.params,
            layout_policy=r.layout_policy,
            sim_cache=False,
        )
        for r in requests
    ]
    return time.perf_counter() - start, runs


def _planned(requests):
    start = time.perf_counter()
    with collect_plan_telemetry() as session:
        runs = execute_plan(requests, sim_cache=False)
    return time.perf_counter() - start, runs, session


def test_bench_sweep_planner(benchmark):
    requests = ladder_requests(ExperimentConfig(scale=128))

    def compare():
        _planned(requests)  # warm allocator and caches
        best = lambda runs: min(runs, key=lambda r: r[0])  # noqa: E731
        pl_s, pl_runs, session = best(_planned(requests) for _ in range(3))
        pw_s, pw_runs = _pointwise(requests)
        return pw_s, pw_runs, pl_s, pl_runs, session

    def timing_ok(measured):
        pw_s, _, pl_s, _, _ = measured
        return pw_s / pl_s >= 3.0

    pw_s, pw_runs, pl_s, pl_runs, session = once(
        benchmark, lambda: attempt_rounds(compare, timing_ok)
    )

    # Exactness first: the plan answers every point bit-identically.
    for req, pw, pl in zip(requests, pw_runs, pl_runs):
        assert pl.counters == pw.counters, (
            f"{req.program.name} on {req.machine.name} diverged under the plan"
        )
        assert pl.time == pw.time

    reduction = session.accesses_requested / max(1, session.accesses_simulated)
    benchmark.extra_info["points"] = session.points
    benchmark.extra_info["groups"] = session.groups
    benchmark.extra_info["access_reduction"] = round(reduction, 1)
    benchmark.extra_info["pointwise_ms"] = round(pw_s * 1e3, 1)
    benchmark.extra_info["planned_ms"] = round(pl_s * 1e3, 1)
    print(f"\n  ladder sweep: {session.points} points in {session.groups} groups"
          f" ({session.traces_generated} traces generated)")
    print(f"  accesses: {session.accesses_requested} requested, "
          f"{session.accesses_simulated} simulated ({reduction:.1f}x fewer)")
    print(f"  pointwise {pw_s * 1e3:8.1f} ms")
    print(f"  planned   {pl_s * 1e3:8.1f} ms  ({pw_s / pl_s:.1f}x)")

    assert session.by_rule["capacity"] == session.points, (
        "the ladder should collapse entirely under the capacity rule"
    )
    assert reduction >= 10.0, "capacity collapse lost its access reduction"
    # Conservative wall-clock bar at benchmark scale; BENCH_sweep.json
    # carries the >=5x acceptance figure at scale 16.
    assert pw_s / pl_s >= 3.0, "planned sweep regressed against pointwise"

"""Micro-batching service — N concurrent clients, one execution.

Four clients submit the same capacity-ladder sweep concurrently through
the daemon; the baseline runs the identical workload per-request and
pointwise, once per client.  The daemon's content-keyed dedup collapses
identical in-flight points onto one future and the micro-batcher hands
each coalesced batch to the sweep planner, so the service side simulates
a small fraction of the accesses the baseline pays.

Three claims are asserted here:

* every client's every point is bit-identical to pointwise execution
  (the service exists to change wall clock, never numbers);
* dedup fired (hits > 0) — concurrency collapsed onto shared work;
* the served side is several times faster end to end.

The committed trajectory (``BENCH_serve.json``, written by
``tools/bench_report.py --serve``) records the headline figure at the
acceptance scale; here a moderate scale keeps CI fast and the assertion
conservative.
"""

from __future__ import annotations

import threading
import time

from conftest import attempt_rounds, once

from repro.experiments.config import ExperimentConfig
from repro.experiments.ladder_capacity import ladder_requests
from repro.interp.executor import execute
from repro.machine.engine import simcache
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer, ServeConfig

CLIENTS = 4


def _pointwise(requests):
    start = time.perf_counter()
    runs = [
        execute(
            r.program,
            r.machine,
            r.params,
            layout_policy=r.layout_policy,
            sim_cache=False,
        )
        for r in requests
    ]
    return time.perf_counter() - start, runs


def _served(requests):
    """All clients' sweeps through one fresh daemon; returns the elapsed
    wall clock, per-client results, and the daemon's final stats block."""
    previous = simcache.get_sim_cache()
    simcache.configure_sim_cache(True)  # fresh cache: dedup must earn it
    try:
        with BackgroundServer(ServeConfig(max_batch=64, max_wait_ms=25.0)) as bg:
            results: dict[int, list] = {}
            errors: list[BaseException] = []

            def one_client(i):
                try:
                    with ServiceClient(bg.address, tenant=f"bench{i}") as c:
                        results[i] = c.simulate_batch(requests)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=one_client, args=(i,))
                for i in range(CLIENTS)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]
            with ServiceClient(bg.address) as c:
                stats = c.stats()
        return elapsed, results, stats
    finally:
        simcache._default = previous


def test_bench_serve_concurrent_clients(benchmark):
    requests = ladder_requests(ExperimentConfig(scale=128))

    def compare():
        _served(requests)  # warm allocator, imports, socket machinery
        sv_s, sv_results, stats = min(
            (_served(requests) for _ in range(2)), key=lambda r: r[0]
        )
        pw_s, pw_runs = 0.0, None
        for _ in range(CLIENTS):  # the baseline pays every client's sweep
            s, runs = _pointwise(requests)
            pw_s, pw_runs = pw_s + s, pw_runs or runs
        return pw_s, pw_runs, sv_s, sv_results, stats

    def timing_ok(measured):
        pw_s, _, sv_s, _, _ = measured
        return pw_s / sv_s >= 3.0

    pw_s, pw_runs, sv_s, sv_results, stats = once(
        benchmark, lambda: attempt_rounds(compare, timing_ok)
    )

    # Exactness first: every client, every point, bit-identical.
    assert sorted(sv_results) == list(range(CLIENTS))
    for i in range(CLIENTS):
        for req, pw, sv in zip(requests, pw_runs, sv_results[i]):
            assert sv.run.counters == pw.counters, (
                f"client {i}: {req.program.name} on {req.machine.name} "
                "diverged under the service"
            )
            assert sv.run.time == pw.time

    total_points = CLIENTS * len(requests)
    requested = CLIENTS * sum(r.counters.level_stats[0].accesses for r in pw_runs)
    simulated = stats["plan"].get("accesses_simulated", 0)
    reduction = requested / max(1, simulated)
    dedup_rate = stats["dedup_hits"] / total_points
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["points"] = total_points
    benchmark.extra_info["dedup_hits"] = stats["dedup_hits"]
    benchmark.extra_info["dedup_rate"] = round(dedup_rate, 3)
    benchmark.extra_info["batches"] = stats["batches"]
    benchmark.extra_info["access_reduction"] = round(reduction, 1)
    benchmark.extra_info["pointwise_ms"] = round(pw_s * 1e3, 1)
    benchmark.extra_info["served_ms"] = round(sv_s * 1e3, 1)
    print(f"\n  served sweep: {CLIENTS} clients x {len(requests)} points, "
          f"{stats['batches']} batches (max {stats['batch_max']})")
    print(f"  dedup: {stats['dedup_hits']} hits ({dedup_rate:.0%} of points)")
    print(f"  accesses: {requested} requested, {simulated} simulated "
          f"({reduction:.1f}x fewer)")
    print(f"  pointwise {pw_s * 1e3:8.1f} ms")
    print(f"  served    {sv_s * 1e3:8.1f} ms  ({pw_s / sv_s:.1f}x)")

    # Concurrency collapsed onto shared work: at least the duplicate
    # sweeps from the other clients must have hit in-flight futures or
    # the (fresh) sim cache rather than re-simulating.
    assert stats["dedup_hits"] > 0, "no in-flight dedup across clients"
    assert reduction >= 3.0, "service lost its simulated-access reduction"
    # Conservative wall-clock bar; BENCH_serve.json carries the headline.
    assert pw_s / sv_s >= 3.0, "served sweep regressed against pointwise"

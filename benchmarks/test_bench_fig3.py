"""Figure 3 — effective memory bandwidth of the stride-one kernels."""

from conftest import once

from repro.experiments import run_fig3


def test_bench_fig3_kernels(benchmark, cfg):
    result = once(benchmark, lambda: run_fig3(cfg))
    print()
    print(result.table().render())

    benchmark.extra_info["origin_mb_s"] = {
        k: round(v / 1e6, 1) for k, v in result.origin.bandwidths.items()
    }
    benchmark.extra_info["exemplar_mb_s"] = {
        k: round(v / 1e6, 1) for k, v in result.exemplar.bandwidths.items()
    }
    # Origin: all kernels within 20% (paper's wording)
    assert result.origin.spread() < 0.20
    # Exemplar: the 3w6r direct-mapped anomaly (footnote 3)
    bws = result.exemplar.bandwidths
    assert bws["3w6r"] < 0.7 * min(v for k, v in bws.items() if k != "3w6r")
    # padding ablation removes it
    assert result.exemplar_padded.spread() < 0.20

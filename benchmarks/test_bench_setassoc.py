"""Set-associative engine — the Origin2000 hierarchy without Python loops.

The paper's headline measurements (Figures 1-3) are taken on the
Origin2000/R10K, whose L1 *and* L2 are 2-way set-associative: before the
setassoc engine, every access of every main-battery trace ran the
reference per-access dict loop twice.  This benchmark drives the full
two-level hierarchy with the fig1 BLAS-1 traces and the fig3 kernel-suite
traces and asserts the two things the engine exists for: every per-level
counter is bit-identical to the reference simulation, and throughput is
an order of magnitude higher.

Timing uses best-of-N on both sides: container wall clocks are noisy and
a single round can swing either comparison by tens of percent.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import once

from repro.machine.hierarchy import Hierarchy
from repro.machine.layout import build_layout
from repro.programs import KERNEL_NAMES, blas1, make_kernel
from repro.trace.generator import TraceGenerator

PASSES = 8  # kernels are conventionally timed over repeated passes


def _trace(prog, spec):
    bound = prog.bind_params(None)
    layout = build_layout(prog, bound, spec.default_layout)
    tr = TraceGenerator(prog, bound, layout).generate()
    return np.tile(tr.addresses, PASSES), np.tile(tr.is_write, PASSES)


@pytest.fixture(scope="module")
def workload(cfg):
    """The fig1 + fig3 access traces on the Origin2000 machine."""
    spec = cfg.origin
    traces = []
    n_stream = cfg.stream_elements(spec)
    for kind in ("copy", "scal", "axpy", "dot"):
        traces.append((kind, *_trace(blas1(kind, n_stream), spec)))
    n_kernel = cfg.exemplar_kernel_elements()
    for name in KERNEL_NAMES:
        traces.append((name, *_trace(make_kernel(name, n_kernel), spec)))
    return spec, traces


def _simulate(spec, traces, engine):
    results = []
    start = time.perf_counter()
    for _, addrs, is_write in traces:
        h = Hierarchy.from_spec(spec, engine)
        h.run_trace(addrs, is_write)
        h.flush()
        results.append(h.result())
    return time.perf_counter() - start, results


def test_bench_setassoc_engine_speedup(benchmark, workload):
    spec, traces = workload
    assert all(c.engine == "setassoc" for c in spec.build_caches("auto"))

    def compare():
        _simulate(spec, traces, "auto")  # warm allocator and caches
        best = lambda runs: min(runs, key=lambda r: r[0])  # noqa: E731
        # A loaded container can slow either side of one round by tens of
        # percent; re-attempt a few times and keep the cleanest round.
        rounds = []
        for _ in range(3):
            eng_s, eng_results = best(
                _simulate(spec, traces, "auto") for _ in range(6)
            )
            ref_s, ref_results = best(
                _simulate(spec, traces, "reference") for _ in range(3)
            )
            rounds.append((eng_s, eng_results, ref_s, ref_results))
            if ref_s / eng_s >= 10.0:
                break
        return max(rounds, key=lambda r: r[2] / r[0])

    eng_s, eng_results, ref_s, ref_results = once(benchmark, compare)

    # Exactness first: the speedup is only meaningful because both levels'
    # counters — including the ordered L1 event stream L2 consumes — are
    # bit-identical to the reference simulation.
    for (name, _, _), ref, eng in zip(traces, ref_results, eng_results):
        assert eng == ref, f"{name}: setassoc diverged from reference"

    total = sum(len(addrs) for _, addrs, _ in traces)
    speedup = ref_s / eng_s
    print()
    print(
        f"setassoc engine: {total} accesses x 2 levels, "
        f"reference {ref_s * 1e3:.1f} ms, engine {eng_s * 1e3:.1f} ms, "
        f"{speedup:.1f}x"
    )
    benchmark.extra_info["accesses"] = total
    benchmark.extra_info["reference_ms"] = round(ref_s * 1e3, 1)
    benchmark.extra_info["engine_ms"] = round(eng_s * 1e3, 1)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= 10.0

"""Core-engine micro-benchmarks: simulator throughput, trace generation,
fusion solvers, and the machine-balance measurement methodology."""

import numpy as np
import pytest

from conftest import once

from repro.balance import measure_cachebench, measure_stream
from repro.fusion import greedy_partitioning, optimal_partitioning
from repro.interp import execute
from repro.machine import Hierarchy
from repro.programs import make_kernel
from repro.trace import generate_trace


def test_bench_cache_simulator_throughput(benchmark, cfg):
    """Accesses/second through the two-level hierarchy (the cost driver of
    every experiment)."""
    machine = cfg.origin
    rng = np.random.default_rng(1)
    addrs = (rng.integers(0, 1 << 20, size=200_000) * 8).astype(np.int64)
    writes = rng.random(200_000) < 0.3

    def run():
        h = Hierarchy.from_spec(machine)
        h.run_trace(addrs, writes)
        return h.result()

    result = benchmark(run)
    benchmark.extra_info["accesses"] = len(addrs)
    assert result.level_stats[0].accesses == len(addrs)


def test_bench_trace_generation(benchmark, cfg):
    """Vectorized trace generation rate (addresses/second)."""
    prog = make_kernel("2w5r", cfg.stream_elements())
    trace = benchmark(lambda: generate_trace(prog))
    benchmark.extra_info["trace_length"] = len(trace)


def test_bench_execute_kernel(benchmark, cfg):
    """End-to-end: one kernel through trace + hierarchy + timing."""
    prog = make_kernel("1w2r", cfg.stream_elements())
    run = benchmark(lambda: execute(prog, cfg.origin))
    benchmark.extra_info["simulated_ms"] = round(run.seconds * 1e3, 3)


def test_bench_stream_analog(benchmark, cfg):
    res = once(benchmark, lambda: measure_stream(cfg.origin))
    print()
    print(res.describe())
    assert res.best == pytest.approx(cfg.origin.memory_bandwidth, rel=0.02)


def test_bench_cachebench_analog(benchmark, cfg):
    res = once(benchmark, lambda: measure_cachebench(cfg.origin))
    print()
    print(res.describe())
    assert len(res.bandwidths) == 3


@pytest.mark.parametrize("n_loops", [6, 9, 12])
def test_bench_exact_fusion_solver(benchmark, n_loops):
    """The exponential exact solver's practical range."""
    rng = np.random.default_rng(n_loops)
    arrays = list("ABCDEFGH")
    node_arrays = [
        set(rng.choice(arrays, size=3, replace=False)) for _ in range(n_loops)
    ]
    from repro.fusion import FusionGraph

    g = FusionGraph.build(node_arrays, preventing=[(0, n_loops - 1)])
    sol = benchmark(lambda: optimal_partitioning(g))
    benchmark.extra_info["cost"] = sol.cost


def test_bench_greedy_fusion_scales(benchmark):
    """The polynomial heuristic on a 60-loop graph."""
    rng = np.random.default_rng(9)
    arrays = [f"arr{i}" for i in range(20)]
    node_arrays = [
        set(rng.choice(arrays, size=3, replace=False)) for _ in range(60)
    ]
    preventing = [(i, i + 15) for i in range(0, 45, 15)]
    from repro.fusion import FusionGraph, is_legal

    g = FusionGraph.build(node_arrays, preventing=preventing)
    sol = benchmark(lambda: greedy_partitioning(g))
    assert is_legal(g, sol.partitioning)
    benchmark.extra_info["groups"] = sol.partitioning.n_groups

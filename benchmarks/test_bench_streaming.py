"""Streaming trace pipeline — bounded memory at full throughput.

The paper's expensive artifact is the mm trace: O(N^3) accesses that the
materialized pipeline must hold (plus generation transients) before the
first access reaches the cache simulator.  The streaming pipeline
generates the trace in execution-order chunks fused with simulation, so
peak memory is O(chunk); the overlap variant additionally prefetches
generation on a background thread.

Two claims are asserted here:

* counters are bit-identical across all three pipelines (the streaming
  machinery exists to change memory, never numbers);
* streamed throughput is at worst modestly below materialized (in
  practice it is *faster*: chunked generation avoids the giant
  intermediate buffers of one-shot vectorized generation).

Peak RSS is measured in subprocess workers (``tools/bench_report.py
--streaming-worker``) because ``ru_maxrss`` is a process-lifetime
high-water mark — measuring all modes in one process would charge the
streamed modes with the materialized mode's footprint.  The committed
trajectory (``BENCH_streaming.json``) records the headline ≥5x reduction
at the largest scale; here a moderate scale keeps CI fast and the
assertion conservative.

Timing uses best-of-N on both sides: container wall clocks are noisy and
a single round can swing either comparison by tens of percent.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest
from conftest import attempt_rounds, once

from repro.interp.executor import execute
from repro.programs import matmul

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_report.py"

#: Accesses per streamed chunk — small enough that the RSS gap is visible
#: even at benchmark scale.
CHUNK = 1 << 19


@pytest.fixture(scope="module")
def workload(cfg):
    """The mm program at benchmark scale on the Origin2000."""
    from repro.experiments.config import ExperimentConfig

    bench_cfg = ExperimentConfig(scale=64)
    return bench_cfg.origin, matmul(bench_cfg.mm_side())


def _run(spec, prog, stream):
    start = time.perf_counter()
    run = execute(
        prog,
        spec,
        sim_cache=False,
        stream=stream,
        chunk_accesses=CHUNK if stream else None,
    )
    return time.perf_counter() - start, run


def test_bench_streaming_throughput(benchmark, workload):
    spec, prog = workload

    def compare():
        _run(spec, prog, False)  # warm allocator and caches
        best = lambda runs: min(runs, key=lambda r: r[0])  # noqa: E731
        mat_s, mat = best(_run(spec, prog, False) for _ in range(3))
        ser_s, ser = best(_run(spec, prog, "serial") for _ in range(3))
        ovl_s, ovl = best(_run(spec, prog, "overlap") for _ in range(3))
        return mat_s, mat, ser_s, ser, ovl_s, ovl

    def timing_ok(measured):
        mat_s, _, ser_s, _, ovl_s, _ = measured
        return ser_s <= mat_s * 1.25 and ovl_s <= mat_s * 1.25

    # Best-of-3 per side per attempt, plus up to 3 attempts before the
    # comparison is allowed to fail: a real regression survives all of
    # them, a scheduler hiccup does not.
    mat_s, mat, ser_s, ser, ovl_s, ovl = once(
        benchmark, lambda: attempt_rounds(compare, timing_ok)
    )

    # Exactness first: all three pipelines are the same instrument.
    assert ser.counters == mat.counters
    assert ovl.counters == mat.counters
    assert ser.time == mat.time and ovl.time == mat.time

    accesses = mat.counters.loads + mat.counters.stores
    benchmark.extra_info["accesses"] = accesses
    benchmark.extra_info["materialized_ms"] = round(mat_s * 1e3, 1)
    benchmark.extra_info["streamed_ms"] = round(ser_s * 1e3, 1)
    benchmark.extra_info["overlap_ms"] = round(ovl_s * 1e3, 1)
    print(f"\n  mm trace: {accesses} accesses")
    print(f"  materialized {mat_s * 1e3:8.1f} ms")
    print(f"  streamed     {ser_s * 1e3:8.1f} ms  (x{ser_s / mat_s:.2f})")
    print(f"  overlap      {ovl_s * 1e3:8.1f} ms  (x{ovl_s / mat_s:.2f})")

    # The acceptance bar is <=10% regression; best-of-3 in a noisy
    # container gets a little headroom on top of that.
    assert ser_s <= mat_s * 1.25, "streamed pipeline regressed throughput"
    assert ovl_s <= mat_s * 1.25, "overlap pipeline regressed throughput"


def test_bench_streaming_peak_rss(benchmark):
    """Subprocess-per-mode RSS comparison at benchmark scale."""

    def measure():
        results = {}
        for mode in ("materialized", "streamed"):
            out = subprocess.run(
                [
                    sys.executable, str(_TOOL),
                    "--streaming-worker", mode,
                    "--scale", "32",
                    "--rounds", "1",
                    "--chunk-accesses", str(CHUNK),
                ],
                capture_output=True, text=True, timeout=600, check=True,
            )
            results[mode] = json.loads(out.stdout)
        return results

    results = once(benchmark, measure)
    assert results["streamed"]["digest"] == results["materialized"]["digest"]
    mat_rss = results["materialized"]["peak_rss_bytes"]
    str_rss = results["streamed"]["peak_rss_bytes"]
    reduction = mat_rss / str_rss
    benchmark.extra_info["materialized_rss_mb"] = round(mat_rss / 2**20)
    benchmark.extra_info["streamed_rss_mb"] = round(str_rss / 2**20)
    benchmark.extra_info["rss_reduction"] = round(reduction, 2)
    print(f"\n  peak RSS: materialized {mat_rss / 2**20:.0f} MB, "
          f"streamed {str_rss / 2**20:.0f} MB ({reduction:.1f}x reduction)")
    # At this moderate scale the interpreter baseline (~40 MB) dilutes the
    # ratio; the committed BENCH_streaming.json shows >=5x at scale 16.
    assert reduction >= 2.0, "streaming no longer bounds generation memory"

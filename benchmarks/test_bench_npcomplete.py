"""E9 — the k-way-cut reduction: both optimizers agree on every instance."""

from conftest import once

from repro.experiments import run_e9


def test_bench_e9_reduction(benchmark):
    result = once(benchmark, lambda: run_e9(trials=8))
    print()
    print(result.table().render())
    assert result.all_equal
    benchmark.extra_info["instances"] = len(result.checks)

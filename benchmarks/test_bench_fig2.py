"""Figure 2 — demand/supply ratios and CPU-utilization bounds."""

from conftest import once

from repro.experiments import PAPER_RATIOS, run_fig2


def test_bench_fig2_ratios(benchmark, cfg):
    result = once(benchmark, lambda: run_fig2(cfg))
    print()
    print(result.table().render())

    for r in result.ratios:
        benchmark.extra_info[r.program] = {
            "ratios": [round(x, 1) for x in r.ratios],
            "cpu_bound": round(r.cpu_utilization_bound, 3),
        }
        # memory is the scarcest resource for every program
        assert r.limiting_channel == "Mem-L2"
        # "over 80% of CPU capacity is left unused"
        assert r.cpu_utilization_bound < 0.25
    benchmark.extra_info["paper"] = {k: list(v) for k, v in PAPER_RATIOS.items()}

"""Section 2.1 — the motivating example: the write loop takes ~2x the
read loop, on both machines, because bandwidth (not latency) governs."""

import pytest

from conftest import once

from repro.interp import execute
from repro.programs import sec21_read_loop, sec21_write_loop


def test_bench_sec21_write_vs_read(benchmark, cfg):
    def run():
        out = {}
        for machine in (cfg.origin, cfg.exemplar):
            n = cfg.stream_elements(machine)
            w = execute(sec21_write_loop(n), machine)
            r = execute(sec21_read_loop(n), machine)
            out[machine.name] = (w.seconds, r.seconds)
        return out

    result = once(benchmark, run)
    print()
    for machine, (w, r) in result.items():
        ratio = w / r
        print(f"  {machine}: write {w * 1e3:.3f} ms, read {r * 1e3:.3f} ms, ratio {ratio:.2f}")
        # paper: 0.104/0.054 = 1.93 on Origin, 0.055/0.036 = 1.53 on Exemplar
        assert ratio == pytest.approx(2.0, rel=0.15)
        benchmark.extra_info[machine] = round(ratio, 3)

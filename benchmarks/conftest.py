"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, records the
headline numbers in ``extra_info`` (visible in ``pytest-benchmark``'s
output and JSON), prints the same rows the paper reports, and asserts the
claims that define the figure's shape.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def cfg() -> ExperimentConfig:
    return ExperimentConfig(scale=128)


def once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer (these are
    second-scale simulations; statistical rounds would waste minutes)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

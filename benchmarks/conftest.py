"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures, records the
headline numbers in ``extra_info`` (visible in ``pytest-benchmark``'s
output and JSON), prints the same rows the paper reports, and asserts the
claims that define the figure's shape.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig


@pytest.fixture(scope="session")
def cfg() -> ExperimentConfig:
    return ExperimentConfig(scale=128)


def once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer (these are
    second-scale simulations; statistical rounds would waste minutes)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def attempt_rounds(fn, accept, rounds=3):
    """Guard for wall-clock comparisons: re-measure until ``accept(result)``
    holds, up to ``rounds`` attempts, returning the last result.

    Container clocks are noisy enough that a single A-vs-B comparison —
    even one already taking best-of-N per side — occasionally lands past
    its threshold on scheduler jitter alone.  A genuine regression fails
    every attempt; noise does not survive three.
    """
    result = fn()
    for _ in range(rounds - 1):
        if accept(result):
            break
        result = fn()
    return result

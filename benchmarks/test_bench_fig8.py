"""Figures 7/8 — store elimination on both machines."""

import pytest

from conftest import once

from repro.experiments import PAPER_SECONDS, run_fig8


def test_bench_fig8_store_elimination(benchmark, cfg):
    result = once(benchmark, lambda: run_fig8(cfg))
    print()
    print(result.table().render())

    for machine, runs in result.runs.items():
        secs = [r.seconds for r in runs]
        assert secs[0] > secs[1] > secs[2]
        # paper: combined ~2x (Origin exactly 2.0, Exemplar 1.7)
        assert result.speedup(machine) == pytest.approx(2.0, rel=0.2)
        benchmark.extra_info[machine] = {
            "seconds": [round(s, 6) for s in secs],
            "speedup": round(result.speedup(machine), 2),
        }
    benchmark.extra_info["paper_seconds"] = {k: list(v) for k, v in PAPER_SECONDS.items()}

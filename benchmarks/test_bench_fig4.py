"""Figure 4 — bandwidth-minimal vs edge-weighted fusion counterexample."""

from conftest import once

from repro.experiments import run_fig4


def test_bench_fig4_fusion(benchmark, cfg):
    result = once(benchmark, lambda: run_fig4(cfg))
    print()
    print(result.table().render())

    # the exact numbers of the paper's example
    assert result.no_fusion_cost == 20
    assert result.optimal_cost == 7
    assert result.edge_weighted_bandwidth_cost == 8
    assert result.edge_weighted_cross == 2
    assert result.optimal_edge_weight == 3
    # simulated traffic ranks the same way
    m = result.memory_bytes
    assert m["none"] > m["edge"] > m["bandwidth"]
    benchmark.extra_info["array_loads"] = {
        "none": result.no_fusion_cost,
        "bandwidth_minimal": result.optimal_cost,
        "edge_weighted": result.edge_weighted_bandwidth_cost,
    }
    benchmark.extra_info["simulated_mem_bytes"] = dict(m)

"""Figure 5 — the minimal hypergraph cut: correctness and the claimed
O(E^3 + V) scaling (cubic-ish in arrays, linear in loops)."""

import pytest

from repro.experiments import random_hypergraph, run_fig5
from repro.fusion import minimal_hyperedge_cut


@pytest.mark.parametrize("n_edges", [8, 16, 32, 64])
def test_bench_fig5_edge_scaling(benchmark, n_edges):
    """Solver time as the hyperedge (array) count grows."""
    hg = random_hypergraph(16, n_edges, seed=7 + n_edges)
    result = benchmark(lambda: minimal_hyperedge_cut(hg, 0, 15))
    benchmark.extra_info["n_edges"] = n_edges
    benchmark.extra_info["cut_weight"] = result.weight


@pytest.mark.parametrize("n_nodes", [16, 64, 256, 1024])
def test_bench_fig5_node_scaling(benchmark, n_nodes):
    """Solver time as the loop count grows with fixed hyperedge structure:
    should stay nearly flat (linear in V with a tiny constant)."""
    base = random_hypergraph(16, 24, seed=7)
    from repro.fusion import Hypergraph

    hg = Hypergraph(n_nodes, base.edges)
    result = benchmark(lambda: minimal_hyperedge_cut(hg, 0, 15))
    benchmark.extra_info["n_nodes"] = n_nodes
    benchmark.extra_info["cut_weight"] = result.weight


def test_bench_fig5_summary(benchmark):
    from conftest import once

    result = once(benchmark, run_fig5)
    print()
    print(result.table().render())
    weights = {p.cut_weight for p in result.node_scaling}
    assert len(weights) == 1  # structure fixed => cut fixed

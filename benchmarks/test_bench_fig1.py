"""Figure 1 — program and machine balance table."""

from conftest import once

from repro.experiments import PAPER_BALANCE, run_fig1


def test_bench_fig1_balance(benchmark, cfg):
    result = once(benchmark, lambda: run_fig1(cfg))
    print()
    print(result.table().render())

    machine_mem = result.machine.balance[-1]
    for b in result.balances:
        benchmark.extra_info[b.program] = [round(x, 2) for x in b.bytes_per_flop]
        if b.program != "mm(-O3)":
            assert b.memory_balance > 3 * machine_mem
    # the blocking collapse (paper: 5.9 -> 0.04)
    assert (
        result.by_name("mm(-O3)").memory_balance
        < result.by_name("mm(-O2)").memory_balance / 4
    )
    benchmark.extra_info["paper"] = {k: list(v) for k, v in PAPER_BALANCE.items()}

"""Simulation engines — speed and exactness of the vectorized fast paths.

Two comparisons, both against the reference ``Cache.run`` Python loop:

* the direct-mapped engine on the Exemplar preset, driven by the Figure 1
  BLAS-1 traces and the Figure 3 kernel-suite traces (the workloads the
  runner actually simulates), asserting bit-identical counters and the
  order-of-magnitude speedup the engine exists for;
* the stack-distance engine on a fully-associative geometry, where one
  ``miss_curve`` pass answers every capacity at once and is checked
  exactly against an independent reference simulation per capacity.

Timing uses best-of-N on both sides: container wall clocks are noisy and
a single round can swing either comparison by tens of percent.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from conftest import once

from repro.machine import miss_curve
from repro.machine.cache import Cache, CacheGeometry
from repro.machine.engine import StackDistanceEngine
from repro.machine.hierarchy import Hierarchy
from repro.machine.layout import build_layout
from repro.programs import KERNEL_NAMES, blas1, make_kernel
from repro.trace.generator import TraceGenerator

PASSES = 8  # kernels are conventionally timed over repeated passes


def _trace(prog, spec):
    bound = prog.bind_params(None)
    layout = build_layout(prog, bound, spec.default_layout)
    tr = TraceGenerator(prog, bound, layout).generate()
    return np.tile(tr.addresses, PASSES), np.tile(tr.is_write, PASSES)


@pytest.fixture(scope="module")
def workload(cfg):
    """The fig1 + fig3 access traces on the Exemplar machine."""
    spec = cfg.exemplar
    traces = []
    n_kernel = cfg.exemplar_kernel_elements()
    for name in KERNEL_NAMES:
        traces.append((name, *_trace(make_kernel(name, n_kernel), spec)))
    n_stream = cfg.stream_elements(spec)
    for kind in ("copy", "scal", "axpy", "dot"):
        traces.append((kind, *_trace(blas1(kind, n_stream), spec)))
    return spec, traces


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _simulate(spec, traces, engine):
    results = []
    start = time.perf_counter()
    for _, addrs, is_write in traces:
        h = Hierarchy.from_spec(spec, engine)
        h.run_trace(addrs, is_write)
        h.flush()
        results.append(h.result())
    return time.perf_counter() - start, results


def test_bench_direct_engine_speedup(benchmark, workload):
    spec, traces = workload

    def compare():
        _simulate(spec, traces, "auto")  # warm allocator and caches
        best = lambda runs: min(runs, key=lambda r: r[0])  # noqa: E731
        # A loaded container can slow either side of one round by tens of
        # percent; re-attempt a few times and keep the cleanest round.
        rounds = []
        for _ in range(3):
            eng_s, eng_results = best(
                _simulate(spec, traces, "auto") for _ in range(6)
            )
            ref_s, ref_results = best(
                _simulate(spec, traces, "reference") for _ in range(3)
            )
            rounds.append((eng_s, eng_results, ref_s, ref_results))
            if ref_s / eng_s >= 10.0:
                break
        return max(rounds, key=lambda r: r[2] / r[0])

    eng_s, eng_results, ref_s, ref_results = once(benchmark, compare)

    # Exactness first: the speedup is only meaningful because every
    # counter (hits, misses, evictions, writebacks, downstream traffic)
    # is bit-identical to the reference simulation, conflict anomalies
    # included.
    for (name, _, _), ref, eng in zip(traces, ref_results, eng_results):
        assert eng == ref, f"{name}: engine diverged from reference"

    total = sum(len(addrs) for _, addrs, _ in traces)
    speedup = ref_s / eng_s
    print()
    print(
        f"direct-mapped engine: {total} accesses, "
        f"reference {ref_s * 1e3:.1f} ms, engine {eng_s * 1e3:.1f} ms, "
        f"{speedup:.1f}x"
    )
    benchmark.extra_info["accesses"] = total
    benchmark.extra_info["reference_ms"] = round(ref_s * 1e3, 1)
    benchmark.extra_info["engine_ms"] = round(eng_s * 1e3, 1)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= 10.0


def test_bench_miss_curve_vs_reference(benchmark, cfg):
    spec = cfg.exemplar
    line = spec.cache_levels[0].geometry.line_size
    addrs, is_write = _trace(blas1("axpy", cfg.stream_elements(spec)), spec)
    # A full power-of-two miss curve: the reference needs one complete
    # simulation per capacity, the stack-distance pass answers them all.
    capacities = tuple(1 << k for k in range(16))

    def compare():
        miss_curve(addrs, line)  # warm allocator and caches
        curve_s = min(
            _timed(lambda: miss_curve(addrs, line))[0] for _ in range(3)
        )
        curve = miss_curve(addrs, line)

        t0 = time.perf_counter()
        ref_misses = {}
        for cap in capacities:
            cache = Cache("L1", CacheGeometry(cap * line, line, cap))
            cache.run(addrs, is_write)
            ref_misses[cap] = cache.stats.misses
        ref_s = time.perf_counter() - t0
        return curve, curve_s, ref_misses, ref_s

    curve, curve_s, ref_misses, ref_s = once(benchmark, compare)

    for cap, expect in ref_misses.items():
        assert curve.misses(cap) == expect, f"miss_curve wrong at C={cap}"

    # One stack-distance pass also drives the fully-associative engine;
    # its counters must match the reference at an arbitrary capacity.
    cap = capacities[6]
    geometry = CacheGeometry(cap * line, line, cap)
    ref = Cache("L1", geometry)
    ref.run(addrs, is_write)
    ref.flush()
    eng = StackDistanceEngine("L1", geometry)
    eng.run(addrs, is_write, collect_events=False)
    eng.flush()
    assert eng.stats == ref.stats

    speedup = ref_s / curve_s
    print()
    print(
        f"miss_curve: {len(addrs)} accesses, {len(capacities)} capacities, "
        f"reference {ref_s * 1e3:.1f} ms, one pass {curve_s * 1e3:.1f} ms, "
        f"{speedup:.0f}x"
    )
    benchmark.extra_info["reference_ms"] = round(ref_s * 1e3, 1)
    benchmark.extra_info["curve_ms"] = round(curve_s * 1e3, 1)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= 10.0

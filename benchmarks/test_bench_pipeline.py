"""E12 — the full compiler strategy, stage by stage."""

from conftest import once

from repro.experiments import run_e12


def test_bench_e12_pipeline(benchmark, cfg):
    result = once(benchmark, lambda: run_e12(cfg))
    print()
    print(result.pipeline.describe())
    print(result.table().render())

    times = [run.seconds for _, run in result.runs]
    assert times[-1] < times[0]
    benchmark.extra_info["stage_ms"] = {
        label: round(run.seconds * 1e3, 3) for label, run in result.runs
    }

"""E11 — NAS/SP per-subroutine memory-bandwidth utilization (paper: 5 of 7
subroutines at >= 84%)."""

from conftest import once

from repro.experiments import run_e11


def test_bench_e11_sp_utilization(benchmark, cfg):
    result = once(benchmark, lambda: run_e11(cfg))
    print()
    print(result.table().render())

    assert result.saturated_count == 5
    benchmark.extra_info["utilization"] = {
        s.name: round(s.utilization, 3) for s in result.subroutines
    }

"""E10 — the blocking ablation behind Figure 1's mm(-O2)/mm(-O3) pair."""

from conftest import once

from repro.experiments import run_e10


def test_bench_e10_blocking(benchmark, cfg):
    result = once(benchmark, lambda: run_e10(cfg))
    print()
    print(result.table().render())

    base = result.memory_balance("jki (-O2)")
    best = min(
        balance.memory_balance
        for name, balance, _ in result.variants
        if name.startswith("blocked t=") and "no-SR" not in name
    )
    assert best < base / 4
    benchmark.extra_info["memory_balance"] = {
        name: round(balance.memory_balance, 3) for name, balance, _ in result.variants
    }

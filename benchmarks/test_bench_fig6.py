"""Figure 6 — array shrinking and peeling: storage and traffic."""

from conftest import once

from repro.experiments import run_fig6


def test_bench_fig6_storage(benchmark, cfg):
    result = once(benchmark, lambda: run_fig6(cfg))
    print()
    print(result.table().render())

    n = result.n
    assert result.storage_bytes("original") == 2 * n * n * 8
    assert result.storage_bytes("optimized") == 2 * n * 8
    # the compiler pipeline derives the same storage as the paper's hand
    # transformation, from the fused version, mechanically
    assert result.storage_bytes("auto-derived") == result.storage_bytes("optimized")
    assert (
        result.runs["auto-derived"].counters.memory_bytes
        == result.runs["optimized"].counters.memory_bytes
    )
    for level in range(3):
        assert (
            result.runs["optimized"].counters.channel_bytes[level]
            < result.runs["original"].counters.channel_bytes[level]
        )
    benchmark.extra_info["declared_bytes"] = {
        v: result.storage_bytes(v)
        for v in ("original", "fused", "optimized", "auto-derived")
    }
    benchmark.extra_info["mem_bytes"] = {
        v: r.counters.memory_bytes for v, r in result.runs.items()
    }

"""Benchmarks for the lineage-extension experiments (E13–E16)."""

from conftest import once

from repro.experiments import run_e13, run_e14, run_e15, run_e16


def test_bench_e13_replacement(benchmark, cfg):
    result = once(benchmark, lambda: run_e13(cfg))
    print()
    print(result.table().render())
    for row in result.detail.rows:
        assert row.opt_bytes <= row.lru_bytes
    fig7 = result.row("fig7")
    assert fig7.compiler_gain > fig7.opt_gain
    benchmark.extra_info["opt_gain"] = {r.program: round(r.opt_gain, 3) for r in result.detail.rows}


def test_bench_e14_intrinsic(benchmark, cfg):
    result = once(benchmark, lambda: run_e14(cfg))
    print()
    print(result.table().render())
    assert (
        result.row("fig6_optimized").intrinsic.total_bytes
        < result.row("fig6_original").intrinsic.total_bytes / 10
    )
    benchmark.extra_info["headroom"] = {
        r.program: round(r.headroom, 3) for r in result.detail.rows
    }


def test_bench_e15_prediction(benchmark, cfg):
    result = once(benchmark, lambda: run_e15(cfg))
    print()
    print(result.table().render())
    assert result.max_error(same_geometry=True) < 1e-9
    benchmark.extra_info["max_cross_geometry_error"] = round(
        result.max_error(same_geometry=False), 4
    )


def test_bench_e16_regrouping(benchmark, cfg):
    result = once(benchmark, lambda: run_e16(cfg))
    print()
    print(result.table().render())
    assert result.bandwidths["regrouped"] > 1.5 * result.bandwidths["conflicted"]
    benchmark.extra_info["bandwidth_mb_s"] = {
        k: round(v / 1e6, 1) for k, v in result.bandwidths.items()
    }


def test_bench_e17_survey(benchmark, cfg):
    from repro.experiments import run_e17

    result = once(benchmark, lambda: run_e17(cfg))
    print()
    print(result.table().render())
    import pytest

    for kind in ("scal", "axpy", "dot"):
        row = result.row(f"blas1_{kind}")
        assert row.balance.memory_balance == pytest.approx(row.expected_memory, rel=0.02)
    benchmark.extra_info["memory_balance"] = {
        r.program: round(r.balance.memory_balance, 2) for r in result.detail.rows
    }


def test_bench_e18_three_c(benchmark, cfg):
    from repro.experiments import run_e18

    result = once(benchmark, lambda: run_e18(cfg))
    print()
    print(result.table().render())
    anomaly = result.row(cfg.exemplar.name, "3w6r")
    assert anomaly.classification.conflict_fraction >= 0.4
    benchmark.extra_info["exemplar_3w6r_conflict_fraction"] = round(
        anomaly.classification.conflict_fraction, 3
    )

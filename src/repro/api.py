"""The stable public API of the reproduction.

Three verbs cover the paper's workflow, without reaching into deep module
paths::

    import repro
    from repro.lang import parse  # or ProgramBuilder

    report = repro.measure_balance(program, machine)   # Figures 1-2
    sim = repro.simulate(program, machine)             # the instrument
    est = repro.predict(program, machine)              # analytic, no trace
    opt = repro.optimize(program, machine)             # Section 3's strategy

plus :func:`run_experiment` / :func:`run_experiments` for the paper's
figure battery (the same orchestrator the ``repro-experiments`` CLI
drives).  Everything here wraps the underlying modules
(:mod:`repro.interp.executor`, :mod:`repro.transforms.pipeline`,
:mod:`repro.balance.model`, :mod:`repro.experiments.orchestrator`) —
those remain importable, but their shapes may change between releases;
this facade will not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from .balance.analytic import predict_run
from .balance.model import (
    BalanceRatios,
    ProgramBalance,
    demand_supply_ratios,
    machine_balance,
    program_balance,
    required_memory_bandwidth,
)
from .experiments.config import ExperimentConfig
from .experiments.orchestrator import run_battery
from .experiments.plan import SimRequest, run_batch
from .experiments.registry import EXPERIMENTS
from .experiments.result import ExperimentResult
from .errors import ReproError
from .interp.executor import MachineRun, execute
from .lang.program import Program
from .machine.spec import MachineSpec
from .transforms.pipeline import PipelineResult
from .transforms.pipeline import optimize as _pipeline_optimize


@dataclass(frozen=True)
class SimulationResult:
    """What :func:`simulate` measures for one program on one machine.

    (Distinct from the simulation cache's internal
    ``machine.engine.simcache.SimulationResult``, which stores raw
    counters; this is the user-facing summary.)
    """

    program: str
    machine: str
    seconds: float
    mflops: float
    flops: int
    loads: int
    stores: int
    channel_names: tuple[str, ...]
    channel_bytes: tuple[int, ...]
    memory_bytes: int
    effective_bandwidth: float  # bytes/second on the memory channel
    run: MachineRun  # the full instrument readout

    def describe(self) -> str:
        return self.run.describe()


@dataclass(frozen=True)
class BalanceReport:
    """Demand (program balance), supply (machine balance) and their ratio."""

    balance: ProgramBalance
    machine_balance: tuple[float, ...]
    ratios: BalanceRatios
    required_memory_bandwidth: float  # B/s needed to remove the bottleneck

    @property
    def memory_balance(self) -> float:
        return self.balance.memory_balance

    @property
    def limiting_channel(self) -> str:
        return self.ratios.limiting_channel

    @property
    def cpu_utilization_bound(self) -> float:
        return self.ratios.cpu_utilization_bound

    def describe(self) -> str:
        return self.balance.describe() + "\n" + self.ratios.describe()


@dataclass(frozen=True)
class OptimizationReport:
    """What the compiler strategy did to a program (and bought, if a
    machine was provided to measure on)."""

    original: Program
    optimized: Program
    applied_stages: tuple[str, ...]
    pipeline: PipelineResult
    before: SimulationResult | None = None
    after: SimulationResult | None = None

    @property
    def changed(self) -> bool:
        return bool(self.applied_stages)

    @property
    def speedup(self) -> float | None:
        if self.before is None or self.after is None or not self.after.seconds:
            return None
        return self.before.seconds / self.after.seconds

    @property
    def memory_bytes_saved(self) -> int | None:
        if self.before is None or self.after is None:
            return None
        return self.before.memory_bytes - self.after.memory_bytes

    def describe(self) -> str:
        text = self.pipeline.describe()
        if self.speedup is not None:
            text += (
                f"\nmeasured: {self.before.seconds * 1e3:.3f} ms -> "
                f"{self.after.seconds * 1e3:.3f} ms ({self.speedup:.2f}x), "
                f"memory bytes {self.before.memory_bytes:,} -> "
                f"{self.after.memory_bytes:,}"
            )
        return text


def simulate(
    program: Program,
    machine: MachineSpec,
    *,
    params: Mapping[str, int] | None = None,
    engine: str | None = None,
    passes: int = 1,
    warmup_passes: int = 0,
    shards: int | None = None,
    cores: int | None = None,
) -> SimulationResult:
    """Run ``program`` through the simulated ``machine`` and measure it.

    Wraps the trace generator + :meth:`Hierarchy.run_trace` + the timing
    model (:func:`repro.interp.executor.execute`).  ``shards`` runs the
    set-sharded parallel simulation (bit-identical counters; falls back
    to serial when the hierarchy cannot be partitioned exactly).
    ``cores`` prices the run's traffic under multicore contention
    (:mod:`repro.machine.contention`); 1 — the default — is the paper's
    uncontended model, bit-identical to omitting the argument.
    """
    run = execute(
        program,
        machine,
        params=params,
        engine=engine,
        passes=passes,
        warmup_passes=warmup_passes,
        shards=shards,
        cores=cores,
    )
    return SimulationResult(
        program=run.program,
        machine=machine.name,
        seconds=run.seconds,
        mflops=run.mflops,
        flops=run.counters.graduated_flops,
        loads=run.counters.loads,
        stores=run.counters.stores,
        channel_names=machine.level_names,
        channel_bytes=run.counters.channel_bytes,
        memory_bytes=run.counters.memory_bytes,
        effective_bandwidth=run.effective_bandwidth,
        run=run,
    )


def simulate_stream(
    program: Program,
    machine: MachineSpec,
    *,
    params: Mapping[str, int] | None = None,
    engine: str | None = None,
    passes: int = 1,
    warmup_passes: int = 0,
    chunk_accesses: int | None = None,
    overlap: bool = True,
    shards: int | None = None,
    cores: int | None = None,
) -> SimulationResult:
    """:func:`simulate` with the streaming trace pipeline: the access
    trace is generated in bounded chunks fused with hierarchy simulation
    (and, with ``overlap``, prefetched on a background thread), so peak
    memory is O(chunk) instead of O(trace).  Counters and timings are
    bit-identical to :func:`simulate` — engines persist state across
    chunks by contract.
    """
    run = execute(
        program,
        machine,
        params=params,
        engine=engine,
        passes=passes,
        warmup_passes=warmup_passes,
        stream="overlap" if overlap else "serial",
        chunk_accesses=chunk_accesses,
        shards=shards,
        cores=cores,
    )
    return SimulationResult(
        program=run.program,
        machine=machine.name,
        seconds=run.seconds,
        mflops=run.mflops,
        flops=run.counters.graduated_flops,
        loads=run.counters.loads,
        stores=run.counters.stores,
        channel_names=machine.level_names,
        channel_bytes=run.counters.channel_bytes,
        memory_bytes=run.counters.memory_bytes,
        effective_bandwidth=run.effective_bandwidth,
        run=run,
    )


def _summarize(run: MachineRun, machine: MachineSpec) -> SimulationResult:
    return SimulationResult(
        program=run.program,
        machine=machine.name,
        seconds=run.seconds,
        mflops=run.mflops,
        flops=run.counters.graduated_flops,
        loads=run.counters.loads,
        stores=run.counters.stores,
        channel_names=machine.level_names,
        channel_bytes=run.counters.channel_bytes,
        memory_bytes=run.counters.memory_bytes,
        effective_bandwidth=run.effective_bandwidth,
        run=run,
    )


def simulate_batch(
    requests: Sequence[SimRequest],
    *,
    plan: bool = True,
    engine: str | None = None,
    stream: str | bool | None = None,
    chunk_accesses: int | None = None,
    shards: int | None = None,
) -> list[SimulationResult]:
    """Run a batch of sweep points through the sweep query planner.

    Each :class:`~repro.experiments.plan.SimRequest` names one
    (program, machine) point; the planner groups points that share a
    trace identity and answers each group from shared work — one trace
    generation per distinct trace, one stack-distance profile per
    fully-associative capacity ladder, shared cache-level prefixes
    simulated once.  Results are bit-identical to calling
    :func:`simulate` per point and come back in request order.
    ``plan=False`` degrades to exactly that pointwise loop.
    """
    runs = run_batch(
        list(requests),
        plan=plan,
        engine=engine,
        stream=stream,
        chunk_accesses=chunk_accesses,
        shards=shards,
    )
    return [_summarize(run, req.machine) for run, req in zip(runs, requests)]


def predict(
    program: Program,
    machine: MachineSpec,
    *,
    params: Mapping[str, int] | None = None,
    passes: int = 1,
    cores: int | None = None,
) -> SimulationResult:
    """:func:`simulate`'s analytic counterpart: the same summary, derived
    from the loop IR + cache geometry alone (no trace, O(1) in problem
    size).  Wraps :func:`repro.balance.analytic.predict_run`; see that
    module for the model and its documented error bands.  ``run`` is the
    predicted :class:`MachineRun` under the same timing models, including
    the contended overlay when ``cores`` (or the process default) > 1.
    """
    run = predict_run(program, machine, params=params, passes=passes, cores=cores)
    return SimulationResult(
        program=run.program,
        machine=machine.name,
        seconds=run.seconds,
        mflops=run.mflops,
        flops=run.counters.graduated_flops,
        loads=run.counters.loads,
        stores=run.counters.stores,
        channel_names=machine.level_names,
        channel_bytes=run.counters.channel_bytes,
        memory_bytes=run.counters.memory_bytes,
        effective_bandwidth=run.effective_bandwidth,
        run=run,
    )


def measure_balance(program: Program, machine: MachineSpec) -> BalanceReport:
    """The paper's part-1 measurement: balance, ratios, utilization bound."""
    run = execute(program, machine)
    balance = program_balance(run)
    ratios = demand_supply_ratios(balance, machine)
    return BalanceReport(
        balance=balance,
        machine_balance=machine_balance(machine),
        ratios=ratios,
        required_memory_bandwidth=required_memory_bandwidth(ratios, machine),
    )


def optimize(
    program: Program,
    machine: MachineSpec | None = None,
    *,
    verify_sizes: Sequence[int] = (4, 7, 16),
) -> OptimizationReport:
    """Apply the paper's compiler strategy (fusion -> storage reduction ->
    store elimination), verified against the reference interpreter.

    With a ``machine``, the original and optimized programs are also
    simulated there, so the report carries the measured speedup.
    """
    result = _pipeline_optimize(program, verify_sizes=verify_sizes)
    before = after = None
    if machine is not None:
        before = simulate(program, machine)
        after = simulate(result.final, machine)
    return OptimizationReport(
        original=program,
        optimized=result.final,
        applied_stages=result.applied_stages,
        pipeline=result,
        before=before,
        after=after,
    )


def submit(
    requests: Sequence[SimRequest],
    address: str,
    *,
    tenant: str | None = None,
    progress=None,
) -> list[SimulationResult]:
    """Run a sweep through a running repro daemon (``repro serve``).

    Same contract as :func:`simulate_batch` — results in request order,
    bit-identical to local execution — but points are content-keyed,
    deduplicated against other clients' in-flight work, and coalesced
    into the daemon's planned micro-batches.  ``address`` is the string
    the daemon prints (``unix:<path>`` or ``tcp:<host>:<port>``);
    ``progress`` (a ``callback(done, total)``) streams incremental sweep
    progress.  Rejections (full queue, over-quota tenant, draining
    server) raise :class:`repro.service.client.ServiceError` immediately
    — a client is never left hanging.
    """
    from .service.client import submit as _submit

    return _submit(list(requests), address, tenant=tenant, progress=progress)


def serve_session(config=None):
    """An ephemeral daemon session: starts a service in the background,
    yields a connected client, drains on exit.

    ::

        with repro.serve_session() as client:
            results = client.simulate_batch(requests)

    ``config`` is an optional :class:`repro.service.server.ServeConfig`.
    For a long-lived daemon use ``repro serve`` and :func:`submit`.
    """
    import contextlib

    from .service.client import ServiceClient
    from .service.server import BackgroundServer

    @contextlib.contextmanager
    def _session():
        with BackgroundServer(config) as background:
            client = ServiceClient(background.address)
            try:
                yield client
            finally:
                client.close()

    return _session()


def run_experiment(
    name: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment from the registry (``fig1`` ... ``e18``)."""
    if name not in EXPERIMENTS:
        raise ReproError(
            f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](config or ExperimentConfig())


def run_experiments(
    names: Sequence[str] | None = None,
    config: ExperimentConfig | None = None,
    *,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    scales: Sequence[int] | None = None,
    predict: bool = False,
) -> list[ExperimentResult]:
    """Run a battery of experiments, optionally across worker processes.

    ``names=None`` runs everything.  Results come back in plan order; a
    crashed or timed-out experiment is recorded as failed, never raises.
    ``predict=True`` turns on the analytic fast path for sweep points
    (spot-checked against the exact simulator; see
    :mod:`repro.experiments.predict`), equivalent to setting
    ``ExperimentConfig.predict``.
    """
    wanted = list(names) if names is not None else list(EXPERIMENTS)
    for name in wanted:
        if name not in EXPERIMENTS:
            raise ReproError(f"unknown experiment {name!r}")
    if predict:
        config = replace(config or ExperimentConfig(), predict=True)
    return run_battery(
        wanted, config, jobs=jobs, timeout=timeout, retries=retries, scales=scales
    )


__all__ = [
    "BalanceReport",
    "ExperimentConfig",
    "ExperimentResult",
    "OptimizationReport",
    "SimRequest",
    "SimulationResult",
    "measure_balance",
    "optimize",
    "predict",
    "run_experiment",
    "run_experiments",
    "serve_session",
    "simulate",
    "simulate_batch",
    "simulate_stream",
    "submit",
]

"""Contention — the paper's balance gap on multicore machines.

The paper closes by warning that machine balance will keep deteriorating
as CPU speed outgrows memory bandwidth.  The multicore era made that
worse in a new way: N cores *share* one memory channel, so per-core
supply is ``B_eff(n) / n`` with a saturation ceiling (Afzal et al.'s
multicore-ECM model; Reguly's DDR-vs-HBM survey — PAPERS.md).  This
experiment sweeps cores x presets x paper workloads:

* each (machine, workload) point is simulated **once** (one core's
  counters — exact, cacheable);
* the cores axis is weak scaling priced by
  :func:`repro.machine.contention.contended_time`: every core runs its
  own copy of the workload, so per-core traffic is the measured traffic
  and only the shared-channel arithmetic changes with n.  No extra
  simulation, no extra error.

The table shows the thesis quantitatively: on the DDR-tier machine the
achievable CPU fraction collapses as cores join (the memory balance gap
grows to 4x at 16 cores); on the HBM-tier machine it barely moves; the
``future_multicore`` family extends the paper's closing extrapolation.
The single-core Origin2000 row is the control — its contended numbers
are bit-identical to the paper's model, which the differential suite
(tests/test_contention.py) and the CI battery pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.executor import MachineRun
from ..machine.contention import (
    ContendedBreakdown,
    CoreWork,
    contended_time,
    record_contention,
)
from ..machine.presets import ddr_multicore, future_multicore, hbm_multicore, origin2000
from ..machine.spec import MachineSpec
from ..programs import convolution, dmxpy
from ..programs.kernels import make_kernel
from .config import ExperimentConfig
from .predict import run_or_predict
from .report import Table
from .result import experiment


def _core_ladder(cores: int) -> list[int]:
    ladder = [1]
    n = 2
    while n < cores:
        ladder.append(n)
        n *= 2
    if cores > 1:
        ladder.append(cores)
    return ladder


@dataclass(frozen=True)
class ContentionPoint:
    """One (machine, workload, cores) cell of the sweep."""

    machine: str
    workload: str
    cores: int
    breakdown: ContendedBreakdown

    @property
    def slowdown(self) -> float:
        """Contended total over the same work alone on one core."""
        alone = self.breakdown.per_core[0].total
        return self.breakdown.total / alone if alone > 0 else 1.0

    @property
    def memory_gap(self) -> float:
        """Balance-gap delta vs. one core on the memory channel."""
        return self.breakdown.balance_gap[-1]


@dataclass(frozen=True)
class ContentionResult:
    points: tuple[ContentionPoint, ...]
    runs: dict[str, MachineRun]  # one simulated run per machine:workload

    def by(self, machine: str, workload: str, cores: int) -> ContentionPoint:
        for p in self.points:
            if (p.machine, p.workload, p.cores) == (machine, workload, cores):
                return p
        raise KeyError((machine, workload, cores))

    def table(self) -> Table:
        t = Table(
            "Contention: cores x presets x workloads (weak scaling)",
            ("machine", "workload", "cores", "bound", "cpu util",
             "slowdown", "mem gap"),
        )
        for p in self.points:
            t.add(
                p.machine,
                p.workload,
                p.cores,
                p.breakdown.bound,
                round(p.breakdown.cpu_utilization, 4),
                round(p.slowdown, 3),
                round(p.memory_gap, 3),
            )
        t.note = (
            "weak scaling: every core runs its own copy of the workload; "
            "'mem gap' is how many times less memory bandwidth per flop "
            "each core has than alone (the paper's balance argument, "
            "worsened by sharing)"
        )
        return t


def _machines(config: ExperimentConfig) -> list[MachineSpec]:
    return [
        origin2000(config.scale),
        ddr_multicore(config.scale),
        hbm_multicore(config.scale),
        future_multicore(config.scale),
    ]


def _workloads(config: ExperimentConfig, machine: MachineSpec):
    n = config.stream_elements(machine)
    return [
        ("convolution", convolution(n)),
        ("dmxpy", dmxpy(n, 16)),
        ("1w2r", make_kernel("1w2r", n)),
    ]


@experiment("contention")
def run_contention(config: ExperimentConfig | None = None) -> ContentionResult:
    config = config or ExperimentConfig()
    points: list[ContentionPoint] = []
    runs: dict[str, MachineRun] = {}
    for machine in _machines(config):
        for wname, prog in _workloads(config, machine):
            run = run_or_predict(
                prog,
                machine,
                stream=config.stream,
                chunk_accesses=config.chunk_accesses,
            )
            runs[f"{machine.name}:{wname}"] = run
            work = CoreWork(
                run.counters.graduated_flops,
                run.counters.register_bytes,
                tuple(run.counters.downstream_bytes),
            )
            for cores in _core_ladder(machine.cores):
                breakdown = contended_time(machine, (work,) * cores)
                record_contention(machine, breakdown, source="weak-scaling")
                points.append(
                    ContentionPoint(machine.name, wname, cores, breakdown)
                )
    return ContentionResult(tuple(points), runs)

"""Plain-text bar charts for experiment reports.

The paper presents Figure 3 as bar charts; the runner can render the same
visual with ``--charts``. No plotting dependency: bars are unicode blocks
sized to a fixed width, with the value printed at the bar's end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

FULL = "█"
PARTIAL = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def bar(value: float, maximum: float, width: int = 40) -> str:
    """One bar scaled so ``maximum`` fills ``width`` characters."""
    if maximum <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / maximum))
    eighths = round(fraction * width * 8)
    full, rem = divmod(eighths, 8)
    return FULL * full + PARTIAL[rem]


@dataclass
class BarChart:
    """A labelled horizontal bar chart with one or more series."""

    title: str
    width: int = 40
    unit: str = ""
    rows: list[tuple[str, dict[str, float]]] = field(default_factory=list)

    def add(self, label: str, **series: float) -> None:
        self.rows.append((label, dict(series)))

    def render(self) -> str:
        if not self.rows:
            return self.title
        maximum = max(v for _, series in self.rows for v in series.values())
        label_w = max(len(label) for label, _ in self.rows)
        series_names = list(self.rows[0][1])
        series_w = max((len(s) for s in series_names), default=0)
        lines = [self.title, "=" * len(self.title)]
        for label, series in self.rows:
            for k, name in enumerate(series_names):
                value = series.get(name, 0.0)
                prefix = label.ljust(label_w) if k == 0 else " " * label_w
                tag = f" {name.ljust(series_w)}" if len(series_names) > 1 else ""
                lines.append(
                    f"{prefix}{tag} |{bar(value, maximum, self.width).ljust(self.width)}| "
                    f"{value:,.1f}{self.unit}"
                )
        return "\n".join(lines)


def _unwrap(result):
    """Accept an ExperimentResult or a legacy figure result object."""
    detail = getattr(result, "detail", None)
    return detail if detail is not None else result


def fig3_chart(result) -> str:
    """The paper's Figure 3 as two bar charts (one per machine)."""
    from ..programs.kernels import KERNEL_NAMES

    result = _unwrap(result)
    charts = []
    for panel in (result.origin, result.exemplar):
        chart = BarChart(
            f"Effective memory bandwidth on {panel.machine.name} (MB/s)",
            unit=" MB/s",
        )
        for name in KERNEL_NAMES:
            chart.add(name, bw=panel.bandwidths[name] / 1e6)
        charts.append(chart.render())
    return "\n\n".join(charts)


def balance_chart(result) -> str:
    """Figure 1's memory column as bars against the machine's supply."""
    result = _unwrap(result)
    chart = BarChart("Memory balance: demand vs the machine's supply (B/flop)")
    supply = result.machine.balance[-1]
    for b in result.balances:
        chart.add(b.program, demand=b.memory_balance)
    chart.add("machine supply", demand=supply)
    return chart.render()

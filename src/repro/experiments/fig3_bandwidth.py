"""Figure 3 — effective memory bandwidth of the stride-one kernels.

Each kernel's effective bandwidth is its memory traffic divided by its
(simulated) execution time. The paper's findings, which this experiment
reproduces:

* on the Origin2000 (set-associative caches) all twelve kernels land
  within ~20% of one another — the memory channel is saturated no matter
  how many arrays are in flight;
* on the Exemplar (direct-mapped cache) the six-array kernel 3w6r falls
  visibly below the rest (417–551 MB/s vs ~300 in the paper); footnote 3
  attributes it to cache conflicts. With our conflict-period-of-five
  layout the first and sixth arrays collide in the direct-mapped cache,
  the simulator shows the extra conflict traffic directly, and a padding
  ablation (pad the arrays apart -> the dip disappears) confirms the
  diagnosis — a stronger statement than the paper could make without
  Exemplar hardware counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.executor import MachineRun
from ..machine.layout import LayoutPolicy
from ..machine.spec import MachineSpec
from ..programs.kernels import KERNEL_NAMES, make_kernel
from .config import ExperimentConfig
from .predict import run_or_predict
from .report import Table
from .result import delta, experiment


def nominal_bytes(kernel: str, n: int) -> int:
    """The paper's transfer accounting: each of the r arrays is read once
    and each of the w written arrays written back once, 8 bytes/element.
    (The authors computed transfer this way — the Exemplar had no hardware
    counters — which is exactly why conflict thrash shows up as *lower*
    effective bandwidth rather than higher traffic.)"""
    from ..programs.kernels import kernel_spec

    w, r = kernel_spec(kernel)
    return (w + r) * n * 8


@dataclass(frozen=True)
class Fig3Machine:
    machine: MachineSpec
    runs: dict[str, MachineRun]
    n: int

    @property
    def bandwidths(self) -> dict[str, float]:
        """Effective bandwidth: nominal transfer / simulated time."""
        return {
            k: nominal_bytes(k, self.n) / r.seconds for k, r in self.runs.items()
        }

    def spread(self, exclude: tuple[str, ...] = ()) -> float:
        """(max-min)/max over the kernels, optionally excluding outliers."""
        vals = [bw for k, bw in self.bandwidths.items() if k not in exclude]
        return (max(vals) - min(vals)) / max(vals)


@dataclass(frozen=True)
class Fig3Result:
    origin: Fig3Machine
    exemplar: Fig3Machine
    exemplar_padded: Fig3Machine

    def table(self) -> Table:
        t = Table(
            "Figure 3: effective memory bandwidth of stride-1 kernels (MB/s)",
            ("kernel", self.origin.machine.name, self.exemplar.machine.name,
             f"{self.exemplar.machine.name}+pad"),
        )
        for name in KERNEL_NAMES:
            t.add(
                name,
                self.origin.bandwidths[name] / 1e6,
                self.exemplar.bandwidths[name] / 1e6,
                self.exemplar_padded.bandwidths[name] / 1e6,
            )
        t.note = (
            "the padded column is our ablation: one line of inter-array "
            "padding removes the 3w6r direct-mapped conflict"
        )
        return t


def _run_suite(
    machine: MachineSpec,
    n: int,
    layout_policy: LayoutPolicy | None = None,
    config: ExperimentConfig | None = None,
) -> Fig3Machine:
    runs: dict[str, MachineRun] = {}
    for name in KERNEL_NAMES:
        prog = make_kernel(name, n)
        # layout_policy is forwarded on both paths: the padded ablation
        # must reach the analytic conflict term too.
        runs[name] = run_or_predict(
            prog,
            machine,
            layout_policy=layout_policy,
            # The config decides the trace pipeline explicitly, so direct
            # calls behave exactly like orchestrated workers.
            stream=config.stream if config is not None else None,
            chunk_accesses=config.chunk_accesses if config is not None else None,
        )
    return Fig3Machine(machine, runs, n)


def _fig3_deltas(result: Fig3Result) -> list[dict]:
    # The paper reports claims about spread, not absolute MB/s (absolute
    # bandwidths depend on the scaled machine): Origin within 20%, the
    # Exemplar 3w6r dip well below the remaining kernels.
    dip = result.exemplar.bandwidths["3w6r"] / min(
        bw for k, bw in result.exemplar.bandwidths.items() if k != "3w6r"
    )
    return [
        delta("Origin2000", "kernel spread", 0.20, result.origin.spread()),
        delta("Exemplar 3w6r", "dip vs other kernels", 0.7, dip),
        delta("Exemplar+pad", "kernel spread", 0.20, result.exemplar_padded.spread()),
    ]


@experiment("fig3", deltas=_fig3_deltas)
def run_fig3(config: ExperimentConfig | None = None) -> Fig3Result:
    config = config or ExperimentConfig()
    origin = _run_suite(config.origin, config.stream_elements(), config=config)
    n_ex = config.exemplar_kernel_elements()
    exemplar = _run_suite(config.exemplar, n_ex, config=config)
    # Ablation: one extra cache line between arrays breaks the period-5
    # alignment, so 3w6r recovers.
    padded_policy = LayoutPolicy(alignment=32, pad_bytes=32)
    exemplar_padded = _run_suite(config.exemplar, n_ex, padded_policy, config=config)
    return Fig3Result(origin, exemplar, exemplar_padded)

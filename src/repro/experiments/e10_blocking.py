"""E10 — the mm(-O2) → mm(-O3) blocking ablation.

Figure 1's most dramatic row pair is matrix multiply: blocking collapses
the memory balance from 5.9 to 0.04 B/flop, which the paper calls "clear
evidence that a compiler may significantly reduce the application's demand
for memory bandwidth". This experiment sweeps tile sizes and toggles
scalar replacement, showing balance (and the resulting simulated time) as
a function of the blocking decision — the ablation behind that claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..balance.model import ProgramBalance, program_balance
from ..interp.executor import MachineRun
from ..machine.spec import MachineSpec
from ..programs.matmul import matmul, matmul_blocked
from .config import ExperimentConfig
from .predict import run_or_predict
from .report import Table
from .result import delta, experiment


@dataclass(frozen=True)
class E10Result:
    machine: MachineSpec
    n: int
    variants: tuple[tuple[str, ProgramBalance, MachineRun], ...]

    def table(self) -> Table:
        t = Table(
            "E10: matrix-multiply blocking ablation",
            ("variant", *self.machine.level_names, "time (ms)", "Mflop/s"),
        )
        for name, balance, run in self.variants:
            t.add(name, *balance.bytes_per_flop, run.seconds * 1e3, run.mflops)
        t.note = "paper: -O2 memory balance 5.9 -> -O3 0.04 B/flop"
        return t

    def memory_balance(self, variant: str) -> float:
        for name, balance, _ in self.variants:
            if name == variant:
                return balance.memory_balance
        raise KeyError(variant)


def _e10_deltas(result: E10Result) -> list[dict]:
    out = [delta("jki (-O2)", "Mem-L2 B/flop", 5.9, result.memory_balance("jki (-O2)"))]
    try:
        out.append(
            delta("blocked t=30", "Mem-L2 B/flop", 0.04, result.memory_balance("blocked t=30"))
        )
    except KeyError:
        pass  # tile sweep may exclude t=30 when the side is not divisible
    return out


@experiment("e10", deltas=_e10_deltas)
def run_e10(
    config: ExperimentConfig | None = None,
    tiles: tuple[int, ...] = (10, 15, 30),
) -> E10Result:
    config = config or ExperimentConfig()
    n = config.mm_side()
    machine = config.origin
    variants = []
    base = matmul(n, order="jki")
    run = run_or_predict(base, machine)
    variants.append(("jki (-O2)", program_balance(run), run))
    for tile in tiles:
        if n % tile:
            continue
        prog = matmul_blocked(n, tile=tile)
        run = run_or_predict(prog, machine)
        variants.append((f"blocked t={tile}", program_balance(run), run))
    no_sr = matmul_blocked(n, tile=tiles[-1], scalar_replace=False)
    run = run_or_predict(no_sr, machine)
    variants.append((f"blocked t={tiles[-1]} no-SR", program_balance(run), run))
    return E10Result(machine, n, tuple(variants))

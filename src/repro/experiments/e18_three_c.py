"""E18 — 3C classification of the Figure 3 anomaly.

Footnote 3 says of the Exemplar's 3w6r dip: "We suspect that 3w6r kernel
causes excessive cache conflicts ... which we cannot measure because of
the absence of hardware counters on Exemplar." Our simulator can measure
it: classify every miss as compulsory, capacity or conflict on both
machines. The verdict is unambiguous — the Exemplar's extra misses are
conflict-class, the Origin's 2-way caches have essentially none, and the
five-array kernel 2w5r (which does not span the conflict period) is clean
even on the Exemplar.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.layout import build_layout
from ..machine.spec import MachineSpec
from ..machine.three_c import MissClassification, classify_misses
from ..programs.kernels import make_kernel
from ..trace.generator import generate_trace
from .config import ExperimentConfig
from .report import Table
from .result import experiment


@dataclass(frozen=True)
class E18Row:
    machine: str
    kernel: str
    classification: MissClassification


@dataclass(frozen=True)
class E18Result:
    rows: tuple[E18Row, ...]

    def row(self, machine: str, kernel: str) -> E18Row:
        for r in self.rows:
            if r.machine == machine and r.kernel == kernel:
                return r
        raise KeyError((machine, kernel))

    def table(self) -> Table:
        t = Table(
            "E18: 3C classification of last-level misses (footnote 3, measured)",
            ("machine", "kernel", "total", "compulsory", "capacity", "conflict",
             "conflict %"),
        )
        for r in self.rows:
            c = r.classification
            t.add(
                r.machine,
                r.kernel,
                c.total,
                c.compulsory,
                c.capacity,
                c.conflict,
                f"{c.conflict_fraction:.0%}",
            )
        t.note = (
            "the Exemplar 3w6r misses are conflict-class — the paper's "
            "conjecture, now a measurement"
        )
        return t


def _classify(machine: MachineSpec, kernel: str, n: int) -> MissClassification:
    program = make_kernel(kernel, n)
    layout = build_layout(program, None, machine.default_layout)
    trace = generate_trace(program, layout=layout)
    geometry = machine.cache_levels[-1].geometry
    return classify_misses(trace.addresses, trace.is_write, geometry)


@experiment("e18")
def run_e18(
    config: ExperimentConfig | None = None,
    kernels: tuple[str, ...] = ("2w5r", "3w6r"),
) -> E18Result:
    config = config or ExperimentConfig()
    rows = []
    for kernel in kernels:
        rows.append(
            E18Row(
                config.exemplar.name,
                kernel,
                _classify(config.exemplar, kernel, config.exemplar_kernel_elements()),
            )
        )
    for kernel in kernels:
        rows.append(
            E18Row(
                config.origin.name,
                kernel,
                _classify(config.origin, kernel, config.stream_elements()),
            )
        )
    return E18Result(tuple(rows))

"""E17 — extended balance survey with closed-form calibration points.

The paper's balance model applied beyond its Figure 1 rows: the BLAS-1
kernels (whose memory balance is known in closed form — a calibration of
the whole measurement stack) plus Jacobi relaxation. For scal/axpy/dot
the measured memory balance must equal the textbook value to within the
cold-start margin; every program lands far above the machine's supply,
extending the paper's conclusion to the wider program class.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..balance.model import ProgramBalance, demand_supply_ratios, program_balance
from ..interp.executor import execute
from ..machine.spec import MachineSpec
from ..programs.blas1 import BLAS1_KERNELS, EXPECTED_MEMORY_BALANCE, blas1
from ..programs.jacobi import jacobi
from .config import ExperimentConfig
from .report import Table
from .result import experiment


@dataclass(frozen=True)
class SurveyRow:
    program: str
    balance: ProgramBalance
    expected_memory: float | None
    memory_ratio: float
    utilization_bound: float


@dataclass(frozen=True)
class E17Result:
    machine: MachineSpec
    rows: tuple[SurveyRow, ...]

    def row(self, program: str) -> SurveyRow:
        for r in self.rows:
            if r.program == program:
                return r
        raise KeyError(program)

    def table(self) -> Table:
        t = Table(
            "E17: extended balance survey (BLAS-1 calibration + Jacobi)",
            ("program", *self.machine.level_names, "expected Mem", "Mem ratio",
             "CPU bound"),
        )
        for r in self.rows:
            t.add(
                r.program,
                *r.balance.bytes_per_flop,
                r.expected_memory if r.expected_memory is not None else "-",
                r.memory_ratio,
                f"{r.utilization_bound:.1%}",
            )
        t.note = (
            "'expected Mem' is the closed-form streaming balance; measured "
            "values match it, calibrating the whole measurement stack"
        )
        return t


@experiment("e17")
def run_e17(config: ExperimentConfig | None = None) -> E17Result:
    config = config or ExperimentConfig()
    machine = config.origin
    n = config.stream_elements()
    rows: list[SurveyRow] = []
    for kind in BLAS1_KERNELS:
        if kind == "copy":
            continue  # no flops: balance undefined; covered by tests directly
        run = execute(blas1(kind, n), machine)
        balance = program_balance(run)
        ratios = demand_supply_ratios(balance, machine)
        rows.append(
            SurveyRow(
                balance.program,
                balance,
                EXPECTED_MEMORY_BALANCE[kind],
                ratios.ratios[-1],
                ratios.cpu_utilization_bound,
            )
        )
    run = execute(jacobi(config.grid_side()), machine)
    balance = program_balance(run)
    ratios = demand_supply_ratios(balance, machine)
    rows.append(
        SurveyRow(balance.program, balance, None, ratios.ratios[-1], ratios.cpu_utilization_bound)
    )
    return E17Result(machine, tuple(rows))

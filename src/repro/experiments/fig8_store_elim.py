"""Figures 7 & 8 — store elimination.

Paper's Figure 8 (seconds):

    machine      original   fusion only   store elimination
    Origin2000   0.32       0.22          0.16
    Exemplar     0.24       0.21          0.14

i.e. fusion buys ~31%/13%, store elimination another ~27%/33%, combined
≈2x on both machines. We run the same three schedules of the Figure 7
program — produced *by our compiler passes*, not hand-written — through
both simulated machines and report the same table. The store-eliminated
variant also demonstrates the transformation's defining property: read
traffic is unchanged, only writebacks disappear.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..fusion.apply import apply_partitioning
from ..fusion.build import fusion_graph_from_program
from ..fusion.graph import Partitioning
from ..interp.executor import MachineRun, execute
from ..lang.program import Program
from ..programs.paper_examples import fig7_original
from ..transforms.store_elim import eliminate_stores
from ..transforms.verify import verify_equivalent
from .config import ExperimentConfig
from .report import Table
from .result import delta, experiment

PAPER_SECONDS = {
    "Origin2000": (0.32, 0.22, 0.16),
    "Exemplar": (0.24, 0.21, 0.14),
}

STAGES = ("original", "fusion only", "store elimination")


@dataclass(frozen=True)
class Fig8Result:
    programs: tuple[Program, Program, Program]
    runs: dict[str, tuple[MachineRun, MachineRun, MachineRun]]  # machine -> stage runs

    def seconds(self, machine: str) -> tuple[float, float, float]:
        return tuple(r.seconds for r in self.runs[machine])

    def speedup(self, machine: str) -> float:
        s = self.seconds(machine)
        return s[0] / s[2]

    def table(self) -> Table:
        t = Table(
            "Figure 8: effect of store elimination (simulated milliseconds)",
            ("machine", *STAGES, "combined speedup"),
        )
        for machine, stage_runs in self.runs.items():
            secs = [r.seconds for r in stage_runs]
            t.add(machine, *(s * 1e3 for s in secs), f"{secs[0] / secs[2]:.2f}x")
        t.note = "paper: Origin 0.32/0.22/0.16 (2.0x), Exemplar 0.24/0.21/0.14 (1.7x)"
        return t


def build_stages(n: int) -> tuple[Program, Program, Program]:
    """original, compiler-fused, compiler-store-eliminated — verified."""
    original = fig7_original(n)
    graph = fusion_graph_from_program(original)
    fused = apply_partitioning(
        original, Partitioning.of([{0, 1}]), graph, name="fig7_fused"
    )
    eliminated = eliminate_stores(fused, name="fig7_se")
    verify_equivalent(original, fused, sizes=(5, 16))
    verify_equivalent(original, eliminated, sizes=(5, 16))
    if "res" in {  # the store must actually be gone
        w
        for s in eliminated.walk()
        for w in _written_arrays(s)
    }:
        raise ReproError("store elimination failed to remove the res store")
    return original, fused, eliminated


def _written_arrays(stmt):
    from ..lang.expr import ArrayRef
    from ..lang.stmt import Assign, ExternalRead

    if isinstance(stmt, Assign) and isinstance(stmt.lhs, ArrayRef):
        yield stmt.lhs.array
    if isinstance(stmt, ExternalRead) and isinstance(stmt.lhs, ArrayRef):
        yield stmt.lhs.array


def _fig8_deltas(result: Fig8Result) -> list[dict]:
    out = []
    for machine, paper in PAPER_SECONDS.items():
        name = next((m for m in result.runs if m.startswith(machine)), None)
        if name is None:
            continue
        out.append(delta(name, "combined speedup", paper[0] / paper[2], result.speedup(name)))
    return out


@experiment("fig8", deltas=_fig8_deltas)
def run_fig8(config: ExperimentConfig | None = None) -> Fig8Result:
    config = config or ExperimentConfig()
    n = config.stream_elements()
    programs = build_stages(n)
    runs: dict[str, tuple[MachineRun, MachineRun, MachineRun]] = {}
    for machine in (config.origin, config.exemplar):
        runs[machine.name] = tuple(execute(p, machine) for p in programs)
    return Fig8Result(programs, runs)

"""Predict-then-verify sweep mode.

Dense parameter sweeps dominate experiment cost: every point is an exact
O(accesses) trace simulation, even though the balance model only needs
per-level byte counts. The analytic predictor
(:mod:`repro.balance.analytic`) derives those counts from the loop IR and
cache geometry in O(1), so a sweep can run analytically in milliseconds —
*if* we can trust it.

This module is the trust machinery. :func:`run_or_predict` is a drop-in
for :func:`repro.interp.executor.execute` that experiments call per sweep
point. When predict mode is off it simply simulates. When it is on:

* most points are served by :func:`repro.balance.analytic.predict_run`;
* a deterministic sample (every ``1/spot_check``-th point, first point
  always included) is *also* simulated exactly, and the per-channel byte
  error between the two is recorded;
* a spot-check whose error exceeds ``tolerance`` trips the fallback gate:
  that point and **every subsequent point of the experiment** run
  exactly, and the offending estimate is recorded in the manifest's
  ``analytic.outliers`` list — a predicted table is only shipped when
  its spot checks stayed inside the documented band.

Telemetry follows the pattern of the streaming/sharding collectors: the
:func:`experiment` decorator wraps each experiment in
:func:`collect_analytic_telemetry`, and :func:`summarize_analytic`
condenses the session into the ``analytic`` manifest block
(SCHEMA_VERSION 5).
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from ..balance.analytic import analyze
from ..errors import AnalysisError
from ..interp.executor import MachineRun, execute
from ..lang.program import Program
from ..machine.layout import LayoutPolicy, MemoryLayout
from ..machine.spec import MachineSpec

#: Fraction of predicted points that are also simulated exactly.
DEFAULT_SPOT_CHECK = 0.05

#: Max per-channel relative byte error a spot check may show before the
#: experiment falls back to exact simulation.
DEFAULT_TOLERANCE = 0.10

# Process-wide predict defaults, installed by ExperimentConfig.apply()
# (and the --predict / --spot-check / --predict-tolerance CLI flags), the
# same pattern as executor.configure_streaming.
_predict_default: bool = False
_spot_check_default: float = DEFAULT_SPOT_CHECK
_tolerance_default: float = DEFAULT_TOLERANCE


def configure_predict(
    predict: bool = False,
    spot_check: float = DEFAULT_SPOT_CHECK,
    tolerance: float = DEFAULT_TOLERANCE,
) -> None:
    """Set the process-default predict mode for :func:`run_or_predict`."""
    global _predict_default, _spot_check_default, _tolerance_default
    if not 0.0 < spot_check <= 1.0:
        raise ValueError(f"spot_check must be in (0, 1], got {spot_check!r}")
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance!r}")
    _predict_default = bool(predict)
    _spot_check_default = spot_check
    _tolerance_default = tolerance


def get_predict() -> tuple[bool, float, float]:
    """Current process default (predict, spot_check, tolerance)."""
    return _predict_default, _spot_check_default, _tolerance_default


@dataclass
class PredictSession:
    """One experiment's predict-then-verify accounting."""

    enabled: bool
    spot_check: float
    tolerance: float
    points: int = 0  # run_or_predict calls
    predicted: int = 0  # points served analytically
    checked: int = 0  # points simulated exactly as spot checks
    fallbacks: int = 0  # over-tolerance / unanalyzable events
    max_error: float = 0.0  # worst per-channel byte error among checks
    outliers: list[dict[str, Any]] = field(default_factory=list)
    fallback_active: bool = False  # gate tripped: simulate from here on

    @property
    def stride(self) -> int:
        """Spot-check every Nth predicted point (the first is always
        checked, so a single-point 'sweep' is still verified)."""
        return max(1, round(1.0 / self.spot_check))


_session: ContextVar[PredictSession | None] = ContextVar(
    "analytic_predict_session", default=None
)


@contextlib.contextmanager
def collect_analytic_telemetry() -> Iterator[PredictSession]:
    """Collect predict-then-verify telemetry for the enclosed experiment.

    The session snapshots the process defaults at entry, so a worker that
    ran ``ExperimentConfig.apply()`` gets exactly its config's mode."""
    predict, spot_check, tolerance = get_predict()
    session = PredictSession(predict, spot_check, tolerance)
    token = _session.set(session)
    try:
        yield session
    finally:
        _session.reset(token)


def channel_errors(
    predicted: MachineRun, exact: MachineRun
) -> list[tuple[str, float]]:
    """Per-channel relative byte error, labelled with the channel names."""
    names = predicted.machine.level_names
    return [
        (name, abs(p - e) / max(e, 1))
        for name, p, e in zip(
            names,
            predicted.counters.channel_bytes,
            exact.counters.channel_bytes,
        )
    ]


def _spot_check(
    session: PredictSession,
    predicted: MachineRun,
    exact: MachineRun,
) -> bool:
    """Record the check; returns True when the gate tripped."""
    errors = channel_errors(predicted, exact)
    worst_name, worst = max(errors, key=lambda it: it[1])
    session.checked += 1
    session.max_error = max(session.max_error, worst)
    if worst <= session.tolerance:
        return False
    session.fallbacks += 1
    session.fallback_active = True
    session.outliers.append(
        {
            "program": predicted.program,
            "machine": predicted.machine.name,
            "channel": worst_name,
            "error": worst,
            "tolerance": session.tolerance,
        }
    )
    return True


def run_or_predict(
    program: Program,
    machine: MachineSpec,
    params: Mapping[str, int] | None = None,
    *,
    layout: MemoryLayout | None = None,
    layout_policy: LayoutPolicy | None = None,
    passes: int = 1,
    **execute_kwargs: Any,
) -> MachineRun:
    """One sweep point: analytic when predict mode allows it, exact
    otherwise.  A drop-in for :func:`execute` — extra keyword arguments
    (``stream``, ``chunk_accesses``, ``engine``, ...) are forwarded to
    the exact path and ignored by the analytic one.

    Exact simulation runs when (a) predict mode is off, (b) the
    experiment's fallback gate has tripped, (c) the point is selected as
    a spot check (the analytic estimate still runs and is compared), or
    (d) the program cannot be analyzed (:class:`AnalysisError`)."""
    session = _session.get()
    if session is not None:
        enabled = session.enabled and not session.fallback_active
    else:
        enabled = get_predict()[0]

    def simulate() -> MachineRun:
        return execute(
            program,
            machine,
            params=params,
            layout=layout,
            layout_policy=layout_policy,
            passes=passes,
            **execute_kwargs,
        )

    if session is not None:
        session.points += 1
    if not enabled:
        return simulate()

    index = session.predicted + session.checked if session is not None else 0
    try:
        predicted = analyze(
            program,
            machine,
            params,
            layout=layout,
            layout_policy=layout_policy,
            passes=passes,
        ).run()
    except AnalysisError as exc:
        # Not a model error — the program has a shape the analyzer does
        # not cover.  Simulate it, note the event, keep predicting.
        if session is not None:
            session.fallbacks += 1
            session.outliers.append(
                {
                    "program": program.name,
                    "machine": machine.name,
                    "channel": None,
                    "error": None,
                    "reason": str(exc),
                }
            )
        return simulate()

    if session is None:
        return predicted
    if index % session.stride == 0:
        exact = simulate()
        if _spot_check(session, predicted, exact):
            return exact
        # Within tolerance: the exact run is in hand, ship it (the check
        # verifies the *model*; there is no reason to return the
        # approximation when the measurement is free).
        return exact
    session.predicted += 1
    return predicted


def summarize_analytic(session: PredictSession | None) -> dict[str, Any]:
    """The manifest ``analytic`` block (empty when predict mode never
    engaged, matching the stream/shards convention)."""
    if session is None or not session.enabled or session.points == 0:
        return {}
    return {
        "points": session.points,
        "predicted": session.predicted,
        "checked": session.checked,
        "fallbacks": session.fallbacks,
        "sample_rate": session.spot_check,
        "tolerance": session.tolerance,
        "max_error": session.max_error,
        "outliers": list(session.outliers),
    }


__all__ = [
    "DEFAULT_SPOT_CHECK",
    "DEFAULT_TOLERANCE",
    "PredictSession",
    "channel_errors",
    "collect_analytic_telemetry",
    "configure_predict",
    "get_predict",
    "run_or_predict",
    "summarize_analytic",
]

"""E15 — bandwidth-based performance prediction (the dissertation's
"performance tuning and prediction" component, cited in §4).

Measure a program's counters on one machine, predict its time on others
from balance alone, then actually execute there and report the error:

* across machines with the **same cache geometry** (CPU/bandwidth
  generations of the Origin) the prediction is exact — byte counts are a
  property of program x geometry;
* across **different geometries** (Origin vs Exemplar) the prediction
  carries the miss-count mismatch; the experiment reports how large.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..balance.model import program_balance
from ..balance.prediction import predict_time
from ..errors import ReproError
from ..machine.presets import future_machine
from ..machine.spec import MachineSpec
from ..programs import convolution, make_kernel, sweep3d
from .config import ExperimentConfig
from .predict import run_or_predict
from .report import Table
from .result import experiment


@dataclass(frozen=True)
class PredictionRow:
    program: str
    source: str
    target: str
    predicted: float
    actual: float

    @property
    def error(self) -> float:
        return abs(self.predicted - self.actual) / self.actual


@dataclass(frozen=True)
class E15Result:
    rows: tuple[PredictionRow, ...]

    def max_error(self, same_geometry: bool) -> float:
        sel = [
            r.error
            for r in self.rows
            if (r.target.startswith("Future")) == same_geometry
        ]
        if not sel:
            raise ReproError("no rows selected")
        return max(sel)

    def table(self) -> Table:
        t = Table(
            "E15: bandwidth-based time prediction vs simulation",
            ("program", "measured on", "predicted for", "predicted (ms)",
             "actual (ms)", "error"),
        )
        for r in self.rows:
            t.add(
                r.program,
                r.source,
                r.target,
                r.predicted * 1e3,
                r.actual * 1e3,
                f"{r.error:.1%}",
            )
        t.note = (
            "same-geometry targets (Future*) predict exactly; the Exemplar "
            "row carries the cache-geometry mismatch"
        )
        return t


@experiment("e15")
def run_e15(config: ExperimentConfig | None = None) -> E15Result:
    config = config or ExperimentConfig()
    origin = config.origin
    targets: list[MachineSpec] = [
        future_machine(2.0, scale=config.scale),
        future_machine(8.0, scale=config.scale),
        config.exemplar,
    ]
    n = config.stream_elements()
    workloads = [
        make_kernel("1w2r", n),
        convolution(n),
        sweep3d(config.grid_side()),
    ]
    rows = []
    for program in workloads:
        measured = run_or_predict(program, origin)
        balance = program_balance(measured)
        for target in targets:
            # project=True handles the channel-count mismatch (two-level
            # balance vs one-level Exemplar); Prediction.projected marks
            # the rows that carry the geometry approximation.
            predicted = predict_time(balance, target, project=True)
            actual = run_or_predict(program, target)
            rows.append(
                PredictionRow(
                    program.name,
                    origin.name,
                    target.name,
                    predicted.seconds,
                    actual.seconds,
                )
            )
    return E15Result(tuple(rows))

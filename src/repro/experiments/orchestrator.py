"""Parallel experiment orchestration.

Fans any subset of the :data:`~repro.experiments.registry.EXPERIMENTS`
registry (optionally swept over several machine scales) out across worker
processes and collects structured :class:`ExperimentResult` records:

* ``jobs=1`` (and no timeout) runs in-process — identical to the old
  serial runner, and the legacy ``detail`` objects stay available;
* ``jobs>1`` (or any timeout) runs each experiment in its own forked
  worker with a per-experiment deadline and bounded retry.  A worker that
  crashes or exceeds its deadline never aborts the run: the experiment is
  recorded as ``failed``/``timeout`` in the manifest and the battery
  continues.

Workers inherit the simulation environment *explicitly* from
:class:`ExperimentConfig` (engine choice, sim-cache settings) and share
the on-disk simulation cache, whose atomic-rename writes make concurrent
use safe.  Results cross the process boundary as JSON — the same schema
the run manifest stores (``results/run-<id>.json``,
``docs/result.schema.json``) — so serial and parallel runs produce
bit-identical rows.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from .config import ExperimentConfig
from .registry import EXPERIMENTS
from .report import Table
from .result import SCHEMA_VERSION, ExperimentResult, failed_result
from ..errors import ReproError

#: Default directory for run manifests.
DEFAULT_RESULTS_DIR = "results"

#: Seconds between scheduler polls of the running workers.
_POLL_INTERVAL = 0.02


# -- graceful drain ------------------------------------------------------------
# SIGTERM (runner) or shutdown (service) requests a drain: in-flight
# workers run to completion, tasks not yet started are recorded as
# ``cancelled``, and the manifest is still written.  The flag is an Event
# so signal handlers and server threads can set it safely.
_drain_event = threading.Event()


def request_drain() -> None:
    """Ask any running battery in this process to stop starting new work."""
    _drain_event.set()


def drain_requested() -> bool:
    return _drain_event.is_set()


def reset_drain() -> None:
    """Clear the flag (start of a new battery / tests)."""
    _drain_event.clear()


@dataclass(frozen=True)
class ExperimentTask:
    """One scheduled experiment: a registry name bound to a config."""

    name: str
    config: ExperimentConfig
    label: str = ""

    def display(self) -> str:
        return self.label or self.name


@dataclass
class RunStats:
    """Scheduler-level accounting of one battery (surfaced in the
    manifest, next to ``jobs``)."""

    dedup_hits: int = 0  # tasks answered by an identical in-flight task


@dataclass(frozen=True)
class OrchestratorOptions:
    """How to drive a battery of tasks."""

    jobs: int = 1
    timeout: float | None = None  # per-experiment deadline, seconds
    retries: int = 1  # extra attempts after a crash/timeout
    registry: Mapping[str, Callable] | None = None  # defaults to EXPERIMENTS

    @property
    def use_processes(self) -> bool:
        return self.jobs > 1 or self.timeout is not None

    def resolve(self, name: str) -> Callable:
        registry = self.registry if self.registry is not None else EXPERIMENTS
        try:
            return registry[name]
        except KeyError:
            raise ReproError(f"unknown experiment {name!r}") from None


def build_plan(
    names: Sequence[str],
    base_config: ExperimentConfig,
    scales: Sequence[int] | None = None,
) -> list[ExperimentTask]:
    """Expand experiment names x scale sweep into an ordered task list."""
    configs: list[tuple[ExperimentConfig, str]]
    if scales and len(scales) > 1:
        configs = [
            (replace(base_config, scale=s), f"@1/{s}") for s in scales
        ]
    elif scales:
        configs = [(replace(base_config, scale=scales[0]), "")]
    else:
        configs = [(base_config, "")]
    return [
        ExperimentTask(name, cfg, f"{name}{suffix}")
        for cfg, suffix in configs
        for name in names
    ]


# -- worker side ---------------------------------------------------------------


def _worker(conn, fn: Callable, config_json: dict) -> None:
    """Child-process body: rebuild the environment from the config, run the
    experiment, ship the structured result back as JSON."""
    try:
        cfg = ExperimentConfig.from_json(config_json)
        cfg.apply()
        result = fn(cfg)
        conn.send(("ok", result.to_json()))
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError, TypeError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX platforms
        return multiprocessing.get_context()


@dataclass
class _Running:
    index: int
    task: ExperimentTask
    attempt: int
    process: Any
    conn: Any
    deadline: float | None
    payload: tuple | None = None
    # Plan indices of identical tasks that joined this in-flight run
    # instead of spawning their own worker (scheduler-level dedup).
    followers: list[tuple[int, ExperimentTask]] = field(default_factory=list)


# -- parent side ---------------------------------------------------------------


def _task_key(task: ExperimentTask) -> tuple[str, ExperimentConfig]:
    """Identity under which two scheduled tasks must produce identical
    results: same registry entry, same (frozen, hashable) config.  The
    label is display-only and deliberately excluded."""
    return (task.name, task.config)


def run_tasks(
    tasks: Sequence[ExperimentTask],
    options: OrchestratorOptions | None = None,
    stats: RunStats | None = None,
) -> Iterator[ExperimentResult]:
    """Execute ``tasks``, yielding results **in plan order** as soon as each
    is ready (parallel completions out of order are buffered).

    Duplicate tasks — same experiment, same config — are answered by one
    execution: inline runs memoize completed results, pool runs attach
    the duplicate to the identical in-flight worker.  ``stats`` (when
    given) counts those dedup hits for the manifest.
    """
    options = options or OrchestratorOptions()
    if not options.use_processes:
        yield from _run_inline(tasks, options, stats)
    else:
        yield from _run_pool(tasks, options, stats)


def _attempt_inline(
    task: ExperimentTask, options: OrchestratorOptions
) -> ExperimentResult:
    fn = options.resolve(task.name)
    last_error = "unknown error"
    attempts = options.retries + 1
    for attempt in range(1, attempts + 1):
        try:
            task.config.apply()  # same explicit environment as a worker
            result = fn(task.config)
            return replace(result, attempts=attempt)
        except Exception as exc:  # noqa: BLE001 — degrade, never abort the run
            last_error = f"{type(exc).__name__}: {exc}"
    return failed_result(task.name, task.config, last_error, attempts=attempts)


def _run_inline(
    tasks: Sequence[ExperimentTask],
    options: OrchestratorOptions,
    stats: RunStats | None = None,
) -> Iterator[ExperimentResult]:
    memo: dict[tuple[str, ExperimentConfig], ExperimentResult] = {}
    for task in tasks:
        if drain_requested():
            yield failed_result(
                task.name, task.config,
                "battery drained before this task started", status="cancelled",
            )
            continue
        key = _task_key(task)
        if key in memo:
            if stats is not None:
                stats.dedup_hits += 1
            yield memo[key]
            continue
        result = _attempt_inline(task, options)
        if result.ok:
            memo[key] = result
        yield result


def _run_pool(
    tasks: Sequence[ExperimentTask],
    options: OrchestratorOptions,
    stats: RunStats | None = None,
) -> Iterator[ExperimentResult]:
    ctx = _mp_context()
    pending: list[tuple[int, ExperimentTask, int]] = [
        (i, t, 1) for i, t in enumerate(tasks)
    ]
    pending.reverse()  # pop() from the front of the plan
    running: list[_Running] = []
    done: dict[int, ExperimentResult] = {}
    next_out = 0
    max_attempts = options.retries + 1

    def spawn(index: int, task: ExperimentTask, attempt: int) -> None:
        fn = options.resolve(task.name)
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_worker,
            args=(child_conn, fn, task.config.to_json()),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        deadline = (
            time.monotonic() + options.timeout if options.timeout is not None else None
        )
        running.append(_Running(index, task, attempt, proc, parent_conn, deadline))

    def finish(slot: _Running, result: ExperimentResult) -> None:
        done[slot.index] = result

    def retry_or_fail(slot: _Running, status: str, error: str) -> None:
        if slot.attempt < max_attempts:
            pending.append((slot.index, slot.task, slot.attempt + 1))
            # Followers go back to the queue as first attempts; they will
            # re-attach when the retried leader spawns (or lead themselves).
            pending.extend((i, t, 1) for i, t in slot.followers)
        else:
            finish(
                slot,
                failed_result(
                    slot.task.name,
                    slot.task.config,
                    error,
                    status=status,
                    attempts=slot.attempt,
                ),
            )
            for fidx, ftask in slot.followers:
                done[fidx] = failed_result(
                    ftask.name,
                    ftask.config,
                    error,
                    status=status,
                    attempts=slot.attempt,
                )

    try:
        while pending or running:
            if drain_requested() and pending:
                # Drain: nothing new starts; whatever is in flight
                # finishes (or times out) and is collected normally.
                while pending:
                    index, task, _attempt = pending.pop()
                    done[index] = failed_result(
                        task.name, task.config,
                        "battery drained before this task started",
                        status="cancelled",
                    )
            while pending and len(running) < max(1, options.jobs):
                index, task, attempt = pending.pop()
                leader = next(
                    (s for s in running if _task_key(s.task) == _task_key(task)),
                    None,
                )
                if leader is not None:
                    # An identical task is already in flight: ride along
                    # instead of burning a worker on the same simulation.
                    leader.followers.append((index, task))
                    if stats is not None:
                        stats.dedup_hits += 1
                    continue
                spawn(index, task, attempt)

            time.sleep(_POLL_INTERVAL)
            now = time.monotonic()
            still: list[_Running] = []
            for slot in running:
                # Drain the pipe first: a finished worker may have sent its
                # payload and already exited.
                if slot.payload is None and slot.conn.poll():
                    try:
                        slot.payload = slot.conn.recv()
                    except (EOFError, OSError):
                        slot.payload = None
                if slot.payload is not None:
                    slot.process.join(timeout=5)
                    kind, body = slot.payload
                    slot.conn.close()
                    if kind == "ok":
                        result = ExperimentResult.from_json(body)
                        finish(slot, replace(result, attempts=slot.attempt))
                        for fidx, _ftask in slot.followers:
                            done[fidx] = replace(
                                ExperimentResult.from_json(body),
                                attempts=slot.attempt,
                            )
                    else:
                        retry_or_fail(slot, "failed", str(body))
                elif not slot.process.is_alive():
                    slot.conn.close()
                    retry_or_fail(
                        slot,
                        "failed",
                        f"worker crashed (exit code {slot.process.exitcode})",
                    )
                elif slot.deadline is not None and now > slot.deadline:
                    slot.process.terminate()
                    slot.process.join(timeout=5)
                    slot.conn.close()
                    retry_or_fail(
                        slot, "timeout", f"timed out after {options.timeout}s"
                    )
                else:
                    still.append(slot)
            running[:] = still

            while next_out in done:
                yield done.pop(next_out)
                next_out += 1
    finally:
        for slot in running:
            slot.process.terminate()
            slot.process.join(timeout=5)
    while next_out in done:
        yield done.pop(next_out)
        next_out += 1


# -- manifests -----------------------------------------------------------------


def new_run_id() -> str:
    return time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"


def build_manifest(
    results: Sequence[ExperimentResult],
    *,
    run_id: str | None = None,
    jobs: int = 1,
    command: Sequence[str] | None = None,
    dedup_hits: int = 0,
    service: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """``service`` is the daemon's telemetry block (queue/batch/dedup and
    latency accounting) when the battery ran under ``repro serve``; it is
    empty for direct CLI runs, matching the per-result block convention."""
    return {
        "schema_version": SCHEMA_VERSION,
        "run_id": run_id or new_run_id(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "jobs": jobs,
        "command": list(command) if command is not None else None,
        "dedup_hits": dedup_hits,
        "service": dict(service) if service else {},
        "results": [r.to_json() for r in results],
    }


def write_manifest(
    manifest: Mapping[str, Any], results_dir: str | os.PathLike = DEFAULT_RESULTS_DIR
) -> Path:
    """Write ``results/run-<id>.json`` atomically; returns the path."""
    directory = Path(results_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"run-{manifest['run_id']}.json"
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def comparable_manifest(manifest: Mapping[str, Any]) -> list[dict[str, Any]]:
    """The deterministic portion of a manifest: what ``--jobs 1`` and
    ``--jobs N`` runs must agree on (timings and cache activity excluded)."""
    return [
        ExperimentResult.from_json(entry).comparable_json()
        for entry in manifest["results"]
    ]


def summary_table(results: Sequence[ExperimentResult]) -> Table:
    """The orchestrator's closing summary: one row per experiment."""
    t = Table(
        "Run summary",
        ("experiment", "scale", "status", "attempts", "time (s)", "sim cache", "peak MB"),
        volatile=("time (s)", "sim cache", "peak MB"),
    )
    for r in results:
        cache = ""
        if r.sim_cache:
            cache = f"{r.sim_cache.get('hits', 0)}h/{r.sim_cache.get('misses', 0)}m"
            if r.sim_cache.get("disk_hits"):
                cache += f" ({r.sim_cache['disk_hits']} disk)"
        rss = r.memory.get("peak_rss_bytes")
        t.add(
            r.experiment,
            r.config.get("scale", "-"),
            r.status,
            r.attempts,
            r.timings.get("total", 0.0),
            cache,
            f"{rss / 2**20:.0f}" if rss else "",
        )
    failures = [r for r in results if not r.ok]
    if failures:
        t.note = "; ".join(f.describe_failure() for f in failures)
    return t


def run_battery(
    names: Sequence[str],
    config: ExperimentConfig | None = None,
    *,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    scales: Sequence[int] | None = None,
    registry: Mapping[str, Callable] | None = None,
) -> list[ExperimentResult]:
    """Convenience wrapper: plan, run, collect (used by :mod:`repro.api`)."""
    config = config or ExperimentConfig()
    tasks = build_plan(list(names), config, scales)
    options = OrchestratorOptions(
        jobs=jobs, timeout=timeout, retries=retries, registry=registry
    )
    return list(run_tasks(tasks, options))


__all__ = [
    "DEFAULT_RESULTS_DIR",
    "ExperimentTask",
    "OrchestratorOptions",
    "RunStats",
    "build_manifest",
    "build_plan",
    "comparable_manifest",
    "drain_requested",
    "new_run_id",
    "request_drain",
    "reset_drain",
    "run_battery",
    "run_tasks",
    "summary_table",
    "write_manifest",
]

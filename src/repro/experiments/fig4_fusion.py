"""Figure 4 — the fusion counterexample.

The paper's numbers on the six-loop graph:

* no fusion: 20 array loads;
* bandwidth-minimal fusion (hypergraph model): loop 5 alone + the rest
  fused = 1 + 6 = **7** loads;
* the edge-weighted optimum (Gao et al. / Kennedy–McKinley): fuse loops
  1–5, leave loop 6 — cross-partition weight 2, but **8** array loads;
* the bandwidth-minimal solution's edge weight is 3, i.e. *not* optimal
  under the old objective — the two objectives genuinely disagree.

This experiment checks all four numbers on the abstract graph, and then
runs the three schedules of the *IR program* on the simulated Origin to
show the disagreement is real memory traffic, not an accounting artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fusion.apply import apply_partitioning
from ..fusion.build import fusion_graph_from_program
from ..fusion.cost import bandwidth_cost, edge_weight_cost
from ..fusion.edge_weighted import optimal_edge_weighted
from ..fusion.graph import FusionGraph, Partitioning
from ..fusion.multi_partition import optimal_partitioning
from ..interp.executor import execute
from ..programs.paper_examples import FIG4_PREVENTING, fig4_program
from .config import ExperimentConfig
from .report import Table
from .result import delta, experiment


@dataclass(frozen=True)
class Fig4Result:
    graph: FusionGraph
    no_fusion_cost: int
    optimal: Partitioning
    optimal_cost: int
    optimal_edge_weight: int
    edge_weighted: Partitioning
    edge_weighted_cross: int
    edge_weighted_bandwidth_cost: int
    memory_bytes: dict[str, int]  # schedule -> simulated memory traffic

    def table(self) -> Table:
        t = Table(
            "Figure 4: bandwidth-minimal vs edge-weighted fusion",
            ("schedule", "array loads", "cross weight", "simulated mem bytes"),
        )
        t.add("no fusion", self.no_fusion_cost, "-", self.memory_bytes["none"])
        t.add(
            f"bandwidth-minimal {self.optimal}",
            self.optimal_cost,
            self.optimal_edge_weight,
            self.memory_bytes["bandwidth"],
        )
        t.add(
            f"edge-weighted {self.edge_weighted}",
            self.edge_weighted_bandwidth_cost,
            self.edge_weighted_cross,
            self.memory_bytes["edge"],
        )
        t.note = "paper: 20 / 7 / 8 array loads; cross weights 3 / 2"
        return t


def _fig4_deltas(result: Fig4Result) -> list[dict]:
    return [
        delta("no fusion", "array loads", 20, result.no_fusion_cost),
        delta("bandwidth-minimal", "array loads", 7, result.optimal_cost),
        delta("edge-weighted", "array loads", 8, result.edge_weighted_bandwidth_cost),
        delta("bandwidth-minimal", "cross weight", 3, result.optimal_edge_weight),
        delta("edge-weighted", "cross weight", 2, result.edge_weighted_cross),
    ]


@experiment("fig4", deltas=_fig4_deltas)
def run_fig4(config: ExperimentConfig | None = None) -> Fig4Result:
    config = config or ExperimentConfig()
    n = config.stream_elements()
    program = fig4_program(n)
    graph = fusion_graph_from_program(program, extra_preventing=FIG4_PREVENTING)

    singles = Partitioning.singletons(graph.n_nodes)
    no_fusion = bandwidth_cost(graph, singles)

    optimal = optimal_partitioning(graph)
    edge = optimal_edge_weighted(graph)

    machine = config.origin
    mem: dict[str, int] = {}
    for key, partitioning in (
        ("none", singles),
        ("bandwidth", optimal.partitioning),
        ("edge", edge.partitioning),
    ):
        scheduled = apply_partitioning(program, partitioning, graph, name=f"fig4_{key}")
        run = execute(scheduled, machine)
        mem[key] = run.counters.memory_bytes

    return Fig4Result(
        graph=graph,
        no_fusion_cost=no_fusion,
        optimal=optimal.partitioning,
        optimal_cost=optimal.cost,
        optimal_edge_weight=edge_weight_cost(graph, optimal.partitioning),
        edge_weighted=edge.partitioning,
        edge_weighted_cross=edge.cross_weight,
        edge_weighted_bandwidth_cost=bandwidth_cost(graph, edge.partitioning),
        memory_bytes=mem,
    )

"""Experiments reproducing every table and figure of the paper."""

from .config import ExperimentConfig
from .e9_npcomplete import run_e9
from .e13_replacement import run_e13
from .e14_intrinsic import run_e14
from .e15_prediction import run_e15
from .e16_regrouping import run_e16
from .e17_survey import run_e17
from .e18_three_c import run_e18
from .e10_blocking import run_e10
from .e11_sp_utilization import run_e11
from .e12_pipeline import run_e12
from .fig1_balance import PAPER_BALANCE, PAPER_MACHINE_BALANCE, run_fig1
from .fig2_ratios import PAPER_RATIOS, run_fig2
from .fig3_bandwidth import run_fig3
from .fig4_fusion import run_fig4
from .fig5_mincut import random_hypergraph, run_fig5
from .fig6_storage import run_fig6
from .fig8_store_elim import PAPER_SECONDS, build_stages, run_fig8
from .ladder_capacity import run_ladder
from .plan import SimRequest, configure_plan, execute_plan, run_batch
from .orchestrator import (
    ExperimentTask,
    OrchestratorOptions,
    build_manifest,
    build_plan,
    run_battery,
    run_tasks,
    write_manifest,
)
from .registry import EXPERIMENTS
from .report import Table, fmt
from .result import ExperimentResult, experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentTask",
    "OrchestratorOptions",
    "build_manifest",
    "build_plan",
    "experiment",
    "run_battery",
    "run_tasks",
    "write_manifest",
    "PAPER_BALANCE",
    "PAPER_MACHINE_BALANCE",
    "PAPER_RATIOS",
    "PAPER_SECONDS",
    "SimRequest",
    "Table",
    "build_stages",
    "configure_plan",
    "execute_plan",
    "fmt",
    "random_hypergraph",
    "run_batch",
    "run_e10",
    "run_e13",
    "run_e14",
    "run_e15",
    "run_e16",
    "run_e17",
    "run_e18",
    "run_e11",
    "run_e12",
    "run_e9",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig8",
    "run_ladder",
]

"""E12 — the full compiler strategy, stage by stage.

Runs the section-3 pipeline (fusion → storage reduction → store
elimination) on a multi-loop program and reports the per-stage memory
traffic and simulated time — the ablation of the paper's overall strategy
showing where each technique's contribution lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.executor import MachineRun, execute
from ..lang.builder import ProgramBuilder
from ..lang.program import Program
from ..machine.spec import MachineSpec
from ..transforms.pipeline import PipelineResult, optimize
from .config import ExperimentConfig
from .report import Table
from .result import experiment


def multi_stage_workload(n: int) -> Program:
    """A five-loop producer/consumer chain with a temporary and a pair of
    reductions — enough structure for every pipeline stage to fire."""
    b = ProgramBuilder("chain", params={"N": n})
    src = b.array("src", "N")
    tmp = b.array("tmp", "N")
    dst = b.array("dst", "N", output=True)
    aux = b.array("aux", "N")
    s1 = b.scalar("s1", output=True)
    s2 = b.scalar("s2", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(tmp[i], src[i] * 2.0 + 1.0)
    with b.loop("i", 0, "N") as i:
        b.assign(dst[i], tmp[i] + aux[i])
    with b.loop("i", 0, "N") as i:
        b.assign(aux[i], tmp[i] * 0.5)
    with b.loop("i", 0, "N") as i:
        b.assign(s1, s1 + aux[i])
    with b.loop("i", 0, "N") as i:
        b.assign(s2, s2 + dst[i] * src[i])
    return b.build()


@dataclass(frozen=True)
class E12Result:
    machine: MachineSpec
    pipeline: PipelineResult
    runs: tuple[tuple[str, MachineRun], ...]  # (stage label, run)

    def table(self) -> Table:
        t = Table(
            "E12: full strategy, per-stage memory traffic and time",
            ("stage", "mem bytes", "writebacks(L2)", "time (ms)", "speedup"),
        )
        base = self.runs[0][1].seconds
        for label, run in self.runs:
            t.add(
                label,
                run.counters.memory_bytes,
                run.counters.level_stats[-1].writebacks,
                run.seconds * 1e3,
                f"{base / run.seconds:.2f}x",
            )
        return t


@experiment("e12")
def run_e12(config: ExperimentConfig | None = None) -> E12Result:
    config = config or ExperimentConfig()
    n = config.stream_elements()
    program = multi_stage_workload(n)
    pipeline = optimize(program)
    machine = config.origin
    runs: list[tuple[str, MachineRun]] = [("original", execute(program, machine))]
    for stage in pipeline.stages:
        if stage.applied:
            runs.append((stage.stage, execute(stage.program, machine)))
    return E12Result(machine, pipeline, tuple(runs))

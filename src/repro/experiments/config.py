"""Shared experiment configuration: machine scale and problem sizes.

The paper's machines and problems (16 MB arrays against a 4 MB L2) are
scaled down together so a full experiment run takes seconds. ``scale``
divides every cache size; problem sizes are derived so each array keeps
the paper's cache-relative regime (arrays a small multiple of the last
cache). All reported quantities are ratios (balance, demand/supply,
relative times, bandwidth fractions), which are invariant under this
scaling — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.presets import exemplar, origin2000
from ..machine.spec import MachineSpec

DEFAULT_SCALE = 128


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and derived problem sizes for one experiment run."""

    scale: int = DEFAULT_SCALE
    array_cache_factor: int = 4  # arrays >= this multiple of the last cache

    @property
    def origin(self) -> MachineSpec:
        return origin2000(self.scale)

    @property
    def exemplar(self) -> MachineSpec:
        return exemplar(self.scale)

    def stream_elements(self, machine: MachineSpec | None = None) -> int:
        """1-D array length: ``array_cache_factor`` x the last cache."""
        spec = machine or self.origin
        last = spec.cache_levels[-1].geometry.size_bytes
        return max(1024, self.array_cache_factor * last // 8)

    def grid_side(self, machine: MachineSpec | None = None) -> int:
        """2-D side so the square array is ~array_cache_factor x last cache,
        rounded to a multiple of 120 (divisible by the blocked-mm tile sizes
        and, at 8 bytes/element, a row is NOT a multiple of a power-of-two
        cache way, so column sweeps spread across sets instead of thrashing
        a 2-way cache)."""
        spec = machine or self.origin
        last = spec.cache_levels[-1].geometry.size_bytes
        import math

        side = int(math.sqrt(self.array_cache_factor * last / 8))
        return max(120, side // 30 * 30)

    def mm_side(self) -> int:
        """Matrix side for the mm rows: the N^3 trace dominates experiment
        cost, so mm targets only ~2x the last cache (still memory-resident)
        with a side divisible by the tile sizes (30/divisors)."""
        last = self.origin.cache_levels[-1].geometry.size_bytes
        import math

        side = int(math.sqrt(2 * last / 8))
        return max(60, side // 30 * 30)

    def fft_elements(self) -> int:
        """Power-of-two length with the data arrays at least ~2x the last
        cache (log2(N) full sweeps make the FFT trace long, so it targets
        the smaller memory-resident regime)."""
        last = self.origin.cache_levels[-1].geometry.size_bytes
        target = 2 * last // 8
        n = 1024
        while n < target:
            n <<= 1
        return n

    def exemplar_kernel_elements(self) -> int:
        """Array length for the Figure 3 Exemplar runs: array spacing of
        exactly C + C/5 bytes gives the five-array conflict period that
        isolates the 3w6r anomaly (see machine.presets)."""
        cache = self.exemplar.cache_levels[-1].geometry.size_bytes
        assert cache % 5 == 0, "exemplar preset cache must be divisible by 5"
        return (cache + cache // 5) // 8

"""Shared experiment configuration: machine scale and problem sizes.

The paper's machines and problems (16 MB arrays against a 4 MB L2) are
scaled down together so a full experiment run takes seconds. ``scale``
divides every cache size; problem sizes are derived so each array keeps
the paper's cache-relative regime (arrays a small multiple of the last
cache). All reported quantities are ratios (balance, demand/supply,
relative times, bandwidth fractions), which are invariant under this
scaling — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Mapping

from ..machine.presets import exemplar, origin2000
from ..machine.spec import MachineSpec

DEFAULT_SCALE = 128


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale and derived problem sizes for one experiment run.

    The simulation-environment knobs (``engine``, ``sim_cache``,
    ``sim_cache_dir``) live here too, so a worker process can reproduce
    the exact environment of its parent from the config alone —
    :meth:`apply` installs them as the process defaults.
    """

    scale: int = DEFAULT_SCALE
    array_cache_factor: int = 4  # arrays >= this multiple of the last cache
    engine: str = "auto"  # cache-simulation engine (see repro.machine.engine)
    sim_cache: bool = True  # content-keyed simulation memo on/off
    sim_cache_dir: str | None = None  # persistent tier directory (None = memory only)
    stream: bool = False  # chunked trace pipeline with producer/consumer overlap
    chunk_accesses: int | None = None  # accesses per streamed chunk (None = default)
    shards: int = 1  # set-sharded parallel simulation workers (1 = serial)
    predict: bool = False  # analytic fast path for sweep points (see predict.py)
    spot_check: float = 0.05  # fraction of predicted points simulated exactly
    predict_tolerance: float = 0.10  # max per-channel byte error before fallback
    plan: bool = False  # sweep query planner for batched points (see plan.py)
    cores: int = 1  # contended timing across N cores (1 = the paper's model)

    def apply(self) -> None:
        """Install this config's engine and sim-cache settings as the
        process defaults (what the runner did ad hoc before; workers call
        this so the environment is inherited explicitly, not by accident).

        Idempotent: when the current process default already matches, the
        cache is left alone so its in-memory memo survives across the
        experiments of one serial battery."""
        from ..interp.executor import configure_streaming
        from ..machine.contention import configure_cores
        from ..machine.engine import set_default_engine
        from ..machine.engine.sharded import configure_sharding
        from ..machine.engine.simcache import configure_sim_cache, get_sim_cache
        from .plan import configure_plan
        from .predict import configure_predict

        set_default_engine(self.engine)
        configure_streaming(self.stream, self.chunk_accesses)
        configure_sharding(self.shards)
        configure_cores(self.cores)
        configure_predict(self.predict, self.spot_check, self.predict_tolerance)
        configure_plan(self.plan)
        current = get_sim_cache()
        matches = (
            current is not None
            and self.sim_cache
            and (
                current.directory is None
                if self.sim_cache_dir is None
                else current.directory == Path(self.sim_cache_dir)
            )
        ) or (current is None and not self.sim_cache)
        if not matches:
            configure_sim_cache(enabled=self.sim_cache, directory=self.sim_cache_dir)

    def to_json(self) -> dict[str, Any]:
        """A JSON-serializable snapshot (every field is a plain scalar)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ExperimentConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def origin(self) -> MachineSpec:
        return origin2000(self.scale)

    @property
    def exemplar(self) -> MachineSpec:
        return exemplar(self.scale)

    def stream_elements(self, machine: MachineSpec | None = None) -> int:
        """1-D array length: ``array_cache_factor`` x the last cache."""
        spec = machine or self.origin
        last = spec.cache_levels[-1].geometry.size_bytes
        return max(1024, self.array_cache_factor * last // 8)

    def grid_side(self, machine: MachineSpec | None = None) -> int:
        """2-D side so the square array is ~array_cache_factor x last cache,
        rounded to a multiple of 120 (divisible by the blocked-mm tile sizes
        and, at 8 bytes/element, a row is NOT a multiple of a power-of-two
        cache way, so column sweeps spread across sets instead of thrashing
        a 2-way cache)."""
        spec = machine or self.origin
        last = spec.cache_levels[-1].geometry.size_bytes
        import math

        side = int(math.sqrt(self.array_cache_factor * last / 8))
        return max(120, side // 30 * 30)

    def mm_side(self) -> int:
        """Matrix side for the mm rows: the N^3 trace dominates experiment
        cost, so mm targets only ~2x the last cache (still memory-resident)
        with a side divisible by the tile sizes (30/divisors)."""
        last = self.origin.cache_levels[-1].geometry.size_bytes
        import math

        side = int(math.sqrt(2 * last / 8))
        return max(60, side // 30 * 30)

    def fft_elements(self) -> int:
        """Power-of-two length with the data arrays at least ~2x the last
        cache (log2(N) full sweeps make the FFT trace long, so it targets
        the smaller memory-resident regime)."""
        last = self.origin.cache_levels[-1].geometry.size_bytes
        target = 2 * last // 8
        n = 1024
        while n < target:
            n <<= 1
        return n

    def exemplar_kernel_elements(self) -> int:
        """Array length for the Figure 3 Exemplar runs: array spacing of
        exactly C + C/5 bytes gives the five-array conflict period that
        isolates the 3w6r anomaly (see machine.presets)."""
        cache = self.exemplar.cache_levels[-1].geometry.size_bytes
        assert cache % 5 == 0, "exemplar preset cache must be divisible by 5"
        return (cache + cache // 5) // 8

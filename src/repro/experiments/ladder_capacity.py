"""Capacity ladder — miss ratio versus cache size, planned as one sweep.

The paper's bandwidth argument rests on how fast the miss ratio falls as
cache capacity grows (Figure 1's regimes, the three-C taxonomy of E18).
This experiment sweeps a ladder of fully-associative single-level
machines over a subset of the Figure 1 kernels and reports the miss
ratio and memory bytes per flop at every capacity.

It is also the planner's showcase: every point of one program's column
shares a trace, and because the ladder machines are fully-associative
LRU single-level caches, the whole column collapses to **one**
stack-distance profile (the ``capacity`` rule in
:mod:`repro.experiments.plan`).  Pointwise, the same sweep generates and
simulates the trace once per rung.  ``--plan`` answers are bit-identical
by construction, so the manifest diff in CI compares equal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.executor import MachineRun
from ..lang.program import Program
from ..machine.cache import CacheGeometry
from ..machine.layout import LayoutPolicy
from ..machine.spec import CacheLevelSpec, MachineSpec
from ..programs import convolution, dmxpy, fft
from .config import ExperimentConfig
from .plan import SimRequest, run_batch
from .report import Table
from .result import delta, experiment

#: Ladder rungs as powers of two relative to the scaled Origin L2.
LADDER_STEPS = tuple(range(-8, 4))  # base x 2^-8 .. base x 2^3 (12 rungs)

#: Ladder line size: the Origin L2 line, the paper's memory-channel grain.
LINE_SIZE = 128

#: One fixed layout for every rung so the planner groups the whole
#: column under a single trace (the Origin padding policy).
LADDER_LAYOUT = LayoutPolicy(alignment=32, pad_bytes=37 * 32)


def ladder_sizes(config: ExperimentConfig) -> tuple[int, ...]:
    """Capacities in bytes, clamped to at least one line."""
    base = config.origin.cache_levels[-1].geometry.size_bytes
    sizes = []
    for k in LADDER_STEPS:
        size = base * (2**k) if k >= 0 else base // (2**-k)
        size = max(LINE_SIZE, size // LINE_SIZE * LINE_SIZE)
        if size not in sizes:
            sizes.append(size)
    return tuple(sizes)


def ladder_machine(size: int, config: ExperimentConfig) -> MachineSpec:
    """A single-level fully-associative machine of ``size`` bytes.

    Bandwidth and peak-flop numbers are the Origin's (they do not affect
    the counters this experiment reports); the name carries the capacity
    so every rung is a distinct machine while the trace part of the
    simulation key stays shared.
    """
    origin = config.origin
    return MachineSpec(
        name=f"ladder-{size}B",
        peak_flops=origin.peak_flops,
        register_bandwidth=origin.register_bandwidth,
        cache_levels=(
            CacheLevelSpec(
                name="C",
                geometry=CacheGeometry(size, LINE_SIZE, size // LINE_SIZE),
                downstream_bandwidth=origin.cache_levels[-1].downstream_bandwidth,
                downstream_latency=origin.cache_levels[-1].downstream_latency,
            ),
        ),
        default_layout=LADDER_LAYOUT,
    )


def ladder_workloads(config: ExperimentConfig) -> list[tuple[str, Program]]:
    """The cheap Figure 1 kernels (the expensive mm/SP/Sweep3D rows add
    trace volume, not planner coverage)."""
    n = config.stream_elements()
    return [
        ("convolution", convolution(n)),
        ("dmxpy", dmxpy(n, 16)),
        ("FFT", fft(config.fft_elements())),
    ]


def ladder_requests(config: ExperimentConfig) -> list[SimRequest]:
    """The full request batch: every workload at every rung."""
    sizes = ladder_sizes(config)
    return [
        SimRequest(prog, ladder_machine(size, config), layout_policy=LADDER_LAYOUT)
        for _, prog in ladder_workloads(config)
        for size in sizes
    ]


@dataclass(frozen=True)
class LadderResult:
    sizes: tuple[int, ...]
    programs: tuple[str, ...]
    runs: tuple[MachineRun, ...]  # row-major: programs x sizes

    def run_at(self, program: str, size: int) -> MachineRun:
        i = self.programs.index(program)
        j = self.sizes.index(size)
        return self.runs[i * len(self.sizes) + j]

    def miss_ratio(self, program: str, size: int) -> float:
        stats = self.run_at(program, size).counters.level_stats[0]
        return stats.misses / stats.accesses if stats.accesses else 0.0

    def memory_bytes_per_flop(self, program: str, size: int) -> float:
        counters = self.run_at(program, size).counters
        return counters.memory_bytes / counters.graduated_flops

    def table(self) -> Table:
        t = Table(
            "Capacity ladder: miss ratio by cache size (fully-assoc LRU)",
            ("program", "cache KB", "miss ratio", "Mem B/flop"),
        )
        for name in self.programs:
            for size in self.sizes:
                t.add(
                    name,
                    size / 1024,
                    self.miss_ratio(name, size),
                    self.memory_bytes_per_flop(name, size),
                )
        t.note = (
            "one trace per program answers every capacity; under --plan the "
            "column collapses to a single stack-distance profile"
        )
        return t


def _ladder_deltas(result: LadderResult) -> list[dict]:
    # No paper row to compare against; assert the structural property the
    # sweep exists to show — the miss ratio is non-increasing in capacity.
    out = []
    for name in result.programs:
        ratios = [result.miss_ratio(name, s) for s in result.sizes]
        monotone = all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))
        out.append(
            delta(name, "miss ratio monotone in capacity", 1.0, 1.0 if monotone else 0.0)
        )
    return out


@experiment("ladder", deltas=_ladder_deltas)
def run_ladder(config: ExperimentConfig | None = None) -> LadderResult:
    config = config or ExperimentConfig()
    sizes = ladder_sizes(config)
    names = tuple(name for name, _ in ladder_workloads(config))
    # run_batch respects --plan/--predict; pointwise it is exactly a loop
    # of run_or_predict calls, so both modes fill the same manifest rows.
    runs = run_batch(
        ladder_requests(config),
        stream=config.stream,
        chunk_accesses=config.chunk_accesses,
    )
    return LadderResult(sizes, names, tuple(runs))

"""Sweep query planner: simulate each trace once, answer every point.

The paper's experiments are parameter sweeps: one program trace evaluated
against many cache configurations.  Pointwise execution costs
O(points x accesses); most of that work is shared.  This module takes a
*batch* of simulation requests and executes it as a shared-work plan.

Requests are keyed by trace identity — ``(program text, bound params,
layout placements)`` plus the run schedule ``(passes, warmup, flush)`` —
and each group is answered by the cheapest applicable collapse rule:

``cache``
    The content-keyed simcache already holds the point (full machine key
    or the name-independent prefix key below).  Zero simulation.
``capacity``
    All points are single-level fully-associative LRU machines differing
    only in capacity: one :func:`~repro.machine.engine.stack.stack_profile`
    pass answers every capacity with exact full counters.  O(accesses)
    for the whole ladder instead of per point.
``prefix``
    Hierarchies that share a level prefix are merged into a simulation
    trie: each distinct level is one engine instance, chunks stream
    through the trie, and every level's ordered downstream event stream
    fans out to all of its children in memory — an L1 shared by ten
    machines is simulated once.  Leaf results are additionally persisted
    under a geometry-chain key (level names and layout-policy repr
    excluded), so later batches reuse them across machine renamings.
``trace``
    No structural sharing, but the trace is generated once and fanned to
    all hierarchies in a single pass (:meth:`Hierarchy.run_stream_multi`
    when sharding, the degenerate trie otherwise).
``fallback``
    No rule applies (singleton group, unsupported schedule): the point
    runs through :func:`repro.interp.executor.execute` unchanged and the
    reason is recorded in the plan telemetry.

Planned output is bit-identical to pointwise execution: engines persist
chunked state, the trie replays :meth:`Hierarchy.flush` ordering per
path, results are assembled by the executor's own
:func:`~repro.interp.executor.assemble_run`, and every computed point is
written back to the simcache under its ordinary full key.

Telemetry follows the streaming/sharding collector pattern: the
``experiment`` decorator wraps each experiment in
:func:`collect_plan_telemetry` and :func:`summarize_plan` condenses the
session into the manifest's ``plan`` block (SCHEMA_VERSION 6).
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..balance.analytic import analyze
from ..errors import AnalysisError, ExecutionError
from ..lang.printer import render
from ..lang.program import Program
from ..machine.cache import CacheGeometry, CacheStats
from ..machine.engine import make_cache, telemetry as engine_telemetry
from ..machine.engine.sharded import build_hierarchy, get_default_shards
from ..machine.engine.simcache import (
    SimulationCache,
    SimulationResult,
    get_sim_cache,
    machine_signature,
    simulation_key,
)
from ..machine.engine.stack import stack_profile
from ..machine.hierarchy import Hierarchy, HierarchyResult, StreamTotals
from ..machine.layout import LayoutPolicy, build_layout
from ..machine.spec import MachineSpec
from ..interp.executor import (
    MachineRun,
    _timed_chunks,
    assemble_run,
    execute,
    get_streaming,
)
from ..phases import SIMULATE, TRACE_GEN, phase
from ..trace import telemetry as trace_telemetry
from ..trace.generator import TraceGenerator
from ..trace.stream import prefetch_chunks
from .predict import _session as _predict_session, _spot_check, get_predict

#: Stable rule names, in the order the planner tries them.
RULES = ("cache", "capacity", "prefix", "trace", "fallback")


# -- process default (installed by ExperimentConfig.apply / --plan) -----------
_plan_default: bool = False


def configure_plan(plan: bool = False) -> None:
    """Set the process-default planning mode for :func:`run_batch`."""
    global _plan_default
    _plan_default = bool(plan)


def get_plan() -> bool:
    """Current process default."""
    return _plan_default


# -- requests -----------------------------------------------------------------
@dataclass(frozen=True)
class SimRequest:
    """One sweep point: everything :func:`execute` needs to run it."""

    program: Program
    machine: MachineSpec
    params: Mapping[str, int] | None = None
    layout_policy: LayoutPolicy | None = None
    passes: int = 1
    warmup_passes: int = 0
    flush: bool = True
    validate: bool = True


def request_key(request: SimRequest) -> str:
    """Content key identifying one request's exact simulation.

    The same ``(program text, bound params, placements, machine signature,
    schedule)`` tuple the planner and simcache use — two requests with
    equal keys are guaranteed bit-identical, which is what lets the
    service collapse them onto one in-flight future.
    """
    bound = request.program.bind_params(request.params)
    layout = build_layout(
        request.program, bound, request.layout_policy or request.machine.default_layout
    )
    return simulation_key(
        render(request.program),
        bound,
        layout.placements,
        machine_signature(request.machine),
        passes=request.passes,
        warmup_passes=request.warmup_passes,
        flush=request.flush,
    )


# -- telemetry ----------------------------------------------------------------
@dataclass
class PlanSession:
    """One experiment's planner accounting."""

    groups: int = 0
    points: int = 0
    by_rule: dict[str, int] = field(default_factory=lambda: {r: 0 for r in RULES})
    accesses_requested: int = 0  # accesses pointwise execution would simulate
    accesses_simulated: int = 0  # accesses actually fed to L1-level engines
    traces_generated: int = 0  # distinct trace streams generated
    fallbacks: list[dict[str, Any]] = field(default_factory=list)

    def record(self, rule: str, points: int = 1) -> None:
        self.points += points
        self.by_rule[rule] += points


_session: ContextVar[PlanSession | None] = ContextVar("plan_session", default=None)


@contextlib.contextmanager
def collect_plan_telemetry() -> Iterator[PlanSession]:
    """Collect planner telemetry for the enclosed experiment."""
    session = PlanSession()
    token = _session.set(session)
    try:
        yield session
    finally:
        _session.reset(token)


def summarize_plan(session: PlanSession | None) -> dict[str, Any]:
    """The manifest ``plan`` block (empty when the planner never ran,
    matching the stream/shards/analytic convention)."""
    if session is None or session.points == 0:
        return {}
    return {
        "groups": session.groups,
        "points": session.points,
        "by_rule": dict(session.by_rule),
        "accesses_requested": session.accesses_requested,
        "accesses_simulated": session.accesses_simulated,
        "traces_generated": session.traces_generated,
        "fallbacks": list(session.fallbacks),
    }


# -- the planner --------------------------------------------------------------
@dataclass
class _Point:
    """A request resolved against its layout and cache keys."""

    index: int
    request: SimRequest
    bound: Mapping[str, int]
    layout: Any
    key: str | None  # full simulation key (None when caching is off)
    prefix_key: str | None  # name-independent geometry-chain key


class _TrieNode:
    """One cache level shared by every hierarchy whose prefix reaches it."""

    __slots__ = ("name", "geometry", "children", "terminals", "cache")

    def __init__(self, name: str, geometry: CacheGeometry):
        self.name = name
        self.geometry = geometry
        self.children: dict[tuple[int, int, int], _TrieNode] = {}
        self.terminals = 0  # points whose last level this is
        self.cache = None  # instantiated once the shape is final

    @property
    def subscribers(self) -> int:
        return self.terminals + sum(c.subscribers for c in self.children.values())


def _chain(machine: MachineSpec) -> tuple[tuple[int, int, int], ...]:
    return tuple(
        (lvl.geometry.size_bytes, lvl.geometry.line_size, lvl.geometry.associativity)
        for lvl in machine.cache_levels
    )


def _prefix_signature(machine: MachineSpec) -> str:
    """Level-name- and policy-independent machine description.  The trace
    part of the key already pins the placements, so two machines with the
    same geometry chain are counter-identical on the same trace."""
    return "chain:" + ";".join(f"{s}/{ln}/{a}" for s, ln, a in _chain(machine))


def _resolve_memo(sim_cache: SimulationCache | bool | None) -> SimulationCache | None:
    if sim_cache is None:
        return get_sim_cache()
    if isinstance(sim_cache, SimulationCache):
        return sim_cache
    return get_sim_cache() if sim_cache else None


def _finish_point(
    pt: _Point,
    result: HierarchyResult,
    totals: tuple[int, int, int],
    memo: SimulationCache | None,
    store_prefix: bool = True,
) -> MachineRun:
    flops, loads, stores = totals
    if memo is not None:
        value = SimulationResult(result, flops, loads, stores)
        if pt.key is not None:
            memo.put(pt.key, value)
        if store_prefix and pt.prefix_key is not None:
            memo.put(pt.prefix_key, value)
    return assemble_run(
        pt.request.program.name,
        pt.request.machine,
        pt.bound,
        result,
        flops,
        loads,
        stores,
        pt.request.passes,
    )


def _run_node(node: _TrieNode, addrs, writes) -> None:
    collect = bool(node.children)
    if engine_telemetry.collecting():
        n = len(addrs)
        start = time.perf_counter()
        out = node.cache.run(addrs, writes, collect_events=collect)
        engine_telemetry.record_level(
            node.cache.name, node.cache.engine, n, time.perf_counter() - start
        )
    else:
        out = node.cache.run(addrs, writes, collect_events=collect)
    for child in node.children.values():
        _run_node(child, out[0], out[1])


def _flush_node(node: _TrieNode) -> None:
    # Per root-to-leaf path this replays Hierarchy.flush exactly: level i
    # drains, its writebacks run through the levels below, then level i+1
    # drains.  Siblings hold independent state, so fan-out order between
    # them cannot change any counter.
    addrs, writes = node.cache.flush()
    for child in node.children.values():
        _run_node(child, addrs, writes)
    for child in node.children.values():
        _flush_node(child)


def execute_plan(
    requests: Sequence[SimRequest],
    *,
    engine: str | None = None,
    sim_cache: SimulationCache | bool | None = None,
    stream: bool | str | None = None,
    chunk_accesses: int | None = None,
    shards: int | None = None,
) -> list[MachineRun]:
    """Execute a batch of simulation requests as a shared-work plan.

    Returns one :class:`MachineRun` per request, in request order,
    bit-identical to calling :func:`execute` per point with the same
    options.  Keyword arguments default to the same process-wide settings
    :func:`execute` uses.
    """
    requests = list(requests)
    if not requests:
        return []
    session = _session.get() or PlanSession()
    memo = _resolve_memo(sim_cache)
    if stream is None:
        stream = get_streaming()[0]
    if chunk_accesses is None:
        chunk_accesses = get_streaming()[1]
    if shards is None:
        shards = get_default_shards()

    results: list[MachineRun | None] = [None] * len(requests)

    # Rule "cache": answer from the simcache (full key, then the
    # name-independent prefix key) before any grouping.
    groups: dict[tuple, list[_Point]] = {}
    for i, req in enumerate(requests):
        bound = req.program.bind_params(req.params)
        layout = build_layout(
            req.program, bound, req.layout_policy or req.machine.default_layout
        )
        text = render(req.program)
        key = prefix_key = None
        if memo is not None:
            key = simulation_key(
                text,
                bound,
                layout.placements,
                machine_signature(req.machine),
                passes=req.passes,
                warmup_passes=req.warmup_passes,
                flush=req.flush,
            )
            prefix_key = simulation_key(
                text,
                bound,
                layout.placements,
                _prefix_signature(req.machine),
                passes=req.passes,
                warmup_passes=req.warmup_passes,
                flush=req.flush,
            )
            cached = memo.get(key)
            hit_via_prefix = False
            if cached is None:
                cached = memo.get(prefix_key)
                hit_via_prefix = cached is not None
            if cached is not None:
                if hit_via_prefix:
                    memo.put(key, cached)
                results[i] = assemble_run(
                    req.program.name,
                    req.machine,
                    bound,
                    cached.result,
                    cached.flops,
                    cached.loads,
                    cached.stores,
                    req.passes,
                )
                session.record("cache")
                continue
        pt = _Point(i, req, bound, layout, key, prefix_key)
        gkey = (
            text,
            tuple(sorted((k, int(v)) for k, v in bound.items())),
            tuple(
                sorted(
                    (name, p.base, tuple(p.extents), p.element_size)
                    for name, p in layout.placements.items()
                )
            ),
            req.passes,
            req.warmup_passes,
            req.flush,
            req.validate,
        )
        groups.setdefault(gkey, []).append(pt)

    for pts in groups.values():
        session.groups += 1
        _plan_group(
            pts, results, session, memo, engine, stream, chunk_accesses, shards
        )
    return results  # type: ignore[return-value] — every slot is filled


def _fallback_point(
    pt: _Point,
    reason: str,
    results: list,
    session: PlanSession,
    memo: SimulationCache | None,
    engine: str | None,
    stream: bool | str | None,
    chunk_accesses: int | None,
    shards: int | None,
) -> None:
    req = pt.request
    run = execute(
        req.program,
        req.machine,
        params=req.params,
        layout_policy=req.layout_policy,
        passes=req.passes,
        warmup_passes=req.warmup_passes,
        flush=req.flush,
        validate=req.validate,
        engine=engine,
        sim_cache=False,  # the planner owns the memo write (key in hand)
        stream=stream,
        chunk_accesses=chunk_accesses,
        shards=shards,
    )
    if memo is not None and pt.key is not None and req.passes >= 1:
        result = HierarchyResult(
            run.counters.level_stats, run.counters.downstream_bytes
        )
        totals = (
            run.counters.graduated_flops // req.passes,
            run.counters.loads // req.passes,
            run.counters.stores // req.passes,
        )
        memo.put(pt.key, SimulationResult(result, *totals))
        memo.put(pt.prefix_key, SimulationResult(result, *totals))
    results[pt.index] = run
    session.record("fallback")
    session.fallbacks.append(
        {"program": req.program.name, "machine": req.machine.name, "reason": reason}
    )


def _plan_group(
    pts: list[_Point],
    results: list,
    session: PlanSession,
    memo: SimulationCache | None,
    engine: str | None,
    stream: bool | str | None,
    chunk_accesses: int | None,
    shards: int | None,
) -> None:
    req0 = pts[0].request
    passes, warmup, flush = req0.passes, req0.warmup_passes, req0.flush

    if passes < 1:
        for pt in pts:
            _fallback_point(
                pt, "passes < 1 is not plannable", results, session, memo,
                engine, stream, chunk_accesses, shards,
            )
        return
    if len(pts) == 1:
        _fallback_point(
            pts[0], "no shared work in group", results, session, memo,
            engine, stream, chunk_accesses, shards,
        )
        return

    geos = [pt.request.machine.cache_levels[0].geometry for pt in pts]
    if (
        passes == 1
        and warmup == 0
        and all(len(pt.request.machine.cache_levels) == 1 for pt in pts)
        and all(g.n_sets == 1 for g in geos)
        and len({g.line_size for g in geos}) == 1
    ):
        _capacity_group(pts, results, session, memo, flush)
        return
    if shards is not None and shards > 1:
        _multi_group(
            pts, results, session, memo, engine, stream, chunk_accesses, shards,
            passes, warmup, flush,
        )
        return
    _trie_group(
        pts, results, session, memo, engine, stream, chunk_accesses,
        passes, warmup, flush,
    )


def _generator(pt: _Point) -> TraceGenerator:
    return TraceGenerator(
        pt.request.program, pt.bound, pt.layout, validate=pt.request.validate
    )


def _capacity_group(
    pts: list[_Point],
    results: list,
    session: PlanSession,
    memo: SimulationCache | None,
    flush: bool,
) -> None:
    """One stack-distance profile answers every capacity exactly."""
    line_size = pts[0].request.machine.cache_levels[0].geometry.line_size
    with phase(TRACE_GEN):
        trace = _generator(pts[0]).generate()
    if len(trace) == 0 and trace.flops == 0:
        raise ExecutionError(
            f"program {pts[0].request.program.name!r} generates no work"
        )
    trace_telemetry.record_trace_bytes(trace.nbytes)
    with phase(SIMULATE):
        profile = stack_profile(trace.addresses, trace.is_write, line_size)
    session.traces_generated += 1
    session.accesses_requested += len(trace) * len(pts)
    session.accesses_simulated += len(trace)
    totals = (trace.flops, trace.loads, trace.stores)
    for pt in pts:
        geo = pt.request.machine.cache_levels[0].geometry
        stats = profile.stats(geo.n_lines, flush=flush)
        result = HierarchyResult((stats,), (stats.events_out * geo.line_size,))
        results[pt.index] = _finish_point(pt, result, totals, memo)
        session.record("capacity")


def _feed_pass(
    roots: list[_TrieNode],
    gen: TraceGenerator,
    stream: bool | str | None,
    chunk_accesses: int | None,
) -> StreamTotals:
    chunks = _timed_chunks(gen, chunk_accesses)
    if stream in (True, "overlap"):
        chunks = prefetch_chunks(chunks)
    n_chunks = accesses = flops = loads = stores = 0
    with phase(SIMULATE):
        for chunk in chunks:
            for root in roots:
                _run_node(root, chunk.addresses, chunk.is_write)
            n_chunks += 1
            accesses += len(chunk)
            flops += chunk.flops
            loads += chunk.loads
            stores += chunk.stores
    return StreamTotals(n_chunks, accesses, flops, loads, stores)


def _trie_group(
    pts: list[_Point],
    results: list,
    session: PlanSession,
    memo: SimulationCache | None,
    engine: str | None,
    stream: bool | str | None,
    chunk_accesses: int | None,
    passes: int,
    warmup: int,
    flush: bool,
) -> None:
    """Merge hierarchies into a level trie; shared prefixes simulate once."""
    roots: dict[tuple[int, int, int], _TrieNode] = {}
    paths: list[list[_TrieNode]] = []
    for pt in pts:
        level = roots
        path: list[_TrieNode] = []
        for spec_lvl in pt.request.machine.cache_levels:
            key = (
                spec_lvl.geometry.size_bytes,
                spec_lvl.geometry.line_size,
                spec_lvl.geometry.associativity,
            )
            node = level.get(key)
            if node is None:
                node = level[key] = _TrieNode(spec_lvl.name, spec_lvl.geometry)
            path.append(node)
            level = node.children
        path[-1].terminals += 1
        paths.append(path)

    def instantiate(node: _TrieNode) -> None:
        node.cache = make_cache(
            node.name, node.geometry, last_level=not node.children, engine=engine
        )
        for child in node.children.values():
            instantiate(child)

    root_list = list(roots.values())
    for root in root_list:
        instantiate(root)

    gen = _generator(pts[0])
    totals = None
    for _ in range(warmup):
        totals = _feed_pass(root_list, gen, stream, chunk_accesses)
    if warmup:
        for path in paths:
            for node in path:
                node.cache.reset_stats()
    for _ in range(passes):
        totals = _feed_pass(root_list, gen, stream, chunk_accesses)
    if totals.accesses == 0 and totals.flops == 0:
        raise ExecutionError(
            f"program {pts[0].request.program.name!r} generates no work"
        )
    if flush:
        with phase(SIMULATE):
            for root in root_list:
                _flush_node(root)
    trace_telemetry.record_trace_bytes(totals.accesses * 9)

    session.traces_generated += 1
    session.accesses_requested += totals.accesses * (passes + warmup) * len(pts)
    session.accesses_simulated += totals.accesses * (passes + warmup) * len(root_list)
    run_totals = (totals.flops, totals.loads, totals.stores)
    for pt, path in zip(pts, paths):
        level_stats = tuple(CacheStats(**vars(node.cache.stats)) for node in path)
        downstream = tuple(
            st.events_out * node.geometry.line_size
            for st, node in zip(level_stats, path)
        )
        result = HierarchyResult(level_stats, downstream)
        results[pt.index] = _finish_point(pt, result, run_totals, memo)
        shared = any(node.subscribers > 1 for node in path)
        session.record("prefix" if shared else "trace")


def _multi_group(
    pts: list[_Point],
    results: list,
    session: PlanSession,
    memo: SimulationCache | None,
    engine: str | None,
    stream: bool | str | None,
    chunk_accesses: int | None,
    shards: int,
    passes: int,
    warmup: int,
    flush: bool,
) -> None:
    """Sharded hierarchies cannot share levels, but they can share the
    trace: generate once, fan chunks to every hierarchy."""
    gen = _generator(pts[0])
    hierarchies = [
        build_hierarchy(pt.request.machine, engine, shards=shards) for pt in pts
    ]

    def one_pass() -> StreamTotals:
        chunks = _timed_chunks(gen, chunk_accesses)
        if stream in (True, "overlap"):
            chunks = prefetch_chunks(chunks)
        with phase(SIMULATE):
            return Hierarchy.run_stream_multi(hierarchies, chunks)

    try:
        totals = None
        for _ in range(warmup):
            totals = one_pass()
        if warmup:
            for h in hierarchies:
                h.reset_stats()
        for _ in range(passes):
            totals = one_pass()
        if totals.accesses == 0 and totals.flops == 0:
            raise ExecutionError(
                f"program {pts[0].request.program.name!r} generates no work"
            )
        if flush:
            with phase(SIMULATE):
                for h in hierarchies:
                    h.flush()
        trace_telemetry.record_trace_bytes(totals.accesses * 9)
        session.traces_generated += 1
        session.accesses_requested += totals.accesses * (passes + warmup) * len(pts)
        session.accesses_simulated += totals.accesses * (passes + warmup) * len(pts)
        run_totals = (totals.flops, totals.loads, totals.stores)
        for pt, h in zip(pts, hierarchies):
            results[pt.index] = _finish_point(pt, h.result(), run_totals, memo)
            session.record("trace")
    finally:
        for h in hierarchies:
            h.close()


# -- batch entry point (predict-aware) ----------------------------------------
def run_batch(
    requests: Sequence[SimRequest],
    *,
    plan: bool | None = None,
    **execute_kwargs: Any,
) -> list[MachineRun]:
    """Run a batch of sweep points, planned or pointwise.

    ``plan=None`` follows the process default (``--plan``).  When predict
    mode is active the planner serves exactly the points
    :func:`~repro.experiments.predict.run_or_predict` would have
    simulated — the deterministic spot-check sample, unanalyzable
    programs, and everything after a tripped fallback gate — with
    identical session accounting, so a planned predicted sweep matches a
    pointwise one row for row.
    """
    from .predict import run_or_predict

    requests = list(requests)
    if plan is None:
        plan = get_plan()
    if not plan:
        return [
            run_or_predict(
                r.program,
                r.machine,
                r.params,
                layout_policy=r.layout_policy,
                passes=r.passes,
                warmup_passes=r.warmup_passes,
                flush=r.flush,
                validate=r.validate,
                **execute_kwargs,
            )
            for r in requests
        ]

    session = _predict_session.get()
    enabled = session.enabled if session is not None else get_predict()[0]
    if not enabled:
        if session is not None:
            session.points += len(requests)
        return execute_plan(requests, **execute_kwargs)

    # Predict mode: compute the analytic estimate per point (pure), then
    # batch the exact simulations the verification schedule needs.
    preds: list[MachineRun | AnalysisError] = []
    for r in requests:
        try:
            preds.append(
                analyze(
                    r.program,
                    r.machine,
                    r.params,
                    layout_policy=r.layout_policy,
                    passes=r.passes,
                ).run()
            )
        except AnalysisError as exc:
            preds.append(exc)

    if session is None:
        # No telemetry session: run_or_predict ships estimates unchecked;
        # only unanalyzable points simulate.
        exact_idx = [k for k, p in enumerate(preds) if isinstance(p, AnalysisError)]
        exact = dict(
            zip(exact_idx, execute_plan([requests[k] for k in exact_idx], **execute_kwargs))
        )
        return [exact.get(k, p) for k, p in enumerate(preds)]

    # Optimistic schedule: assuming no gate trip, the exact set is the
    # spot-check stride plus unanalyzable points (plus everything, if the
    # gate is already tripped).
    stride = session.stride
    exacts: dict[int, MachineRun] = {}
    need: list[int] = []
    virt_index = session.predicted + session.checked
    tripped = session.fallback_active
    for k, p in enumerate(preds):
        if tripped or isinstance(p, AnalysisError):
            need.append(k)
        elif virt_index % stride == 0:
            need.append(k)
            virt_index += 1
        else:
            virt_index += 1
    exacts.update(zip(need, execute_plan([requests[k] for k in need], **execute_kwargs)))

    results: list[MachineRun] = []
    for k, r in enumerate(requests):
        pred = preds[k]
        session.points += 1
        if session.fallback_active:
            if k not in exacts:
                # A spot check tripped the gate mid-batch: every remaining
                # unsimulated point now runs exactly, in one more plan.
                rest = [j for j in range(k, len(requests)) if j not in exacts]
                exacts.update(
                    zip(rest, execute_plan([requests[j] for j in rest], **execute_kwargs))
                )
            results.append(exacts[k])
            continue
        if isinstance(pred, AnalysisError):
            session.fallbacks += 1
            session.outliers.append(
                {
                    "program": r.program.name,
                    "machine": r.machine.name,
                    "channel": None,
                    "error": None,
                    "reason": str(pred),
                }
            )
            results.append(exacts[k])
            continue
        index = session.predicted + session.checked
        if index % stride == 0:
            exact = exacts[k]
            _spot_check(session, pred, exact)
            results.append(exact)
            continue
        session.predicted += 1
        results.append(pred)
    return results


__all__ = [
    "PlanSession",
    "SimRequest",
    "collect_plan_telemetry",
    "configure_plan",
    "execute_plan",
    "get_plan",
    "request_key",
    "run_batch",
    "summarize_plan",
]

"""Structured experiment results.

Every ``run_*`` experiment entry point returns an :class:`ExperimentResult`:
a machine-readable record of the run (figure id, config, the table rows the
paper's figure reports, paper-vs-measured deltas, per-phase timings and
sim-cache activity) that serializes to JSON.  The orchestrator ships these
across process boundaries and writes them into run manifests; the serial
runner renders its tables from the very same rows, so serial and parallel
output are bit-identical.

The refactor is applied by the :func:`experiment` decorator: the legacy
result object (``Fig1Result`` & co.) is kept on ``result.detail`` and every
attribute that is not a structured field falls through to it, with a
:class:`DeprecationWarning` naming the new spelling — existing callers keep
working for one release while they migrate.
"""

from __future__ import annotations

import functools
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

from ..machine.contention import (
    collect_contention_telemetry,
    summarize_contention,
)
from ..machine.engine.sharded import collect_shard_telemetry, summarize_shards
from ..machine.engine.simcache import get_sim_cache
from ..machine.engine.telemetry import collect_sim_telemetry, summarize_levels
from ..phases import collect_phases
from ..trace.telemetry import (
    collect_trace_telemetry,
    summarize_memory,
    summarize_stream,
)
from .config import ExperimentConfig
from .plan import collect_plan_telemetry, summarize_plan
from .predict import collect_analytic_telemetry, summarize_analytic
from .report import Table

#: Manifest / result schema version (docs/result.schema.json tracks it).
#: v2 added ``sim_levels``: per-level engine names and simulated
#: accesses/second for every experiment.  v3 added ``memory`` (peak RSS
#: and generated trace bytes) and ``stream`` (producer/consumer overlap
#: accounting when the chunked trace pipeline ran).  v4 added ``shards``
#: (set-sharded simulation telemetry: per-worker accesses and busy
#: wall-clock, imbalance, serial-fallback reason) and the ``shards``
#: config knob.  v5 added ``analytic`` (predict-then-verify accounting:
#: points predicted vs spot-checked, max per-channel byte error, the
#: over-tolerance outlier list) and the ``predict``/``spot_check``/
#: ``predict_tolerance`` config knobs.  v6 added ``plan`` (sweep-planner
#: accounting: request groups, points answered per collapse rule,
#: accesses simulated vs requested, per-point fallback reasons), the
#: ``plan`` config knob, and the manifest-level ``dedup_hits`` counter.
#: v7 added the manifest-level ``service`` block (queue/batch/dedup and
#: latency telemetry when a battery ran under ``repro serve``), the
#: ``cancelled`` status (tasks drained by SIGTERM before starting), and
#: the cross-process claim counters in ``sim_cache``.  v8 added
#: ``contention`` (multicore contended-timing telemetry: cores,
#: per-channel saturation and balance-gap delta vs. one core, clamp
#: fallbacks) and the ``cores`` config knob.
SCHEMA_VERSION = 8

#: Result statuses the orchestrator can record.
STATUSES = ("ok", "failed", "timeout", "cancelled")


@dataclass
class ExperimentResult:
    """One experiment's structured outcome.

    ``rows``/``headers``/``title``/``note`` carry exactly what the paper's
    table reports; ``volatile_columns`` names columns whose cells are real
    wall-clock measurements (they differ run to run and are excluded from
    equivalence comparisons).  ``detail`` holds the experiment's legacy
    result object in-process; it is never serialized.
    """

    experiment: str
    status: str = "ok"
    error: str | None = None
    attempts: int = 1
    config: dict[str, Any] = field(default_factory=dict)
    title: str = ""
    headers: tuple[str, ...] = ()
    rows: list[list[Any]] = field(default_factory=list)
    note: str = ""
    volatile_columns: tuple[str, ...] = ()
    paper_deltas: list[dict[str, Any]] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    sim_cache: dict[str, int] = field(default_factory=dict)
    sim_levels: list[dict[str, Any]] = field(default_factory=list)
    memory: dict[str, int] = field(default_factory=dict)
    stream: dict[str, Any] = field(default_factory=dict)
    shards: dict[str, Any] = field(default_factory=dict)
    analytic: dict[str, Any] = field(default_factory=dict)
    plan: dict[str, Any] = field(default_factory=dict)
    contention: dict[str, Any] = field(default_factory=dict)
    detail: Any = None

    # -- rendering -----------------------------------------------------------

    def table(self) -> Table:
        """The printable table, reconstructed from the structured rows."""
        t = Table(
            self.title or self.experiment,
            tuple(self.headers),
            volatile=tuple(self.volatile_columns),
        )
        for row in self.rows:
            t.add(*row)
        t.note = self.note
        return t

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def describe_failure(self) -> str:
        return f"{self.experiment}: {self.status} after {self.attempts} attempt(s): {self.error}"

    # -- serialization -------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """A JSON-serializable dict (drops ``detail``)."""
        return {
            "experiment": self.experiment,
            "status": self.status,
            "error": self.error,
            "attempts": self.attempts,
            "config": dict(self.config),
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "note": self.note,
            "volatile_columns": list(self.volatile_columns),
            "paper_deltas": [dict(d) for d in self.paper_deltas],
            "timings": {k: float(v) for k, v in self.timings.items()},
            "sim_cache": {k: int(v) for k, v in self.sim_cache.items()},
            "sim_levels": [dict(lv) for lv in self.sim_levels],
            "memory": {k: int(v) for k, v in self.memory.items()},
            "stream": dict(self.stream),
            "shards": dict(self.shards),
            "analytic": dict(self.analytic),
            "plan": dict(self.plan),
            "contention": dict(self.contention),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            experiment=data["experiment"],
            status=data.get("status", "ok"),
            error=data.get("error"),
            attempts=int(data.get("attempts", 1)),
            config=dict(data.get("config", {})),
            title=data.get("title", ""),
            headers=tuple(data.get("headers", ())),
            rows=[list(r) for r in data.get("rows", [])],
            note=data.get("note", ""),
            volatile_columns=tuple(data.get("volatile_columns", ())),
            paper_deltas=[dict(d) for d in data.get("paper_deltas", [])],
            timings=dict(data.get("timings", {})),
            sim_cache=dict(data.get("sim_cache", {})),
            sim_levels=[dict(lv) for lv in data.get("sim_levels", [])],
            memory=dict(data.get("memory", {})),
            stream=dict(data.get("stream", {})),
            shards=dict(data.get("shards", {})),
            analytic=dict(data.get("analytic", {})),
            plan=dict(data.get("plan", {})),
            contention=dict(data.get("contention", {})),
        )

    def comparable_json(self) -> dict[str, Any]:
        """The deterministic portion: timings, sim-cache activity, attempt
        counts, and cells of volatile (wall-clock) columns are masked, so
        ``--jobs 1`` and ``--jobs 4`` runs compare equal."""
        data = self.to_json()
        data.pop("timings")
        data.pop("sim_cache")
        data.pop("sim_levels")  # wall-clock rates; sim-cache hits empty it
        data.pop("memory")  # peak RSS varies run to run
        data.pop("stream")  # overlap seconds are wall-clock
        data.pop("shards")  # worker busy seconds are wall-clock
        data.pop("analytic")  # predicted cells differ from simulated ones
        data.pop("plan")  # planned and pointwise runs must compare equal
        data.pop("contention")  # per-core splits differ sharded vs. cached
        data.pop("attempts")
        volatile = {
            i for i, h in enumerate(self.headers) if h in self.volatile_columns
        }
        if volatile:
            data["rows"] = [
                [None if i in volatile else cell for i, cell in enumerate(row)]
                for row in data["rows"]
            ]
        return data

    # -- legacy passthrough --------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only non-field, non-dunder lookups land here.  They used to be
        # served by the experiment-specific result classes; keep them
        # working against ``detail`` for one release.
        if name == "detail" or name.startswith("_") or self.detail is None:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        value = getattr(self.detail, name)
        warnings.warn(
            f"ExperimentResult.{name} is a deprecated passthrough to the "
            f"legacy result object; use ExperimentResult.detail.{name} or "
            "the structured fields (rows/headers/paper_deltas)",
            DeprecationWarning,
            stacklevel=2,
        )
        return value


def failed_result(
    experiment: str,
    config: ExperimentConfig,
    error: str,
    *,
    status: str = "failed",
    attempts: int = 1,
) -> ExperimentResult:
    """The record of an experiment that crashed or timed out."""
    return ExperimentResult(
        experiment=experiment,
        status=status,
        error=error,
        attempts=attempts,
        config=config.to_json(),
    )


def _jsonable(cell: Any) -> Any:
    """Coerce a table cell to a JSON scalar without changing how it renders."""
    if cell is None or isinstance(cell, (bool, int, str)):
        return cell
    if isinstance(cell, float):
        return float(cell)  # numpy floats included
    try:  # numpy integer types
        import numpy as np

        if isinstance(cell, np.integer):
            return int(cell)
        if isinstance(cell, np.floating):
            return float(cell)
    except ImportError:  # pragma: no cover
        pass
    return str(cell)


def _find_config(args: tuple, kwargs: dict) -> ExperimentConfig | None:
    for value in (*args, *kwargs.values()):
        if isinstance(value, ExperimentConfig):
            return value
    return None


def experiment(
    experiment_id: str,
    *,
    deltas: Callable[[Any], Sequence[Mapping[str, Any]]] | None = None,
) -> Callable:
    """Wrap a legacy ``run_*`` so it returns an :class:`ExperimentResult`.

    The wrapped function still computes its experiment-specific result
    object; the decorator measures it (total seconds, per-phase seconds,
    sim-cache counter deltas), snapshots its table into structured rows,
    evaluates the optional ``deltas`` extractor (paper-vs-measured
    comparisons) and returns the combined record.  ``ExperimentResult``
    arguments are unwrapped to their ``detail`` automatically, so
    experiments that consume other experiments' results (fig2 reuses
    fig1) keep their original signatures.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs) -> ExperimentResult:
            args = tuple(
                a.detail if isinstance(a, ExperimentResult) and a.detail is not None else a
                for a in args
            )
            kwargs = {
                k: v.detail
                if isinstance(v, ExperimentResult) and v.detail is not None
                else v
                for k, v in kwargs.items()
            }
            config = _find_config(args, kwargs) or ExperimentConfig()
            memo = get_sim_cache()
            before = memo.counters.snapshot() if memo is not None else None
            start = time.perf_counter()
            with (
                collect_phases() as phases,
                collect_sim_telemetry() as sim_tel,
                collect_trace_telemetry() as trace_tel,
                collect_shard_telemetry() as shard_tel,
                collect_analytic_telemetry() as predict_tel,
                collect_plan_telemetry() as plan_tel,
                collect_contention_telemetry() as contention_tel,
            ):
                detail = fn(*args, **kwargs)
            total = time.perf_counter() - start
            table = detail.table()
            timings = {"total": total}
            timings.update(sorted(phases.items()))
            counters: dict[str, int] = {}
            if memo is not None and before is not None:
                delta = memo.counters.since(before)
                counters = {
                    "hits": delta.hits,
                    "misses": delta.misses,
                    "puts": delta.puts,
                    "disk_hits": delta.disk_hits,
                }
                # Cross-process in-flight guard activity, only when it fired.
                for name in ("claims", "claim_waits", "takeovers"):
                    if getattr(delta, name):
                        counters[name] = getattr(delta, name)
            return ExperimentResult(
                experiment=experiment_id,
                status="ok",
                config=config.to_json(),
                title=table.title,
                headers=tuple(table.headers),
                rows=[[_jsonable(c) for c in row] for row in table.rows],
                note=table.note,
                volatile_columns=tuple(table.volatile),
                paper_deltas=[dict(d) for d in (deltas(detail) if deltas else ())],
                timings=timings,
                sim_cache=counters,
                sim_levels=summarize_levels(sim_tel),
                memory=summarize_memory(trace_tel),
                stream=summarize_stream(trace_tel),
                shards=summarize_shards(shard_tel),
                analytic=summarize_analytic(predict_tel),
                plan=summarize_plan(plan_tel),
                contention=summarize_contention(contention_tel),
                detail=detail,
            )

        wrapper.experiment_id = experiment_id
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def delta(row: str, metric: str, paper: float, measured: float) -> dict[str, Any]:
    """One paper-vs-measured comparison entry."""
    paper = float(paper)
    measured = float(measured)
    return {
        "row": row,
        "metric": metric,
        "paper": paper,
        "measured": measured,
        "ratio": measured / paper if paper else None,
    }


def merge_attempts(result: ExperimentResult, attempts: int) -> ExperimentResult:
    """Record how many tries the orchestrator needed."""
    return replace(result, attempts=attempts)

"""Run experiments — serially or in parallel — and print the paper's tables.

Usage::

    python -m repro.experiments.runner              # everything, serial
    python -m repro.experiments.runner fig1 fig3    # a subset
    repro-experiments --jobs 4                      # full battery, 4 workers
    repro-experiments --scale 16,32,64 fig1         # parameter sweep
    repro-experiments --jobs 2 --timeout 120 all    # per-experiment deadline

The runner is a thin consumer of the orchestrator: experiments return
structured :class:`~repro.experiments.result.ExperimentResult` records,
the tables are rendered from those records (so serial and parallel output
are bit-identical), and every run writes a JSON manifest under
``results/`` (``--no-manifest`` disables it; ``docs/result.schema.json``
describes the format).
"""

from __future__ import annotations

import argparse
import signal
import sys
import warnings
from typing import Any

from .config import ExperimentConfig
from .orchestrator import (
    DEFAULT_RESULTS_DIR,
    OrchestratorOptions,
    RunStats,
    build_manifest,
    build_plan,
    drain_requested,
    request_drain,
    reset_drain,
    run_tasks,
    summary_table,
    write_manifest,
)
from .registry import EXPERIMENTS as _EXPERIMENTS
from .result import ExperimentResult

#: Default on-disk simulation-cache directory (kept for CLI help/back-compat).
DEFAULT_SIM_CACHE_DIR = ".repro_cache"


def __getattr__(name: str) -> Any:
    if name == "EXPERIMENTS":
        warnings.warn(
            "repro.experiments.runner.EXPERIMENTS moved to "
            "repro.experiments.registry.EXPERIMENTS",
            DeprecationWarning,
            stacklevel=2,
        )
        return _EXPERIMENTS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _parse_scales(text: str | None) -> list[int] | None:
    if text is None:
        return None
    try:
        scales = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--scale expects an integer or comma-separated integers, got {text!r}"
        ) from None
    if not scales or any(s <= 0 for s in scales):
        raise argparse.ArgumentTypeError(f"--scale values must be positive: {text!r}")
    return scales


def _sim_counters_suffix(result: ExperimentResult) -> str:
    hits = result.sim_cache.get("hits", 0)
    misses = result.sim_cache.get("misses", 0)
    disk = result.sim_cache.get("disk_hits", 0)
    if not (hits or misses):
        return ""
    suffix = f", sim {hits} cached / {misses} simulated"
    if disk:
        suffix += f" ({disk} from disk)"
    return suffix


def _sim_levels_suffix(result: ExperimentResult) -> str:
    """Engine names and aggregate simulated accesses/second, when any
    simulation actually ran (sim-cache hits leave this empty)."""
    accesses = sum(lv.get("accesses", 0) for lv in result.sim_levels)
    seconds = sum(lv.get("seconds", 0.0) for lv in result.sim_levels)
    if not accesses or seconds <= 0:
        return ""
    engines = sorted({lv["engine"] for lv in result.sim_levels})
    return f", {'+'.join(engines)} {accesses / seconds / 1e6:.1f} Macc/s"


def _shards_suffix(result: ExperimentResult) -> str:
    """Shard count, imbalance, or the serial-fallback note, when sharding
    was requested (sim-cache hits leave this empty, like sim_levels)."""
    sh = result.shards
    if not sh:
        return ""
    if sh.get("runs"):
        note = f", {sh.get('effective')} shards x {sh['runs']} sims"
        imbalance = sh.get("imbalance")
        if imbalance:
            note += f" (imbalance {imbalance:.2f})"
        return note
    return f", shards {sh.get('requested')} fell back to serial"


def _contention_suffix(result: ExperimentResult) -> str:
    """Contended-timing accounting, when a core count > 1 was in effect."""
    ct = result.contention
    if not ct:
        return ""
    if ct.get("runs"):
        note = f", {ct.get('cores')} cores"
        mem = next(
            (c for c in reversed(ct.get("channels", [])) if c.get("balance_gap", 1.0) > 1.0),
            None,
        )
        if mem:
            note += f" ({mem['name']} gap {mem['balance_gap']:.2f}x)"
        if ct.get("fallback_runs"):
            note += f", {ct['fallback_runs']} clamp(s)"
        return note
    return f", cores clamped: {ct.get('fallback_reason', '')}"


def _analytic_suffix(result: ExperimentResult) -> str:
    """Predict-then-verify accounting, when the analytic fast path ran."""
    an = result.analytic
    if not an:
        return ""
    note = (
        f", analytic {an.get('predicted', 0)}/{an.get('points', 0)} predicted"
        f" ({an.get('checked', 0)} checked"
    )
    if an.get("checked"):
        note += f", max err {an.get('max_error', 0.0):.1%}"
    note += ")"
    if an.get("fallbacks"):
        note += f", {an['fallbacks']} fallback(s) to exact"
    return note


def _plan_suffix(result: ExperimentResult) -> str:
    """Planner accounting, when the sweep query planner ran."""
    pl = result.plan
    if not pl:
        return ""
    rules = pl.get("by_rule", {})
    shared = ", ".join(
        f"{rules[r]} {r}" for r in ("cache", "capacity", "prefix", "trace", "fallback")
        if rules.get(r)
    )
    note = f", plan {pl.get('points', 0)} pts/{pl.get('groups', 0)} groups ({shared})"
    requested = pl.get("accesses_requested", 0)
    simulated = pl.get("accesses_simulated", 0)
    if requested and simulated:
        note += f", {requested / simulated:.1f}x fewer accesses"
    return note


def _memory_suffix(result: ExperimentResult) -> str:
    """Peak RSS and streaming-overlap accounting, when recorded."""
    parts = []
    rss = result.memory.get("peak_rss_bytes")
    if rss:
        parts.append(f"peak rss {rss / 2**20:.0f} MB")
    if result.stream:
        chunks = result.stream.get("chunks", 0)
        overlap = result.stream.get("overlap")
        note = f"stream {chunks} chunks"
        if overlap is not None:
            note += f", {overlap:.0%} gen hidden"
        parts.append(note)
    return ", " + ", ".join(parts) if parts else ""


def _print_result(result: ExperimentResult, label: str, charts: bool) -> None:
    if not result.ok:
        print(f"[{label}: {result.status.upper()} after {result.attempts} "
              f"attempt(s): {result.error}]")
        print()
        return
    print(result.table().render())
    if charts and result.experiment in ("fig1", "fig3"):
        if result.detail is None:
            print("(charts need the in-process detail: rerun with --jobs 1)")
        else:
            from .charts import balance_chart, fig3_chart

            print()
            chart = fig3_chart if result.experiment == "fig3" else balance_chart
            print(chart(result.detail))
    total = result.timings.get("total", 0.0)
    print(f"[{label}: {total:.1f}s{_sim_counters_suffix(result)}"
          f"{_sim_levels_suffix(result)}{_shards_suffix(result)}"
          f"{_contention_suffix(result)}{_analytic_suffix(result)}"
          f"{_plan_suffix(result)}{_memory_suffix(result)}]")
    print()


def main(argv: list[str] | None = None) -> int:
    from ..machine.engine import ENGINES

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce every table/figure of Ding & Kennedy (IPPS 2000).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*_EXPERIMENTS, "all"],
        default="all",
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=_parse_scales,
        default=None,
        metavar="N[,N...]",
        help="cache scale-down factor; a comma-separated list sweeps every "
        "experiment over each scale (default from config)",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also render bar-chart views (the paper's Figure 3 presentation)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", *sorted(ENGINES)],
        default="auto",
        help="cache-simulation engine (default: auto = fastest exact engine per level)",
    )
    parser.add_argument(
        "--no-sim-cache",
        action="store_true",
        help="disable the content-keyed simulation cache (always re-simulate)",
    )
    parser.add_argument(
        "--sim-cache-dir",
        default=DEFAULT_SIM_CACHE_DIR,
        help="directory of the persistent simulation cache (default: %(default)s)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="stream traces: chunked generation fused with simulation and "
        "prefetched on a background thread (bounded memory, identical counters)",
    )
    parser.add_argument(
        "--chunk-accesses",
        type=int,
        default=None,
        metavar="N",
        help="accesses per streamed chunk (default: 4Mi; implies nothing "
        "unless --stream is given)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="set-sharded parallel simulation workers per experiment "
        "(default: 1 = serial; composes with --jobs and --stream; falls "
        "back to serial when the hierarchy's set counts cannot be "
        "partitioned exactly)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=1,
        metavar="N",
        help="contended timing across N cores sharing the machine's "
        "bandwidth ceilings (default: 1 = the paper's uncontended model, "
        "bit-identical to omitting the flag; requests above a machine's "
        "core count clamp with a telemetry flag)",
    )
    parser.add_argument(
        "--predict",
        action="store_true",
        help="analytic fast path: sweep points are predicted from the loop "
        "IR + cache geometry (no trace), with an exact-simulation spot "
        "check of a sample and automatic fallback to exact simulation "
        "when a check exceeds the error tolerance",
    )
    parser.add_argument(
        "--spot-check",
        type=float,
        default=0.05,
        metavar="FRACTION",
        help="fraction of predicted points also simulated exactly "
        "(default: %(default)s; only meaningful with --predict)",
    )
    parser.add_argument(
        "--predict-tolerance",
        type=float,
        default=0.10,
        metavar="ERROR",
        help="max per-channel relative byte error a spot check may show "
        "before the experiment falls back to exact simulation "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--plan",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="sweep query planner: batch an experiment's simulation "
        "requests and share work across points (one trace per distinct "
        "trace identity, one stack-distance profile per capacity ladder, "
        "shared-prefix levels simulated once); answers are bit-identical "
        "to pointwise runs, with per-point fallback otherwise",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1 = in-process serial run)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-experiment deadline; a worker past it is terminated and "
        "the experiment recorded as timed out (implies worker processes)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts after a crash or timeout (default: %(default)s)",
    )
    parser.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help="where run manifests are written (default: %(default)s)",
    )
    parser.add_argument(
        "--no-manifest",
        action="store_true",
        help="do not write the results/run-<id>.json manifest",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.cores < 1:
        parser.error("--cores must be >= 1")
    if args.chunk_accesses is not None and args.chunk_accesses <= 0:
        parser.error("--chunk-accesses must be positive")
    if not 0.0 < args.spot_check <= 1.0:
        parser.error("--spot-check must be in (0, 1]")
    if args.predict_tolerance < 0.0:
        parser.error("--predict-tolerance must be >= 0")

    wanted = list(_EXPERIMENTS) if "all" in args.experiments else args.experiments
    scales = args.scale
    base_cfg = ExperimentConfig(
        engine=args.engine,
        sim_cache=not args.no_sim_cache,
        sim_cache_dir=None if args.no_sim_cache else args.sim_cache_dir,
        stream=args.stream,
        chunk_accesses=args.chunk_accesses,
        shards=args.shards,
        predict=args.predict,
        spot_check=args.spot_check,
        predict_tolerance=args.predict_tolerance,
        plan=args.plan,
        cores=args.cores,
    )
    base_cfg.apply()  # in-process runs simulate in this process

    tasks = build_plan(wanted, base_cfg, scales)
    options = OrchestratorOptions(
        jobs=args.jobs, timeout=args.timeout, retries=args.retries
    )

    shown = scales if scales else [base_cfg.scale]
    print("machine scale: " + ", ".join(f"1/{s}" for s in shown)
          + " of the paper's cache sizes")
    cache_desc = "off" if args.no_sim_cache else f"on ({args.sim_cache_dir})"
    mode = "in-process serial" if not options.use_processes else f"{args.jobs} worker(s)"
    pipeline = "streamed" if args.stream else "materialized"
    sharding = "serial" if args.shards == 1 else f"{args.shards} shard workers"
    timing = "1 core" if args.cores == 1 else f"contended, {args.cores} cores"
    predicting = (
        f"analytic ({args.spot_check:.0%} spot check, "
        f"tol {args.predict_tolerance:.0%})"
        if args.predict
        else "exact"
    )
    planning = "planned (shared-work batches)" if args.plan else "pointwise"
    print(f"engine: {args.engine}, sim cache: {cache_desc}, "
          f"trace pipeline: {pipeline}, simulation: {sharding}, "
          f"timing: {timing}, sweep points: {predicting}, "
          f"batches: {planning}, mode: {mode}\n")

    # Graceful drain: SIGTERM lets in-flight experiments finish, cancels
    # the rest, and still writes the manifest (exit code flags the gap).
    reset_drain()
    previous_handler: Any = None
    try:
        previous_handler = signal.signal(
            signal.SIGTERM, lambda _sig, _frame: request_drain()
        )
    except ValueError:
        pass  # not the main thread (embedded use): no handler, no drain

    stats = RunStats()
    results: list[ExperimentResult] = []
    try:
        for task, result in zip(tasks, run_tasks(tasks, options, stats)):
            results.append(result)
            _print_result(result, task.display(), args.charts)
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)

    if len(results) > 1:
        print(summary_table(results).render())
        if stats.dedup_hits:
            print(f"(scheduler dedup: {stats.dedup_hits} duplicate task(s) "
                  "answered by one execution)")
        print()
    if not args.no_manifest:
        manifest = build_manifest(
            results,
            jobs=args.jobs,
            command=list(argv) if argv is not None else sys.argv[1:],
            dedup_hits=stats.dedup_hits,
        )
        path = write_manifest(manifest, args.results_dir)
        print(f"manifest: {path}")

    # Graceful degradation: failures are recorded in the manifest, they do
    # not fail the battery — except after a drain, where a partial run
    # must be visible to the caller (CI, service) via the exit code.
    if drain_requested():
        incomplete = sum(1 for r in results if not r.ok) + (len(tasks) - len(results))
        print(f"drained on SIGTERM: {incomplete} of {len(tasks)} task(s) incomplete")
        return 1 if incomplete else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())

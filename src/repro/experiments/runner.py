"""Run every experiment and print the paper's tables.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig1 fig3  # a subset
    repro-experiments --scale 64 fig8             # bigger simulation

Each experiment prints the table its paper figure reports; EXPERIMENTS.md
records the paper-vs-measured comparison for the checked-in default scale.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .config import ExperimentConfig
from .e9_npcomplete import run_e9
from .e13_replacement import run_e13
from .e14_intrinsic import run_e14
from .e15_prediction import run_e15
from .e16_regrouping import run_e16
from .e17_survey import run_e17
from .e18_three_c import run_e18
from .e10_blocking import run_e10
from .e11_sp_utilization import run_e11
from .e12_pipeline import run_e12
from .fig1_balance import run_fig1
from .fig2_ratios import run_fig2
from .fig3_bandwidth import run_fig3
from .fig4_fusion import run_fig4
from .fig5_mincut import run_fig5
from .fig6_storage import run_fig6
from .fig8_store_elim import run_fig8

EXPERIMENTS: dict[str, Callable] = {
    "fig1": lambda cfg: run_fig1(cfg),
    "fig2": lambda cfg: run_fig2(cfg),
    "fig3": lambda cfg: run_fig3(cfg),
    "fig4": lambda cfg: run_fig4(cfg),
    "fig5": lambda cfg: run_fig5(),
    "fig6": lambda cfg: run_fig6(cfg),
    "fig8": lambda cfg: run_fig8(cfg),
    "e9": lambda cfg: run_e9(),
    "e10": lambda cfg: run_e10(cfg),
    "e11": lambda cfg: run_e11(cfg),
    "e12": lambda cfg: run_e12(cfg),
    "e13": lambda cfg: run_e13(cfg),
    "e14": lambda cfg: run_e14(cfg),
    "e15": lambda cfg: run_e15(cfg),
    "e16": lambda cfg: run_e16(cfg),
    "e17": lambda cfg: run_e17(cfg),
    "e18": lambda cfg: run_e18(cfg),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce every table/figure of Ding & Kennedy (IPPS 2000).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, "all"],
        default="all",
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="cache scale-down factor (default from config; smaller = slower, closer to hardware sizes)",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also render bar-chart views (the paper's Figure 3 presentation)",
    )
    args = parser.parse_args(argv)

    wanted = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    cfg = ExperimentConfig(scale=args.scale) if args.scale else ExperimentConfig()

    print(f"machine scale: 1/{cfg.scale} of the paper's cache sizes\n")
    for name in wanted:
        start = time.perf_counter()
        result = EXPERIMENTS[name](cfg)
        elapsed = time.perf_counter() - start
        print(result.table().render())
        if args.charts and name == "fig3":
            from .charts import fig3_chart

            print()
            print(fig3_chart(result))
        if args.charts and name == "fig1":
            from .charts import balance_chart

            print()
            print(balance_chart(result))
        print(f"[{name}: {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

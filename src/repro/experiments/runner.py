"""Run every experiment and print the paper's tables.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig1 fig3  # a subset
    repro-experiments --scale 64 fig8             # bigger simulation

Each experiment prints the table its paper figure reports; EXPERIMENTS.md
records the paper-vs-measured comparison for the checked-in default scale.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from ..machine.engine import ENGINES, set_default_engine
from ..machine.engine import simcache
from ..machine.engine.simcache import configure_sim_cache
from .config import ExperimentConfig
from .e9_npcomplete import run_e9
from .e13_replacement import run_e13
from .e14_intrinsic import run_e14
from .e15_prediction import run_e15
from .e16_regrouping import run_e16
from .e17_survey import run_e17
from .e18_three_c import run_e18
from .e10_blocking import run_e10
from .e11_sp_utilization import run_e11
from .e12_pipeline import run_e12
from .fig1_balance import run_fig1
from .fig2_ratios import run_fig2
from .fig3_bandwidth import run_fig3
from .fig4_fusion import run_fig4
from .fig5_mincut import run_fig5
from .fig6_storage import run_fig6
from .fig8_store_elim import run_fig8

# Every experiment has the uniform signature run_*(cfg: ExperimentConfig).
EXPERIMENTS: dict[str, Callable] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig8": run_fig8,
    "e9": run_e9,
    "e10": run_e10,
    "e11": run_e11,
    "e12": run_e12,
    "e13": run_e13,
    "e14": run_e14,
    "e15": run_e15,
    "e16": run_e16,
    "e17": run_e17,
    "e18": run_e18,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce every table/figure of Ding & Kennedy (IPPS 2000).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, "all"],
        default="all",
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="cache scale-down factor (default from config; smaller = slower, closer to hardware sizes)",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also render bar-chart views (the paper's Figure 3 presentation)",
    )
    parser.add_argument(
        "--engine",
        choices=["auto", *sorted(ENGINES)],
        default="auto",
        help="cache-simulation engine (default: auto = fastest exact engine per level)",
    )
    parser.add_argument(
        "--no-sim-cache",
        action="store_true",
        help="disable the content-keyed simulation cache (always re-simulate)",
    )
    parser.add_argument(
        "--sim-cache-dir",
        default=simcache.DEFAULT_DIR,
        help="directory of the persistent simulation cache (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    wanted = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    cfg = ExperimentConfig(scale=args.scale) if args.scale else ExperimentConfig()

    set_default_engine(args.engine)
    if args.no_sim_cache:
        memo = configure_sim_cache(enabled=False)
    else:
        memo = configure_sim_cache(directory=args.sim_cache_dir)

    print(f"machine scale: 1/{cfg.scale} of the paper's cache sizes")
    print(f"engine: {args.engine}, sim cache: "
          + (f"on ({args.sim_cache_dir})" if memo is not None else "off") + "\n")
    for name in wanted:
        before = memo.counters.snapshot() if memo is not None else None
        start = time.perf_counter()
        result = EXPERIMENTS[name](cfg)
        elapsed = time.perf_counter() - start
        print(result.table().render())
        if args.charts and name == "fig3":
            from .charts import fig3_chart

            print()
            print(fig3_chart(result))
        if args.charts and name == "fig1":
            from .charts import balance_chart

            print()
            print(balance_chart(result))
        timing = f"[{name}: {elapsed:.1f}s"
        if memo is not None and before is not None:
            delta = memo.counters.since(before)
            if delta.hits or delta.misses:
                timing += f", sim {delta}"
        print(timing + "]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The experiment registry: figure/table id -> ``run_*`` entry point.

Both the serial runner and the parallel orchestrator resolve experiment
names here.  Every entry has the uniform signature
``run_*(cfg: ExperimentConfig) -> ExperimentResult``.
"""

from __future__ import annotations

from typing import Callable, Dict

from .contention import run_contention
from .e9_npcomplete import run_e9
from .e10_blocking import run_e10
from .e11_sp_utilization import run_e11
from .e12_pipeline import run_e12
from .e13_replacement import run_e13
from .e14_intrinsic import run_e14
from .e15_prediction import run_e15
from .e16_regrouping import run_e16
from .e17_survey import run_e17
from .e18_three_c import run_e18
from .fig1_balance import run_fig1
from .fig2_ratios import run_fig2
from .fig3_bandwidth import run_fig3
from .fig4_fusion import run_fig4
from .fig5_mincut import run_fig5
from .fig6_storage import run_fig6
from .fig8_store_elim import run_fig8
from .ladder_capacity import run_ladder

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": run_fig1,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig8": run_fig8,
    "e9": run_e9,
    "e10": run_e10,
    "e11": run_e11,
    "e12": run_e12,
    "e13": run_e13,
    "e14": run_e14,
    "e15": run_e15,
    "e16": run_e16,
    "e17": run_e17,
    "e18": run_e18,
    "ladder": run_ladder,
    "contention": run_contention,
}

"""Plain-text table rendering for experiment reports.

Every experiment returns a structured result plus a :class:`Table` so the
runner can print the same rows the paper's figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def fmt(value, digits: int = 2) -> str:
    """Format one cell: floats to ``digits``, everything else via str."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


@dataclass
class Table:
    """A titled text table.

    ``volatile`` names columns whose cells are real wall-clock
    measurements: they legitimately differ between otherwise identical
    runs, so result comparisons (serial vs parallel manifests) mask them.
    """

    title: str
    headers: Sequence[str]
    rows: list[Sequence] = field(default_factory=list)
    note: str = ""
    volatile: Sequence[str] = ()

    def add(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self, digits: int = 2) -> str:
        cells = [[fmt(c, digits) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for k, c in enumerate(row):
                widths[k] = max(widths[k], len(c))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(
                " | ".join(
                    c.rjust(w) if _numericish(c) else c.ljust(w)
                    for c, w in zip(row, widths)
                )
            )
        if self.note:
            lines.append("")
            lines.append(f"note: {self.note}")
        return "\n".join(lines)


def _numericish(cell: str) -> bool:
    stripped = cell.replace(",", "").replace(".", "").replace("-", "").replace("%", "")
    return stripped.isdigit()

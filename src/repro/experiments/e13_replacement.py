"""E13 — LRU vs Belady-optimal replacement (the Burger et al. angle, §4).

Burger et al. bounded the value of "better cache management" with the
offline-optimal (Belady) policy; the paper's rejoinder is that OPT needs
perfect future knowledge hardware cannot have — but a *compiler* sees the
whole program too, and program transformation can beat what any
replacement policy can do (it changes the trace itself).

This experiment makes both points with numbers: per workload, the memory
traffic under LRU, under OPT on the same trace, and under LRU on the
*transformed* trace (the compiler strategy). On multi-loop programs the
compiler's reduction exceeds OPT's: rescheduling beats clairvoyant
caching.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.program import Program
from ..machine.layout import build_layout
from ..machine.opt_cache import lru_vs_opt
from ..machine.spec import MachineSpec
from ..programs import convolution, dmxpy, fig7_original, matmul
from ..trace.generator import generate_trace
from ..transforms.pipeline import optimize
from .config import ExperimentConfig
from .report import Table
from .result import experiment


@dataclass(frozen=True)
class ReplacementRow:
    program: str
    lru_bytes: int
    opt_bytes: int
    transformed_lru_bytes: int | None  # None when the pipeline found nothing

    @property
    def opt_gain(self) -> float:
        return self.lru_bytes / self.opt_bytes if self.opt_bytes else 1.0

    @property
    def compiler_gain(self) -> float | None:
        if self.transformed_lru_bytes is None or not self.transformed_lru_bytes:
            return None
        return self.lru_bytes / self.transformed_lru_bytes


@dataclass(frozen=True)
class E13Result:
    machine: MachineSpec
    rows: tuple[ReplacementRow, ...]

    def row(self, program: str) -> ReplacementRow:
        for r in self.rows:
            if r.program == program:
                return r
        raise KeyError(program)

    def table(self) -> Table:
        t = Table(
            "E13: LRU vs Belady-OPT vs compiler transformation (L2 traffic, bytes)",
            ("program", "LRU", "OPT (offline)", "transformed+LRU", "OPT gain", "compiler gain"),
        )
        for r in self.rows:
            t.add(
                r.program,
                r.lru_bytes,
                r.opt_bytes,
                r.transformed_lru_bytes if r.transformed_lru_bytes is not None else "-",
                f"{r.opt_gain:.2f}x",
                f"{r.compiler_gain:.2f}x" if r.compiler_gain else "-",
            )
        t.note = (
            "OPT bounds what any replacement policy could save on the SAME "
            "trace; the compiler changes the trace and is not bound by it"
        )
        return t


def _l2_bytes(program: Program, machine: MachineSpec) -> tuple[int, int]:
    """(LRU, OPT) traffic below the last cache for one program.

    The trace is pre-filtered through the upper levels by running the real
    hierarchy for LRU; for OPT we conservatively replay the raw element
    trace against the last-level geometry (OPT with the full trace is a
    lower bound for OPT with the filtered trace).
    """
    layout = build_layout(program, None, machine.default_layout)
    trace = generate_trace(program, layout=layout)
    geometry = machine.cache_levels[-1].geometry
    return lru_vs_opt(trace.addresses, trace.is_write, geometry)


@experiment("e13")
def run_e13(config: ExperimentConfig | None = None) -> E13Result:
    config = config or ExperimentConfig()
    machine = config.origin
    n = config.stream_elements()
    workloads: list[Program] = [
        fig7_original(n),
        convolution(n),
        dmxpy(n, 8),
        matmul(config.mm_side(), order="jki"),
    ]
    rows = []
    for program in workloads:
        lru, opt = _l2_bytes(program, machine)
        transformed = optimize(program).final
        if transformed is not program:
            t_lru, _ = _l2_bytes(transformed, machine)
        else:
            t_lru = None
        rows.append(ReplacementRow(program.name, lru, opt, t_lru))
    return E13Result(machine, tuple(rows))

"""Figure 5 — the hypergraph minimal-cut algorithm: correctness & scaling.

The paper gives the algorithm and a complexity bound: O(E^3 + V) for E
arrays (hyperedges) and V loops — cubic in the number of arrays but
*linear* in the number of loops. This experiment validates both claims
empirically:

* correctness — on random two-terminal instances, the min cut equals the
  brute-force optimum (tested in the suite; here we run the solver);
* scaling — wall time grows polynomially with the hyperedge count and
  roughly linearly with the loop count at a fixed number of arrays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..fusion.hypergraph import Hyperedge, Hypergraph
from ..fusion.mincut import minimal_hyperedge_cut
from .report import Table
from .result import experiment

if TYPE_CHECKING:  # pragma: no cover
    from .config import ExperimentConfig


def random_hypergraph(
    n_nodes: int,
    n_edges: int,
    seed: int,
    max_arity: int = 4,
    ensure_connected: bool = False,
) -> Hypergraph:
    """A random hypergraph (arity 2..max_arity).

    With ``ensure_connected`` a chain of 2-edges links consecutive nodes,
    guaranteeing a positive cut between any terminal pair (used by the
    node-count scaling sweep so timings measure real cuts).
    """
    rng = np.random.default_rng(seed)
    edges = []
    for idx in range(n_edges):
        arity = int(rng.integers(2, max_arity + 1))
        members = rng.choice(n_nodes, size=min(arity, n_nodes), replace=False)
        edges.append(Hyperedge(f"e{idx}", frozenset(int(m) for m in members)))
    if ensure_connected:
        for idx in range(n_nodes - 1):
            edges.append(Hyperedge(f"chain{idx}", frozenset({idx, idx + 1})))
    return Hypergraph(n_nodes, tuple(edges))


@dataclass(frozen=True)
class ScalingPoint:
    n_nodes: int
    n_edges: int
    seconds: float
    cut_weight: float


@dataclass(frozen=True)
class Fig5Result:
    edge_scaling: tuple[ScalingPoint, ...]
    node_scaling: tuple[ScalingPoint, ...]

    def table(self) -> Table:
        t = Table(
            "Figure 5: minimal hypergraph cut — scaling",
            ("sweep", "loops (V)", "arrays (E)", "time (ms)", "cut weight"),
        )
        for p in self.edge_scaling:
            t.add("edges", p.n_nodes, p.n_edges, p.seconds * 1e3, p.cut_weight)
        for p in self.node_scaling:
            t.add("nodes", p.n_nodes, p.n_edges, p.seconds * 1e3, p.cut_weight)
        t.note = "paper bound: O(E^3 + V) — polynomial in arrays, linear in loops"
        t.volatile = ("time (ms)",)  # real wall-clock: varies run to run
        return t


def _solve_timed(hg: Hypergraph, s: int, t: int) -> tuple[float, float]:
    start = time.perf_counter()
    cut = minimal_hyperedge_cut(hg, s, t)
    return time.perf_counter() - start, cut.weight


@experiment("fig5")
def run_fig5(
    cfg: "ExperimentConfig | None" = None,
    *,
    edge_counts: tuple[int, ...] = (8, 16, 32, 64),
    node_counts: tuple[int, ...] = (8, 32, 128, 512),
    seed: int = 7,
) -> Fig5Result:
    # ``cfg`` is accepted for the uniform run_*(cfg) experiment signature;
    # this experiment is combinatorial (mincut scaling), so machine scale
    # does not enter.
    del cfg
    edge_points = []
    for n_edges in edge_counts:
        hg = random_hypergraph(16, n_edges, seed + n_edges)
        secs, weight = _solve_timed(hg, 0, 15)
        edge_points.append(ScalingPoint(16, n_edges, secs, weight))
    node_points = []
    # Hold the hyperedge structure fixed (same 24 edges over the first 16
    # nodes, same seed) and only grow the node count: the paper's bound is
    # cubic in arrays but *linear* in loops, so time should stay nearly
    # flat while V grows 64x.
    base = random_hypergraph(16, 24, seed)
    for n_nodes in node_counts:
        hg = Hypergraph(max(n_nodes, 16), base.edges)
        secs, weight = _solve_timed(hg, 0, 15)
        node_points.append(ScalingPoint(max(n_nodes, 16), 24, secs, weight))
    return Fig5Result(tuple(edge_points), tuple(node_points))

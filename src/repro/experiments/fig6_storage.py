"""Figure 6 — array shrinking and peeling.

The paper shows the transformation chain (original → fused → shrunk and
peeled) and claims the storage drop (two N² arrays → two N-vectors plus
two scalars). This experiment measures what the paper only asserts:

* the three versions are semantically equivalent (interpreter-verified in
  the test suite);
* declared storage: 2·N²·8 bytes → (2·N + ~0)·8 bytes;
* simulated traffic at *every* hierarchy level drops, since the optimized
  version's working set fits in cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.executor import MachineRun, execute
from ..lang.program import Program
from ..machine.spec import MachineSpec
from ..programs.paper_examples import fig6_fused, fig6_optimized, fig6_original
from .config import ExperimentConfig
from .report import Table
from .result import delta, experiment

VERSIONS = ("original", "fused", "optimized", "auto-derived")


@dataclass(frozen=True)
class Fig6Result:
    machine: MachineSpec
    programs: dict[str, Program]
    runs: dict[str, MachineRun]
    n: int

    def storage_bytes(self, version: str) -> int:
        return self.programs[version].data_bytes()

    def table(self) -> Table:
        t = Table(
            "Figure 6: storage reduction by shrinking and peeling",
            ("version", "declared bytes", "L1-Reg bytes", "L2-L1 bytes",
             "Mem-L2 bytes", "time (ms)"),
        )
        for v in VERSIONS:
            run = self.runs[v]
            t.add(
                v,
                self.storage_bytes(v),
                *run.counters.channel_bytes,
                run.seconds * 1e3,
            )
        t.note = (
            f"N={self.n}: the paper's two N^2 arrays become two N-vectors "
            "plus two scalars; 'auto-derived' is our pipeline "
            "(normalize + peel + shrink) applied to the fused version"
        )
        return t


def _fig6_deltas(result: Fig6Result) -> list[dict]:
    # The paper's claim is structural: two N^2 arrays collapse to two
    # N-vectors (plus two scalars), i.e. storage shrinks by a factor ~N.
    n = result.n
    return [
        delta(
            "optimized",
            "declared bytes",
            2 * n * 8,
            result.storage_bytes("optimized"),
        )
    ]


@experiment("fig6", deltas=_fig6_deltas)
def run_fig6(config: ExperimentConfig | None = None) -> Fig6Result:
    config = config or ExperimentConfig()
    # Grid sized so the N^2 arrays exceed the last cache but the N-vectors
    # of the optimized version fit comfortably.
    n = config.grid_side()
    from ..transforms.pipeline import optimize

    fused = fig6_fused(n)
    programs = {
        "original": fig6_original(n),
        "fused": fused,
        "optimized": fig6_optimized(n),
        "auto-derived": optimize(fused).final,
    }
    machine = config.origin
    runs = {v: execute(p, machine) for v, p in programs.items()}
    return Fig6Result(machine, programs, runs, n)

"""E9 — the §3.1.3 NP-completeness reduction, exercised both ways.

The proof converts k-way cut instances into fusion instances; on small
instances we can brute-force both problems and confirm the claimed
correspondence: optimal fusion cost = |E| + minimal k-way cut weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..fusion.kwaycut import KWayCutInstance, verify_reduction
from .report import Table
from .result import experiment

if TYPE_CHECKING:  # pragma: no cover
    from .config import ExperimentConfig


def random_instance(
    n_nodes: int, n_edges: int, k: int, seed: int
) -> KWayCutInstance:
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < n_edges:
        u, v = rng.choice(n_nodes, size=2, replace=False)
        edges.add((int(min(u, v)), int(max(u, v))))
    terminals = tuple(int(t) for t in rng.choice(n_nodes, size=k, replace=False))
    return KWayCutInstance(n_nodes, tuple(sorted(edges)), terminals)


@dataclass(frozen=True)
class E9Result:
    checks: tuple[tuple[KWayCutInstance, int, int], ...]  # instance, fusion, E+cut

    @property
    def all_equal(self) -> bool:
        return all(f == c for _, f, c in self.checks)

    def table(self) -> Table:
        t = Table(
            "E9: k-way cut <-> fusion reduction (NP-completeness construction)",
            ("nodes", "edges", "k", "optimal fusion cost", "|E| + min k-way cut"),
        )
        for inst, fusion, cut in self.checks:
            t.add(inst.n_nodes, len(inst.edges), inst.k, fusion, cut)
        t.note = "columns 4 and 5 must agree on every instance"
        return t


@experiment("e9")
def run_e9(
    cfg: "ExperimentConfig | None" = None, *, trials: int = 8, seed: int = 11
) -> E9Result:
    # ``cfg`` is accepted for the uniform run_*(cfg) experiment signature;
    # the NP-completeness construction is machine-independent.
    del cfg
    checks = []
    rng = np.random.default_rng(seed)
    for trial in range(trials):
        n = int(rng.integers(5, 9))
        e = int(rng.integers(n, min(2 * n, n * (n - 1) // 2)))
        k = int(rng.integers(2, 4))
        inst = random_instance(n, e, k, seed * 100 + trial)
        fusion, cut = verify_reduction(inst)
        checks.append((inst, fusion, cut))
    return E9Result(tuple(checks))

"""Figure 2 — demand/supply ratios and the CPU-utilization bound.

Paper values (L1-Reg / L2-L1 / Mem-L2 ratios vs the Origin2000):

    convolution 1.6 / 1.3 / 6.5      FFT      2.1 / 0.8 / 3.4
    dmxpy       2.1 / 2.1 / 10.5     NAS/SP   2.7 / 1.6 / 6.1
    mmjki(-O2)  6.0 / 2.1 / 7.4      Sweep3D  3.8 / 2.3 / 9.8

Headline claims we reproduce: every program's *memory* ratio is the
largest of its row (memory is the scarcest resource); the memory ratios
span roughly 3–10x; the implied CPU-utilization bound (1/max-ratio) leaves
most of the CPU idle; removing the bottleneck would need the paper's
"1.02–3.15 GB/s" class of memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..balance.model import BalanceRatios, demand_supply_ratios, required_memory_bandwidth
from ..machine.spec import MachineSpec
from .config import ExperimentConfig
from .fig1_balance import Fig1Result, run_fig1
from .report import Table
from .result import delta, experiment

#: Paper ratios for EXPERIMENTS.md comparison.
PAPER_RATIOS = {
    "convolution": (1.6, 1.3, 6.5),
    "dmxpy": (2.1, 2.1, 10.5),
    "mm(-O2)": (6.0, 2.1, 7.4),
    "FFT": (2.1, 0.8, 3.4),
    "NAS/SP": (2.7, 1.6, 6.1),
    "Sweep3D": (3.8, 2.3, 9.8),
}


@dataclass(frozen=True)
class Fig2Result:
    machine: MachineSpec
    ratios: tuple[BalanceRatios, ...]

    def by_name(self, name: str) -> BalanceRatios:
        for r in self.ratios:
            if r.program == name:
                return r
        raise KeyError(name)

    def table(self) -> Table:
        t = Table(
            "Figure 2: ratios of bandwidth demand over supply",
            ("program", *self.machine.level_names, "CPU util bound", "needed mem BW (MB/s)"),
        )
        for r in self.ratios:
            t.add(
                r.program,
                *r.ratios,
                f"{r.cpu_utilization_bound:.1%}",
                required_memory_bandwidth(r, self.machine) / 1e6,
            )
        t.note = (
            "utilization bound = 1/max ratio; needed bandwidth = current "
            "memory bandwidth x memory ratio (the paper's 1.02-3.15 GB/s argument)"
        )
        return t


def _fig2_deltas(result: Fig2Result) -> list[dict]:
    return [
        delta(name, "Mem-L2 ratio", paper[-1], result.by_name(name).ratios[-1])
        for name, paper in PAPER_RATIOS.items()
    ]


@experiment("fig2", deltas=_fig2_deltas)
def run_fig2(
    config: ExperimentConfig | None = None, fig1: Fig1Result | None = None
) -> Fig2Result:
    config = config or ExperimentConfig()
    fig1 = fig1 or run_fig1(config).detail
    ratios = tuple(
        demand_supply_ratios(balance, fig1.machine)
        for balance in fig1.balances
        if balance.program != "mm(-O3)"  # the paper's Figure 2 drops the blocked mm
    )
    return Fig2Result(fig1.machine, ratios)

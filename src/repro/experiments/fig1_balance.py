"""Figure 1 — program and machine balance.

For each application the balance is derived from simulated hardware
counters (flops, element loads/stores, per-level misses and writebacks),
exactly the paper's methodology; the machine row comes from the
specification and is cross-checked by the STREAM/CacheBench analogs.

Paper's rows (bytes per flop, L1-Reg / L2-L1 / Mem-L2):

    convolution  6.4  / 5.1  / 5.2
    dmxpy        8.3  / 8.3  / 8.4
    mm (-O2)     24.0 / 8.2  / 5.9
    mm (-O3)     8.08 / 0.97 / 0.04
    FFT          8.3  / 3.0  / 2.7
    NAS/SP       10.8 / 6.4  / 4.9
    Sweep3D      15.0 / 9.1  / 7.8
    Origin2000   4    / 4    / 0.8

We reproduce the *shape*: levels within a row of the same order, mm(-O3)
collapsing by an order of magnitude at the memory level, every
application's memory demand far above the machine's 0.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..balance.model import ProgramBalance, machine_balance, program_balance
from ..interp.executor import MachineRun
from ..lang.program import Program
from ..machine.spec import MachineSpec
from ..programs import convolution, dmxpy, fft, matmul, matmul_blocked, nas_sp, sweep3d
from .config import ExperimentConfig
from .predict import run_or_predict
from .report import Table
from .result import delta, experiment

#: Paper values for EXPERIMENTS.md comparisons: name -> (L1-Reg, L2-L1, Mem-L2).
PAPER_BALANCE: Mapping[str, tuple[float, float, float]] = {
    "convolution": (6.4, 5.1, 5.2),
    "dmxpy": (8.3, 8.3, 8.4),
    "mm(-O2)": (24.0, 8.2, 5.9),
    "mm(-O3)": (8.08, 0.97, 0.04),
    "FFT": (8.3, 3.0, 2.7),
    "NAS/SP": (10.8, 6.4, 4.9),
    "Sweep3D": (15.0, 9.1, 7.8),
}

PAPER_MACHINE_BALANCE: tuple[float, float, float] = (4.0, 4.0, 0.8)


@dataclass(frozen=True)
class Fig1Result:
    machine: MachineSpec
    balances: tuple[ProgramBalance, ...]
    runs: tuple[MachineRun, ...]

    def by_name(self, name: str) -> ProgramBalance:
        for b in self.balances:
            if b.program == name:
                return b
        raise KeyError(name)

    def table(self) -> Table:
        t = Table(
            "Figure 1: program and machine balance (bytes per flop)",
            ("program", *self.machine.level_names),
        )
        for b in self.balances:
            t.add(b.program, *b.bytes_per_flop)
        t.add(self.machine.name, *machine_balance(self.machine))
        t.note = (
            "machine row is specification balance; STREAM/CacheBench analogs "
            "measure the same values (see tests)"
        )
        return t


def _workloads(config: ExperimentConfig) -> list[tuple[str, Program]]:
    n = config.stream_elements()
    side = config.grid_side()
    mm_side = config.mm_side()
    return [
        ("convolution", convolution(n)),
        ("dmxpy", dmxpy(n, 16)),
        ("mm(-O2)", matmul(mm_side, order="jki")),
        ("mm(-O3)", matmul_blocked(mm_side, tile=30)),
        ("FFT", fft(config.fft_elements())),
        ("NAS/SP", nas_sp(side, side)),
        ("Sweep3D", sweep3d(side)),
    ]


def _fig1_deltas(result: Fig1Result) -> list[dict]:
    out = []
    for name, paper in PAPER_BALANCE.items():
        measured = result.by_name(name)
        out.append(delta(name, "Mem-L2 B/flop", paper[-1], measured.memory_balance))
    machine = machine_balance(result.machine)
    out.append(
        delta(result.machine.name, "Mem-L2 B/flop", PAPER_MACHINE_BALANCE[-1], machine[-1])
    )
    return out


@experiment("fig1", deltas=_fig1_deltas)
def run_fig1(config: ExperimentConfig | None = None) -> Fig1Result:
    config = config or ExperimentConfig()
    machine = config.origin
    balances: list[ProgramBalance] = []
    runs: list[MachineRun] = []
    for name, prog in _workloads(config):
        # The config decides the trace pipeline explicitly, so direct
        # calls behave exactly like orchestrated workers.  Under
        # --predict these points run analytically with spot checks.
        run = run_or_predict(
            prog, machine, stream=config.stream, chunk_accesses=config.chunk_accesses
        )
        balance = program_balance(run)
        # Report under the figure's display name.
        balances.append(
            ProgramBalance(
                name,
                balance.channel_names,
                balance.bytes_per_flop,
                balance.flops,
                balance.channel_bytes,
            )
        )
        runs.append(run)
    return Fig1Result(machine, tuple(balances), tuple(runs))

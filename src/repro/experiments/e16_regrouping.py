"""E16 — inter-array data regrouping vs padding on the Figure 3 anomaly.

The dissertation's strategy (cited §4) follows fusion with inter-array
data regrouping for global *spatial* reuse. This experiment pits the two
layout remedies for the Exemplar's 3w6r direct-mapped conflict against
each other:

* **padding** (E4's ablation) separates the arrays' cache images;
* **regrouping** interleaves the conflicting arrays so they share lines
  instead of competing for them — and additionally packs the sweep's
  working set densely.

Both restore the kernel to the machine's bandwidth; regrouping is the
compiler-shaped fix (a data-layout transformation, verified semantically),
padding is the allocator-shaped one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.executor import execute
from ..machine.layout import LayoutPolicy
from ..machine.spec import MachineSpec
from ..programs.kernels import make_kernel
from ..transforms.regrouping import regroup_arrays
from ..transforms.verify import verify_equivalent
from .config import ExperimentConfig
from .fig3_bandwidth import nominal_bytes
from .report import Table
from .result import experiment


@dataclass(frozen=True)
class E16Result:
    machine: MachineSpec
    n: int
    bandwidths: dict[str, float]  # layout remedy -> effective MB/s
    mem_bytes: dict[str, int]

    def table(self) -> Table:
        t = Table(
            "E16: fixing the 3w6r direct-mapped conflict — padding vs regrouping",
            ("remedy", "effective BW (MB/s)", "actual mem bytes"),
        )
        for k in ("conflicted", "padded", "regrouped"):
            t.add(k, self.bandwidths[k] / 1e6, self.mem_bytes[k])
        t.note = (
            "regrouping interleaves the six arrays into packed[i, slot]: "
            "conflicts become impossible and every pulled line is fully used"
        )
        return t


@experiment("e16")
def run_e16(config: ExperimentConfig | None = None) -> E16Result:
    config = config or ExperimentConfig()
    machine = config.exemplar
    n = config.exemplar_kernel_elements()
    kernel = make_kernel("3w6r", n)
    nominal = nominal_bytes("3w6r", n)

    regrouped = regroup_arrays(kernel, kernel.array_names[3:], name="3w6r_regrouped")
    # Only the read-only arrays regroup here (the written ones are program
    # outputs); grouping the three read streams suffices to break the
    # period-five collision between a0 and a5. Verify it anyway:
    verify_equivalent(kernel, regrouped, sizes=(16, 33))

    runs = {
        "conflicted": execute(kernel, machine),
        "padded": execute(
            kernel, machine, layout_policy=LayoutPolicy(alignment=32, pad_bytes=32)
        ),
        "regrouped": execute(regrouped, machine),
    }
    bandwidths = {k: nominal / r.seconds for k, r in runs.items()}
    mem = {k: r.counters.memory_bytes for k, r in runs.items()}
    return E16Result(machine, n, bandwidths, mem)

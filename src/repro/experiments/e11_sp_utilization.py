"""E11 — §2.3's NAS/SP bandwidth-utilization study.

The paper: "5 out of its 7 major computation subroutines utilized 84% or
higher of the memory bandwidth of Origin2000", evidence that bandwidth
saturation holds for full applications, not just kernels.

We trace each of the miniature SP's seven subroutines separately, time it
with the latency-aware overlap model (a finite number of outstanding
misses — the R10K supported four), and report memory-bandwidth
utilization. The streaming phases saturate; the two transpose sweeps
(y_solve/z_solve) burn latency on line-grain strides and fall below the
threshold — the paper's 5-of-7 split.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interp.counters import HardwareCounters
from ..machine.hierarchy import Hierarchy
from ..machine.layout import build_layout
from ..machine.spec import MachineSpec
from ..machine.timing import overlap_time
from ..programs.nas_sp import SUBROUTINES, nas_sp
from ..trace.generator import TraceGenerator
from .config import ExperimentConfig
from .report import Table
from .result import delta, experiment

SATURATION_THRESHOLD = 0.84
DEFAULT_OUTSTANDING = 4


@dataclass(frozen=True)
class SubroutineUtilization:
    name: str
    memory_bytes: int
    seconds: float
    utilization: float  # effective bw / machine memory bw


@dataclass(frozen=True)
class E11Result:
    machine: MachineSpec
    subroutines: tuple[SubroutineUtilization, ...]

    @property
    def saturated_count(self) -> int:
        return sum(1 for s in self.subroutines if s.utilization >= SATURATION_THRESHOLD)

    def table(self) -> Table:
        t = Table(
            "E11: NAS/SP per-subroutine memory-bandwidth utilization",
            ("subroutine", "mem bytes", "time (ms)", "utilization"),
        )
        for s in self.subroutines:
            t.add(s.name, s.memory_bytes, s.seconds * 1e3, f"{s.utilization:.0%}")
        t.note = (
            f"{self.saturated_count} of {len(self.subroutines)} subroutines at "
            f">= {SATURATION_THRESHOLD:.0%} (paper: 5 of 7)"
        )
        return t


def _e11_deltas(result: E11Result) -> list[dict]:
    return [delta("NAS/SP", "saturated subroutines", 5, result.saturated_count)]


@experiment("e11", deltas=_e11_deltas)
def run_e11(
    config: ExperimentConfig | None = None,
    outstanding: int = DEFAULT_OUTSTANDING,
) -> E11Result:
    config = config or ExperimentConfig()
    machine = config.origin
    side = config.grid_side()
    program = nas_sp(side, side)
    layout = build_layout(program, None, machine.default_layout)
    gen = TraceGenerator(program, None, layout)

    results = []
    for idx, name in enumerate(SUBROUTINES):
        trace = gen.statement_trace(idx)
        hierarchy = Hierarchy.from_spec(machine)
        hierarchy.run_trace(trace.addresses, trace.is_write)
        hierarchy.flush()
        hres = hierarchy.result()
        counters = HardwareCounters(
            machine.name,
            trace.flops,
            trace.loads,
            trace.stores,
            hres.level_stats,
            hres.downstream_bytes,
        )
        misses = [st.misses for st in hres.level_stats]
        seconds = overlap_time(
            machine,
            trace.flops,
            counters.register_bytes,
            hres.downstream_bytes,
            misses,
            outstanding,
        )
        utilization = (counters.memory_bytes / seconds) / machine.memory_bandwidth
        results.append(
            SubroutineUtilization(name, counters.memory_bytes, seconds, utilization)
        )
    return E11Result(machine, tuple(results))

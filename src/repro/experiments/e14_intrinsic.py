"""E14 — intrinsic bandwidth and how transformations move it (§4's
Huang & Shen discussion, made quantitative).

For each program: measured memory traffic (LRU hierarchy), the intrinsic
floor of the *same* trace (infinite cache: compulsory + final writebacks),
and both again after the compiler strategy. The paper's criticism of
fixed-order bounds — "aggressive program optimizations can ... reduce the
intrinsic bandwidth of a program" — shows up as the transformed program's
intrinsic floor dropping below the original's.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..balance.intrinsic import IntrinsicTraffic, intrinsic_traffic
from ..interp.executor import execute
from ..lang.program import Program
from ..machine.layout import build_layout
from ..machine.spec import MachineSpec
from ..programs import fig6_fused, fig6_optimized, fig6_original, fig7_original
from ..trace.generator import generate_trace
from ..transforms.pipeline import optimize
from .config import ExperimentConfig
from .report import Table
from .result import experiment


@dataclass(frozen=True)
class IntrinsicRow:
    program: str
    measured_bytes: int
    intrinsic: IntrinsicTraffic

    @property
    def headroom(self) -> float:
        return (
            self.measured_bytes / self.intrinsic.total_bytes
            if self.intrinsic.total_bytes
            else 1.0
        )


@dataclass(frozen=True)
class E14Result:
    machine: MachineSpec
    rows: tuple[IntrinsicRow, ...]

    def row(self, program: str) -> IntrinsicRow:
        for r in self.rows:
            if r.program == program:
                return r
        raise KeyError(program)

    def table(self) -> Table:
        t = Table(
            "E14: measured vs intrinsic memory traffic (bytes)",
            ("program", "measured", "intrinsic floor", "headroom"),
        )
        for r in self.rows:
            t.add(r.program, r.measured_bytes, r.intrinsic.total_bytes, f"{r.headroom:.2f}x")
        t.note = (
            "intrinsic = infinite-cache traffic of the trace; "
            "transformations lower the floor itself, not just the headroom"
        )
        return t


def _measure(program: Program, machine: MachineSpec) -> IntrinsicRow:
    run = execute(program, machine)
    layout = build_layout(program, None, machine.default_layout)
    trace = generate_trace(program, layout=layout)
    line = machine.cache_levels[-1].geometry.line_size
    return IntrinsicRow(
        program.name, run.counters.memory_bytes, intrinsic_traffic(trace, line)
    )


@experiment("e14")
def run_e14(config: ExperimentConfig | None = None) -> E14Result:
    config = config or ExperimentConfig()
    machine = config.origin
    n = config.stream_elements()
    side = config.grid_side()
    rows = []
    # The Figure 7 pair: measured drops AND the floor drops (stores vanish).
    original = fig7_original(n)
    rows.append(_measure(original, machine))
    rows.append(_measure(optimize(original).final, machine))
    # The Figure 6 chain: storage reduction collapses the floor by ~N.
    rows.append(_measure(fig6_original(side), machine))
    rows.append(_measure(fig6_fused(side), machine))
    rows.append(_measure(fig6_optimized(side), machine))
    return E14Result(machine, tuple(rows))

"""``python -m repro.service`` — same as ``repro serve``."""

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))

"""The repro daemon: asyncio front-end, micro-batching core, drain logic.

The shape is a continuous-batching inference server, applied to cache
simulation:

- an asyncio acceptor speaks the JSON-lines protocol on a unix or TCP
  socket (one message per line, many requests per connection);
- every sweep point is validated and **content-keyed**
  (:func:`~repro.experiments.plan.request_key`); identical in-flight
  points — within one request or across clients — collapse onto one
  :class:`asyncio.Future`, so the work runs once and every subscriber
  gets the same answer (``dedup_hits`` telemetry);
- admitted points enter a bounded queue; the **micro-batch loop** takes
  the oldest point, waits up to ``max_wait_ms`` for compatible
  companions (same kind, up to ``max_batch``), and executes the batch as
  one planned :func:`~repro.experiments.plan.run_batch` on the worker
  executor — overlapping sweeps from independent clients share trace
  generation and cache-prefix simulation exactly like one planned batch;
- **admission control** keeps the daemon honest under load: a full
  queue, an over-quota tenant, or a draining server answers with an
  explicit reject (``queue_full`` / ``over_quota`` / ``draining``)
  immediately — a client is never left hanging;
- **SIGTERM drains**: new work is rejected, queued and in-flight batches
  finish, every waiting client gets its response, then the server writes
  a run manifest (when ``results_dir`` is set) whose ``service`` block
  carries the full telemetry, and exits cleanly.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import functools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ReproError
from ..experiments.orchestrator import build_manifest, write_manifest
from ..experiments.plan import request_key
from ..experiments.result import ExperimentResult
from ..machine.engine.simcache import disk_report, get_sim_cache
from . import executor as jobs
from .protocol import (
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    decode,
    encode,
    error_response,
    ok_response,
    progress_event,
    sim_request_from_json,
)

_PLAN_COUNTER_KEYS = (
    "groups",
    "points",
    "accesses_requested",
    "accesses_simulated",
    "traces_generated",
)


@dataclass
class ServeConfig:
    """Tuning knobs of one daemon instance."""

    unix_path: str | None = None  # unix socket path; None -> TCP
    host: str = "127.0.0.1"
    port: int = 0  # 0 -> ephemeral (read the bound port off .address)
    max_batch: int = 32  # points coalesced into one executor batch
    max_wait_ms: float = 10.0  # micro-batch gathering window
    max_queue: int = 1024  # admission bound on queued points
    tenant_quota: int = 512  # outstanding points per tenant
    jobs: int = 0  # 0 -> in-process worker thread; N>0 -> fork pool
    plan: bool = True  # answer batches through the sweep planner
    results_dir: str | None = None  # write a drain manifest here


@dataclass
class _Point:
    """One queued unit of work (a deduplicated key and its future)."""

    kind: str  # "simulate" | "predict" | "experiment"
    key: str
    payload: Any  # wire dict (simulate/predict) or (name, config) tuple
    future: asyncio.Future = field(repr=False)


class Server:
    """One daemon instance.  Drive with :meth:`start` + :meth:`wait_closed`
    inside a running event loop, or use :class:`BackgroundServer` /
    ``repro serve`` from synchronous code."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.address: str | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue[_Point | None] = asyncio.Queue()
        self._inflight: dict[str, asyncio.Future] = {}
        self._batch_task: asyncio.Task | None = None
        self._done = asyncio.Event()
        self._draining = False
        self._drain_task: asyncio.Task | None = None
        self._pool: concurrent.futures.Executor | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._experiment_results: list[ExperimentResult] = []
        # -- telemetry ------------------------------------------------------
        self._t0 = time.monotonic()
        self._requests = 0
        self._completed = 0
        self._rejected: dict[str, int] = {}
        self._dedup_hits = 0
        self._batches = 0
        self._batch_points = 0
        self._batch_max = 0
        self._fallbacks = 0
        self._queue_high_water = 0
        self._latencies_ms: deque[float] = deque(maxlen=4096)
        self._plan_totals: dict[str, Any] = {}
        self._cache_totals: dict[str, int] = {}
        self._tenants: dict[str, dict[str, int]] = {}
        self._tenant_outstanding: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> str:
        """Bind sockets, start the micro-batch loop; returns the address
        (``unix:<path>`` or ``tcp:<host>:<port>``, with the real bound
        port when an ephemeral one was requested)."""
        self._loop = asyncio.get_running_loop()
        if self.config.jobs > 0:
            import multiprocessing

            self._pool = concurrent.futures.ProcessPoolExecutor(
                self.config.jobs, mp_context=multiprocessing.get_context("fork")
            )
        else:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                1, thread_name_prefix="repro-serve-exec"
            )
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path, limit=MAX_LINE_BYTES
            )
            self.address = f"unix:{self.config.unix_path}"
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_LINE_BYTES,
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = f"tcp:{self.config.host}:{port}"
        self._batch_task = asyncio.create_task(self._batch_loop(), name="repro-serve-batch")
        return self.address

    async def wait_closed(self) -> None:
        await self._done.wait()

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe when
        called via ``loop.add_signal_handler``)."""
        if self._loop is None or self._drain_task is not None:
            return
        self._drain_task = self._loop.create_task(self.drain(), name="repro-serve-drain")

    def request_shutdown_threadsafe(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    async def drain(self) -> None:
        """Reject new work, finish everything admitted, answer every
        waiting client, write the manifest, stop."""
        self._draining = True
        while self._inflight or not self._queue.empty():
            await asyncio.sleep(0.02)
        self._queue.put_nowait(None)  # sentinel: batch loop exits
        if self._batch_task is not None:
            await self._batch_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._connections):
            # Every admitted request has been answered; close the idle
            # connections so their handlers exit before the loop does.
            with contextlib.suppress(Exception):
                writer.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.config.results_dir is not None:
            manifest = build_manifest(
                self._experiment_results,
                jobs=max(1, self.config.jobs),
                service=self.stats_block(),
            )
            write_manifest(manifest, self.config.results_dir)
        self._done.set()

    # -- telemetry ------------------------------------------------------------
    def _merge_plan(self, block: Mapping[str, Any]) -> None:
        if not block:
            return
        totals = self._plan_totals
        for k in _PLAN_COUNTER_KEYS:
            totals[k] = totals.get(k, 0) + int(block.get(k, 0))
        by_rule = totals.setdefault("by_rule", {})
        for rule, n in block.get("by_rule", {}).items():
            by_rule[rule] = by_rule.get(rule, 0) + int(n)
        totals.setdefault("fallbacks", []).extend(block.get("fallbacks", ()))

    def _merge_cache(self, block: Mapping[str, int]) -> None:
        for k, v in block.items():
            self._cache_totals[k] = self._cache_totals.get(k, 0) + int(v)

    def _tenant(self, name: str) -> dict[str, int]:
        return self._tenants.setdefault(
            name, {"requests": 0, "completed": 0, "rejected": 0}
        )

    @staticmethod
    def _percentile(values: list[float], q: float) -> float | None:
        if not values:
            return None
        return values[min(len(values) - 1, int(q * len(values)))]

    def stats_block(self) -> dict[str, Any]:
        """The manifest/stats ``service`` telemetry block (see
        ``docs/result.schema.json`` definition ``service``)."""
        lat = sorted(self._latencies_ms)
        cache = get_sim_cache()
        return {
            "uptime_s": time.monotonic() - self._t0,
            "requests": self._requests,
            "completed": self._completed,
            "rejected": dict(self._rejected),
            "queue_depth": self._queue.qsize(),
            "queue_max": self._queue_high_water,
            "inflight": len(self._inflight),
            "dedup_hits": self._dedup_hits,
            "batches": self._batches,
            "batch_max": self._batch_max,
            "batch_mean": (self._batch_points / self._batches) if self._batches else None,
            "latency_p50_ms": self._percentile(lat, 0.50),
            "latency_p95_ms": self._percentile(lat, 0.95),
            "fallbacks": self._fallbacks,
            "plan": dict(self._plan_totals),
            "sim_cache": dict(self._cache_totals),
            "disk_cache": disk_report(cache) if cache is not None else None,
            "tenants": {k: dict(v) for k, v in self._tenants.items()},
        }

    # -- micro-batching core ---------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._loop is not None
        carry: _Point | None = None
        while True:
            item = carry if carry is not None else await self._queue.get()
            carry = None
            if item is None:
                return
            batch = [item]
            limit = 1 if item.kind == "experiment" else self.config.max_batch
            deadline = self._loop.time() + self.config.max_wait_ms / 1000.0
            while len(batch) < limit:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is None:
                    self._queue.put_nowait(None)  # re-post for the outer loop
                    break
                if nxt.kind != item.kind:
                    carry = nxt  # incompatible: opens the next batch instead
                    break
                batch.append(nxt)
            await self._execute_batch(batch)

    async def _execute_batch(self, batch: list[_Point]) -> None:
        assert self._loop is not None and self._pool is not None
        self._batches += 1
        self._batch_points += len(batch)
        self._batch_max = max(self._batch_max, len(batch))
        kind = batch[0].kind
        if kind == "simulate":
            job = functools.partial(
                jobs.run_simulate_job,
                [p.payload for p in batch],
                plan=self.config.plan,
            )
        elif kind == "predict":
            job = functools.partial(jobs.run_predict_job, [p.payload for p in batch])
        else:
            name, config_json = batch[0].payload
            job = functools.partial(jobs.run_experiment_job, name, config_json)
        try:
            outcome = await self._loop.run_in_executor(self._pool, job)
        except Exception as exc:  # noqa: BLE001 — executor died: fail the batch, not the server
            self._fallbacks += 1
            for point in batch:
                if self._inflight.get(point.key) is point.future:
                    del self._inflight[point.key]
                if not point.future.done():
                    point.future.set_exception(
                        ReproError(f"batch execution failed: {type(exc).__name__}: {exc}")
                    )
            return
        self._merge_plan(outcome.get("plan", {}))
        self._merge_cache(outcome.get("sim_cache", {}))
        self._fallbacks += int(outcome.get("fallbacks", 0))
        for point, result in zip(batch, outcome["results"]):
            if self._inflight.get(point.key) is point.future:
                del self._inflight[point.key]
            if not point.future.done():
                point.future.set_result(result)

    # -- admission ------------------------------------------------------------
    def _admit(
        self, kind: str, keyed: list[tuple[str, Any]], tenant: str
    ) -> tuple[str, str] | list[asyncio.Future]:
        """Admit a request's points (dedup + enqueue) or reject it.

        Returns the per-point futures in request order, or a
        ``(code, message)`` reject.  All-or-nothing: a rejected request
        enqueues no work.
        """
        assert self._loop is not None
        if self._draining:
            return ("draining", "server is draining; resubmit elsewhere")
        fresh = {key for key, _ in keyed if key not in self._inflight}
        if self._queue.qsize() + len(fresh) > self.config.max_queue:
            return (
                "queue_full",
                f"admission queue is full "
                f"({self._queue.qsize()} queued, {len(fresh)} new, "
                f"cap {self.config.max_queue}); retry later",
            )
        outstanding = self._tenant_outstanding.get(tenant, 0)
        if outstanding + len(keyed) > self.config.tenant_quota:
            return (
                "over_quota",
                f"tenant {tenant!r} has {outstanding} outstanding point(s); "
                f"{len(keyed)} more would exceed the quota of {self.config.tenant_quota}",
            )
        futures: list[asyncio.Future] = []
        for key, payload in keyed:
            future = self._inflight.get(key)
            if future is not None:
                self._dedup_hits += 1
            else:
                future = self._loop.create_future()
                self._inflight[key] = future
                self._queue.put_nowait(_Point(kind, key, payload, future))
            futures.append(future)
        self._queue_high_water = max(self._queue_high_water, self._queue.qsize())
        self._tenant_outstanding[tenant] = outstanding + len(keyed)
        return futures

    def _release_tenant(self, tenant: str, n: int) -> None:
        left = self._tenant_outstanding.get(tenant, 0) - n
        if left > 0:
            self._tenant_outstanding[tenant] = left
        else:
            self._tenant_outstanding.pop(tenant, None)

    # -- the protocol front-end ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    writer.write(
                        encode(error_response(None, "invalid", "request line too long"))
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_message(line, writer)
                if response is not None:
                    writer.write(encode(response))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; its futures resolve harmlessly
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_message(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> dict[str, Any] | None:
        try:
            message = decode(line)
        except ProtocolError as exc:
            self._requests += 1
            return self._reject(None, "default", "invalid", str(exc))
        rid = message.get("id")
        tenant = str(message.get("tenant") or "default")
        op = message.get("op")
        self._requests += 1
        self._tenant(tenant)["requests"] += 1
        if op not in OPS:
            return self._reject(rid, tenant, "invalid", f"unknown op {op!r}")
        if op == "ping":
            return ok_response(rid, "pong")
        if op == "stats":
            return ok_response(rid, self.stats_block())
        if op == "shutdown":
            self.request_shutdown()
            return ok_response(rid, "draining")
        start = time.monotonic()
        try:
            if op in ("simulate", "simulate_batch", "predict"):
                result = await self._serve_points(message, rid, tenant, writer)
            else:  # experiment
                result = await self._serve_experiment(message, tenant)
        except ProtocolError as exc:
            return self._reject(rid, tenant, "invalid", str(exc))
        except _Reject as exc:
            return self._reject(rid, tenant, exc.code, exc.message)
        except ReproError as exc:
            return self._reject(rid, tenant, "internal", str(exc))
        self._completed += 1
        self._tenant(tenant)["completed"] += 1
        self._latencies_ms.append((time.monotonic() - start) * 1000.0)
        return ok_response(rid, result)

    def _reject(self, rid: Any, tenant: str, code: str, message: str) -> dict[str, Any]:
        self._rejected[code] = self._rejected.get(code, 0) + 1
        self._tenant(tenant)["rejected"] += 1
        return error_response(rid, code, message)

    async def _serve_points(
        self, message: Mapping[str, Any], rid: Any, tenant: str, writer: asyncio.StreamWriter
    ) -> list[dict[str, Any]]:
        op = message["op"]
        kind = "predict" if op == "predict" else "simulate"
        if op == "simulate":
            if "request" not in message:
                raise ProtocolError("simulate needs a 'request' object")
            points = [message["request"]]
        else:
            points = message.get("requests")
            if not isinstance(points, list) or not points:
                raise ProtocolError(f"{op} needs a non-empty 'requests' list")
        keyed: list[tuple[str, Any]] = []
        for data in points:
            try:
                request = sim_request_from_json(data)
                key = f"{kind}:{request_key(request)}"
            except ProtocolError:
                raise
            except ReproError as exc:
                raise ProtocolError(f"bad request: {exc}") from None
            keyed.append((key, data))
        admitted = self._admit(kind, keyed, tenant)
        if isinstance(admitted, tuple):
            raise _Reject(*admitted)
        want_progress = bool(message.get("progress"))
        try:
            results: list[dict[str, Any]] = []
            for i, future in enumerate(admitted):
                results.append(await future)
                if want_progress and len(admitted) > 1:
                    writer.write(encode(progress_event(rid, i + 1, len(admitted))))
                    await writer.drain()
        finally:
            self._release_tenant(tenant, len(admitted))
        for i, point in enumerate(results):
            if "error" in point:
                raise ReproError(f"point {i} failed: {point['error']}")
        return results

    async def _serve_experiment(
        self, message: Mapping[str, Any], tenant: str
    ) -> dict[str, Any]:
        name = message.get("name")
        if not isinstance(name, str) or not name:
            raise ProtocolError("experiment needs a 'name'")
        config = message.get("config")
        if config is not None and not isinstance(config, Mapping):
            raise ProtocolError("experiment config must be an object")
        key = "experiment:" + name + ":" + repr(sorted((config or {}).items()))
        admitted = self._admit("experiment", [(key, (name, config))], tenant)
        if isinstance(admitted, tuple):
            raise _Reject(*admitted)
        try:
            result = await admitted[0]
        finally:
            self._release_tenant(tenant, 1)
        record = dict(result)
        self._experiment_results.append(ExperimentResult.from_json(record))
        return record


class _Reject(Exception):
    """Internal: carries an admission reject out of the handlers."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


# -- synchronous entry points --------------------------------------------------
async def _amain(server: Server, install_signals: bool = False) -> None:
    import signal

    address = await server.start()
    if install_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, server.request_shutdown)
        print(f"repro service listening on {address}", flush=True)
    await server.wait_closed()


def run_server(config: ServeConfig | None = None) -> int:
    """Blocking daemon entry (what ``repro serve`` calls): serve until
    SIGTERM/SIGINT, drain gracefully, return 0."""
    server = Server(config)
    asyncio.run(_amain(server, install_signals=True))
    stats = server.stats_block()
    print(
        f"repro service drained: {stats['completed']} request(s) completed, "
        f"{stats['batches']} batch(es), {stats['dedup_hits']} dedup hit(s)",
        flush=True,
    )
    return 0


class BackgroundServer:
    """A daemon on a background thread with its own event loop — the
    in-process form used by :func:`repro.api.serve_session`, tests and
    benchmarks.  Context manager: entering yields the started server."""

    def __init__(self, config: ServeConfig | None = None):
        self.server = Server(config)
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    @property
    def address(self) -> str:
        assert self.server.address is not None, "server not started"
        return self.server.address

    def start(self) -> "BackgroundServer":
        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # noqa: BLE001 — surface bind errors to the caller
                self._error = exc
                self._started.set()
                raise
            self._started.set()
            await self.server.wait_closed()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()), name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._error is not None:
            raise ReproError(f"service failed to start: {self._error}")
        if self.server.address is None:
            raise ReproError("service failed to start within 30s")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread is None:
            return
        self.server.request_shutdown_threadsafe()
        self._thread.join(timeout=timeout)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = [
    "BackgroundServer",
    "ServeConfig",
    "Server",
    "run_server",
]

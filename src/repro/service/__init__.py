"""The repro daemon: a continuous micro-batching simulation service.

``repro serve`` starts a small asyncio front-end speaking a JSON-lines
protocol over a unix or TCP socket.  Clients submit sweep points
(:class:`~repro.experiments.plan.SimRequest` on the wire), analytic
predictions and experiment jobs; the server content-keys every point,
deduplicates identical in-flight work across clients, and coalesces
compatible queued points into single :func:`~repro.experiments.plan.run_batch`
executions so overlapping sweeps share trace generation and cache-prefix
simulation exactly like a planned batch would.

Results returned over the wire are the raw simulation counters; the thin
client (:mod:`repro.service.client`) reassembles them through
:func:`~repro.interp.executor.assemble_run`, so a served answer is
bit-identical to calling :func:`repro.api.simulate_batch` locally.

Layers:

- :mod:`repro.service.protocol` — wire format (framing, request/response
  encoding, validation).
- :mod:`repro.service.executor` — batch jobs run on the worker executor
  (planned simulation, prediction, experiments) plus their telemetry.
- :mod:`repro.service.server` — the asyncio daemon: admission control,
  dedup, micro-batching, progress streaming, stats, SIGTERM drain.
- :mod:`repro.service.client` — synchronous thin client.
"""

from .client import ServiceClient, submit
from .server import BackgroundServer, ServeConfig, Server

__all__ = [
    "BackgroundServer",
    "ServeConfig",
    "Server",
    "ServiceClient",
    "submit",
]

"""Batch jobs the service runs on its worker executor.

Each job is a module-level function over wire-format arguments and
wire-format results, so the same code runs on an in-process worker
thread (``jobs=0``, the 1-CPU default) or on a fork process pool
(``jobs>1``) without special cases — everything crossing the boundary
is plain picklable dicts.

A simulate job answers one coalesced micro-batch through the sweep
query planner (:func:`~repro.experiments.plan.run_batch`), so points
from different clients that share a trace identity are answered from
shared work.  When the planned batch fails as a whole, the job degrades
to a pointwise loop so one poisoned request cannot take down its
batch-mates (counted as a ``fallback`` in service telemetry).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..errors import ReproError
from ..experiments.plan import collect_plan_telemetry, run_batch, summarize_plan
from ..experiments.result import ExperimentResult, failed_result
from ..interp.executor import MachineRun
from ..machine.engine.simcache import SimulationResult, get_sim_cache
from ..machine.hierarchy import HierarchyResult
from .protocol import ProtocolError, sim_request_from_json


def wire_run(run: MachineRun) -> dict[str, Any]:
    """One executed point -> wire counters.

    Ships exactly what :func:`~repro.interp.executor.assemble_run` needs
    to rebuild the run: level stats, downstream bytes and the graduated
    totals.  Times are *not* shipped — the client recomputes them from
    these integers through the same timing-model arithmetic, which is
    what makes the reconstruction bit-identical.
    """
    c = run.counters
    return SimulationResult(
        HierarchyResult(c.level_stats, c.downstream_bytes),
        c.graduated_flops,
        c.loads,
        c.stores,
    ).to_json()


def _cache_delta(before) -> dict[str, int]:
    """Nonzero sim-cache counter movement since ``before`` (snapshot)."""
    cache = get_sim_cache()
    if cache is None or before is None:
        return {}
    delta = cache.counters.since(before)
    return {k: v for k, v in vars(delta).items() if v}


def run_simulate_job(
    request_jsons: Sequence[Mapping[str, Any]], *, plan: bool = True
) -> dict[str, Any]:
    """Execute one coalesced micro-batch of sweep points.

    Returns ``{"results": [point, ...], "plan": {...}, "sim_cache":
    {...}, "fallbacks": int}`` where each point is either wire counters
    or ``{"error": message}``.  Never raises for per-point failures.
    """
    requests = [sim_request_from_json(d) for d in request_jsons]
    cache = get_sim_cache()
    before = cache.counters.snapshot() if cache is not None else None
    fallbacks = 0
    errors: dict[int, str] = {}
    with collect_plan_telemetry() as session:
        try:
            runs: list[MachineRun | None] = list(run_batch(requests, plan=plan))
        except Exception:  # noqa: BLE001 — isolate the poisoned point below
            fallbacks = 1
            runs = []
            for i, request in enumerate(requests):
                try:
                    runs.extend(run_batch([request], plan=False))
                except Exception as exc:  # noqa: BLE001
                    runs.append(None)
                    errors[i] = f"{type(exc).__name__}: {exc}"
                    session.fallbacks.append(
                        {
                            "program": request.program.name,
                            "machine": request.machine.name,
                            "reason": errors[i],
                        }
                    )
    results: list[dict[str, Any]] = [
        {"error": errors.get(i, "execution failed")} if run is None else wire_run(run)
        for i, run in enumerate(runs)
    ]
    return {
        "results": results,
        "plan": summarize_plan(session),
        "sim_cache": _cache_delta(before),
        "fallbacks": fallbacks,
    }


def run_predict_job(request_jsons: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Analytic estimates for a micro-batch (no trace, O(1) per point)."""
    from ..balance.analytic import predict_run

    results: list[dict[str, Any]] = []
    for data in request_jsons:
        try:
            request = sim_request_from_json(data)
            run = predict_run(
                request.program,
                request.machine,
                request.params,
                layout_policy=request.layout_policy,
                passes=request.passes,
            )
            results.append(wire_run(run))
        except (ProtocolError, ReproError) as exc:
            results.append({"error": f"{type(exc).__name__}: {exc}"})
    return {"results": results, "plan": {}, "sim_cache": {}, "fallbacks": 0}


def run_experiment_job(name: str, config_json: Mapping[str, Any] | None) -> dict[str, Any]:
    """One registry experiment; the result is its manifest record."""
    from ..experiments.config import ExperimentConfig
    from ..experiments.registry import EXPERIMENTS

    config = (
        ExperimentConfig.from_json(config_json)
        if config_json
        else ExperimentConfig()
    )
    if name not in EXPERIMENTS:
        result: ExperimentResult = failed_result(
            name, config, f"unknown experiment {name!r}"
        )
    else:
        try:
            config.apply()
            result = EXPERIMENTS[name](config)
        except Exception as exc:  # noqa: BLE001 — degrade, never kill the server
            result = failed_result(name, config, f"{type(exc).__name__}: {exc}")
    return {"results": [result.to_json()], "plan": {}, "sim_cache": {}, "fallbacks": 0}


__all__ = [
    "run_experiment_job",
    "run_predict_job",
    "run_simulate_job",
    "wire_run",
]

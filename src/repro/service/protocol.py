"""Wire format of the repro service: JSON lines, one message per line.

Requests
--------

Every request is one JSON object terminated by ``\\n``::

    {"op": "simulate_batch", "id": 1, "requests": [<sim_request>, ...],
     "tenant": "ci", "progress": true}
    {"op": "predict",        "id": 2, "requests": [<sim_request>, ...]}
    {"op": "experiment",     "id": 3, "name": "fig1", "config": {...}}
    {"op": "stats",          "id": 4}
    {"op": "ping",           "id": 5}
    {"op": "shutdown",       "id": 6}

``<sim_request>`` carries everything
:class:`~repro.experiments.plan.SimRequest` holds, in portable form: the
program as mini-language text (:func:`repro.lang.printer.render`), the
machine as :meth:`MachineSpec.to_json`, and the schedule scalars.

Responses
---------

The final response for request ``id`` is::

    {"id": 1, "ok": true,  "result": ...}
    {"id": 1, "ok": false, "error": {"code": "queue_full", "message": "..."}}

Reject codes are closed: ``invalid`` (malformed request), ``queue_full``
(admission control), ``over_quota`` (per-tenant cap), ``draining``
(server is shutting down), ``internal`` (execution failed).  A sweep
submitted with ``"progress": true`` additionally receives incremental
events before the final response::

    {"id": 1, "event": "progress", "done": 3, "total": 36}

Simulation results on the wire are the raw counters
(:meth:`repro.machine.engine.simcache.SimulationResult.to_json`): the
client reassembles the full :class:`~repro.interp.executor.MachineRun`
locally through :func:`~repro.interp.executor.assemble_run`, which is
what makes served results bit-identical to local execution.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..errors import ReproError
from ..experiments.plan import SimRequest
from ..lang.parser import parse
from ..lang.printer import render
from ..machine.layout import LayoutPolicy
from ..machine.spec import MachineSpec

#: Bump when the wire format changes incompatibly.
PROTOCOL_VERSION = 1

#: Closed set of reject codes (mirrored in the manifest service block).
REJECT_CODES = ("invalid", "queue_full", "over_quota", "draining", "internal")

#: Ops the server understands.
OPS = ("simulate", "simulate_batch", "predict", "experiment", "stats", "ping", "shutdown")

#: Hard cap on one wire line (guards the server against garbage input).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ReproError):
    """A message violates the wire contract (malformed, wrong types)."""


def encode(message: Mapping[str, Any]) -> bytes:
    """One message -> one ``\\n``-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes | str) -> dict[str, Any]:
    """One wire line -> message dict (raises :class:`ProtocolError`)."""
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(message).__name__}")
    return message


# -- SimRequest <-> wire ------------------------------------------------------
def sim_request_to_json(request: SimRequest) -> dict[str, Any]:
    """Portable form of one sweep point."""
    return {
        "program": render(request.program),
        "machine": request.machine.to_json(),
        "params": dict(request.params) if request.params else None,
        "layout": (
            request.layout_policy.to_json() if request.layout_policy is not None else None
        ),
        "passes": request.passes,
        "warmup_passes": request.warmup_passes,
        "flush": request.flush,
    }


def sim_request_from_json(data: Mapping[str, Any]) -> SimRequest:
    """Parse and validate one wire sweep point.

    Raises :class:`ProtocolError` for anything malformed — the server
    turns that into an ``invalid`` reject instead of crashing the
    connection.
    """
    if not isinstance(data, Mapping):
        raise ProtocolError(f"request must be an object, got {type(data).__name__}")
    try:
        program = parse(data["program"])
    except KeyError:
        raise ProtocolError("request is missing 'program'") from None
    except (TypeError, ReproError) as exc:
        raise ProtocolError(f"bad program: {exc}") from None
    try:
        machine = MachineSpec.from_json(data["machine"])
    except KeyError:
        raise ProtocolError("request is missing 'machine'") from None
    except (TypeError, ValueError, ReproError) as exc:
        raise ProtocolError(f"bad machine: {exc}") from None
    params = data.get("params")
    if params is not None:
        if not isinstance(params, Mapping):
            raise ProtocolError("params must be an object of int")
        try:
            params = {str(k): int(v) for k, v in params.items()}
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad params: {exc}") from None
    layout = data.get("layout")
    if layout is not None:
        try:
            layout = LayoutPolicy.from_json(layout)
        except (TypeError, ValueError, AttributeError) as exc:
            raise ProtocolError(f"bad layout: {exc}") from None
    try:
        passes = int(data.get("passes", 1))
        warmup = int(data.get("warmup_passes", 0))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad schedule: {exc}") from None
    if passes < 1 or warmup < 0:
        raise ProtocolError(f"bad schedule: passes={passes}, warmup_passes={warmup}")
    return SimRequest(
        program=program,
        machine=machine,
        params=params,
        layout_policy=layout,
        passes=passes,
        warmup_passes=warmup,
        flush=bool(data.get("flush", True)),
    )


# -- responses ----------------------------------------------------------------
def ok_response(rid: Any, result: Any) -> dict[str, Any]:
    return {"id": rid, "ok": True, "result": result}


def error_response(rid: Any, code: str, message: str) -> dict[str, Any]:
    assert code in REJECT_CODES, code
    return {"id": rid, "ok": False, "error": {"code": code, "message": message}}


def progress_event(rid: Any, done: int, total: int) -> dict[str, Any]:
    return {"id": rid, "event": "progress", "done": done, "total": total}


__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "REJECT_CODES",
    "ProtocolError",
    "decode",
    "encode",
    "error_response",
    "ok_response",
    "progress_event",
    "sim_request_from_json",
    "sim_request_to_json",
]

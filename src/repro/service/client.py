"""Synchronous thin client for the repro service.

The client ships sweep points in portable form and rebuilds full
:class:`~repro.interp.executor.MachineRun` objects from the counters the
server returns, through the same
:func:`~repro.interp.executor.assemble_run` arithmetic local execution
uses — so ``ServiceClient.simulate_batch(reqs)`` is bit-identical to
``repro.api.simulate_batch(reqs)``::

    from repro.service import ServiceClient

    with ServiceClient("tcp:127.0.0.1:9178") as client:
        results = client.simulate_batch(requests, progress=print)
        print(client.stats()["dedup_hits"])

Addresses are the strings the server prints: ``unix:<path>``,
``tcp:<host>:<port>`` (a bare path or ``host:port`` also works).
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Callable, Mapping, Sequence

from ..errors import ReproError
from ..experiments.plan import SimRequest
from ..experiments.result import ExperimentResult
from ..interp.executor import MachineRun, assemble_run
from ..lang.program import Program
from ..machine.engine.simcache import SimulationResult as _Counters
from ..machine.spec import MachineSpec
from .protocol import MAX_LINE_BYTES, decode, encode, sim_request_to_json


class ServiceError(ReproError):
    """The server answered with an explicit reject."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code


def _parse_address(address: str) -> tuple[str, Any]:
    if address.startswith("unix:"):
        return ("unix", address[5:])
    if address.startswith("tcp:"):
        address = address[4:]
    if "/" in address or address.startswith("."):
        return ("unix", address)
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(f"bad service address {address!r}")
    return ("tcp", (host, int(port)))


def _rebuild(request: SimRequest, point: Mapping[str, Any]) -> MachineRun:
    """Wire counters -> MachineRun, bit-identical to local execution.

    The server assembled its counters with the request's ``passes``
    already multiplied in, so the client reassembles with ``passes=1``:
    identical integers through identical timing arithmetic.
    """
    counters = _Counters.from_json(point)
    bound = request.program.bind_params(request.params)
    return assemble_run(
        request.program.name,
        request.machine,
        bound,
        counters.result,
        counters.flops,
        counters.loads,
        counters.stores,
        1,
    )


class ServiceClient:
    """One connection to a repro daemon (context manager)."""

    def __init__(self, address: str, *, tenant: str | None = None, timeout: float = 300.0):
        self.address = address
        self.tenant = tenant
        family, target = _parse_address(address)
        if family == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(target)
        else:
            self._sock = socket.create_connection(target, timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)

    # -- plumbing -------------------------------------------------------------
    def _call(
        self,
        message: dict[str, Any],
        on_progress: Callable[[int, int], None] | None = None,
    ) -> Any:
        rid = next(self._ids)
        message["id"] = rid
        if self.tenant is not None:
            message.setdefault("tenant", self.tenant)
        self._file.write(encode(message))
        self._file.flush()
        while True:
            line = self._file.readline(MAX_LINE_BYTES)
            if not line:
                raise ReproError("service closed the connection mid-request")
            reply = decode(line)
            if reply.get("event") == "progress":
                if on_progress is not None and reply.get("id") == rid:
                    on_progress(int(reply["done"]), int(reply["total"]))
                continue
            if reply.get("id") != rid:
                raise ReproError(f"out-of-order reply: expected id {rid}, got {reply.get('id')}")
            if not reply.get("ok"):
                error = reply.get("error") or {}
                raise ServiceError(
                    str(error.get("code", "internal")),
                    str(error.get("message", "unknown error")),
                )
            return reply.get("result")

    # -- verbs ----------------------------------------------------------------
    def simulate_batch(
        self,
        requests: Sequence[SimRequest],
        *,
        progress: Callable[[int, int], None] | None = None,
    ) -> list["_ApiResult"]:
        """Run a sweep through the daemon; results in request order,
        bit-identical to :func:`repro.api.simulate_batch`."""
        requests = list(requests)
        points = self._call(
            {
                "op": "simulate_batch",
                "requests": [sim_request_to_json(r) for r in requests],
                "progress": progress is not None,
            },
            on_progress=progress,
        )
        return [self._summarize(r, _rebuild(r, p)) for r, p in zip(requests, points)]

    def simulate(
        self,
        program: Program,
        machine: MachineSpec,
        *,
        params: Mapping[str, int] | None = None,
        passes: int = 1,
        warmup_passes: int = 0,
    ) -> "_ApiResult":
        request = SimRequest(
            program=program,
            machine=machine,
            params=params,
            passes=passes,
            warmup_passes=warmup_passes,
        )
        point = self._call({"op": "simulate", "request": sim_request_to_json(request)})
        return self._summarize(request, _rebuild(request, point[0]))

    def predict_batch(self, requests: Sequence[SimRequest]) -> list["_ApiResult"]:
        """Analytic estimates from the daemon (no trace, no simulation)."""
        requests = list(requests)
        points = self._call(
            {"op": "predict", "requests": [sim_request_to_json(r) for r in requests]}
        )
        return [self._summarize(r, _rebuild(r, p)) for r, p in zip(requests, points)]

    def run_experiment(self, name: str, config: Mapping[str, Any] | None = None) -> ExperimentResult:
        record = self._call(
            {"op": "experiment", "name": name, "config": dict(config) if config else None}
        )
        return ExperimentResult.from_json(record)

    def stats(self) -> dict[str, Any]:
        return self._call({"op": "stats"})

    def ping(self) -> bool:
        return self._call({"op": "ping"}) == "pong"

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit (returns once acknowledged)."""
        self._call({"op": "shutdown"})

    @staticmethod
    def _summarize(request: SimRequest, run: MachineRun) -> "_ApiResult":
        from ..api import _summarize

        return _summarize(run, request.machine)

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def submit(
    requests: Sequence[SimRequest],
    address: str,
    *,
    tenant: str | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> list["_ApiResult"]:
    """One-shot convenience: connect, run the sweep, disconnect."""
    with ServiceClient(address, tenant=tenant) as client:
        return client.simulate_batch(requests, progress=progress)


# typing alias only (the real class lives in repro.api; importing it at
# module scope would be circular when api itself imports the service).
_ApiResult = Any

__all__ = ["ServiceClient", "ServiceError", "submit"]

"""Data types and declarations for the loop IR.

Arrays are declared with a name, a shape of affine extents (usually program
parameters such as ``N``) and an element dtype. Scalars are named float
variables; a scalar marked ``output`` is part of the program's observable
result (the paper's programs ``print sum``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import IRError
from .affine import Affine, AffineLike


class DType(enum.Enum):
    """Element types supported by the IR and the machine model."""

    FLOAT64 = ("f8", 8)
    FLOAT32 = ("f4", 4)
    INT64 = ("i8", 8)

    def __init__(self, np_name: str, size: int):
        self.np_name = np_name
        self.size = size

    @property
    def numpy_dtype(self) -> np.dtype:
        return np.dtype(self.np_name)

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of a program array.

    ``shape`` extents are affine in program parameters only (not loop vars);
    the element layout is row-major (C order).

    ``init_names`` supports the inter-array regrouping transform: when set
    (one name per last-dimension slot), the reference interpreter
    initializes slice ``[..., j]`` with the deterministic per-name stream
    of ``init_names[j]`` — so a packed array starts with exactly the values
    the standalone arrays it replaces would have had, and the equivalence
    oracle can compare observables across the rewrite.
    """

    name: str
    shape: tuple[Affine, ...]
    dtype: DType = DType.FLOAT64
    init_names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise IRError(f"invalid array name {self.name!r}")
        if not self.shape:
            raise IRError(f"array {self.name!r} must have at least one dimension")
        object.__setattr__(self, "shape", tuple(Affine.of(e) for e in self.shape))
        if self.init_names is not None:
            object.__setattr__(self, "init_names", tuple(self.init_names))
            last = self.shape[-1]
            if not last.is_constant or last.const != len(self.init_names):
                raise IRError(
                    f"array {self.name!r}: init_names needs one entry per "
                    "slot of a constant last dimension"
                )

    @property
    def rank(self) -> int:
        return len(self.shape)

    def extents(self, params: Mapping[str, int]) -> tuple[int, ...]:
        """Concrete extents under a parameter binding."""
        out = tuple(e.evaluate(params) for e in self.shape)
        for dim, ext in enumerate(out):
            if ext <= 0:
                raise IRError(f"array {self.name!r} dimension {dim} has extent {ext}")
        return out

    def element_count(self, params: Mapping[str, int]) -> int:
        n = 1
        for e in self.extents(params):
            n *= e
        return n

    def size_bytes(self, params: Mapping[str, int]) -> int:
        return self.element_count(params) * self.dtype.size

    def __str__(self) -> str:
        dims = ", ".join(str(e) for e in self.shape)
        return f"{self.name}[{dims}]"


@dataclass(frozen=True)
class ScalarDecl:
    """Declaration of a scalar float variable."""

    name: str
    dtype: DType = DType.FLOAT64
    output: bool = False
    initial: float = 0.0

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise IRError(f"invalid scalar name {self.name!r}")

    def __str__(self) -> str:
        suffix = " out" if self.output else ""
        return f"{self.name}{suffix}"


def make_shape(*extents: AffineLike) -> tuple[Affine, ...]:
    """Convenience: coerce ints/strings/affines into a shape tuple."""
    return tuple(Affine.of(e) for e in extents)

"""``repro-loopc`` — the mini-language compiler/measurement driver.

Compile a ``.loop`` source file, optionally run the paper's optimization
strategy on it, and measure it on a simulated machine::

    repro-loopc program.loop                      # parse + echo + measure
    repro-loopc program.loop --optimize           # run the full pipeline
    repro-loopc program.loop --machine exemplar --scale 64
    repro-loopc program.loop --emit               # print transformed source
    repro-loopc program.loop --set N=4096         # override a parameter
    echo 'program p() ...' | repro-loopc -        # read from stdin

Exit status is nonzero on parse errors, verification failures, or
execution errors, so the driver is scriptable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ReproError
from ..balance.model import demand_supply_ratios, program_balance
from ..interp.executor import execute
from ..machine.presets import PRESETS
from .parser import parse
from .printer import render


def _parse_overrides(pairs: list[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--set expects NAME=INT, got {pair!r}")
        name, _, value = pair.partition("=")
        try:
            out[name.strip()] = int(value)
        except ValueError as exc:
            raise ReproError(f"--set {pair!r}: value must be an integer") from exc
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loopc",
        description="Compile, optimize and measure a mini-language loop program.",
    )
    parser.add_argument("source", help="path to a .loop file, or '-' for stdin")
    parser.add_argument(
        "--machine",
        choices=sorted(PRESETS),
        default="origin2000",
        help="simulated machine preset (default: origin2000)",
    )
    parser.add_argument(
        "--scale", type=int, default=64, help="cache scale-down factor (default 64)"
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the paper's strategy (fusion, storage reduction, store elimination)",
    )
    parser.add_argument(
        "--emit",
        action="store_true",
        help="print the (possibly transformed) program source and exit",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="NAME=INT",
        help="override a program parameter for the measurement run",
    )
    parser.add_argument(
        "--no-run", action="store_true", help="skip the simulation (syntax/pipeline only)"
    )
    args = parser.parse_args(argv)

    try:
        if args.source == "-":
            source = sys.stdin.read()
        else:
            source = Path(args.source).read_text()
    except OSError as exc:
        print(f"error: cannot read {args.source}: {exc}", file=sys.stderr)
        return 2

    try:
        program = parse(source)
    except ReproError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 1

    if args.optimize:
        from ..transforms.pipeline import optimize

        result = optimize(program)
        print(result.describe(), file=sys.stderr)
        program_out = result.final
    else:
        program_out = program

    if args.emit:
        print(render(program_out), end="")
        return 0

    if args.no_run:
        print(f"ok: {program_out.name} ({len(program_out.body)} top-level statements)")
        return 0

    try:
        overrides = _parse_overrides(args.overrides)
        machine = PRESETS[args.machine](args.scale)
        run = execute(program_out, machine, params=overrides or None)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(run.describe())
    balance = program_balance(run)
    print(balance.describe())
    print(demand_supply_ratios(balance, machine).describe())
    if args.optimize:
        baseline = execute(program, machine, params=overrides or None)
        print(
            f"speedup over unoptimized: {baseline.seconds / run.seconds:.2f}x "
            f"(memory bytes {baseline.counters.memory_bytes:,} -> "
            f"{run.counters.memory_bytes:,})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Pretty-printer: renders IR programs in the textual mini-language.

The output is valid input for :mod:`repro.lang.parser`, and round-tripping
``parse(render(p))`` reproduces ``p`` up to expression parenthesization.
"""

from __future__ import annotations

from .expr import ArrayRef, BinOp, Call, Const, Expr, IndexValue, ScalarRef, UnaryOp
from .program import Program
from .stmt import Assign, ExternalRead, If, Loop, Stmt
from .types import DType

_INDENT = "  "


def render_expr(expr: Expr) -> str:
    """Render an expression; binary operations are fully parenthesized and
    negative literals appear as ``(-x)`` so the text is a fixed point of
    parse-then-render (the parser reads ``-x`` as unary negation)."""
    if isinstance(expr, Const):
        if expr.value < 0:
            return f"(-{Const(-expr.value)})"
        return str(expr)
    if isinstance(expr, (ScalarRef, ArrayRef)):
        return str(expr)
    if isinstance(expr, IndexValue):
        return f"idx({expr.affine})"
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({render_expr(expr.lhs)}, {render_expr(expr.rhs)})"
        return f"({render_expr(expr.lhs)} {expr.op} {render_expr(expr.rhs)})"
    if isinstance(expr, UnaryOp):
        if expr.op == "-":
            return f"(-{render_expr(expr.operand)})"
        return f"{expr.op}({render_expr(expr.operand)})"
    if isinstance(expr, Call):
        return f"{expr.func}({', '.join(render_expr(a) for a in expr.args)})"
    raise TypeError(f"cannot render {type(expr).__name__}")


def _render_stmt(stmt: Stmt, depth: int, lines: list[str]) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, Assign):
        lines.append(f"{pad}{stmt.lhs} = {render_expr(stmt.rhs)}")
    elif isinstance(stmt, ExternalRead):
        lines.append(f"{pad}read({stmt.lhs})")
    elif isinstance(stmt, Loop):
        lines.append(f"{pad}for {stmt.var} = {stmt.lower}, {stmt.upper} {{")
        for s in stmt.body:
            _render_stmt(s, depth + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if {stmt.cond} {{")
        for s in stmt.then:
            _render_stmt(s, depth + 1, lines)
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for s in stmt.orelse:
                _render_stmt(s, depth + 1, lines)
        lines.append(f"{pad}}}")
    else:
        raise TypeError(f"cannot render {type(stmt).__name__}")


def render(program: Program) -> str:
    """Render a full program as mini-language source text."""
    lines: list[str] = []
    params = ", ".join(f"{k}={v}" for k, v in program.params.items())
    lines.append(f"program {program.name}({params})")
    for a in program.arrays:
        dims = ", ".join(str(e) for e in a.shape)
        suffix = "" if a.dtype is DType.FLOAT64 else f" {a.dtype}"
        out = " out" if a.name in program.outputs else ""
        lines.append(f"array {a.name}[{dims}]{suffix}{out}")
    for s in program.scalars:
        out = " out" if (s.output or s.name in program.outputs) else ""
        init = f" = {s.initial}" if s.initial else ""
        lines.append(f"scalar {s.name}{init}{out}")
    lines.append("")
    for stmt in program.body:
        _render_stmt(stmt, 0, lines)
    return "\n".join(lines) + "\n"

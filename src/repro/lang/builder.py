"""Fluent builder API for constructing IR programs.

Example::

    b = ProgramBuilder("fig7", params={"N": 100000})
    res = b.array("res", ("N",))
    data = b.array("data", ("N",))
    total = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(res[i], res[i] + data[i])
    with b.loop("i", 0, "N") as i:
        b.assign(total, total + res[i])
    prog = b.build()

Loop variables come back as :class:`Sym` handles that support affine
arithmetic (``i + 1``, ``2 * i``) for subscripts/bounds and comparisons
(``i < n - 1``) for guards.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Mapping, Sequence, Union

from ..errors import IRError
from .affine import Affine, AffineLike, Cmp, Condition
from .expr import ArrayRef, Call, ExprLike, IndexValue, ScalarRef, as_expr
from .program import Program
from .stmt import Assign, ExternalRead, If, Loop, Stmt
from .types import ArrayDecl, DType, ScalarDecl


class Sym:
    """An affine value handle (loop variable, parameter, or combination)."""

    __slots__ = ("affine",)

    def __init__(self, affine: AffineLike):
        self.affine = Affine.of(affine)

    # affine arithmetic -> Sym
    def __add__(self, other: "SymLike") -> "Sym":
        return Sym(self.affine + _affine_of(other))

    __radd__ = __add__

    def __sub__(self, other: "SymLike") -> "Sym":
        return Sym(self.affine - _affine_of(other))

    def __rsub__(self, other: "SymLike") -> "Sym":
        return Sym(_affine_of(other) - self.affine)

    def __mul__(self, k: int) -> "Sym":
        return Sym(self.affine * k)

    __rmul__ = __mul__

    def __neg__(self) -> "Sym":
        return Sym(-self.affine)

    # comparisons -> guard conditions
    def __lt__(self, other: "SymLike") -> Cmp:
        return Cmp("<", self.affine, _affine_of(other))

    def __le__(self, other: "SymLike") -> Cmp:
        return Cmp("<=", self.affine, _affine_of(other))

    def __gt__(self, other: "SymLike") -> Cmp:
        return Cmp(">", self.affine, _affine_of(other))

    def __ge__(self, other: "SymLike") -> Cmp:
        return Cmp(">=", self.affine, _affine_of(other))

    def eq(self, other: "SymLike") -> Cmp:
        return Cmp("==", self.affine, _affine_of(other))

    def ne(self, other: "SymLike") -> Cmp:
        return Cmp("!=", self.affine, _affine_of(other))

    def as_value(self) -> IndexValue:
        """Use this affine quantity as a floating-point value in expressions."""
        return IndexValue(self.affine)

    def __str__(self) -> str:
        return str(self.affine)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Sym({self.affine})"


SymLike = Union[Sym, Affine, int, str]
SubscriptLike = SymLike


def _affine_of(value: SymLike) -> Affine:
    if isinstance(value, Sym):
        return value.affine
    return Affine.of(value)


class ArrayHandle:
    """Subscriptable handle returned by :meth:`ProgramBuilder.array`."""

    __slots__ = ("decl",)

    def __init__(self, decl: ArrayDecl):
        self.decl = decl

    @property
    def name(self) -> str:
        return self.decl.name

    def __getitem__(self, subs: SubscriptLike | tuple[SubscriptLike, ...]) -> ArrayRef:
        if not isinstance(subs, tuple):
            subs = (subs,)
        if len(subs) != self.decl.rank:
            raise IRError(
                f"array {self.name!r} has rank {self.decl.rank}, got {len(subs)} subscripts"
            )
        return ArrayRef(self.name, tuple(_affine_of(s) for s in subs))


class ProgramBuilder:
    """Incrementally builds an immutable :class:`Program`."""

    def __init__(self, name: str, params: Mapping[str, int] | None = None):
        self._name = name
        self._params: dict[str, int] = dict(params or {})
        self._arrays: list[ArrayDecl] = []
        self._scalars: list[ScalarDecl] = []
        self._outputs: set[str] = set()
        self._frames: list[list[Stmt]] = [[]]
        self._built = False

    # -- declarations ------------------------------------------------------
    def param(self, name: str, default: int) -> Sym:
        self._params[name] = int(default)
        return Sym(name)

    def sym(self, name: str) -> Sym:
        """Handle for an already-declared parameter."""
        if name not in self._params:
            raise IRError(f"unknown parameter {name!r}")
        return Sym(name)

    def array(
        self,
        name: str,
        shape: Sequence[SymLike] | SymLike,
        dtype: DType = DType.FLOAT64,
        output: bool = False,
    ) -> ArrayHandle:
        if not isinstance(shape, (tuple, list)):
            shape = (shape,)
        decl = ArrayDecl(name, tuple(_affine_of(e) for e in shape), dtype)
        self._arrays.append(decl)
        if output:
            self._outputs.add(name)
        return ArrayHandle(decl)

    def scalar(
        self, name: str, output: bool = False, initial: float = 0.0
    ) -> ScalarRef:
        self._scalars.append(ScalarDecl(name, DType.FLOAT64, output, initial))
        return ScalarRef(name)

    def mark_output(self, name: str) -> None:
        self._outputs.add(name)

    # -- statements --------------------------------------------------------
    def _emit(self, stmt: Stmt) -> None:
        self._frames[-1].append(stmt)

    def assign(self, lhs: ArrayRef | ScalarRef, rhs: ExprLike) -> None:
        self._emit(Assign(lhs, as_expr(rhs)))

    def accumulate(self, lhs: ArrayRef | ScalarRef, rhs: ExprLike) -> None:
        """``lhs = lhs + rhs`` (a reduction/update)."""
        self._emit(Assign(lhs, lhs + as_expr(rhs)))

    def read(self, lhs: ArrayRef) -> None:
        self._emit(ExternalRead(lhs))

    @contextlib.contextmanager
    def loop(self, var: str, lower: SymLike, upper: SymLike) -> Iterator[Sym]:
        self._frames.append([])
        try:
            yield Sym(var)
        except BaseException:
            # An exception inside the block must not emit a half-built
            # (possibly empty) loop on top of the original error.
            self._frames.pop()
            raise
        body = self._frames.pop()
        self._emit(Loop(var, _affine_of(lower), _affine_of(upper), tuple(body)))

    @contextlib.contextmanager
    def if_(self, cond: Condition) -> Iterator[None]:
        self._frames.append([])
        try:
            yield
        except BaseException:
            self._frames.pop()
            raise
        body = self._frames.pop()
        self._emit(If(cond, tuple(body), ()))

    @contextlib.contextmanager
    def else_(self) -> Iterator[None]:
        """Attach an else branch to the most recent If in the current frame."""
        frame = self._frames[-1]
        if not frame or not isinstance(frame[-1], If):
            raise IRError("else_ must directly follow an if_")
        self._frames.append([])
        try:
            yield
        except BaseException:
            self._frames.pop()
            raise
        body = self._frames.pop()
        prior = self._frames[-1].pop()
        assert isinstance(prior, If)
        if prior.orelse:
            raise IRError("if already has an else branch")
        self._emit(If(prior.cond, prior.then, tuple(body)))

    # -- finalization -------------------------------------------------------
    def build(self) -> Program:
        if len(self._frames) != 1:
            raise IRError("unclosed loop or guard in builder")
        if self._built:
            raise IRError("builder already consumed")
        self._built = True
        return Program(
            name=self._name,
            params=self._params,
            arrays=tuple(self._arrays),
            scalars=tuple(self._scalars),
            body=tuple(self._frames[0]),
            outputs=frozenset(self._outputs),
        )


def call(func: str, *args: ExprLike) -> Call:
    """Build an intrinsic call expression (``call("f", a[i], b[i])``)."""
    return Call(func, tuple(as_expr(a) for a in args))

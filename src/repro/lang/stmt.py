"""Statements and loops of the IR.

A program body is a list of statements; the structured statements are
``Loop`` (a counted loop over a half-open affine range) and ``If`` (a guard
on an affine condition). ``Assign`` covers both plain assignments and
reductions (the LHS may appear in the RHS). ``ExternalRead`` models the
paper's ``read(a[i,j])`` input statements: the value comes from an input
stream, so it is a store to the array without any program-array load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence, Union

from ..errors import IRError
from .affine import Affine, AffineLike, Condition
from .expr import ArrayRef, Expr, ScalarRef, as_expr

LValue = Union[ArrayRef, ScalarRef]


class Stmt:
    """Base class for statements."""

    def walk(self) -> Iterator["Stmt"]:
        """Yield this statement and all nested statements, preorder."""
        yield self

    def substituted(self, bindings: Mapping[str, AffineLike]) -> "Stmt":
        raise NotImplementedError


@dataclass(frozen=True)
class Assign(Stmt):
    """``lhs = rhs``; a reduction when the lhs also occurs in the rhs."""

    lhs: LValue
    rhs: Expr

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, (ArrayRef, ScalarRef)):
            raise IRError(f"invalid assignment target {self.lhs!r}")
        object.__setattr__(self, "rhs", as_expr(self.rhs))

    def substituted(self, bindings: Mapping[str, AffineLike]) -> "Assign":
        from .expr import substitute_expr

        lhs = self.lhs.substitute(bindings) if isinstance(self.lhs, ArrayRef) else self.lhs
        return Assign(lhs, substitute_expr(self.rhs, bindings))

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass(frozen=True)
class ExternalRead(Stmt):
    """``read(lhs)`` — store an externally supplied value into an array
    element or (after storage reduction, as in the paper's Figure 6c
    ``read(a2)``) directly into a scalar."""

    lhs: LValue

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, (ArrayRef, ScalarRef)):
            raise IRError("ExternalRead target must be an array or scalar reference")

    def substituted(self, bindings: Mapping[str, AffineLike]) -> "ExternalRead":
        if isinstance(self.lhs, ArrayRef):
            return ExternalRead(self.lhs.substitute(bindings))
        return self

    def __str__(self) -> str:
        return f"read({self.lhs})"


@dataclass(frozen=True)
class If(Stmt):
    """A guard on an affine condition over loop variables and parameters."""

    cond: Condition
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "then", tuple(self.then))
        object.__setattr__(self, "orelse", tuple(self.orelse))
        if not self.then and not self.orelse:
            raise IRError("If statement with empty branches")

    def walk(self) -> Iterator[Stmt]:
        yield self
        for s in self.then:
            yield from s.walk()
        for s in self.orelse:
            yield from s.walk()

    def substituted(self, bindings: Mapping[str, AffineLike]) -> "If":
        return If(
            self.cond.substitute(bindings),
            tuple(s.substituted(bindings) for s in self.then),
            tuple(s.substituted(bindings) for s in self.orelse),
        )

    def __str__(self) -> str:
        return f"if {self.cond} ..."


@dataclass(frozen=True)
class Loop(Stmt):
    """``for var in [lower, upper)`` with unit step.

    Bounds are affine in program parameters and enclosing loop variables.
    """

    var: str
    lower: Affine
    upper: Affine
    body: tuple[Stmt, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.var.isidentifier():
            raise IRError(f"invalid loop variable {self.var!r}")
        object.__setattr__(self, "lower", Affine.of(self.lower))
        object.__setattr__(self, "upper", Affine.of(self.upper))
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise IRError(f"loop over {self.var!r} has an empty body")

    def walk(self) -> Iterator[Stmt]:
        yield self
        for s in self.body:
            yield from s.walk()

    def trip_count(self, env: Mapping[str, int]) -> int:
        return max(0, self.upper.evaluate(env) - self.lower.evaluate(env))

    def substituted(self, bindings: Mapping[str, AffineLike]) -> "Loop":
        if self.var in bindings:
            raise IRError(f"cannot substitute bound loop variable {self.var!r}")
        return Loop(
            self.var,
            self.lower.substitute(bindings),
            self.upper.substitute(bindings),
            tuple(s.substituted(bindings) for s in self.body),
        )

    def with_body(self, body: Sequence[Stmt]) -> "Loop":
        return Loop(self.var, self.lower, self.upper, tuple(body))

    def renamed(self, new_var: str) -> "Loop":
        """Alpha-rename the loop variable throughout the body."""
        if new_var == self.var:
            return self
        binding = {self.var: Affine.var(new_var)}
        return Loop(
            new_var,
            self.lower,
            self.upper,
            tuple(s.substituted(binding) for s in self.body),
        )

    def __str__(self) -> str:
        return f"for {self.var} = {self.lower}, {self.upper} ..."


def loop_vars(stmt: Stmt) -> list[str]:
    """All loop variables bound anywhere inside ``stmt`` (preorder)."""
    return [s.var for s in stmt.walk() if isinstance(s, Loop)]


def innermost_loops(stmt: Stmt) -> list[Loop]:
    """Loops that contain no nested loop."""
    out = []
    for s in stmt.walk():
        if isinstance(s, Loop) and not any(isinstance(b, Loop) for b in s.walk() if b is not s):
            out.append(s)
    return out


def perfect_nest(loop: Loop) -> list[Loop]:
    """The chain of perfectly nested loops starting at ``loop``.

    Returns ``[loop]`` alone if the body holds anything besides a single
    nested loop.
    """
    chain = [loop]
    current = loop
    while len(current.body) == 1 and isinstance(current.body[0], Loop):
        current = current.body[0]
        chain.append(current)
    return chain

"""The loop IR: affine expressions, AST, builder, parser and printer.

This package is the substrate everything else operates on — the paper's
compiler transformations are source-to-source rewrites of these programs,
and the trace engine converts them into memory-access streams.
"""

from .affine import Affine, And, Cmp, Condition, conjoin
from .builder import ArrayHandle, ProgramBuilder, Sym, call
from .expr import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    IndexValue,
    ScalarRef,
    UnaryOp,
    array_refs,
    as_expr,
    flop_count,
    scalar_refs,
)
from .parser import parse
from .printer import render, render_expr
from .program import Program
from .stmt import Assign, ExternalRead, If, Loop, Stmt, innermost_loops, loop_vars, perfect_nest
from .types import ArrayDecl, DType, ScalarDecl

__all__ = [
    "Affine",
    "And",
    "ArrayDecl",
    "ArrayHandle",
    "ArrayRef",
    "Assign",
    "BinOp",
    "Call",
    "Cmp",
    "Condition",
    "Const",
    "DType",
    "Expr",
    "ExternalRead",
    "If",
    "IndexValue",
    "Loop",
    "Program",
    "ProgramBuilder",
    "ScalarDecl",
    "ScalarRef",
    "Stmt",
    "Sym",
    "UnaryOp",
    "array_refs",
    "as_expr",
    "call",
    "conjoin",
    "flop_count",
    "innermost_loops",
    "loop_vars",
    "parse",
    "perfect_nest",
    "render",
    "render_expr",
    "scalar_refs",
]

"""Dependence-distance analysis inside a single loop nest.

Used for two purposes:

* **fusion legality** — fusing two loops is illegal if a value a later loop
  reads at iteration ``t`` would only be produced at a later iteration of
  the fused loop (negative fused distance);
* **storage reduction** — an array can be shrunk to a circular buffer of
  ``d + 1`` elements per leading position when every read of an element
  happens at most ``d`` iterations after its write (Figure 6's ``a3[N]``
  carries values from one ``j`` iteration to the next: ``d = 1``).

The analysis handles the affine-subscript form our programs use: each
subscript of the analyzed dimension must be ``var + offset`` (coefficient
exactly one in the chosen loop variable, no other loop variables in that
subscript position).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import AnalysisError
from ..affine import Affine
from ..expr import ArrayRef
from ..stmt import Loop, Stmt
from .arrays import refs_of_array


@dataclass(frozen=True)
class OffsetProfile:
    """Subscript offsets of one array in one loop dimension.

    ``write_offsets``/``read_offsets`` hold the constant part of each
    ``var + offset`` subscript; ``uniform`` is False when any reference is
    not of that form (coefficient != 1, or the subscript mixes variables
    beyond parameters).
    """

    array: str
    var: str
    dim: int
    write_offsets: tuple[int, ...]
    read_offsets: tuple[int, ...]
    uniform: bool

    @property
    def all_offsets(self) -> tuple[int, ...]:
        return self.write_offsets + self.read_offsets

    def max_flow_distance(self) -> int | None:
        """Largest #iterations between a write and a later read of the same
        element, or None if there is no write→read pair (or not uniform).

        A write ``a[v + kw]`` at iteration ``v`` defines element ``e = v+kw``;
        a read ``a[v' + kr]`` uses element ``e`` at ``v' = v + (kw - kr)``.
        Distance ``kw - kr`` < 0 means the read precedes the write (upward
        exposed use of an initial value).
        """
        if not self.uniform or not self.write_offsets or not self.read_offsets:
            return None
        return max(kw - kr for kw in self.write_offsets for kr in self.read_offsets)

    def min_flow_distance(self) -> int | None:
        if not self.uniform or not self.write_offsets or not self.read_offsets:
            return None
        return min(kw - kr for kw in self.write_offsets for kr in self.read_offsets)


def _offset_in_var(sub: Affine, var: str, other_loop_vars: frozenset[str]) -> int | None:
    """Offset ``k`` when ``sub == var + k`` (+ parameter terms allowed only
    if constant); None when the subscript is not uniform in ``var``."""
    if sub.coeff(var) != 1:
        return None
    rest = sub - Affine.var(var)
    # Any other loop variable in this subscript makes per-iteration element
    # identity depend on sibling loops; reject.
    if rest.symbols & other_loop_vars:
        return None
    if not rest.is_constant:
        # Parameter-relative offsets (e.g. a[i, N-1]) are constant at run
        # time but unknown statically; treat as non-uniform.
        return None
    return rest.const


def offset_profile(node: Stmt, array: str, var: str, dim: int, loop_vars: frozenset[str]) -> OffsetProfile:
    """Collect subscript offsets of ``array`` in dimension ``dim`` w.r.t. ``var``."""
    reads, writes = refs_of_array(node, array)
    other = frozenset(v for v in loop_vars if v != var)

    def collect(refs: list[ArrayRef]) -> tuple[tuple[int, ...], bool]:
        offsets: list[int] = []
        ok = True
        for ref in refs:
            if dim >= ref.rank:
                raise AnalysisError(f"{ref} has no dimension {dim}")
            k = _offset_in_var(ref.index[dim], var, other)
            if k is None:
                ok = False
            else:
                offsets.append(k)
        return tuple(offsets), ok

    w, w_ok = collect(writes)
    r, r_ok = collect(reads)
    return OffsetProfile(array, var, dim, w, r, w_ok and r_ok)


def fused_distance(
    earlier: Stmt,
    later: Stmt,
    array: str,
    var_earlier: str,
    var_later: str,
    dim: int = 0,
) -> int | None:
    """Dependence distance for ``array`` if the two loops were fused.

    With the earlier loop writing ``a[v + kw]`` and the later loop reading
    ``a[u + kr]``, fusing on a common induction variable ``t`` means the
    value of element ``e`` is produced at ``t = e - kw`` and consumed at
    ``t = e - kr``; the fused distance is ``kw - kr``. A *negative* value
    for any (write, read) pair means fusion would make the consumer run
    before the producer — a fusion-preventing dependence.

    Returns the minimum distance over all pairs, or None when subscripts
    are not uniform (caller must be conservative) or there is no pair.
    """
    _, writes_e = refs_of_array(earlier, array)
    reads_l, writes_l = refs_of_array(later, array)
    pairs: list[int] = []
    for wref in writes_e:
        if dim >= wref.rank:
            return None
        kw = _offset_in_var(wref.index[dim], var_earlier, frozenset())
        if kw is None:
            return None
        for refs in (reads_l, writes_l):
            for rref in refs:
                kr = _offset_in_var(rref.index[dim], var_later, frozenset())
                if kr is None:
                    return None
                pairs.append(kw - kr)
    # Anti dependences: earlier reads, later writes.
    reads_e, _ = refs_of_array(earlier, array)
    for rref in reads_e:
        if dim >= rref.rank:
            return None
        kr = _offset_in_var(rref.index[dim], var_earlier, frozenset())
        if kr is None:
            return None
        for wref in writes_l:
            kw = _offset_in_var(wref.index[dim], var_later, frozenset())
            if kw is None:
                return None
            pairs.append(kr - kw)
    if not pairs:
        return None
    return min(pairs)


def loop_nest_vars(loop: Loop) -> frozenset[str]:
    """All loop variables bound inside (and including) ``loop``."""
    return frozenset(s.var for s in loop.walk() if isinstance(s, Loop))

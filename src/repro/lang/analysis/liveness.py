"""Array liveness across top-level statements.

Store elimination (paper §3.3) needs to know where the *last segment of an
array's live range* falls: if the last read of an array is inside (or
before) a given loop and the array is not a program output, the values
written in that loop are dead afterwards and the writeback can be removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..program import Program
from .arrays import access_sets


@dataclass(frozen=True)
class LiveRange:
    """Positions (top-level statement indices) where one array is accessed."""

    array: str
    reads: tuple[int, ...]
    writes: tuple[int, ...]

    @property
    def first_access(self) -> int | None:
        touched = self.reads + self.writes
        return min(touched) if touched else None

    @property
    def last_access(self) -> int | None:
        touched = self.reads + self.writes
        return max(touched) if touched else None

    @property
    def last_read(self) -> int | None:
        return max(self.reads) if self.reads else None

    @property
    def last_write(self) -> int | None:
        return max(self.writes) if self.writes else None


def live_ranges(program: Program) -> dict[str, LiveRange]:
    """Live range of every declared array over top-level statement indices."""
    reads: dict[str, list[int]] = {a.name: [] for a in program.arrays}
    writes: dict[str, list[int]] = {a.name: [] for a in program.arrays}
    for idx, stmt in enumerate(program.body):
        sets = access_sets(stmt)
        for name in sets.reads:
            reads[name].append(idx)
        for name in sets.writes:
            writes[name].append(idx)
    return {
        name: LiveRange(name, tuple(reads[name]), tuple(writes[name]))
        for name in reads
    }


def dead_after(program: Program, array: str, position: int) -> bool:
    """True when ``array``'s values cannot be observed after top-level
    statement ``position``: it is not a program output and no later
    statement reads it."""
    if array in program.outputs:
        return False
    lr = live_ranges(program).get(array)
    if lr is None:
        return True
    return all(r <= position for r in lr.reads)


def local_arrays(program: Program) -> frozenset[str]:
    """Arrays whose entire live range sits inside a single top-level
    statement and that are not outputs — candidates for storage reduction."""
    out: set[str] = set()
    for name, lr in live_ranges(program).items():
        if name in program.outputs:
            continue
        positions = set(lr.reads) | set(lr.writes)
        if positions and len(positions) == 1:
            out.add(name)
    return frozenset(out)


def unused_arrays(program: Program) -> frozenset[str]:
    """Declared arrays never referenced by the body."""
    out: set[str] = set()
    for name, lr in live_ranges(program).items():
        if not lr.reads and not lr.writes:
            out.add(name)
    return frozenset(out)

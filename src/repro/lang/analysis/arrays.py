"""Read/write-set analysis over IR statements.

These are the raw facts every other analysis consumes: which arrays (and
scalars) a statement or loop nest reads and writes, and the individual
references in evaluation order.

Evaluation order of one statement is: all RHS reads left-to-right, then the
LHS write — matching how the trace engine interleaves accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ...errors import AnalysisError
from ..expr import ArrayRef, ScalarRef, array_refs, scalar_refs
from ..program import Program
from ..stmt import Assign, ExternalRead, Stmt


@dataclass(frozen=True)
class AccessSets:
    """Array names read and written somewhere inside a statement."""

    reads: frozenset[str]
    writes: frozenset[str]

    @property
    def touched(self) -> frozenset[str]:
        return self.reads | self.writes

    def __or__(self, other: "AccessSets") -> "AccessSets":
        return AccessSets(self.reads | other.reads, self.writes | other.writes)


EMPTY_ACCESS = AccessSets(frozenset(), frozenset())


def stmt_read_refs(stmt: Stmt) -> list[ArrayRef]:
    """Array references *read* directly by a leaf statement (not nested)."""
    if isinstance(stmt, Assign):
        return array_refs(stmt.rhs)
    if isinstance(stmt, ExternalRead):
        return []
    raise AnalysisError(f"stmt_read_refs expects a leaf statement, got {type(stmt).__name__}")


def stmt_write_refs(stmt: Stmt) -> list[ArrayRef]:
    """Array references *written* directly by a leaf statement."""
    if isinstance(stmt, Assign):
        return [stmt.lhs] if isinstance(stmt.lhs, ArrayRef) else []
    if isinstance(stmt, ExternalRead):
        return [stmt.lhs] if isinstance(stmt.lhs, ArrayRef) else []
    raise AnalysisError(f"stmt_write_refs expects a leaf statement, got {type(stmt).__name__}")


def access_sets(node: Stmt | Sequence[Stmt]) -> AccessSets:
    """Array read/write sets of a statement (recursing into loops/guards)."""
    reads: set[str] = set()
    writes: set[str] = set()
    stmts: Iterable[Stmt] = [node] if isinstance(node, Stmt) else node
    for top in stmts:
        for s in top.walk():
            if isinstance(s, Assign):
                reads.update(r.array for r in array_refs(s.rhs))
                if isinstance(s.lhs, ArrayRef):
                    writes.add(s.lhs.array)
            elif isinstance(s, ExternalRead) and isinstance(s.lhs, ArrayRef):
                writes.add(s.lhs.array)
    return AccessSets(frozenset(reads), frozenset(writes))


def scalar_access_sets(node: Stmt | Sequence[Stmt]) -> AccessSets:
    """Scalar read/write sets of a statement (recursing into loops/guards)."""
    reads: set[str] = set()
    writes: set[str] = set()
    stmts: Iterable[Stmt] = [node] if isinstance(node, Stmt) else node
    for top in stmts:
        for s in top.walk():
            if isinstance(s, Assign):
                reads.update(r.name for r in scalar_refs(s.rhs))
                if isinstance(s.lhs, ScalarRef):
                    writes.add(s.lhs.name)
            elif isinstance(s, ExternalRead) and isinstance(s.lhs, ScalarRef):
                writes.add(s.lhs.name)
    return AccessSets(frozenset(reads), frozenset(writes))


def arrays_touched(node: Stmt | Sequence[Stmt]) -> frozenset[str]:
    """All distinct arrays accessed anywhere inside ``node``.

    This is the quantity the paper's fusion objective sums per partition:
    "the number of distinct arrays in all partitions".
    """
    return access_sets(node).touched


def refs_of_array(node: Stmt, array: str) -> tuple[list[ArrayRef], list[ArrayRef]]:
    """(read refs, write refs) of one array anywhere inside ``node``."""
    reads: list[ArrayRef] = []
    writes: list[ArrayRef] = []
    for s in node.walk():
        if isinstance(s, Assign):
            reads.extend(r for r in array_refs(s.rhs) if r.array == array)
            if isinstance(s.lhs, ArrayRef) and s.lhs.array == array:
                writes.append(s.lhs)
        elif (
            isinstance(s, ExternalRead)
            and isinstance(s.lhs, ArrayRef)
            and s.lhs.array == array
        ):
            writes.append(s.lhs)
    return reads, writes


def count_leaf_statements(node: Stmt) -> int:
    """Number of leaf (Assign/ExternalRead) statements inside ``node``."""
    return sum(1 for s in node.walk() if isinstance(s, (Assign, ExternalRead)))


def top_level_access_sets(program: Program) -> list[AccessSets]:
    """Access sets for each top-level statement of the program, in order."""
    return [access_sets(s) for s in program.body]


def program_arrays_used(program: Program) -> frozenset[str]:
    """Arrays actually referenced by the program body."""
    return arrays_touched(list(program.body)) if program.body else frozenset()

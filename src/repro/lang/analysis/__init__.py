"""Static analyses over the loop IR."""

from .arrays import (
    AccessSets,
    access_sets,
    arrays_touched,
    count_leaf_statements,
    program_arrays_used,
    refs_of_array,
    scalar_access_sets,
    stmt_read_refs,
    stmt_write_refs,
    top_level_access_sets,
)
from .dependence import Dependence, DependenceGraph, build_dependence_graph
from .distance import OffsetProfile, fused_distance, offset_profile
from .flops import StaticCounts, static_counts, static_flops
from .legality import (
    FusionConstraints,
    fusion_constraints,
    fusion_preventing_pairs,
    headers_conformable,
)
from .liveness import LiveRange, dead_after, live_ranges, local_arrays, unused_arrays

__all__ = [
    "AccessSets",
    "Dependence",
    "DependenceGraph",
    "FusionConstraints",
    "LiveRange",
    "OffsetProfile",
    "StaticCounts",
    "access_sets",
    "arrays_touched",
    "build_dependence_graph",
    "count_leaf_statements",
    "dead_after",
    "fused_distance",
    "fusion_constraints",
    "fusion_preventing_pairs",
    "headers_conformable",
    "live_ranges",
    "local_arrays",
    "offset_profile",
    "program_arrays_used",
    "refs_of_array",
    "scalar_access_sets",
    "static_counts",
    "static_flops",
    "stmt_read_refs",
    "stmt_write_refs",
    "top_level_access_sets",
    "unused_arrays",
]

"""Fusion legality: conformability and fusion-preventing constraints.

The paper's fusion graph has two edge kinds; this module computes both from
the IR:

* **dependence edges** — from :mod:`.dependence`;
* **fusion-preventing edges** — pairs of loops that may not share a
  partition: non-conformable headers, or a dependence whose fused distance
  would be negative (the consumer would run before the producer).

Only *top-level loops* participate; a top-level non-loop statement is
treated as an unfusable singleton.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..program import Program
from ..stmt import Loop
from .arrays import access_sets
from .dependence import DependenceGraph, build_dependence_graph
from .distance import fused_distance


@dataclass(frozen=True)
class FusionConstraints:
    """Everything a fusion-graph builder needs about one program."""

    n_nodes: int
    dependences: DependenceGraph
    fusion_preventing: frozenset[tuple[int, int]]
    node_arrays: tuple[frozenset[str], ...]

    def prevented(self, i: int, j: int) -> bool:
        a, b = (i, j) if i < j else (j, i)
        return (a, b) in self.fusion_preventing


def headers_conformable(a: Loop, b: Loop) -> bool:
    """Two loops can share a fused header iff bounds are identical affine
    functions (same trip count AND same index range, so subscript offsets
    keep their meaning)."""
    return a.lower == b.lower and a.upper == b.upper


def _nest_headers(loop: Loop) -> list[Loop]:
    """The perfect-nest chain of headers starting at ``loop``."""
    from ..stmt import perfect_nest

    return perfect_nest(loop)


def nests_conformable(a: Loop, b: Loop) -> bool:
    """Perfect nests are conformable when their header chains match level
    by level up to the shorter depth at level 0 (outer loops must match;
    deeper mismatch is handled by guard insertion in the fuser, but the
    outermost header must agree for one-level fusion)."""
    return headers_conformable(a, b)


def fusion_preventing_pairs(program: Program) -> frozenset[tuple[int, int]]:
    """Pairs (i, j), i<j, of top-level statements that must not be fused."""
    body = program.body
    deps = build_dependence_graph(program)
    dep_pairs = deps.pairs()
    prevented: set[tuple[int, int]] = set()
    for j in range(len(body)):
        for i in range(j):
            si, sj = body[i], body[j]
            if not isinstance(si, Loop) or not isinstance(sj, Loop):
                prevented.add((i, j))
                continue
            if not headers_conformable(si, sj):
                prevented.add((i, j))
                continue
            if (i, j) in dep_pairs:
                for e in deps.between(i, j):
                    if e.scalar:
                        # Reduction accumulators (every access in both loops
                        # is an `s = s + ...`-style update) may interleave:
                        # fusing reassociates the reduction, which compilers
                        # accept. Any other scalar flow/anti/output pattern
                        # prevents fusion.
                        if not all(
                            _is_reduction_scalar(si, name)
                            and _is_reduction_scalar(sj, name)
                            for name in e.variables
                        ):
                            prevented.add((i, j))
                        continue
                    for arr in e.variables:
                        d = fused_distance(si, sj, arr, si.var, sj.var)
                        if d is None:
                            # Unanalyzable subscripts: be conservative.
                            prevented.add((i, j))
                        elif d < 0:
                            prevented.add((i, j))
    return frozenset(prevented)


def _is_reduction_scalar(stmt: Loop, name: str) -> bool:
    """True when every access to scalar ``name`` inside ``stmt`` is an
    associative update (the scalar is read only inside statements that also
    write it: ``s = s + ...``)."""
    from ..expr import ScalarRef, scalar_refs
    from ..stmt import Assign

    for s in stmt.walk():
        if not isinstance(s, Assign):
            continue
        reads = any(r.name == name for r in scalar_refs(s.rhs))
        writes = isinstance(s.lhs, ScalarRef) and s.lhs.name == name
        if reads and not writes:
            return False
        if writes and not reads:
            # A plain overwrite is not a reduction update.
            return False
    return True


def fusion_constraints(program: Program) -> FusionConstraints:
    """Bundle dependences, preventing pairs, and per-node array sets."""
    deps = build_dependence_graph(program)
    prevented = fusion_preventing_pairs(program)
    node_arrays = tuple(access_sets(s).touched for s in program.body)
    return FusionConstraints(len(program.body), deps, prevented, node_arrays)

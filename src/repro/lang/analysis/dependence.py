"""Data dependences between top-level statements (loop nests).

The fusion graph of the paper has one node per loop and directed edges for
data dependences. At this granularity a dependence exists between top-level
statements ``s_i`` (earlier) and ``s_j`` (later) when they touch a common
array or scalar and at least one of the two accesses is a write:

* flow (true):  ``s_i`` writes X, ``s_j`` reads X
* anti:         ``s_i`` reads X,  ``s_j`` writes X
* output:       both write X

Scalar reductions (``sum += ...`` in two loops) produce flow+output
dependences through the scalar, which serialize the loops just as the
paper's Figure 4 shows for ``sum`` between loops 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..program import Program
from .arrays import access_sets, scalar_access_sets

KINDS = ("flow", "anti", "output")


@dataclass(frozen=True)
class Dependence:
    """A dependence from top-level statement ``src`` to later ``dst``."""

    src: int
    dst: int
    kind: str
    variables: frozenset[str]
    scalar: bool = False

    def __post_init__(self) -> None:
        assert self.kind in KINDS
        assert self.src < self.dst, "dependences point forward in program order"

    def __str__(self) -> str:
        what = "scalar" if self.scalar else "array"
        return f"{self.kind} dep {self.src}->{self.dst} via {what} {sorted(self.variables)}"


@dataclass(frozen=True)
class DependenceGraph:
    """All dependences of a program, with adjacency helpers."""

    n_nodes: int
    edges: tuple[Dependence, ...]

    def between(self, src: int, dst: int) -> list[Dependence]:
        return [e for e in self.edges if e.src == src and e.dst == dst]

    def predecessors(self, node: int) -> frozenset[int]:
        return frozenset(e.src for e in self.edges if e.dst == node)

    def successors(self, node: int) -> frozenset[int]:
        return frozenset(e.dst for e in self.edges if e.src == node)

    def pairs(self) -> frozenset[tuple[int, int]]:
        """Distinct (src, dst) pairs with at least one dependence."""
        return frozenset((e.src, e.dst) for e in self.edges)

    def transitive_pairs(self) -> frozenset[tuple[int, int]]:
        """Transitive closure of :meth:`pairs` (src precedes dst)."""
        reach: dict[int, set[int]] = {i: set() for i in range(self.n_nodes)}
        for src, dst in sorted(self.pairs(), reverse=True):
            reach[src].add(dst)
            reach[src] |= reach[dst]
        return frozenset((s, d) for s, targets in reach.items() for d in targets)

    def __iter__(self) -> Iterator[Dependence]:
        return iter(self.edges)

    def __len__(self) -> int:
        return len(self.edges)


def build_dependence_graph(program: Program) -> DependenceGraph:
    """Dependences among the top-level statements of ``program``."""
    body = program.body
    array_sets = [access_sets(s) for s in body]
    scalar_sets = [scalar_access_sets(s) for s in body]
    edges: list[Dependence] = []
    for j in range(len(body)):
        for i in range(j):
            for sets, is_scalar in ((array_sets, False), (scalar_sets, True)):
                a, b = sets[i], sets[j]
                flow = a.writes & b.reads
                anti = a.reads & b.writes
                output = a.writes & b.writes
                if flow:
                    edges.append(Dependence(i, j, "flow", frozenset(flow), is_scalar))
                if anti:
                    edges.append(Dependence(i, j, "anti", frozenset(anti), is_scalar))
                if output:
                    edges.append(Dependence(i, j, "output", frozenset(output), is_scalar))
    return DependenceGraph(len(body), tuple(edges))

"""Static flop and reference counting.

The exact, guard-aware counts come from the trace engine; these static
estimates ignore guards (they assume every leaf statement executes on every
iteration of its enclosing loops) and are used for quick what-if analysis
and as cross-checks in tests (on guard-free programs static == exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..expr import array_refs, flop_count
from ..program import Program
from ..stmt import Assign, ExternalRead, If, Loop, Stmt


@dataclass(frozen=True)
class StaticCounts:
    """Static per-program operation counts (guard-blind upper bound)."""

    flops: int
    array_loads: int
    array_stores: int

    @property
    def array_refs(self) -> int:
        return self.array_loads + self.array_stores

    def __add__(self, other: "StaticCounts") -> "StaticCounts":
        return StaticCounts(
            self.flops + other.flops,
            self.array_loads + other.array_loads,
            self.array_stores + other.array_stores,
        )

    def scaled(self, k: int) -> "StaticCounts":
        return StaticCounts(self.flops * k, self.array_loads * k, self.array_stores * k)


ZERO_COUNTS = StaticCounts(0, 0, 0)


def _leaf_counts(stmt: Stmt) -> StaticCounts:
    if isinstance(stmt, Assign):
        from ..expr import ArrayRef

        loads = len(array_refs(stmt.rhs))
        stores = 1 if isinstance(stmt.lhs, ArrayRef) else 0
        return StaticCounts(flop_count(stmt.rhs), loads, stores)
    if isinstance(stmt, ExternalRead):
        from ..expr import ArrayRef

        return StaticCounts(0, 0, 1 if isinstance(stmt.lhs, ArrayRef) else 0)
    raise TypeError(f"not a leaf statement: {type(stmt).__name__}")


def _count(stmt: Stmt, env: Mapping[str, int]) -> StaticCounts:
    if isinstance(stmt, (Assign, ExternalRead)):
        return _leaf_counts(stmt)
    if isinstance(stmt, If):
        # Guard-blind: count the larger branch (a cheap upper-ish bound that
        # is exact for the common one-armed guards covering most iterations).
        then = sum((_count(s, env) for s in stmt.then), ZERO_COUNTS)
        orelse = sum((_count(s, env) for s in stmt.orelse), ZERO_COUNTS)
        return then if then.flops + then.array_refs >= orelse.flops + orelse.array_refs else orelse
    if isinstance(stmt, Loop):
        # Trip count may depend on enclosing loop vars; evaluate bounds with
        # unbound loop vars treated via their midpoint is not possible
        # statically, so we require parameter-only bounds here.
        trip = stmt.trip_count(env)
        inner_env = dict(env)
        inner_env[stmt.var] = stmt.lower.evaluate(env)  # arbitrary binding for nested bounds
        body = sum((_count(s, inner_env) for s in stmt.body), ZERO_COUNTS)
        return body.scaled(trip)
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def static_counts(program: Program, overrides: Mapping[str, int] | None = None) -> StaticCounts:
    """Static flop/load/store counts for the whole program."""
    env = program.bind_params(overrides)
    return sum((_count(s, env) for s in program.body), ZERO_COUNTS)


def static_flops(program: Program, overrides: Mapping[str, int] | None = None) -> int:
    return static_counts(program, overrides).flops

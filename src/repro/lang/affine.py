"""Affine integer expressions over named symbols.

Loop bounds, array subscripts and guard conditions in the IR are affine
functions of loop variables and program parameters:

    ``3*i + j - 1``  is  ``Affine({"i": 3, "j": 1}, -1)``.

Affine expressions are immutable and hashable, support arithmetic,
substitution and vectorized evaluation over NumPy index grids, which is
what the trace engine uses to turn subscripts into address streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Union

import numpy as np

from ..errors import IRError

AffineLike = Union["Affine", int, str]


def _as_affine(value: AffineLike) -> "Affine":
    if isinstance(value, Affine):
        return value
    if isinstance(value, (int, np.integer)):
        return Affine({}, int(value))
    if isinstance(value, str):
        return Affine({value: 1}, 0)
    raise IRError(f"cannot interpret {value!r} as an affine expression")


@dataclass(frozen=True)
class Affine:
    """An affine combination ``sum(coeff * symbol) + const``.

    ``terms`` maps symbol name to integer coefficient; zero coefficients are
    dropped on construction so equal functions compare equal.
    """

    terms: Mapping[str, int] = field(default_factory=dict)
    const: int = 0

    def __post_init__(self) -> None:
        cleaned = {s: int(c) for s, c in self.terms.items() if int(c) != 0}
        object.__setattr__(self, "terms", cleaned)
        object.__setattr__(self, "const", int(self.const))

    # -- constructors ------------------------------------------------------
    @staticmethod
    def const_of(value: int) -> "Affine":
        return Affine({}, int(value))

    @staticmethod
    def var(name: str) -> "Affine":
        return Affine({name: 1}, 0)

    @staticmethod
    def of(value: AffineLike) -> "Affine":
        return _as_affine(value)

    # -- inspection --------------------------------------------------------
    @property
    def symbols(self) -> frozenset[str]:
        return frozenset(self.terms)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def constant_value(self) -> int:
        if not self.is_constant:
            raise IRError(f"{self} is not a constant")
        return self.const

    def coeff(self, symbol: str) -> int:
        return self.terms.get(symbol, 0)

    def depends_on(self, symbol: str) -> bool:
        return symbol in self.terms

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other: AffineLike) -> "Affine":
        o = _as_affine(other)
        terms = dict(self.terms)
        for s, c in o.terms.items():
            terms[s] = terms.get(s, 0) + c
        return Affine(terms, self.const + o.const)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine({s: -c for s, c in self.terms.items()}, -self.const)

    def __sub__(self, other: AffineLike) -> "Affine":
        return self + (-_as_affine(other))

    def __rsub__(self, other: AffineLike) -> "Affine":
        return _as_affine(other) + (-self)

    def __mul__(self, k: int) -> "Affine":
        if isinstance(k, Affine):
            if k.is_constant:
                k = k.const
            else:
                raise IRError("affine expressions support multiplication by constants only")
        k = int(k)
        return Affine({s: c * k for s, c in self.terms.items()}, self.const * k)

    __rmul__ = __mul__

    # -- evaluation --------------------------------------------------------
    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate with integer bindings for every symbol used."""
        total = self.const
        for s, c in self.terms.items():
            try:
                total += c * int(env[s])
            except KeyError as exc:
                raise IRError(f"unbound symbol {s!r} in {self}") from exc
        return total

    def evaluate_vec(self, env: Mapping[str, "np.ndarray | int"]) -> np.ndarray:
        """Evaluate over NumPy grids; broadcasting applies across symbols."""
        total: np.ndarray | int = self.const
        for s, c in self.terms.items():
            if s not in env:
                raise IRError(f"unbound symbol {s!r} in {self}")
            total = total + c * env[s]
        return np.asarray(total)

    def substitute(self, bindings: Mapping[str, AffineLike]) -> "Affine":
        """Replace symbols with affine expressions (e.g. rename loop vars)."""
        result = Affine.const_of(self.const)
        for s, c in self.terms.items():
            if s in bindings:
                result = result + _as_affine(bindings[s]) * c
            else:
                result = result + Affine({s: c}, 0)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Affine":
        return self.substitute({old: Affine.var(new) for old, new in mapping.items()})

    # -- rendering ---------------------------------------------------------
    def __str__(self) -> str:
        parts: list[str] = []
        for s in sorted(self.terms):
            c = self.terms[s]
            if not parts:
                if c == 1:
                    parts.append(s)
                elif c == -1:
                    parts.append(f"-{s}")
                else:
                    parts.append(f"{c}*{s}")
            else:
                sign = "+" if c > 0 else "-"
                mag = abs(c)
                parts.append(f" {sign} {s}" if mag == 1 else f" {sign} {mag}*{s}")
        if self.const or not parts:
            if not parts:
                parts.append(str(self.const))
            else:
                sign = "+" if self.const > 0 else "-"
                parts.append(f" {sign} {abs(self.const)}")
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Affine({self})"


def _affine_hash(self: Affine) -> int:
    return hash((tuple(sorted(self.terms.items())), self.const))


# The generated frozen-dataclass __hash__ would hash the terms dict (and
# fail); equality still compares the dicts, consistent with this hash.
Affine.__hash__ = _affine_hash  # type: ignore[method-assign]


_CMP_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}

_CMP_NEGATION = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


@dataclass(frozen=True)
class Cmp:
    """A comparison between two affine expressions, used in guards."""

    op: str
    lhs: Affine
    rhs: Affine

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise IRError(f"unknown comparison operator {self.op!r}")
        object.__setattr__(self, "lhs", Affine.of(self.lhs))
        object.__setattr__(self, "rhs", Affine.of(self.rhs))

    @property
    def symbols(self) -> frozenset[str]:
        return self.lhs.symbols | self.rhs.symbols

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return bool(_CMP_OPS[self.op](self.lhs.evaluate(env), self.rhs.evaluate(env)))

    def evaluate_vec(self, env: Mapping[str, "np.ndarray | int"]) -> np.ndarray:
        return _CMP_OPS[self.op](self.lhs.evaluate_vec(env), self.rhs.evaluate_vec(env))

    def negate(self) -> "Cmp":
        return Cmp(_CMP_NEGATION[self.op], self.lhs, self.rhs)

    def substitute(self, bindings: Mapping[str, AffineLike]) -> "Cmp":
        return Cmp(self.op, self.lhs.substitute(bindings), self.rhs.substitute(bindings))

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class And:
    """Conjunction of comparisons (the only connective guards need)."""

    parts: tuple[Cmp, ...]

    def __post_init__(self) -> None:
        flat: list[Cmp] = []
        for p in self.parts:
            if isinstance(p, And):  # pragma: no cover - defensive flattening
                flat.extend(p.parts)
            else:
                flat.append(p)
        object.__setattr__(self, "parts", tuple(flat))

    @property
    def symbols(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.symbols
        return out

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return all(p.evaluate(env) for p in self.parts)

    def evaluate_vec(self, env: Mapping[str, "np.ndarray | int"]) -> np.ndarray:
        result: np.ndarray | None = None
        for p in self.parts:
            mask = p.evaluate_vec(env)
            result = mask if result is None else (result & mask)
        if result is None:
            raise IRError("empty conjunction")
        return result

    def substitute(self, bindings: Mapping[str, AffineLike]) -> "And":
        return And(tuple(p.substitute(bindings) for p in self.parts))

    def __str__(self) -> str:
        return " and ".join(str(p) for p in self.parts)


Condition = Union[Cmp, And]


def conjoin(conds: Iterable[Condition]) -> Condition:
    """Combine conditions into a single guard condition."""
    flat: list[Cmp] = []
    for c in conds:
        if isinstance(c, And):
            flat.extend(c.parts)
        else:
            flat.append(c)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))

"""The ``Program`` container: declarations plus a top-level statement list.

A program in this IR corresponds to one of the paper's example codes: a set
of array and scalar declarations, integer parameters (``N``), and a sequence
of top-level loops/statements. Programs are immutable; transformations
produce new programs via :meth:`Program.with_body` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence

from ..errors import IRError
from .expr import ArrayRef
from .stmt import Assign, ExternalRead, If, Loop, Stmt
from .types import ArrayDecl, ScalarDecl


@dataclass(frozen=True)
class Program:
    """An IR program.

    Attributes:
        name: identifier used in reports.
        params: parameter name -> default value (e.g. ``{"N": 100000}``).
        arrays: array declarations, in declaration (= allocation) order.
        scalars: scalar declarations; scalars with ``output=True`` form the
            observable result together with arrays listed in ``outputs``.
        body: top-level statements.
        outputs: names of arrays whose final contents are observable
            (live-out). Scalars marked ``output`` are always observable.
    """

    name: str
    params: Mapping[str, int] = field(default_factory=dict)
    arrays: tuple[ArrayDecl, ...] = ()
    scalars: tuple[ScalarDecl, ...] = ()
    body: tuple[Stmt, ...] = ()
    outputs: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "scalars", tuple(self.scalars))
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "outputs", frozenset(self.outputs))
        self._check()

    # -- validation --------------------------------------------------------
    def _check(self) -> None:
        names: set[str] = set()
        for decl in list(self.arrays) + list(self.scalars):
            if decl.name in names:
                raise IRError(f"duplicate declaration of {decl.name!r}")
            names.add(decl.name)
        for p in self.params:
            if p in names:
                raise IRError(f"parameter {p!r} collides with a declaration")
        array_names = {a.name for a in self.arrays}
        scalar_names = {s.name for s in self.scalars}
        for out in self.outputs:
            if out not in array_names and out not in scalar_names:
                raise IRError(f"output {out!r} is not declared")
        self._check_stmts(self.body, set(self.params), array_names, scalar_names)

    def _check_stmts(
        self,
        stmts: Sequence[Stmt],
        bound: set[str],
        arrays: set[str],
        scalars: set[str],
    ) -> None:
        for s in stmts:
            if isinstance(s, Loop):
                for b in (s.lower, s.upper):
                    free = b.symbols - bound
                    if free:
                        raise IRError(f"unbound symbols {sorted(free)} in bounds of loop {s.var}")
                if s.var in bound:
                    raise IRError(f"loop variable {s.var!r} shadows an outer binding")
                self._check_stmts(s.body, bound | {s.var}, arrays, scalars)
            elif isinstance(s, If):
                free = s.cond.symbols - bound
                if free:
                    raise IRError(f"unbound symbols {sorted(free)} in guard {s.cond}")
                self._check_stmts(s.then, bound, arrays, scalars)
                self._check_stmts(s.orelse, bound, arrays, scalars)
            elif isinstance(s, (Assign, ExternalRead)):
                self._check_leaf(s, bound, arrays, scalars)
            else:
                raise IRError(f"unknown statement type {type(s).__name__}")

    def _check_leaf(
        self, s: Stmt, bound: set[str], arrays: set[str], scalars: set[str]
    ) -> None:
        from .expr import array_refs, scalar_refs

        refs: list[ArrayRef] = []
        if isinstance(s, Assign):
            refs.extend(array_refs(s.rhs))
            for sref in scalar_refs(s.rhs):
                if sref.name not in scalars:
                    raise IRError(f"undeclared scalar {sref.name!r}")
            if isinstance(s.lhs, ArrayRef):
                refs.append(s.lhs)
            elif s.lhs.name not in scalars:
                raise IRError(f"undeclared scalar {s.lhs.name!r}")
            from .expr import IndexValue

            for node in s.rhs.walk():
                if isinstance(node, IndexValue):
                    free = node.affine.symbols - bound
                    if free:
                        raise IRError(f"unbound symbols {sorted(free)} in {node}")
        else:
            assert isinstance(s, ExternalRead)
            if isinstance(s.lhs, ArrayRef):
                refs.append(s.lhs)
            elif s.lhs.name not in scalars:
                raise IRError(f"undeclared scalar {s.lhs.name!r}")
        decl_by_name = {a.name: a for a in self.arrays}
        for ref in refs:
            if ref.array not in arrays:
                raise IRError(f"undeclared array {ref.array!r}")
            decl = decl_by_name[ref.array]
            if decl.rank != ref.rank:
                raise IRError(
                    f"array {ref.array!r} has rank {decl.rank} but is referenced "
                    f"with {ref.rank} subscripts"
                )
            for sub in ref.index:
                free = sub.symbols - bound
                if free:
                    raise IRError(f"unbound symbols {sorted(free)} in {ref}")

    # -- lookups -----------------------------------------------------------
    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise IRError(f"no array named {name!r}")

    def scalar(self, name: str) -> ScalarDecl:
        for s in self.scalars:
            if s.name == name:
                return s
        raise IRError(f"no scalar named {name!r}")

    def has_array(self, name: str) -> bool:
        return any(a.name == name for a in self.arrays)

    @property
    def array_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.arrays)

    @property
    def output_scalars(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.scalars if s.output or s.name in self.outputs)

    @property
    def output_arrays(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.arrays if a.name in self.outputs)

    def bind_params(self, overrides: Mapping[str, int] | None = None) -> dict[str, int]:
        """Concrete parameter values: defaults updated by ``overrides``."""
        env = dict(self.params)
        if overrides:
            for k, v in overrides.items():
                if k not in env:
                    raise IRError(f"unknown parameter {k!r} for program {self.name!r}")
                env[k] = int(v)
        return env

    # -- traversal ---------------------------------------------------------
    def walk(self) -> Iterator[Stmt]:
        for s in self.body:
            yield from s.walk()

    def top_level_loops(self) -> tuple[Loop, ...]:
        return tuple(s for s in self.body if isinstance(s, Loop))

    def data_bytes(self, overrides: Mapping[str, int] | None = None) -> int:
        """Total declared array footprint in bytes."""
        env = self.bind_params(overrides)
        return sum(a.size_bytes(env) for a in self.arrays)

    # -- derivation --------------------------------------------------------
    def with_body(self, body: Sequence[Stmt], name: str | None = None) -> "Program":
        return replace(self, body=tuple(body), name=name or self.name)

    def with_name(self, name: str) -> "Program":
        return replace(self, name=name)

    def with_arrays(self, arrays: Sequence[ArrayDecl]) -> "Program":
        return replace(self, arrays=tuple(arrays))

    def with_scalars(self, scalars: Sequence[ScalarDecl]) -> "Program":
        return replace(self, scalars=tuple(scalars))

    def with_outputs(self, outputs: Sequence[str]) -> "Program":
        return replace(self, outputs=frozenset(outputs))

    def adding_array(self, decl: ArrayDecl) -> "Program":
        return replace(self, arrays=self.arrays + (decl,))

    def adding_scalar(self, decl: ScalarDecl) -> "Program":
        return replace(self, scalars=self.scalars + (decl,))

    def dropping_arrays(self, names: set[str]) -> "Program":
        return replace(self, arrays=tuple(a for a in self.arrays if a.name not in names))

    def __str__(self) -> str:
        from .printer import render

        return render(self)

"""Expression AST for the loop IR.

Expressions are immutable trees of constants, scalar references, loop-index
values, array references with affine subscripts, binary/unary arithmetic and
intrinsic calls. The flop cost of every node kind is defined here so that
static analysis and the trace engine agree on what counts as a flop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Union

import numpy as np

from ..errors import IRError
from .affine import Affine, AffineLike

#: Binary operators and their NumPy implementations.
BINOPS: dict[str, Callable] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "min": np.minimum,
    "max": np.maximum,
}

#: Unary operators.
UNOPS: dict[str, Callable] = {
    "-": np.negative,
    "abs": np.abs,
}

#: Intrinsic functions: name -> (numpy impl, flop cost).
#: ``f``/``g`` are the paper's opaque element functions (Figure 6); we give
#: them cheap concrete semantics so transformed programs can be verified.
INTRINSICS: dict[str, tuple[Callable, int]] = {
    "sqrt": (np.sqrt, 1),
    "sin": (np.sin, 1),
    "cos": (np.cos, 1),
    "exp": (np.exp, 1),
    "log": (np.log, 1),
    "f": (lambda x, y: 0.5 * x + 0.25 * y, 3),
    "g": (lambda x, y: x - 0.125 * y, 2),
}


class Expr:
    """Base class for expressions. Subclasses are frozen dataclasses."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()

    # Operator sugar so tests and examples can write expressions naturally.
    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "UnaryOp":
        return UnaryOp("-", self)


ExprLike = Union[Expr, int, float]


def as_expr(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Const(float(value))
    raise IRError(f"cannot interpret {value!r} as an expression")


@dataclass(frozen=True)
class Const(Expr):
    """A floating-point literal."""

    value: float

    def __str__(self) -> str:
        v = self.value
        return str(int(v)) if v == int(v) else repr(v)


@dataclass(frozen=True)
class ScalarRef(Expr):
    """Reference to a declared scalar variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IndexValue(Expr):
    """An affine function of loop variables/parameters used as a float value
    (e.g. initializing ``a[i] = i + 1``)."""

    affine: Affine

    def __post_init__(self) -> None:
        object.__setattr__(self, "affine", Affine.of(self.affine))

    def __str__(self) -> str:
        return f"({self.affine})"


@dataclass(frozen=True)
class ArrayRef(Expr):
    """A subscripted array reference ``name[sub0, sub1, ...]``."""

    array: str
    index: tuple[Affine, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "index", tuple(Affine.of(s) for s in self.index))
        if not self.index:
            raise IRError(f"array reference {self.array!r} has no subscripts")

    @property
    def rank(self) -> int:
        return len(self.index)

    def substitute(self, bindings: Mapping[str, AffineLike]) -> "ArrayRef":
        return ArrayRef(self.array, tuple(s.substitute(bindings) for s in self.index))

    def __str__(self) -> str:
        return f"{self.array}[{', '.join(str(s) for s in self.index)}]"


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in BINOPS:
            raise IRError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.lhs}, {self.rhs})"
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNOPS:
            raise IRError(f"unknown unary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        if self.op == "-":
            return f"(-{self.operand})"
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic function call."""

    func: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.func not in INTRINSICS:
            raise IRError(f"unknown intrinsic {self.func!r}")
        object.__setattr__(self, "args", tuple(self.args))
        impl, _ = INTRINSICS[self.func]
        want = impl.__code__.co_argcount if hasattr(impl, "__code__") else None
        if want is not None and want != len(self.args):
            raise IRError(
                f"intrinsic {self.func!r} expects {want} args, got {len(self.args)}"
            )

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


# ---------------------------------------------------------------------------
# Expression utilities used across analyses and transforms.
# ---------------------------------------------------------------------------

def array_refs(expr: Expr) -> list[ArrayRef]:
    """All array references in ``expr``, left-to-right evaluation order."""
    return [node for node in expr.walk() if isinstance(node, ArrayRef)]


def scalar_refs(expr: Expr) -> list[ScalarRef]:
    return [node for node in expr.walk() if isinstance(node, ScalarRef)]


def flop_count(expr: Expr) -> int:
    """Static number of floating-point operations to evaluate ``expr`` once."""
    total = 0
    for node in expr.walk():
        if isinstance(node, BinOp):
            total += 1
        elif isinstance(node, UnaryOp):
            total += 1
        elif isinstance(node, Call):
            total += INTRINSICS[node.func][1]
    return total


def substitute_expr(expr: Expr, bindings: Mapping[str, AffineLike]) -> Expr:
    """Rewrite every affine occurrence of the bound symbols in ``expr``."""
    if isinstance(expr, ArrayRef):
        return expr.substitute(bindings)
    if isinstance(expr, IndexValue):
        return IndexValue(expr.affine.substitute(bindings))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute_expr(expr.lhs, bindings), substitute_expr(expr.rhs, bindings))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, substitute_expr(expr.operand, bindings))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(substitute_expr(a, bindings) for a in expr.args))
    return expr


def replace_refs(expr: Expr, mapping: Mapping[ArrayRef, Expr]) -> Expr:
    """Replace exact array references with other expressions (bottom-up)."""
    if isinstance(expr, ArrayRef):
        return mapping.get(expr, expr)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, replace_refs(expr.lhs, mapping), replace_refs(expr.rhs, mapping))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, replace_refs(expr.operand, mapping))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(replace_refs(a, mapping) for a in expr.args))
    return expr


def replace_array(expr: Expr, transform: Callable[[ArrayRef], Expr]) -> Expr:
    """Apply ``transform`` to every array reference in ``expr``."""
    if isinstance(expr, ArrayRef):
        return transform(expr)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, replace_array(expr.lhs, transform), replace_array(expr.rhs, transform))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, replace_array(expr.operand, transform))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(replace_array(a, transform) for a in expr.args))
    return expr

"""Parser for the textual mini-language.

The grammar matches :func:`repro.lang.printer.render` output::

    program NAME(P=INT, ...)
    array NAME[affine, ...] [dtype] [out]
    scalar NAME [= NUMBER] [out]

    for v = lo, hi { ... }
    if affine OP affine [and ...] { ... } [else { ... }]
    lvalue = expr
    read(a[i, j])

Expressions use ``+ - * /``, parentheses, intrinsic calls (``f(x, y)``,
``sqrt(x)``, ``min(a, b)``) and ``idx(affine)`` for loop-index values.
"""

from __future__ import annotations

import re
from typing import NoReturn

from ..errors import ParseError
from .affine import Affine, And, Cmp, Condition
from .expr import (
    INTRINSICS,
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    IndexValue,
    ScalarRef,
    UnaryOp,
)
from .program import Program
from .stmt import Assign, ExternalRead, If, Loop, Stmt
from .types import ArrayDecl, DType, ScalarDecl

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<number>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|[-+*/<>=(),\[\]{}])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"program", "array", "scalar", "for", "if", "else", "read", "out", "and", "idx"}
_DTYPES = {"float64": DType.FLOAT64, "float32": DType.FLOAT32, "int64": DType.INT64}


class _Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind: str, text: str, line: int, col: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    line, col, pos = 1, 1, 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line, col)
        kind = m.lastgroup
        text = m.group()
        if kind == "newline":
            line += 1
            col = 1
        elif kind in ("ws", "comment"):
            col += len(text)
        else:
            if kind == "ident" and text in _KEYWORDS:
                kind = text
            tokens.append(_Token(kind, text, line, col))
            col += len(text)
        pos = m.end()
    tokens.append(_Token("eof", "", line, col))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> _Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            self.fail(f"expected {want!r}, found {tok.text!r}")
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def fail(self, message: str) -> NoReturn:
        tok = self.peek()
        raise ParseError(message, tok.line, tok.col)

    # -- grammar -----------------------------------------------------------
    def parse_program(self) -> Program:
        self.expect("program")
        name = self.expect("ident").text
        params: dict[str, int] = {}
        self.expect("op", "(")
        if not self.accept("op", ")"):
            while True:
                pname = self.expect("ident").text
                self.expect("op", "=")
                neg = bool(self.accept("op", "-"))
                value = int(self.expect("number").text)
                params[pname] = -value if neg else value
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        arrays: list[ArrayDecl] = []
        scalars: list[ScalarDecl] = []
        outputs: set[str] = set()
        while self.peek().kind in ("array", "scalar"):
            if self.accept("array"):
                aname = self.expect("ident").text
                self.expect("op", "[")
                shape = [self.parse_affine()]
                while self.accept("op", ","):
                    shape.append(self.parse_affine())
                self.expect("op", "]")
                dtype = DType.FLOAT64
                tok = self.peek()
                if tok.kind == "ident" and tok.text in _DTYPES:
                    dtype = _DTYPES[self.advance().text]
                if self.accept("out"):
                    outputs.add(aname)
                arrays.append(ArrayDecl(aname, tuple(shape), dtype))
            else:
                self.expect("scalar")
                sname = self.expect("ident").text
                initial = 0.0
                if self.accept("op", "="):
                    neg = bool(self.accept("op", "-"))
                    initial = float(self.expect("number").text)
                    if neg:
                        initial = -initial
                is_out = bool(self.accept("out"))
                scalars.append(ScalarDecl(sname, DType.FLOAT64, is_out, initial))
        body: list[Stmt] = []
        while self.peek().kind != "eof":
            body.append(self.parse_stmt())
        return Program(name, params, tuple(arrays), tuple(scalars), tuple(body), frozenset(outputs))

    def parse_stmt(self) -> Stmt:
        tok = self.peek()
        if tok.kind == "for":
            return self.parse_for()
        if tok.kind == "if":
            return self.parse_if()
        if tok.kind == "read":
            self.advance()
            self.expect("op", "(")
            name = self.expect("ident").text
            if self.peek().text == "[":
                ref: ArrayRef | ScalarRef = self.parse_array_ref(name)
            else:
                ref = ScalarRef(name)
            self.expect("op", ")")
            return ExternalRead(ref)
        if tok.kind == "ident":
            name = self.advance().text
            if self.peek().text == "[":
                lhs: ArrayRef | ScalarRef = self.parse_array_ref(name)
            else:
                lhs = ScalarRef(name)
            self.expect("op", "=")
            rhs = self.parse_expr()
            return Assign(lhs, rhs)
        self.fail(f"expected a statement, found {tok.text!r}")

    def parse_for(self) -> Loop:
        self.expect("for")
        var = self.expect("ident").text
        self.expect("op", "=")
        lower = self.parse_affine()
        self.expect("op", ",")
        upper = self.parse_affine()
        body = self.parse_block()
        return Loop(var, lower, upper, tuple(body))

    def parse_if(self) -> If:
        self.expect("if")
        cond = self.parse_condition()
        then = self.parse_block()
        orelse: list[Stmt] = []
        if self.accept("else"):
            orelse = self.parse_block()
        return If(cond, tuple(then), tuple(orelse))

    def parse_block(self) -> list[Stmt]:
        self.expect("op", "{")
        body: list[Stmt] = []
        while not self.accept("op", "}"):
            if self.peek().kind == "eof":
                self.fail("unterminated block")
            body.append(self.parse_stmt())
        return body

    def parse_condition(self) -> Condition:
        parts = [self.parse_cmp()]
        while self.accept("and"):
            parts.append(self.parse_cmp())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def parse_cmp(self) -> Cmp:
        lhs = self.parse_affine()
        tok = self.peek()
        if tok.kind != "op" or tok.text not in ("<", "<=", ">", ">=", "==", "!="):
            self.fail(f"expected comparison operator, found {tok.text!r}")
        op = self.advance().text
        rhs = self.parse_affine()
        return Cmp(op, lhs, rhs)

    # -- affine expressions (bounds, subscripts, guards) --------------------
    def parse_affine(self) -> Affine:
        result = self.parse_affine_term(negate=bool(self.accept("op", "-")))
        while True:
            if self.accept("op", "+"):
                result = result + self.parse_affine_term(False)
            elif self.peek().text == "-" and self.peek().kind == "op":
                self.advance()
                result = result + self.parse_affine_term(True)
            else:
                return result

    def parse_affine_term(self, negate: bool) -> Affine:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            if "." in tok.text or "e" in tok.text or "E" in tok.text:
                self.fail("affine expressions must be integral")
            value = int(tok.text)
            if self.accept("op", "*"):
                sym = self.expect("ident").text
                term = Affine({sym: value}, 0)
            else:
                term = Affine({}, value)
        elif tok.kind == "ident":
            self.advance()
            term = Affine({tok.text: 1}, 0)
        else:
            self.fail(f"expected affine term, found {tok.text!r}")
        return -term if negate else term

    # -- value expressions ---------------------------------------------------
    def parse_expr(self) -> Expr:
        lhs = self.parse_term()
        while True:
            if self.accept("op", "+"):
                lhs = BinOp("+", lhs, self.parse_term())
            elif self.accept("op", "-"):
                lhs = BinOp("-", lhs, self.parse_term())
            else:
                return lhs

    def parse_term(self) -> Expr:
        lhs = self.parse_factor()
        while True:
            if self.accept("op", "*"):
                lhs = BinOp("*", lhs, self.parse_factor())
            elif self.accept("op", "/"):
                lhs = BinOp("/", lhs, self.parse_factor())
            else:
                return lhs

    def parse_factor(self) -> Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text == "-":
            self.advance()
            return UnaryOp("-", self.parse_factor())
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        if tok.kind == "number":
            self.advance()
            return Const(float(tok.text))
        if tok.kind == "idx":
            self.advance()
            self.expect("op", "(")
            aff = self.parse_affine()
            self.expect("op", ")")
            return IndexValue(aff)
        if tok.kind == "ident":
            name = self.advance().text
            nxt = self.peek()
            if nxt.text == "[":
                return self.parse_array_ref(name)
            if nxt.text == "(":
                self.advance()
                args = [self.parse_expr()]
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                self.expect("op", ")")
                if name in ("min", "max"):
                    if len(args) != 2:
                        self.fail(f"{name} takes exactly two arguments")
                    return BinOp(name, args[0], args[1])
                if name == "abs":
                    if len(args) != 1:
                        self.fail("abs takes exactly one argument")
                    return UnaryOp("abs", args[0])
                if name not in INTRINSICS:
                    self.fail(f"unknown function {name!r}")
                return Call(name, tuple(args))
            return ScalarRef(name)
        self.fail(f"expected an expression, found {tok.text!r}")

    def parse_array_ref(self, name: str) -> ArrayRef:
        self.expect("op", "[")
        subs = [self.parse_affine()]
        while self.accept("op", ","):
            subs.append(self.parse_affine())
        self.expect("op", "]")
        return ArrayRef(name, tuple(subs))


def parse(source: str) -> Program:
    """Parse mini-language source text into a :class:`Program`."""
    return _Parser(source).parse_program()

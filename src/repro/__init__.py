"""Reproduction of Ding & Kennedy, "The Memory Bandwidth Bottleneck and
its Amelioration by a Compiler" (IPPS 2000).

The stable entry points live in :mod:`repro.api` and are re-exported
here lazily (PEP 562), so ``import repro`` stays cheap::

    import repro

    report = repro.measure_balance(program, machine)
    sim = repro.simulate(program, machine)
    opt = repro.optimize(program, machine)
    results = repro.run_experiments(["fig1", "fig3"], jobs=4)

Deeper modules (``repro.lang``, ``repro.machine``, ``repro.transforms``,
``repro.experiments``, ...) remain importable directly but are not part
of the stable surface.
"""

from __future__ import annotations

from typing import Any

__version__ = "0.2.0"

#: Names re-exported lazily from :mod:`repro.api`.
_API_EXPORTS = (
    "BalanceReport",
    "ExperimentConfig",
    "ExperimentResult",
    "OptimizationReport",
    "SimRequest",
    "SimulationResult",
    "measure_balance",
    "optimize",
    "predict",
    "run_experiment",
    "run_experiments",
    "serve_session",
    "simulate",
    "simulate_batch",
    "simulate_stream",
    "submit",
)

__all__ = ["__version__", "api", *_API_EXPORTS]


def __getattr__(name: str) -> Any:
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))

"""Loop interchange: permute the headers of a perfect nest.

Used to build the paper's matrix-multiply variants (``mm(-O2)`` is the
``jki`` order) and as a building block for tiling. Bounds must be
rectangular (parameter-affine), so any permutation yields a well-formed
nest; *semantic* legality (no dependence reversal) is the caller's
responsibility and is re-checked by the pipeline's interpreter oracle —
the classic fully-permutable cases (matmul, stencils without carried
dependences in the permuted dims) all pass.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import TransformError
from ..lang.program import Program
from ..lang.stmt import Loop, Stmt, perfect_nest


def permute_nest(
    program: Program,
    top_index: int,
    order: Sequence[str],
    name: str | None = None,
) -> Program:
    """Reorder the perfect nest at top-level position ``top_index`` so its
    loop variables appear (outermost first) in ``order``."""
    stmt = program.body[top_index]
    if not isinstance(stmt, Loop):
        raise TransformError(f"statement {top_index} is not a loop")
    chain = perfect_nest(stmt)
    by_var = {loop.var: loop for loop in chain}
    if sorted(order) != sorted(by_var):
        raise TransformError(
            f"order {list(order)} does not match nest variables {sorted(by_var)}"
        )
    for loop in chain:
        loose = (loop.lower.symbols | loop.upper.symbols) - set(program.params)
        if loose:
            raise TransformError(
                f"loop {loop.var} has non-rectangular bounds ({sorted(loose)}); "
                "cannot permute"
            )
    innermost_body = chain[-1].body
    nest: Loop | None = None
    for var in reversed(order):
        template = by_var[var]
        body: tuple[Stmt, ...] = innermost_body if nest is None else (nest,)
        nest = Loop(var, template.lower, template.upper, body)
    assert nest is not None
    body = list(program.body)
    body[top_index] = nest
    return program.with_body(body, name=name or f"{program.name}_{''.join(order)}")

"""Store elimination (paper §3.3, Figures 7 & 8).

After fusion, an array whose values are fully consumed inside the loop that
produces them — and that is dead afterwards — no longer needs its values
written back to memory. The transformation rewrites

    res[i] = res[i] + data[i]        t = res[i] + data[i]
    sum = sum + res[i]         into  sum = sum + t

removing the store entirely. Reads of the array's *old* (pre-loop) values
remain as memory reads — store elimination changes only writeback traffic,
never read behaviour, which is precisely why it helps only when bandwidth
(not latency) is the bottleneck.

Legality (per candidate array X, per top-level loop L):

* X is not a program output and no later top-level statement reads X;
* inside L, X is written by exactly one assignment per block position, and
  every read of X that follows a write (in the same straight-line block)
  uses a subscript the pending write covers exactly;
* no read of X in a *different* block follows the write (a read in a
  nested/sibling scope would need the memory value we no longer store).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import TransformError
from ..lang.analysis.liveness import dead_after
from ..lang.expr import ArrayRef, Expr, ScalarRef, replace_array
from ..lang.program import Program
from ..lang.stmt import Assign, ExternalRead, If, Loop, Stmt
from ..lang.types import ScalarDecl


@dataclass
class _Rewriter:
    """Rewrites one candidate array inside one loop body."""

    array: str
    fresh_base: str
    counter: int = 0
    new_scalars: list[str] | None = None
    eliminated: int = 0

    def __post_init__(self) -> None:
        self.new_scalars = []

    def fresh(self) -> str:
        name = f"{self.fresh_base}{self.counter}"
        self.counter += 1
        self.new_scalars.append(name)
        return name

    def rewrite_block(
        self, stmts: Sequence[Stmt], scope_vars: tuple[str, ...] = ()
    ) -> list[Stmt]:
        """Rewrite one straight-line block; pending maps subscripts of
        eliminated stores to their replacement scalars. ``scope_vars`` are
        the loop variables enclosing this block."""
        pending: dict[tuple, str] = {}
        poisoned = False
        out: list[Stmt] = []
        for s in stmts:
            if poisoned and self._reads_array(s):
                raise TransformError(
                    f"read of {self.array} follows a store eliminated in a "
                    "nested scope; cannot eliminate"
                )
            s = self._substitute_reads(s, pending)
            if (
                isinstance(s, Assign)
                and isinstance(s.lhs, ArrayRef)
                and s.lhs.array == self.array
            ):
                # The element-written-once argument (a read before the write
                # sees the array's ORIGINAL memory value) requires the
                # subscript to involve every enclosing loop variable; a
                # subscript missing one (e.g. buf[i] inside a j-loop) is
                # overwritten across iterations and its loop-carried reads
                # would lose their values with the store gone.
                for var in scope_vars:
                    if not any(sub.depends_on(var) for sub in s.lhs.index):
                        raise TransformError(
                            f"store {s.lhs} does not index loop variable "
                            f"{var!r}; values are loop-carried and cannot "
                            "be eliminated"
                        )
                tmp = self.fresh()
                pending[s.lhs.index] = tmp
                out.append(Assign(ScalarRef(tmp), s.rhs))
                self.eliminated += 1
            elif isinstance(s, Loop):
                if pending and self._reads_array(s):
                    raise TransformError(
                        f"store to {self.array} is read in a nested scope; "
                        "cannot eliminate"
                    )
                before = self.eliminated
                inner = self.rewrite_block(s.body, scope_vars + (s.var,))
                out.append(s.with_body(inner))
                if self.eliminated > before:
                    # Values produced inside the nested loop now live only in
                    # its per-iteration scalars; later reads here are stale.
                    poisoned = True
            elif isinstance(s, If):
                if pending and self._reads_array(s):
                    raise TransformError(
                        f"store to {self.array} is read under a guard after the "
                        "write; cannot eliminate"
                    )
                before = self.eliminated
                out.append(
                    If(
                        s.cond,
                        tuple(self.rewrite_block(s.then, scope_vars)),
                        tuple(self.rewrite_block(s.orelse, scope_vars)),
                    )
                )
                if self.eliminated > before:
                    poisoned = True
            else:
                out.append(s)
        return out

    def _reads_array(self, s: Stmt) -> bool:
        from ..lang.analysis.arrays import access_sets

        return self.array in access_sets(s).reads

    def _substitute_reads(self, s: Stmt, pending: dict[tuple, str]) -> Stmt:
        if not pending or not isinstance(s, Assign):
            self._check_uncovered(s, pending)
            return s

        array = self.array

        def transform(ref: ArrayRef) -> Expr:
            if ref.array != array:
                return ref
            if ref.index in pending:
                return ScalarRef(pending[ref.index])
            raise TransformError(
                f"read {ref} follows an eliminated store with a different "
                "subscript; cannot eliminate"
            )

        return Assign(s.lhs if not isinstance(s.lhs, ArrayRef) else s.lhs, replace_array(s.rhs, transform))

    def _check_uncovered(self, s: Stmt, pending: dict[tuple, str]) -> None:
        # Before any store has been seen (pending empty), reads of the old
        # values are legal memory reads; nothing to do.
        return None


def eliminate_stores(
    program: Program,
    arrays: Sequence[str] | None = None,
    name: str | None = None,
) -> Program:
    """Eliminate writebacks to every eligible array (or to ``arrays``).

    Returns the rewritten program; raises :class:`TransformError` when an
    explicitly requested array is not eligible. Arrays discovered
    automatically are skipped silently when ineligible.
    """
    explicit = arrays is not None
    candidates = list(arrays) if arrays is not None else [a.name for a in program.arrays]
    body = list(program.body)
    new_scalars: list[ScalarDecl] = []
    changed = False

    for cand in candidates:
        if cand in program.outputs:
            if explicit:
                raise TransformError(f"{cand} is a program output; stores are live")
            continue
        for idx, stmt in enumerate(body):
            if not isinstance(stmt, Loop):
                continue
            from ..lang.analysis.arrays import access_sets

            sets = access_sets(stmt)
            if cand not in sets.writes:
                continue
            if any(
                isinstance(w, ExternalRead)
                and isinstance(w.lhs, ArrayRef)
                and w.lhs.array == cand
                for w in stmt.walk()
            ):
                # read() stores deposit external input; they cannot move to a
                # scalar in this IR, so arrays filled by read() keep stores.
                if explicit:
                    raise TransformError(f"{cand} is written by read(); cannot eliminate")
                continue
            # Liveness over the *current* body (with scalars added so far).
            from dataclasses import replace as _replace

            trial = _replace(
                program,
                body=tuple(body),
                scalars=tuple(program.scalars) + tuple(new_scalars),
            )
            if not dead_after(trial, cand, idx):
                if explicit:
                    raise TransformError(f"{cand} is read after statement {idx}; stores are live")
                continue
            rewriter = _Rewriter(cand, f"_{cand}_{idx}v")
            try:
                new_body_stmts = rewriter.rewrite_block(stmt.body, (stmt.var,))
            except TransformError:
                if explicit:
                    raise
                continue
            if rewriter.eliminated == 0:
                continue
            body[idx] = stmt.with_body(new_body_stmts)
            new_scalars.extend(ScalarDecl(n) for n in rewriter.new_scalars)
            changed = True

    if not changed:
        if explicit:
            raise TransformError(f"no stores eliminated for {candidates}")
        return program

    from dataclasses import replace

    return replace(
        program,
        name=name or f"{program.name}_se",
        body=tuple(body),
        scalars=tuple(program.scalars) + tuple(new_scalars),
    )

"""Compiler transformations (paper section 3) and classical baselines."""

from .contraction import contract_arrays, contractible_arrays
from .interchange import permute_nest
from .normalize import normalize_guard_contexts
from .peeling import peel_array
from .regrouping import regroup_arrays, regroupable_sets
from .pipeline import PipelineResult, PipelineStage, optimize
from .scalar_replacement import replace_scalars
from .shrinking import shrink_array, shrinkable_arrays
from .store_elim import eliminate_stores
from .tiling import tile_nest
from .verify import is_equivalent, verify_equivalent

__all__ = [
    "PipelineResult",
    "PipelineStage",
    "contract_arrays",
    "contractible_arrays",
    "eliminate_stores",
    "is_equivalent",
    "normalize_guard_contexts",
    "optimize",
    "peel_array",
    "regroup_arrays",
    "regroupable_sets",
    "permute_nest",
    "replace_scalars",
    "shrink_array",
    "shrinkable_arrays",
    "tile_nest",
    "verify_equivalent",
]

"""Semantic-equivalence verification of transformed programs.

Every transformation in this package is checked against the reference
interpreter: the original and transformed programs run on identical inputs
(same positional read() stream, same per-array-name initial contents) and
must produce identical observables — the output scalars and output arrays.

This oracle is what lets the storage transforms be *optimistic*: a rewrite
whose static legality analysis is approximate is still only ever accepted
after the oracle passes on multiple problem sizes and input seeds.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import VerificationError
from ..interp.evaluator import evaluate
from ..lang.program import Program

#: Default problem sizes used for verification (overridable per call).
DEFAULT_SIZES: tuple[int, ...] = (4, 7, 16)
DEFAULT_SEEDS: tuple[int, ...] = (20001, 4242)


def verify_equivalent(
    original: Program,
    transformed: Program,
    param: str | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    params_list: Sequence[Mapping[str, int]] | None = None,
    rtol: float = 1e-9,
) -> None:
    """Raise :class:`VerificationError` unless the two programs agree.

    By default the first program parameter is swept over ``sizes``; pass
    ``params_list`` for multi-parameter programs.
    """
    if set(original.output_scalars) != set(transformed.output_scalars):
        raise VerificationError(
            f"{transformed.name}: output scalars changed "
            f"({sorted(original.output_scalars)} -> {sorted(transformed.output_scalars)})"
        )
    missing = set(original.output_arrays) - set(transformed.output_arrays)
    if missing:
        raise VerificationError(
            f"{transformed.name}: output arrays {sorted(missing)} disappeared"
        )

    if params_list is None:
        if param is None:
            param = next(iter(original.params), None)
        if param is None:
            params_list = [dict()]
        else:
            params_list = [{param: n} for n in sizes]

    for params in params_list:
        for seed in seeds:
            try:
                ref = evaluate(original, params, input_seed=seed)
                got = evaluate(transformed, params, input_seed=seed)
            except Exception as exc:  # surface interpreter failures as verification
                raise VerificationError(
                    f"{transformed.name}: run failed at {params}: {exc}"
                ) from exc
            for name in original.output_scalars:
                a, b = ref.scalars[name], got.scalars[name]
                if not _close(a, b, rtol):
                    raise VerificationError(
                        f"{transformed.name}: scalar {name} mismatch at {params} "
                        f"(seed {seed}): {a!r} vs {b!r}"
                    )
            for name in original.output_arrays:
                import numpy as np

                a_arr, b_arr = ref.arrays[name], got.arrays[name]
                if a_arr.shape != b_arr.shape or not np.allclose(a_arr, b_arr, rtol=rtol):
                    raise VerificationError(
                        f"{transformed.name}: array {name} mismatch at {params} "
                        f"(seed {seed})"
                    )


def _close(a: float, b: float, rtol: float) -> bool:
    return abs(a - b) <= rtol * max(1.0, abs(a), abs(b))


def is_equivalent(original: Program, transformed: Program, **kwargs) -> bool:
    """Boolean form of :func:`verify_equivalent`."""
    try:
        verify_equivalent(original, transformed, **kwargs)
        return True
    except VerificationError:
        return False

"""Loop tiling (blocking) — Carr & Kennedy's computation blocking.

The paper attributes mm(-O3)'s tiny memory balance (0.04 B/flop vs 5.9 at
-O2) to "advanced computation blocking, first developed by Carr and
Kennedy"; this transformation reproduces it: selected loops of a perfect
nest are strip-mined into a tile loop and an element loop, and the tile
loops are hoisted outermost (in a caller-chosen order), so each tile's
working set fits in cache and is reused across the whole tile.

Restrictions: rectangular parameter-affine bounds and tile sizes dividing
the trip counts (keeps inner bounds affine — this IR has no ``min``).
Semantic legality of the implied permutation is the caller's concern,
re-checked by the pipeline's interpreter oracle.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import TransformError
from ..lang.affine import Affine
from ..lang.program import Program
from ..lang.stmt import Loop, Stmt, perfect_nest


def tile_nest(
    program: Program,
    top_index: int,
    tiles: Mapping[str, int],
    order: Sequence[str] | None = None,
    name: str | None = None,
) -> Program:
    """Tile the perfect nest at ``top_index``.

    Args:
        tiles: loop variable -> tile size. Each tiled variable ``v``
            becomes a tile loop ``v_t`` over ``[0, trip/size)`` plus an
            element loop ``v`` over ``[lo + size*v_t, lo + size*v_t + size)``.
        order: final nesting order, outermost first, naming tile loops as
            ``<var>_t``; defaults to all tile loops (in ``tiles`` order)
            followed by the element loops in their original order.
    """
    stmt = program.body[top_index]
    if not isinstance(stmt, Loop):
        raise TransformError(f"statement {top_index} is not a loop")
    chain = perfect_nest(stmt)
    by_var = {loop.var: loop for loop in chain}
    params = program.bind_params(None)
    for var in tiles:
        if var not in by_var:
            raise TransformError(f"no loop variable {var!r} in the nest")

    headers: dict[str, Loop] = {}
    for var, loop in by_var.items():
        loose = (loop.lower.symbols | loop.upper.symbols) - set(program.params)
        if loose:
            raise TransformError(f"loop {var} has non-rectangular bounds; cannot tile")
    for var, size in tiles.items():
        loop = by_var[var]
        trip = loop.trip_count(params)
        if size <= 0 or trip % size:
            raise TransformError(
                f"tile size {size} does not divide trip count {trip} of loop {var} "
                "(choose a divisor; this IR has no min() bounds)"
            )
        tvar = f"{var}_t"
        if tvar in by_var:
            raise TransformError(f"variable {tvar} already used")
        headers[tvar] = Loop(
            tvar, Affine.const_of(0), Affine.const_of(trip // size), loop.body
        )
        base = loop.lower + Affine.var(tvar) * size
        headers[var] = Loop(var, base, base + size, loop.body)
    for var, loop in by_var.items():
        if var not in tiles:
            headers[var] = loop

    if order is None:
        order = [f"{v}_t" for v in tiles] + [loop.var for loop in chain]
    expected = sorted([f"{v}_t" for v in tiles] + [loop.var for loop in chain])
    if sorted(order) != expected:
        raise TransformError(f"order {list(order)} must be a permutation of {expected}")
    # Element loops must stay inside their tile loops.
    for var in tiles:
        if list(order).index(f"{var}_t") > list(order).index(var):
            raise TransformError(f"tile loop {var}_t must enclose element loop {var}")

    innermost_body: tuple[Stmt, ...] = chain[-1].body
    nest: Loop | None = None
    for var in reversed(list(order)):
        template = headers[var]
        body: tuple[Stmt, ...] = innermost_body if nest is None else (nest,)
        nest = Loop(var, template.lower, template.upper, body)
    assert nest is not None
    body_list = list(program.body)
    body_list[top_index] = nest
    suffix = "x".join(str(s) for s in tiles.values())
    return program.with_body(body_list, name=name or f"{program.name}_tile{suffix}")

"""Inter-array data regrouping (Ding & Kennedy LCPC'99; cited in §4 as the
global *spatial*-reuse step of the dissertation's strategy).

Arrays that are always accessed together at the same index — the pattern
the Figure 3 kernels and most stencil sweeps exhibit — can be interleaved
into one packed array:

    a[i], b[i], c[i]   ->   packed[i, 0], packed[i, 1], packed[i, 2]

Benefits on the simulated machines mirror the real ones:

* **spatial locality** — one cache line now holds one element of *each*
  grouped array, so a sweep touching all of them uses every byte of every
  line it pulls;
* **conflict immunity** — the grouped arrays can no longer collide with
  each other in a direct-mapped cache, because they share lines instead
  of competing for them. Experiment E16 shows regrouping is an alternative
  fix for the Figure 3 ``3w6r`` anomaly.

Legality: every grouped array must have the same shape and dtype and be
referenced element-wise (arbitrary but *identical-rank* affine subscripts
are fine — each reference maps independently). Program outputs cannot be
grouped (the packed layout would change the observable arrays).

Initial values: the packed declaration carries ``init_names`` so the
reference interpreter gives slot ``j`` exactly the initial contents of the
j-th source array — making the rewrite verifiable by the standard oracle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..errors import TransformError
from ..lang.affine import Affine
from ..lang.expr import ArrayRef, Expr, replace_array
from ..lang.program import Program
from ..lang.stmt import Assign, ExternalRead, If, Loop, Stmt
from ..lang.types import ArrayDecl


def _rewrite_stmt(s: Stmt, slot_of: dict[str, int], packed: str) -> Stmt:
    def transform(ref: ArrayRef) -> Expr:
        if ref.array not in slot_of:
            return ref
        return ArrayRef(packed, ref.index + (Affine.const_of(slot_of[ref.array]),))

    if isinstance(s, Assign):
        lhs = s.lhs
        if isinstance(lhs, ArrayRef) and lhs.array in slot_of:
            lhs = ArrayRef(packed, lhs.index + (Affine.const_of(slot_of[lhs.array]),))
        return Assign(lhs, replace_array(s.rhs, transform))
    if isinstance(s, ExternalRead):
        if isinstance(s.lhs, ArrayRef) and s.lhs.array in slot_of:
            return ExternalRead(
                ArrayRef(packed, s.lhs.index + (Affine.const_of(slot_of[s.lhs.array]),))
            )
        return s
    if isinstance(s, If):
        return If(
            s.cond,
            tuple(_rewrite_stmt(b, slot_of, packed) for b in s.then),
            tuple(_rewrite_stmt(b, slot_of, packed) for b in s.orelse),
        )
    if isinstance(s, Loop):
        return s.with_body(tuple(_rewrite_stmt(b, slot_of, packed) for b in s.body))
    return s


def regroup_arrays(
    program: Program,
    group: Sequence[str],
    packed_name: str | None = None,
    name: str | None = None,
) -> Program:
    """Interleave the arrays of ``group`` into one packed array.

    The packed array has the common shape plus a trailing slot dimension;
    declaration order of the group determines slot order (and therefore
    in-line interleaving order).
    """
    if len(group) < 2:
        raise TransformError("regrouping needs at least two arrays")
    if len(set(group)) != len(group):
        raise TransformError("duplicate array in group")
    decls = [program.array(g) for g in group]
    base = decls[0]
    for d in decls[1:]:
        if d.shape != base.shape:
            raise TransformError(
                f"cannot regroup {d.name} with {base.name}: shapes differ "
                f"({d.shape} vs {base.shape})"
            )
        if d.dtype is not base.dtype:
            raise TransformError(f"cannot regroup {d.name}: dtype differs")
    for g in group:
        if g in program.outputs:
            raise TransformError(f"{g} is a program output; cannot regroup")

    packed = packed_name or ("_".join(group) + "_pk")
    if program.has_array(packed):
        raise TransformError(f"array {packed!r} already exists")
    slot_of = {g: j for j, g in enumerate(group)}

    body = tuple(_rewrite_stmt(s, slot_of, packed) for s in program.body)
    packed_decl = ArrayDecl(
        packed,
        base.shape + (Affine.const_of(len(group)),),
        base.dtype,
        init_names=tuple(group),
    )
    kept = tuple(a for a in program.arrays if a.name not in slot_of)
    return replace(
        program,
        name=name or f"{program.name}_regroup",
        body=body,
        arrays=kept + (packed_decl,),
    )


def regroupable_sets(program: Program) -> list[tuple[str, ...]]:
    """Candidate groups: non-output arrays of identical shape and dtype
    that are accessed in the same top-level statements (the 'accessed
    together' heuristic of the original regrouping paper)."""
    from ..lang.analysis.arrays import access_sets

    signature: dict[tuple, list[str]] = {}
    touched_at: dict[str, frozenset[int]] = {}
    for idx, stmt in enumerate(program.body):
        for arr in access_sets(stmt).touched:
            touched_at[arr] = touched_at.get(arr, frozenset()) | {idx}
    for decl in program.arrays:
        if decl.name in program.outputs or decl.name not in touched_at:
            continue
        key = (decl.shape, decl.dtype, touched_at[decl.name])
        signature.setdefault(key, []).append(decl.name)
    return [tuple(v) for v in signature.values() if len(v) >= 2]

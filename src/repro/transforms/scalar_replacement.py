"""Scalar replacement: keep loop-invariant array references in registers.

The classic register-reuse transformation (Callahan/Carr/Kennedy lineage)
the paper's mm(-O3) row depends on: a reference like ``c[i, j]`` inside the
``k`` loop of matrix multiply is invariant in ``k``; loading it once before
the loop and storing once after removes 2 accesses per inner iteration:

    for k: c[i,j] += a[i,k] * b[k,j]

becomes

    t = c[i,j]
    for k: t += a[i,k] * b[k,j]
    c[i,j] = t

This changes only register<->cache traffic (the L1-Reg balance column);
cache-level traffic is already filtered by the caches themselves.

Legality: every reference of the array inside the loop uses the same
invariant subscript (no aliasing variant subscripts of the same array in
that loop).
"""

from __future__ import annotations

from ..lang.analysis.arrays import refs_of_array
from ..lang.expr import ArrayRef, Expr, ScalarRef, replace_array
from ..lang.program import Program
from ..lang.stmt import Assign, If, Loop, Stmt
from ..lang.types import ScalarDecl


def _invariant_candidates(loop: Loop) -> list[tuple[str, tuple]]:
    """(array, subscript) pairs invariant in ``loop.var`` and consistent."""
    from ..lang.analysis.arrays import access_sets

    out: list[tuple[str, tuple]] = []
    for array in sorted(access_sets(loop).touched):
        reads, writes = refs_of_array(loop, array)
        subs = {r.index for r in reads} | {w.index for w in writes}
        if len(subs) != 1:
            continue
        (index,) = subs
        if any(sub.depends_on(loop.var) for sub in index):
            continue
        out.append((array, index))
    return out


def _replace_in_stmt(s: Stmt, array: str, index: tuple, scalar: str) -> Stmt:
    def transform(ref: ArrayRef) -> Expr:
        if ref.array == array and ref.index == index:
            return ScalarRef(scalar)
        return ref

    if isinstance(s, Assign):
        lhs = s.lhs
        if isinstance(lhs, ArrayRef) and lhs.array == array and lhs.index == index:
            lhs = ScalarRef(scalar)
        return Assign(lhs, replace_array(s.rhs, transform))
    if isinstance(s, If):
        return If(
            s.cond,
            tuple(_replace_in_stmt(b, array, index, scalar) for b in s.then),
            tuple(_replace_in_stmt(b, array, index, scalar) for b in s.orelse),
        )
    if isinstance(s, Loop):
        return s.with_body(tuple(_replace_in_stmt(b, array, index, scalar) for b in s.body))
    return s


def replace_scalars(program: Program, name: str | None = None) -> Program:
    """Apply scalar replacement to every innermost loop of the program.

    Every invariant (array, subscript) pair becomes: load before the loop,
    scalar uses inside, store after the loop (store only when written).
    Returns the program unchanged if nothing qualifies.
    """
    counter = [0]
    new_scalars: list[ScalarDecl] = []

    def rewrite(stmt: Stmt) -> Stmt:
        if isinstance(stmt, If):
            return If(
                stmt.cond,
                tuple(rewrite(s) for s in stmt.then),
                tuple(rewrite(s) for s in stmt.orelse),
            )
        if not isinstance(stmt, Loop):
            return stmt
        has_inner_loop = any(isinstance(s, Loop) for s in stmt.walk() if s is not stmt)
        if has_inner_loop:
            return stmt.with_body(tuple(rewrite(s) for s in stmt.body))
        # Innermost loop: hoist invariant references. The hoisted pre/post
        # statements replace the loop in its parent's body.
        candidates = _invariant_candidates(stmt)
        if not candidates:
            return stmt
        pre: list[Stmt] = []
        post: list[Stmt] = []
        body_loop: Loop = stmt
        for array, index in candidates:
            reads, writes = refs_of_array(body_loop, array)
            scalar = f"_sr{counter[0]}"
            counter[0] += 1
            new_scalars.append(ScalarDecl(scalar))
            pre.append(Assign(ScalarRef(scalar), ArrayRef(array, index)))
            if writes:
                post.append(Assign(ArrayRef(array, index), ScalarRef(scalar)))
            body_loop = body_loop.with_body(
                tuple(_replace_in_stmt(s, array, index, scalar) for s in body_loop.body)
            )
        return _Sequence(tuple(pre) + (body_loop,) + tuple(post))

    new_body: list[Stmt] = []
    for stmt in program.body:
        r = rewrite(stmt)
        new_body.extend(_flatten(r))
    if not new_scalars:
        return program
    from dataclasses import replace

    return replace(
        program,
        name=name or f"{program.name}_sr",
        body=tuple(new_body),
        scalars=tuple(program.scalars) + tuple(new_scalars),
    )


class _Sequence(Stmt):
    """Internal marker: a statement list to be spliced into the parent."""

    def __init__(self, stmts: tuple[Stmt, ...]):
        self.stmts = stmts

    def walk(self):
        yield self
        for s in self.stmts:
            yield from s.walk()


def _flatten(stmt: Stmt) -> list[Stmt]:
    if isinstance(stmt, _Sequence):
        out: list[Stmt] = []
        for s in stmt.stmts:
            out.extend(_flatten(s))
        return out
    if isinstance(stmt, Loop):
        body: list[Stmt] = []
        for s in stmt.body:
            body.extend(_flatten(s))
        return [stmt.with_body(body)]
    if isinstance(stmt, If):
        then: list[Stmt] = []
        for s in stmt.then:
            then.extend(_flatten(s))
        orelse: list[Stmt] = []
        for s in stmt.orelse:
            orelse.extend(_flatten(s))
        return [If(stmt.cond, tuple(then), tuple(orelse))]
    return [stmt]

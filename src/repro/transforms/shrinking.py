"""Array shrinking (paper §3.2, Figure 6).

After fusion, if every use of an array element happens within one iteration
of an outer loop of its producing iteration, the array's "time" dimension
can be dropped: the current value lives in a scalar, and values carried to
the next outer iteration live in a small buffer over the remaining
dimensions. Figure 6's ``a[N, N]`` becomes the scalar ``a2`` plus the row
buffer ``a3[N]`` exactly this way:

    read(a[i,j])                     read(a2)
    ... f(a[i,j-1], a[i,j]) ...  ->  ... f(a3[i], a2) ...
                                     a3[i] = a2            (copy, end of body)

Supported shape (the paper's): all references to the array live in one
straight-line innermost block; one write per iteration; one subscript
position (the *time dimension*) is ``outer_var + k`` with read offsets at
distance 0 or 1 behind the write; every other subscript position is
identical across all references. Reads at distance 0 must follow the
write. Reads at distance 1 may sit anywhere — they read the buffer, which
is only updated by the copy appended at the end of the block.

Shrinking is *optimistic* about upward-exposed first-iteration reads (a
distance-1 read in the first outer iteration would see buffer contents
instead of original array contents); the transformation pipeline always
verifies the result against the reference interpreter, and programs whose
guards exclude that case (like Figure 6 after peeling) pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import TransformError
from ..lang.affine import Affine
from ..lang.analysis.arrays import access_sets, refs_of_array
from ..lang.analysis.liveness import live_ranges
from ..lang.expr import ArrayRef, Expr, ScalarRef, replace_array
from ..lang.program import Program
from ..lang.stmt import Assign, ExternalRead, If, Loop, Stmt
from ..lang.types import ArrayDecl, ScalarDecl


@dataclass(frozen=True)
class _ShrinkPlan:
    array: str
    time_dim: int
    write_index: tuple[Affine, ...]
    needs_buffer: bool
    cur_scalar: str
    buffer_name: str


def _time_offset(sub: Affine, write_sub: Affine) -> int | None:
    """Offset of a read subscript behind the write subscript in the time
    dimension: ``write - read`` when the difference is constant."""
    diff = write_sub - sub
    if not diff.is_constant:
        return None
    return diff.const


def _analyze(loop: Loop, array: str) -> tuple[int, ArrayRef, bool]:
    """Determine the time dimension and whether carried values exist.

    Returns (time_dim, write_ref, needs_buffer); raises TransformError when
    the access pattern is outside the supported shape.
    """
    reads, writes = refs_of_array(loop, array)
    if not writes:
        raise TransformError(f"{array}: never written inside the loop")
    write = writes[0]
    # Multiple writes are fine when they hit the same element per iteration
    # (e.g. Figure 6's boundary fix re-updating b[i, j] under a guard):
    # they all become updates of the current-value scalar.
    for extra in writes[1:]:
        if extra.index != write.index:
            raise TransformError(
                f"{array}: writes use different subscripts ({extra} vs {write})"
            )
    if not reads:
        # Write-only array that is dead afterwards: the caller should use
        # store elimination instead.
        raise TransformError(f"{array}: no reads inside the loop; use store elimination")
    # Find dims where some read differs from the write.
    diff_dims = set()
    for r in reads:
        if r.rank != write.rank:
            raise TransformError(f"{array}: rank-inconsistent references")
        for d in range(write.rank):
            if r.index[d] != write.index[d]:
                diff_dims.add(d)
    if len(diff_dims) > 1:
        raise TransformError(f"{array}: references differ in {len(diff_dims)} dimensions")
    needs_buffer = False
    time_dim = next(iter(diff_dims)) if diff_dims else write.rank - 1
    for r in reads:
        off = _time_offset(r.index[time_dim], write.index[time_dim])
        if off is None or off not in (0, 1):
            raise TransformError(
                f"{array}: read {r} is {off} iterations behind the write; "
                "only distances 0 and 1 are supported"
            )
        if off == 1:
            needs_buffer = True
    return time_dim, write, needs_buffer


class _BlockRewriter:
    """Rewrites the single block containing all references."""

    def __init__(self, plan: _ShrinkPlan):
        self.plan = plan
        self.seen_write = False
        self.guarded = False

    def rewrite(self, stmts: Sequence[Stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for s in stmts:
            out.append(self._rewrite_stmt(s))
        if self.plan.needs_buffer:
            if not self.seen_write:
                raise TransformError(f"{self.plan.array}: write not found in block")
            buf_index = tuple(
                sub for d, sub in enumerate(self.plan.write_index) if d != self.plan.time_dim
            ) or (Affine.const_of(0),)
            out.append(
                Assign(ArrayRef(self.plan.buffer_name, buf_index), ScalarRef(self.plan.cur_scalar))
            )
        return out

    def _rewrite_stmt(self, s: Stmt) -> Stmt:
        plan = self.plan
        if isinstance(s, Assign):
            rhs = self._rewrite_expr(s.rhs)
            if isinstance(s.lhs, ArrayRef) and s.lhs.array == plan.array:
                if self.seen_write and not self.guarded:
                    # A plain re-write updates the current scalar.
                    pass
                self.seen_write = True
                return Assign(ScalarRef(plan.cur_scalar), rhs)
            return Assign(s.lhs, rhs)
        if isinstance(s, ExternalRead):
            if isinstance(s.lhs, ArrayRef) and s.lhs.array == plan.array:
                self.seen_write = True
                return ExternalRead(ScalarRef(plan.cur_scalar))
            return s
        if isinstance(s, If):
            def branch_writes(branch: tuple) -> bool:
                return any(plan.array in access_sets(b).writes for b in branch)

            then_w = branch_writes(s.then)
            else_w = branch_writes(s.orelse)
            pre = self.seen_write
            if not pre and (then_w or else_w) and not (then_w and else_w):
                # A one-sided first write leaves the scalar undefined on
                # the other path; only all-path definitions (or re-updates
                # after an unconditional write) may sit under guards.
                raise TransformError(
                    f"{plan.array}: first write under a guard is not supported"
                )
            was_guarded = self.guarded
            self.guarded = True
            try:
                self.seen_write = pre
                then_out = tuple(self._rewrite_stmt(b) for b in s.then)
                after_then = self.seen_write
                self.seen_write = pre
                else_out = tuple(self._rewrite_stmt(b) for b in s.orelse)
                after_else = self.seen_write
            finally:
                self.guarded = was_guarded
            self.seen_write = pre or (after_then and after_else)
            return If(s.cond, then_out, else_out)
        if isinstance(s, Loop):
            if plan.array in access_sets(s).touched:
                raise TransformError(
                    f"{plan.array}: accessed in a nested loop inside the block"
                )
            return s
        return s

    def _rewrite_expr(self, expr: Expr) -> Expr:
        plan = self.plan

        def transform(ref: ArrayRef) -> Expr:
            if ref.array != plan.array:
                return ref
            off = _time_offset(
                ref.index[plan.time_dim], plan.write_index[plan.time_dim]
            )
            if off == 0:
                if not self.seen_write:
                    raise TransformError(
                        f"{plan.array}: same-iteration read before the write"
                    )
                return ScalarRef(plan.cur_scalar)
            assert off == 1
            buf_index = tuple(
                sub for d, sub in enumerate(ref.index) if d != plan.time_dim
            )
            # Non-time subscripts must match the write's so the buffer slot
            # correspondence holds.
            want = tuple(
                sub for d, sub in enumerate(plan.write_index) if d != plan.time_dim
            )
            if not buf_index and not want:
                return ArrayRef(plan.buffer_name, (Affine.const_of(0),))
            if buf_index != want:
                raise TransformError(
                    f"{plan.array}: carried read {ref} differs from the write in a "
                    "non-time dimension"
                )
            return ArrayRef(plan.buffer_name, buf_index)

        return replace_array(expr, transform)


def shrink_array(program: Program, array: str, name: str | None = None) -> Program:
    """Shrink one array to a scalar (plus a carry buffer when needed)."""
    if array in program.outputs:
        raise TransformError(f"{array} is a program output; cannot shrink")
    lr = live_ranges(program).get(array)
    if lr is None:
        raise TransformError(f"no array named {array!r}")
    positions = set(lr.reads) | set(lr.writes)
    if len(positions) != 1:
        raise TransformError(f"{array} is live across top-level statements")
    idx = positions.pop()
    stmt = program.body[idx]
    if not isinstance(stmt, Loop):
        raise TransformError(f"{array} is used outside a loop")

    time_dim, write, needs_buffer = _analyze(stmt, array)
    cur = f"_{array}cur"
    buf = f"_{array}buf"
    plan = _ShrinkPlan(array, time_dim, write.index, needs_buffer, cur, buf)

    # Locate the single block holding the references and rewrite it.
    def recurse(stmts: Sequence[Stmt]) -> list[Stmt]:
        direct = any(
            isinstance(s, (Assign, ExternalRead, If)) and array in access_sets(s).touched
            for s in stmts
        )
        if direct:
            return _BlockRewriter(plan).rewrite(stmts)
        out: list[Stmt] = []
        for s in stmts:
            if isinstance(s, Loop) and array in access_sets(s).touched:
                out.append(s.with_body(recurse(s.body)))
            else:
                out.append(s)
        return out

    body = list(program.body)
    body[idx] = stmt.with_body(recurse(stmt.body))

    from dataclasses import replace

    decl = program.array(array)
    new_arrays = [a for a in program.arrays if a.name != array]
    if needs_buffer:
        buf_shape = tuple(e for d, e in enumerate(decl.shape) if d != time_dim)
        if not buf_shape:
            buf_shape = (Affine.const_of(1),)
        new_arrays.append(ArrayDecl(buf, buf_shape, decl.dtype))
    return replace(
        program,
        name=name or f"{program.name}_shrink",
        body=tuple(body),
        scalars=tuple(program.scalars) + (ScalarDecl(cur),),
        arrays=tuple(new_arrays),
    )


def shrinkable_arrays(program: Program) -> frozenset[str]:
    """Arrays for which :func:`shrink_array` does not statically reject.

    Membership does not guarantee semantic safety (first-iteration carried
    reads); the pipeline verifies each application with the interpreter.
    """
    out: set[str] = set()
    for decl in program.arrays:
        try:
            shrink_array(program, decl.name)
        except TransformError:
            continue
        out.add(decl.name)
    return frozenset(out)

"""Array contraction (Sarkar & Gao 1991) — the baseline storage reduction.

An array whose element live ranges are contained in a single iteration of
the loop that defines it (write first, all reads at the same subscript
afterwards, dead outside the loop) is replaced by a scalar. This is the
special case of the paper's array shrinking where the carried distance is
zero; the paper's own transforms (shrinking/peeling) generalize it.

    for i:  b[i] = f(...)            for i:  b1 = f(...)
            c[i] = b[i] * 2    ->            c[i] = b1 * 2
"""

from __future__ import annotations

from typing import Sequence

from ..errors import TransformError
from ..lang.analysis.arrays import access_sets, refs_of_array
from ..lang.analysis.liveness import live_ranges
from ..lang.expr import ArrayRef, Expr, ScalarRef, replace_array
from ..lang.program import Program
from ..lang.stmt import Assign, ExternalRead, If, Loop, Stmt
from ..lang.types import ScalarDecl


def contractible_arrays(program: Program) -> frozenset[str]:
    """Arrays whose full live range sits inside one top-level statement and
    that are not outputs (candidates; per-array legality still applies)."""
    out: set[str] = set()
    for name, lr in live_ranges(program).items():
        if name in program.outputs:
            continue
        if not lr.writes:
            # A read-only array carries live-in values per element; it can
            # never collapse to a scalar.
            continue
        positions = set(lr.reads) | set(lr.writes)
        if len(positions) == 1:
            out.add(name)
    return frozenset(out)


def _rewrite_block(stmts: Sequence[Stmt], array: str, scalar: str) -> list[Stmt]:
    """Replace refs of ``array`` with ``scalar``, enforcing write-first."""
    defined = False
    out: list[Stmt] = []
    for s in stmts:
        if isinstance(s, Assign):
            def transform(ref: ArrayRef) -> Expr:
                if ref.array != array:
                    return ref
                if not defined:
                    raise TransformError(
                        f"{array} is read before it is written in an iteration; "
                        "cannot contract"
                    )
                return ScalarRef(scalar)

            rhs = replace_array(s.rhs, transform)
            if isinstance(s.lhs, ArrayRef) and s.lhs.array == array:
                out.append(Assign(ScalarRef(scalar), rhs))
                defined = True
            else:
                out.append(Assign(s.lhs, rhs))
        elif isinstance(s, ExternalRead):
            if isinstance(s.lhs, ArrayRef) and s.lhs.array == array:
                raise TransformError(f"{array} is filled by read(); cannot contract")
            out.append(s)
        elif isinstance(s, If):
            # A value defined under a guard is not available on the other
            # path; only contract when the guard does not touch the array,
            # or both branches define it before use independently.
            touched = access_sets(s).touched
            if array in touched:
                then = _rewrite_block(s.then, array, scalar)
                orelse = _rewrite_block(s.orelse, array, scalar) if s.orelse else []
                out.append(If(s.cond, tuple(then), tuple(orelse)))
                then_writes = array in access_sets(If(s.cond, s.then, ())).writes if s.then else False
                else_writes = (
                    array in access_sets(If(s.cond, (), s.orelse)).writes if s.orelse else False
                )
                if then_writes and (not s.orelse or else_writes):
                    defined = True
            else:
                out.append(s)
        elif isinstance(s, Loop):
            if array in access_sets(s).touched:
                raise TransformError(
                    f"{array} is accessed across iterations of a nested loop; "
                    "cannot contract to a scalar"
                )
            out.append(s)
        else:
            out.append(s)
    return out


def _subscripts_consistent(node: Stmt, array: str) -> bool:
    """All refs of ``array`` inside ``node`` use one identical subscript."""
    reads, writes = refs_of_array(node, array)
    subs = {r.index for r in reads} | {w.index for w in writes}
    return len(subs) == 1


def contract_arrays(
    program: Program,
    arrays: Sequence[str] | None = None,
    name: str | None = None,
) -> Program:
    """Contract every eligible array (or exactly ``arrays``) to scalars."""
    explicit = arrays is not None
    candidates = list(arrays) if arrays is not None else sorted(contractible_arrays(program))
    body = list(program.body)
    new_scalars: list[ScalarDecl] = []
    dropped: set[str] = set()

    for cand in candidates:
        if cand in program.outputs:
            if explicit:
                raise TransformError(f"{cand} is a program output; cannot contract")
            continue
        from dataclasses import replace as _replace

        trial = _replace(
            program,
            body=tuple(body),
            scalars=tuple(program.scalars) + tuple(new_scalars),
        )
        lr = live_ranges(trial).get(cand)
        positions = (set(lr.reads) | set(lr.writes)) if lr else set()
        if len(positions) != 1:
            if explicit:
                raise TransformError(f"{cand} is live across top-level statements")
            continue
        idx = positions.pop()
        stmt = body[idx]
        if not isinstance(stmt, Loop):
            if explicit:
                raise TransformError(f"{cand} is used outside a loop")
            continue
        if not _subscripts_consistent(stmt, cand):
            if explicit:
                raise TransformError(f"{cand} uses multiple subscripts; use shrinking")
            continue
        scalar = f"_{cand}c"
        try:
            new_body = _rewrite_loop(stmt, cand, scalar)
        except TransformError:
            if explicit:
                raise
            continue
        body[idx] = new_body
        new_scalars.append(ScalarDecl(scalar))
        dropped.add(cand)

    if not dropped:
        if explicit:
            raise TransformError(f"no arrays contracted among {candidates}")
        return program

    from dataclasses import replace

    return replace(
        program,
        name=name or f"{program.name}_contract",
        body=tuple(body),
        scalars=tuple(program.scalars) + tuple(new_scalars),
        arrays=tuple(a for a in program.arrays if a.name not in dropped),
    )


def _rewrite_loop(loop: Loop, array: str, scalar: str) -> Loop:
    """Rewrite the innermost block(s) of ``loop`` that access the array."""
    def recurse(stmts: Sequence[Stmt]) -> list[Stmt]:
        direct = any(
            isinstance(s, (Assign, ExternalRead)) and array in access_sets(s).touched
            for s in stmts
        )
        if direct:
            return _rewrite_block(stmts, array, scalar)
        out: list[Stmt] = []
        for s in stmts:
            if isinstance(s, Loop) and array in access_sets(s).touched:
                out.append(s.with_body(recurse(s.body)))
            elif isinstance(s, If) and array in access_sets(s).touched:
                out.append(If(s.cond, tuple(recurse(s.then)), tuple(recurse(s.orelse))))
            else:
                out.append(s)
        return out

    return loop.with_body(recurse(loop.body))

"""The paper's full compiler strategy, as one driver.

Section 3's strategy, in order:

1. **bandwidth-minimal loop fusion** — build the fusion graph, solve
   (exactly when small, greedy bisection otherwise), rewrite;
2. **storage reduction** — contract arrays whose live ranges collapsed to
   one iteration; shrink arrays with unit-distance carried values;
3. **store elimination** — drop writebacks to arrays that die inside
   their last defining loop.

Every stage is verified against the reference interpreter before it is
accepted; a stage that fails verification (or is inapplicable) is skipped
and recorded, so the pipeline is safe to run on arbitrary programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import FusionError, TransformError, VerificationError
from ..fusion.apply import apply_partitioning
from ..fusion.build import fusion_graph_from_program
from ..fusion.graph import Partitioning
from ..fusion.multi_partition import MAX_EXACT_NODES, greedy_partitioning, optimal_partitioning
from ..lang.program import Program
from ..phases import TRANSFORM, phase
from .contraction import contract_arrays, contractible_arrays
from .normalize import normalize_guard_contexts
from .peeling import peel_array
from .shrinking import shrink_array
from .store_elim import eliminate_stores
from .verify import verify_equivalent


@dataclass(frozen=True)
class PipelineStage:
    """One attempted stage of the strategy."""

    stage: str
    applied: bool
    detail: str
    program: Program


@dataclass(frozen=True)
class PipelineResult:
    """The strategy's trace: every stage and the final program."""

    original: Program
    stages: tuple[PipelineStage, ...]

    @property
    def final(self) -> Program:
        return self.stages[-1].program if self.stages else self.original

    @property
    def applied_stages(self) -> tuple[str, ...]:
        return tuple(s.stage for s in self.stages if s.applied)

    def describe(self) -> str:
        rows = [f"pipeline[{self.original.name}]:"]
        for s in self.stages:
            mark = "applied" if s.applied else "skipped"
            rows.append(f"  {s.stage:<18} {mark:<8} {s.detail}")
        return "\n".join(rows)


def optimize(
    program: Program,
    verify_sizes: Sequence[int] = (4, 7, 16),
    fuse: bool = True,
    reduce_storage: bool = True,
    eliminate: bool = True,
) -> PipelineResult:
    """Run the full strategy on ``program``; returns all stages."""
    with phase(TRANSFORM):
        return _optimize(program, verify_sizes, fuse, reduce_storage, eliminate)


def _optimize(
    program: Program,
    verify_sizes: Sequence[int],
    fuse: bool,
    reduce_storage: bool,
    eliminate: bool,
) -> PipelineResult:
    stages: list[PipelineStage] = []
    current = program

    def accept(stage: str, candidate: Program, detail: str) -> None:
        nonlocal current
        try:
            verify_equivalent(program, candidate, sizes=verify_sizes)
        except VerificationError as exc:
            stages.append(PipelineStage(stage, False, f"verification failed: {exc}", current))
            return
        stages.append(PipelineStage(stage, True, detail, candidate))
        current = candidate

    if fuse:
        try:
            graph = fusion_graph_from_program(current)
            if graph.n_nodes <= 1:
                stages.append(PipelineStage("fusion", False, "single loop nest", current))
            else:
                if graph.n_nodes <= MAX_EXACT_NODES:
                    solution = optimal_partitioning(graph)
                else:
                    solution = greedy_partitioning(graph)
                baseline = solution_cost_of_singletons(graph)
                if solution.partitioning.n_groups == graph.n_nodes:
                    stages.append(
                        PipelineStage("fusion", False, "fusion cannot reduce transfer", current)
                    )
                else:
                    fused = apply_partitioning(current, solution.partitioning, graph)
                    accept(
                        "fusion",
                        fused,
                        f"{graph.n_nodes} nests -> {solution.partitioning.n_groups} "
                        f"(array loads {baseline} -> {solution.cost}, {solution.method})",
                    )
        except FusionError as exc:
            stages.append(PipelineStage("fusion", False, str(exc), current))

    if reduce_storage:
        # Normalization first: pinned-constant subscripts become variable
        # form, making references uniform for the storage analyses.
        normalized = normalize_guard_contexts(current)
        if normalized is not current:
            accept("normalize", normalized, "guard-pinned subscripts rewritten")

        # Peeling: split constant-indexed slices out of arrays that are
        # otherwise swept with variable subscripts (Figure 6's a[*, 0]).
        peeled_arrays: list[str] = []
        for array, dim, at in peel_candidates(current):
            try:
                candidate = peel_array(current, array, dim, at)
            except TransformError:
                continue
            try:
                verify_equivalent(program, candidate, sizes=verify_sizes)
            except VerificationError:
                continue
            current = candidate
            peeled_arrays.append(f"{array}[dim{dim}={at}]")
        if peeled_arrays:
            stages.append(
                PipelineStage("peeling", True, f"peeled {peeled_arrays}", current)
            )

        contracted = False
        candidates = sorted(contractible_arrays(current))
        if candidates:
            try:
                reduced = contract_arrays(current)
                if reduced is not current:
                    accept("contraction", reduced, f"contracted {candidates}")
                    contracted = True
            except TransformError as exc:
                stages.append(PipelineStage("contraction", False, str(exc), current))
        if not contracted and not candidates:
            stages.append(PipelineStage("contraction", False, "no candidates", current))

        shrunk: list[str] = []
        for decl in list(current.arrays):
            try:
                candidate = shrink_array(current, decl.name)
            except TransformError:
                continue
            try:
                verify_equivalent(program, candidate, sizes=verify_sizes)
            except VerificationError:
                continue
            current = candidate
            shrunk.append(decl.name)
        if shrunk:
            stages.append(
                PipelineStage("shrinking", True, f"shrunk {shrunk}", current)
            )
        else:
            stages.append(PipelineStage("shrinking", False, "no candidates", current))

    if eliminate:
        try:
            candidate = eliminate_stores(current)
            if candidate is current:
                stages.append(PipelineStage("store-elim", False, "no candidates", current))
            else:
                accept("store-elim", candidate, "writebacks removed")
        except TransformError as exc:
            stages.append(PipelineStage("store-elim", False, str(exc), current))

    return PipelineResult(program, tuple(stages))


def solution_cost_of_singletons(graph) -> int:
    from ..fusion.cost import bandwidth_cost

    return bandwidth_cost(graph, Partitioning.singletons(graph.n_nodes))


def peel_candidates(program: Program) -> list[tuple[str, int, "object"]]:
    """(array, dim, at) triples worth peeling: a non-output array whose
    dimension ``dim`` is addressed both by loop-variable subscripts and by
    the parameter-constant ``at`` (a boundary slice with its own life)."""
    from ..lang.analysis.arrays import refs_of_array

    candidates: list[tuple[str, int, object]] = []
    params = set(program.params)
    for decl in program.arrays:
        if decl.name in program.outputs:
            continue
        refs_r: list = []
        refs_w: list = []
        for stmt in program.body:
            r, w = refs_of_array(stmt, decl.name)
            refs_r.extend(r)
            refs_w.extend(w)
        refs = refs_r + refs_w
        if not refs:
            continue
        for dim in range(decl.rank):
            constants = []
            has_var = False
            for ref in refs:
                sub = ref.index[dim]
                if sub.symbols - params:
                    has_var = True
                elif sub not in constants:
                    constants.append(sub)
            if has_var:
                for at in constants:
                    candidates.append((decl.name, dim, at))
    return candidates

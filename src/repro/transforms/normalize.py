"""Guard-context subscript normalization.

Inside a guard branch the loop variable may be pinned to one value —
``if j == 1 {...}``, or the else branch of ``if j <= N-2`` inside
``for j = 1, N`` (which implies ``j == N-1``). On such a path a constant
subscript equal to the pinned value and the variable itself are
interchangeable; rewriting constants *to the variable form* makes
references uniform, which is what unlocks array shrinking on programs
like the paper's Figure 6(b):

    else { b[i, N-1] = g(b[i, N-1], ...) }     # j == N-1 here
        ->  b[i, j] = g(b[i, j], ...)

The rewrite is semantics-preserving unconditionally: on every execution of
the branch the two subscripts denote the same element.

Recognized pinning facts:

* ``v == c`` in a guard: the then-branch pins ``v = c``; an ``!=`` pins
  the else-branch.
* ``v <= K`` whose else-range collapses: with the enclosing loop
  ``v in [lo, hi)``, the else branch covers ``[K+1, hi)``; if that is a
  single value, ``v`` is pinned there. Symmetrically for ``>=``/``<``/``>``
  and for collapsing then-ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.affine import Affine, And, Cmp, Condition
from ..lang.expr import ArrayRef, Expr, replace_array
from ..lang.program import Program
from ..lang.stmt import Assign, ExternalRead, If, Loop, Stmt


@dataclass(frozen=True)
class _LoopRange:
    lower: Affine
    upper: Affine  # exclusive


def _pinned_by(cond: Condition, negate: bool, ranges: dict[str, _LoopRange]) -> dict[str, Affine]:
    """Variables pinned to a single value by taking (or refusing) ``cond``."""
    if isinstance(cond, And):
        # Conjunction: the then-branch accumulates every part's pin; the
        # else-branch of a conjunction pins nothing (it is a disjunction).
        if negate:
            return {}
        pinned: dict[str, Affine] = {}
        for part in cond.parts:
            pinned.update(_pinned_by(part, False, ranges))
        return pinned
    assert isinstance(cond, Cmp)
    effective = cond.negate() if negate else cond

    # Normal form: single variable with coefficient 1 on the left.
    lhs, rhs, op = effective.lhs, effective.rhs, effective.op
    if len(lhs.symbols) != 1 or rhs.symbols & lhs.symbols:
        return {}
    (var,) = lhs.symbols
    if lhs.coeff(var) != 1:
        return {}
    # value bound: var op (rhs - (lhs - var))
    bound = rhs - (lhs - Affine.var(var))

    if op == "==":
        return {var: bound}
    rng = ranges.get(var)
    if rng is None:
        return {}
    if op == "<=":
        # var in [lo, bound]: a single value iff bound == lo.
        return {var: bound} if bound == rng.lower else {}
    if op == "<":
        # var in [lo, bound-1]: single iff bound-1 == lo.
        return {var: rng.lower} if bound - 1 == rng.lower else {}
    if op == ">=":
        # var in [bound, hi-1]: single iff bound == hi-1.
        return {var: bound} if bound == rng.upper - 1 else {}
    if op == ">":
        # var in [bound+1, hi-1]: single iff bound+1 == hi-1.
        return {var: bound + 1} if bound + 1 == rng.upper - 1 else {}
    return {}


def _rewrite_refs(expr: Expr, pinned: dict[str, Affine]) -> Expr:
    def transform(ref: ArrayRef) -> Expr:
        new_index = []
        changed = False
        for sub in ref.index:
            replaced = sub
            for var, value in pinned.items():
                if sub == value and not sub.depends_on(var):
                    replaced = Affine.var(var)
                    changed = True
                    break
            new_index.append(replaced)
        return ArrayRef(ref.array, tuple(new_index)) if changed else ref

    return replace_array(expr, transform)


def _rewrite_stmt(s: Stmt, pinned: dict[str, Affine], ranges: dict[str, _LoopRange]) -> Stmt:
    if isinstance(s, Assign):
        lhs = s.lhs
        if isinstance(lhs, ArrayRef):
            lhs = _rewrite_refs(lhs, pinned)
        return Assign(lhs, _rewrite_refs(s.rhs, pinned))
    if isinstance(s, ExternalRead):
        if isinstance(s.lhs, ArrayRef):
            return ExternalRead(_rewrite_refs(s.lhs, pinned))
        return s
    if isinstance(s, If):
        then_pins = dict(pinned)
        then_pins.update(_pinned_by(s.cond, False, ranges))
        else_pins = dict(pinned)
        else_pins.update(_pinned_by(s.cond, True, ranges))
        return If(
            s.cond,
            tuple(_rewrite_stmt(b, then_pins, ranges) for b in s.then),
            tuple(_rewrite_stmt(b, else_pins, ranges) for b in s.orelse),
        )
    if isinstance(s, Loop):
        inner_ranges = dict(ranges)
        inner_ranges[s.var] = _LoopRange(s.lower, s.upper)
        # A new binding invalidates any outer pin of the same name (the IR
        # forbids shadowing, but be safe).
        inner_pins = {v: c for v, c in pinned.items() if v != s.var}
        return s.with_body(tuple(_rewrite_stmt(b, inner_pins, inner_ranges) for b in s.body))
    return s


def normalize_guard_contexts(program: Program, name: str | None = None) -> Program:
    """Rewrite pinned-constant subscripts to their variable form everywhere."""
    body = tuple(_rewrite_stmt(s, {}, {}) for s in program.body)
    if body == program.body:
        return program
    return program.with_body(body, name=name or program.name)

"""Array peeling (paper §3.2, Figure 6).

Some arrays cannot shrink because a *small slice* stays live across the
whole loop — Figure 6's ``a[1..N, 1]`` is defined at the start and used at
the very end. Peeling splits that slice into its own dedicated storage
(``a1[N]``), after which the remainder of the array often becomes
shrinkable.

Two reference situations arise:

* a reference's subscript in the peeled dimension is *exactly* the peeled
  index (``a[i, 1]`` with the slice at 1): rewrite unconditionally;
* the subscript involves loop variables and only *sometimes* equals the
  peeled index (``a[i, j-1]`` hits the slice at ``j = 2``): the statement
  is split under a guard — ``if j - 1 == 1`` use the peeled array, else the
  original — exactly the index-set splitting visible in Figure 6(c)'s
  ``if (j=2) b1 = f(a1[i], a2) else b1 = f(a3[i], a2)``.

Peeling is storage splitting: as long as every reference that can touch
the slice is redirected, semantics are preserved; the pipeline verifies
with the interpreter regardless.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransformError
from ..lang.affine import Affine, AffineLike, Cmp
from ..lang.analysis.arrays import refs_of_array
from ..lang.expr import ArrayRef, Expr, replace_array
from ..lang.program import Program
from ..lang.stmt import Assign, ExternalRead, If, Loop, Stmt
from ..lang.types import ArrayDecl


@dataclass(frozen=True)
class _PeelSpec:
    array: str
    dim: int
    at: Affine
    peeled_name: str

    def matches_exactly(self, ref: ArrayRef) -> bool:
        return ref.array == self.array and ref.index[self.dim] == self.at

    def may_alias(self, ref: ArrayRef, ranges: dict[str, tuple] | None = None) -> bool:
        """True when the subscript could equal the peeled index for *some*
        iteration. A subscript ``v + k`` with ``v in [lo, hi)`` provably
        misses the slice when ``at < lo + k`` or ``at > hi - 1 + k`` (as far
        as the affine arithmetic can decide with symbolic bounds); such
        references are left untouched instead of being guard-split."""
        if ref.array != self.array:
            return False
        sub = ref.index[self.dim]
        diff = sub - self.at
        if diff.is_constant:
            return False  # either exact (handled) or never equal
        if ranges:
            loop_syms = [v for v in sub.symbols if v in ranges]
            if len(loop_syms) == 1 and sub.coeff(loop_syms[0]) == 1:
                (v,) = loop_syms
                lower, upper = ranges[v]
                offset = sub - Affine.var(v)
                below = self.at - (lower + offset)  # negative => at < min
                if below.is_constant and below.const < 0:
                    return False
                above = (upper - 1 + offset) - self.at  # negative => at > max
                if above.is_constant and above.const < 0:
                    return False
        return True

    def peel_ref(self, ref: ArrayRef) -> ArrayRef:
        index = tuple(sub for d, sub in enumerate(ref.index) if d != self.dim)
        if not index:
            index = (Affine.const_of(0),)
        return ArrayRef(self.peeled_name, index)


def _rewrite_exact(expr: Expr, spec: _PeelSpec) -> Expr:
    def transform(ref: ArrayRef) -> Expr:
        if spec.matches_exactly(ref):
            return spec.peel_ref(ref)
        return ref

    return replace_array(expr, transform)


def _force_ref(expr: Expr, target: ArrayRef, replacement: ArrayRef) -> Expr:
    """Replace one exact reference occurrence-wise (all occurrences of the
    syntactically identical ref)."""
    def transform(ref: ArrayRef) -> Expr:
        return replacement if ref == target else ref

    return replace_array(expr, transform)


def _split_stmt(
    stmt: Stmt,
    spec: _PeelSpec,
    skipped: frozenset[ArrayRef] = frozenset(),
    ranges: dict[str, tuple] | None = None,
) -> Stmt:
    """Guard-split one leaf statement until no aliasing reference remains.

    ``skipped`` carries references already decided *not* to hit the slice
    on this guard path (else-branches), so the recursion terminates:
    every level either resolves one reference into the peeled array or
    adds it to ``skipped``.
    """
    if isinstance(stmt, Assign):
        refs = [
            r
            for r in _stmt_refs(stmt)
            if spec.may_alias(r, ranges) and r not in skipped
        ]
        if not refs:
            return stmt
        ref = refs[0]
        cond = Cmp("==", ref.index[spec.dim], spec.at)
        then_variant = _replace_in_assign(stmt, ref, spec.peel_ref(ref))
        return If(
            cond,
            (_split_stmt(then_variant, spec, skipped, ranges),),
            (_split_stmt(stmt, spec, skipped | {ref}, ranges),),
        )
    if isinstance(stmt, ExternalRead):
        if isinstance(stmt.lhs, ArrayRef) and spec.may_alias(stmt.lhs, ranges):
            cond = Cmp("==", stmt.lhs.index[spec.dim], spec.at)
            return If(
                cond,
                (ExternalRead(spec.peel_ref(stmt.lhs)),),
                (stmt,),
            )
        return stmt
    raise TransformError(f"cannot split {type(stmt).__name__}")


def _stmt_refs(stmt: Assign) -> list[ArrayRef]:
    from ..lang.expr import array_refs

    refs = array_refs(stmt.rhs)
    if isinstance(stmt.lhs, ArrayRef):
        refs.append(stmt.lhs)
    return refs


def _replace_in_assign(stmt: Assign, target: ArrayRef, replacement: ArrayRef) -> Assign:
    rhs = _force_ref(stmt.rhs, target, replacement)
    lhs = stmt.lhs
    if isinstance(lhs, ArrayRef) and lhs == target:
        lhs = replacement
    return Assign(lhs, rhs)


def _rewrite_block(
    stmts: tuple[Stmt, ...],
    spec: _PeelSpec,
    ranges: dict[str, tuple] | None = None,
) -> tuple[Stmt, ...]:
    ranges = ranges or {}
    out: list[Stmt] = []
    for s in stmts:
        if isinstance(s, Loop):
            inner = dict(ranges)
            inner[s.var] = (s.lower, s.upper)
            out.append(s.with_body(_rewrite_block(s.body, spec, inner)))
        elif isinstance(s, If):
            out.append(
                If(
                    s.cond,
                    _rewrite_block(s.then, spec, ranges),
                    _rewrite_block(s.orelse, spec, ranges),
                )
            )
        elif isinstance(s, Assign):
            exact = Assign(
                spec.peel_ref(s.lhs)
                if isinstance(s.lhs, ArrayRef) and spec.matches_exactly(s.lhs)
                else s.lhs,
                _rewrite_exact(s.rhs, spec),
            )
            out.append(_split_stmt(exact, spec, frozenset(), ranges))
        elif isinstance(s, ExternalRead):
            if isinstance(s.lhs, ArrayRef) and spec.matches_exactly(s.lhs):
                out.append(ExternalRead(spec.peel_ref(s.lhs)))
            else:
                out.append(_split_stmt(s, spec, frozenset(), ranges))
        else:
            out.append(s)
    return tuple(out)


def peel_array(
    program: Program,
    array: str,
    dim: int,
    at: AffineLike,
    name: str | None = None,
) -> Program:
    """Peel the slice ``array[..., at, ...]`` (position ``dim``) into its
    own array named ``<array>_peel<dim>``."""
    decl = program.array(array)
    if array in program.outputs:
        raise TransformError(f"{array} is a program output; cannot peel")
    if not (0 <= dim < decl.rank):
        raise TransformError(f"{array} has no dimension {dim}")
    at_affine = Affine.of(at)
    loose = at_affine.symbols - set(program.params)
    if loose:
        raise TransformError(f"peel index must be parameter-affine; uses {sorted(loose)}")

    peeled = f"{array}_peel{dim}"
    spec = _PeelSpec(array, dim, at_affine, peeled)

    reads, writes = refs_of_array(_as_block(program), array)
    if not any(spec.matches_exactly(r) or spec.may_alias(r) for r in reads + writes):
        raise TransformError(f"no reference of {array} can touch slice {at_affine}")

    from dataclasses import replace

    body = _rewrite_block(program.body, spec)
    peel_shape = tuple(e for d, e in enumerate(decl.shape) if d != dim)
    if not peel_shape:
        peel_shape = (Affine.const_of(1),)
    return replace(
        program,
        name=name or f"{program.name}_peel",
        body=body,
        arrays=program.arrays + (ArrayDecl(peeled, peel_shape, decl.dtype),),
    )


def _as_block(program: Program):
    """A pseudo-statement wrapping the whole body for refs_of_array."""
    from ..lang.stmt import Loop

    class _Wrapper:
        def walk(self):
            for s in program.body:
                yield from s.walk()

    return _Wrapper()

"""Matrix multiply in all loop orders, plus the blocked (-O3) variant.

Figure 1 contrasts ``mm (-O2)`` — the compiler keeps the ``jki`` loop
order, memory balance 5.9 B/flop — against ``mm (-O3)`` — Carr–Kennedy
computation blocking collapses it to 0.04 B/flop.

The paper's kernel is Fortran (column-major); this IR is row-major, so
the subscripts here are the layout-transposed equivalents: Fortran
``c(i,j) += a(i,k) * b(k,j)`` with ``i`` contiguous becomes row-major
``c[j,i] += a[k,i] * b[j,k]`` with ``i`` in the last (contiguous)
position. Loop-order names (``jki`` etc.) keep the paper's meaning:
outermost first, ``i`` innermost in ``jki``.
"""

from __future__ import annotations

from ..errors import ReproError
from ..lang.builder import ProgramBuilder
from ..lang.program import Program
from ..transforms.scalar_replacement import replace_scalars
from ..transforms.tiling import tile_nest

DEFAULT_N = 120

_ORDERS = ("ijk", "ikj", "jik", "jki", "kij", "kji")


def matmul(n: int = DEFAULT_N, order: str = "jki") -> Program:
    """``c[j,i] += a[k,i] * b[j,k]`` (the Fortran kernel transposed to
    row-major) with the loops nested in ``order``, outermost first.
    ``jki`` is the paper's mm(-O2): ``i`` innermost, streaming ``c`` and
    ``a`` rows contiguously with ``b[j,k]`` invariant."""
    if order not in _ORDERS:
        raise ReproError(f"order must be one of {_ORDERS}")
    b = ProgramBuilder(f"mm_{order}", params={"N": n})
    a = b.array("a", ("N", "N"))
    bb = b.array("b", ("N", "N"))
    c = b.array("c", ("N", "N"), output=True)

    import contextlib

    with contextlib.ExitStack() as stack:
        syms = {}
        for var in order:
            syms[var] = stack.enter_context(b.loop(var, 0, "N"))
        i, j, k = syms["i"], syms["j"], syms["k"]
        b.assign(c[j, i], c[j, i] + a[k, i] * bb[j, k])
    return b.build()


def matmul_blocked(
    n: int = DEFAULT_N,
    tile: int = 30,
    scalar_replace: bool = True,
) -> Program:
    """The mm(-O3) stand-in: Carr–Kennedy blocking of the ``k`` dimension.

    Final nest ``k_t, j, k, i``: for one k-tile, the ``a`` rows of the tile
    (tile x N elements) stay cache-resident and are reused by *every* j,
    so ``a`` streams from memory once instead of N times; ``c`` rows pass
    N/tile times. Memory balance drops by roughly a factor of the tile
    size — the paper's order-of-magnitude collapse. ``b[j,k]`` is scalar-
    replaced out of the inner loop (register reuse, the L1-Reg drop)."""
    if n % tile:
        raise ReproError(f"tile {tile} must divide N={n}")
    base = matmul(n, order="jki")
    tiled = tile_nest(
        base,
        0,
        {"k": tile},
        order=["k_t", "j", "k", "i"],
        name=f"mm_blocked{tile}",
    )
    if scalar_replace:
        tiled = replace_scalars(tiled, name=f"mm_blocked{tile}")
    return tiled

"""The paper's own example programs, transcribed 0-based.

* §2.1 — the write-loop vs read-loop pair showing bandwidth (not latency)
  governs the times;
* Figure 4 — the six-loop fusion counterexample as a real IR program whose
  fusion graph matches the figure;
* Figure 6 — the three stages of storage reduction: original, fused, and
  shrunk+peeled, each exactly as printed in the paper (and verified
  equivalent by the test suite — a check the paper's authors never ran);
* Figure 7 — the store-elimination example, original and hand-fused.
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder, call
from ..lang.program import Program

SEC21_N = 131072
FIG_N = 512


# ---------------------------------------------------------------------------
# Section 2.1
# ---------------------------------------------------------------------------

def sec21_program(n: int = SEC21_N) -> Program:
    """Both loops of the §2.1 example, in order."""
    b = ProgramBuilder("sec21", params={"N": n})
    a = b.array("A", "N", output=True)
    s = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(a[i], a[i] + 0.4)
    with b.loop("i", 0, "N") as i:
        b.assign(s, s + a[i])
    return b.build()


def sec21_write_loop(n: int = SEC21_N) -> Program:
    """The first loop alone: reads and writes the array."""
    b = ProgramBuilder("sec21_write", params={"N": n})
    a = b.array("A", "N", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(a[i], a[i] + 0.4)
    return b.build()


def sec21_read_loop(n: int = SEC21_N) -> Program:
    """The second loop alone: reads only."""
    b = ProgramBuilder("sec21_read", params={"N": n})
    a = b.array("A", "N")
    s = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(s, s + a[i])
    return b.build()


# ---------------------------------------------------------------------------
# Figure 4 — six loops over arrays A..F plus the reduction scalar
# ---------------------------------------------------------------------------

def fig4_program(n: int = FIG_N) -> Program:
    """An IR program whose fusion graph is the paper's Figure 4.

    Loops 1-3 access {A, D, E, F}; loop 4 accesses {B, C, D, E, F}; loop 5
    accesses {A}; loop 6 accesses {B, C}. Loop 6 depends on loop 5 through
    the reduction scalar. The figure's *assumed* fusion-preventing edge
    between loops 5 and 6 is supplied to the graph builder by the Figure 4
    experiment (``extra_preventing=[(4, 5)]``), as in the paper.
    """
    b = ProgramBuilder("fig4", params={"N": n})
    A = b.array("A", "N")
    B = b.array("B", "N")
    C = b.array("C", "N")
    D = b.array("D", "N", output=True)
    E = b.array("E", "N", output=True)
    F = b.array("F", "N", output=True)
    s = b.scalar("sum", output=True)
    with b.loop("i1", 0, "N") as i:
        b.assign(D[i], A[i] + E[i] * F[i])
    with b.loop("i2", 0, "N") as i:
        b.assign(E[i], A[i] + D[i] * F[i])
    with b.loop("i3", 0, "N") as i:
        b.assign(F[i], A[i] + D[i] * E[i])
    with b.loop("i4", 0, "N") as i:
        b.assign(B[i], C[i] + D[i] * E[i] + F[i])
    with b.loop("i5", 0, "N") as i:
        b.assign(s, s + A[i])
    with b.loop("i6", 0, "N") as i:
        b.assign(s, s + B[i] * C[i])
    return b.build()


#: The fusion-preventing pair the figure assumes (0-based node indices).
FIG4_PREVENTING: tuple[tuple[int, int], ...] = ((4, 5),)


# ---------------------------------------------------------------------------
# Figure 6 — original / fused / shrunk+peeled
# ---------------------------------------------------------------------------

def fig6_original(n: int = FIG_N) -> Program:
    """Figure 6(a): init, compute, boundary fix, checksum (0-based)."""
    b = ProgramBuilder("fig6_original", params={"N": n})
    a = b.array("a", ("N", "N"))
    bb = b.array("b", ("N", "N"))
    s = b.scalar("sum", output=True)
    N = b.sym("N")
    with b.loop("j", 0, "N") as j:
        with b.loop("i", 0, "N") as i:
            b.read(a[i, j])
    with b.loop("j", 1, "N") as j:
        with b.loop("i", 0, "N") as i:
            b.assign(bb[i, j], call("f", a[i, j - 1], a[i, j]))
    with b.loop("i", 0, "N") as i:
        b.assign(bb[i, N - 1], call("g", bb[i, N - 1], a[i, 0]))
    with b.loop("j", 1, "N") as j:
        with b.loop("i", 0, "N") as i:
            b.assign(s, s + a[i, j] + bb[i, j])
    return b.build()


def fig6_fused(n: int = FIG_N) -> Program:
    """Figure 6(b): guard-based fusion of all four loops."""
    b = ProgramBuilder("fig6_fused", params={"N": n})
    a = b.array("a", ("N", "N"))
    bb = b.array("b", ("N", "N"))
    s = b.scalar("sum", output=True)
    N = b.sym("N")
    with b.loop("i", 0, "N") as i:
        b.read(a[i, 0])
    with b.loop("j", 1, "N") as j:
        with b.loop("i", 0, "N") as i:
            b.read(a[i, j])
            b.assign(bb[i, j], call("f", a[i, j - 1], a[i, j]))
            with b.if_(j <= N - 2):
                b.assign(s, s + a[i, j] + bb[i, j])
            with b.else_():
                b.assign(bb[i, N - 1], call("g", bb[i, N - 1], a[i, 0]))
                b.assign(s, s + bb[i, N - 1] + a[i, N - 1])
    return b.build()


def fig6_optimized(n: int = FIG_N) -> Program:
    """Figure 6(c): after array shrinking and peeling — two N-vectors and
    two scalars instead of two N^2 arrays."""
    b = ProgramBuilder("fig6_optimized", params={"N": n})
    a1 = b.array("a1", "N")  # peeled slice a[*, 0]
    a3 = b.array("a3", "N")  # shrink buffer carrying a[*, j-1]
    s = b.scalar("sum", output=True)
    b1 = b.scalar("b1")
    a2 = b.scalar("a2")
    N = b.sym("N")
    with b.loop("i", 0, "N") as i:
        b.read(a1[i])
    with b.loop("j", 1, "N") as j:
        with b.loop("i", 0, "N") as i:
            b.read(a2)
            with b.if_(j.eq(1)):
                b.assign(b1, call("f", a1[i], a2))
            with b.else_():
                b.assign(b1, call("f", a3[i], a2))
            with b.if_(j <= N - 2):
                b.assign(s, s + a2 + b1)
                b.assign(a3[i], a2)
            with b.else_():
                b.assign(b1, call("g", b1, a1[i]))
                b.assign(s, s + b1 + a2)
    return b.build()


# ---------------------------------------------------------------------------
# Figure 7 — store elimination
# ---------------------------------------------------------------------------

def fig7_original(n: int = SEC21_N) -> Program:
    """Figure 7(a): update res, then reduce it."""
    b = ProgramBuilder("fig7", params={"N": n})
    res = b.array("res", "N")
    data = b.array("data", "N")
    s = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(res[i], res[i] + data[i])
    with b.loop("i", 0, "N") as i:
        b.assign(s, s + res[i])
    return b.build()


def fig7_fused(n: int = SEC21_N) -> Program:
    """Figure 7(b): fused but still storing res."""
    b = ProgramBuilder("fig7_fused", params={"N": n})
    res = b.array("res", "N")
    data = b.array("data", "N")
    s = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(res[i], res[i] + data[i])
        b.assign(s, s + res[i])
    return b.build()


def fig7_store_eliminated(n: int = SEC21_N) -> Program:
    """Figure 7(c): ``sum += res[i] + data[i]`` — the store is gone."""
    b = ProgramBuilder("fig7_se", params={"N": n})
    res = b.array("res", "N")
    data = b.array("data", "N")
    s = b.scalar("sum", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(s, s + res[i] + data[i])
    return b.build()

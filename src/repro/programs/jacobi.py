"""Jacobi relaxation — the classic bandwidth-bound stencil.

A 5-point sweep with ping-pong arrays, plus a fused residual reduction.
Not one of the paper's Figure 1 rows, but the canonical member of the
program class its model targets: ~4 flops per point against two
grid-sized streams. Used by the extended balance survey (E17) and as a
transformation target in tests (the residual loop fuses into the sweep;
neither array can shrink — both live across top-level statements — which
exercises the pipeline's rejection paths).
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from ..lang.program import Program

DEFAULT_N = 180
DEFAULT_SWEEPS = 2


def jacobi(n: int = DEFAULT_N, sweeps: int = DEFAULT_SWEEPS) -> Program:
    """``sweeps`` ping-pong relaxation passes plus a residual norm."""
    b = ProgramBuilder("jacobi", params={"N": n})
    u = b.array("u", ("N", "N"), output=True)
    v = b.array("v", ("N", "N"), output=True)
    resid = b.scalar("resid", output=True)
    grids = [u, v]
    N = b.sym("N")

    for s in range(sweeps):
        src, dst = grids[s % 2], grids[(s + 1) % 2]
        with b.loop(f"j{s}", 1, N - 1) as j:
            with b.loop(f"i{s}", 1, N - 1) as i:
                b.assign(
                    dst[j, i],
                    (src[j, i - 1] + src[j, i + 1] + src[j - 1, i] + src[j + 1, i])
                    * 0.25,
                )
    final = grids[sweeps % 2]
    other = grids[(sweeps + 1) % 2]
    with b.loop("jr", 1, N - 1) as j:
        with b.loop("ir", 1, N - 1) as i:
            diff = final[j, i] - other[j, i]
            b.assign(resid, resid + diff * diff)
    return b.build()

"""Iterative radix-2 FFT (Figure 1's ``FFT`` row).

A decimation-in-time butterfly network over separate real/imaginary
arrays: log2(N) passes over the data, giving the moderate balance profile
of Figure 1 (8.3 / 3.0 / 2.7 B/flop): heavy register traffic per
butterfly, cache reuse inside a pass, roughly one memory sweep of the
data per stage.

Twiddle factors use per-stage contiguous tables (``w<stage>[j]``), the
standard FFTW-style layout — a single shared table indexed at stage
stride would stream one full cache line per butterfly and swamp the
measurement with table traffic no real FFT pays.

Stage strides are constants baked in at build time (the IR's affine
subscripts cannot express bit-reversal), so an FFT program is built for
one concrete size; rebuild for another size. The bit-reversal permutation
pass is omitted — it moves O(N) data once and does not change the balance
shape.
"""

from __future__ import annotations

from ..errors import ReproError
from ..lang.builder import ProgramBuilder
from ..lang.program import Program

DEFAULT_N = 16384


def fft(n: int = DEFAULT_N) -> Program:
    """Build the butterfly passes for a size-``n`` (power of two) FFT."""
    if n < 2 or n & (n - 1):
        raise ReproError(f"FFT size must be a power of two, got {n}")
    b = ProgramBuilder(f"fft{n}", params={"N": n})
    re = b.array("re", "N", output=True)
    im = b.array("im", "N", output=True)
    tr = b.scalar("tr")
    ti = b.scalar("ti")
    wr = b.scalar("wr")
    wi = b.scalar("wi")

    stages = n.bit_length() - 1
    twiddles = []
    for s in range(stages):
        half = 1 << s
        twiddles.append(
            (b.array(f"wre{s}", half), b.array(f"wim{s}", half))
        )

    for s in range(stages):
        m = 1 << (s + 1)  # butterfly span of this stage
        half = m // 2
        wre_s, wim_s = twiddles[s]
        kvar, jvar = f"k{s}", f"j{s}"
        with b.loop(kvar, 0, n // m) as k:
            with b.loop(jvar, 0, half) as j:
                top = k * m + j
                bot = k * m + j + half
                b.assign(wr, wre_s[j])
                b.assign(wi, wim_s[j])
                b.assign(tr, wr * re[bot] - wi * im[bot])
                b.assign(ti, wr * im[bot] + wi * re[bot])
                b.assign(re[bot], re[top] - tr)
                b.assign(im[bot], im[top] - ti)
                b.assign(re[top], re[top] + tr)
                b.assign(im[top], im[top] + ti)
    return b.build()

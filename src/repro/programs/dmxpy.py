"""The Linpack ``dmxpy`` kernel (Figure 1's worst-balance row).

``y = y + x * M`` column by column: every inner iteration loads a fresh
matrix element and re-loads/stores a vector element, with two flops to
show for it — the paper measures 8.3–8.4 bytes per flop at *every* level
and the largest memory demand/supply ratio (10.5) of the suite.

The matrix is streamed row-wise (``m[j, i]``, stride one in the inner
loop, as the Fortran original is stride one in its inner loop), and the
``y`` vector is sized like the matrix rows so that, as in Linpack's large
problems, it does not stay cached between column passes.
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from ..lang.program import Program

DEFAULT_N = 131072  # vector length
DEFAULT_COLS = 16  # number of column passes


def dmxpy(n: int = DEFAULT_N, cols: int = DEFAULT_COLS) -> Program:
    b = ProgramBuilder("dmxpy", params={"N": n, "M": cols})
    y = b.array("y", "N", output=True)
    x = b.array("x", "M")
    m = b.array("m", ("M", "N"))
    with b.loop("j", 0, "M") as j:
        with b.loop("i", 0, "N") as i:
            b.assign(y[i], y[i] + x[j] * m[j, i])
    return b.build()

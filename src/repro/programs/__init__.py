"""Workload programs: kernels, applications, and the paper's examples."""

from .blas1 import BLAS1_KERNELS, EXPECTED_MEMORY_BALANCE, blas1, blas1_suite
from .convolution import convolution
from .dmxpy import dmxpy
from .fft import fft
from .jacobi import jacobi
from .kernels import KERNEL_NAMES, all_kernels, kernel_spec, make_kernel
from .matmul import matmul, matmul_blocked
from .nas_sp import STRIDED_SUBROUTINES, SUBROUTINES, nas_sp
from .paper_examples import (
    FIG4_PREVENTING,
    fig4_program,
    fig6_fused,
    fig6_optimized,
    fig6_original,
    fig7_fused,
    fig7_original,
    fig7_store_eliminated,
    sec21_program,
    sec21_read_loop,
    sec21_write_loop,
)
from .sweep3d import sweep3d

__all__ = [
    "BLAS1_KERNELS",
    "EXPECTED_MEMORY_BALANCE",
    "FIG4_PREVENTING",
    "KERNEL_NAMES",
    "STRIDED_SUBROUTINES",
    "SUBROUTINES",
    "all_kernels",
    "blas1",
    "blas1_suite",
    "convolution",
    "dmxpy",
    "fft",
    "fig4_program",
    "fig6_fused",
    "fig6_optimized",
    "fig6_original",
    "fig7_fused",
    "fig7_original",
    "fig7_store_eliminated",
    "jacobi",
    "kernel_spec",
    "make_kernel",
    "matmul",
    "matmul_blocked",
    "nas_sp",
    "sec21_program",
    "sec21_read_loop",
    "sec21_write_loop",
    "sweep3d",
]

"""Miniature NAS/SP (Figure 1's ``NAS/SP`` row; §2.3's utilization study).

The real SP benchmark is a 3 000-line ADI solver; its role in the paper is
to supply (a) a whole-application balance row (10.8 / 6.4 / 4.9 B/flop)
and (b) the §2.3 claim that 5 of its 7 major subroutines saturate >= 84 %
of the Origin's memory bandwidth. Both are properties of its structure:
a few dozen grid-sized arrays swept by seven phases, most of them
streaming, with the ADI line solves along the non-contiguous axes
accessing memory at large strides.

This miniature keeps that structure on a 2-D grid:

* ``compute_rhs``, ``txinvr``, ``x_solve``, ``add``, ``norm`` sweep the
  grid with the contiguous axis innermost (stride-one, saturating);
* ``y_solve`` and ``z_solve`` sweep with the *row* axis innermost
  (stride ``NX`` elements — each element touch pulls a whole cache line,
  so these phases burn latency and fall below the saturation threshold,
  exactly the two laggard subroutines of §2.3).

One top-level loop nest per subroutine, so per-subroutine counters come
from per-statement traces.
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder, call
from ..lang.program import Program

DEFAULT_NX = 192
DEFAULT_NY = 192

#: Subroutine order as in SP's main iteration; index = top-level position.
SUBROUTINES = (
    "compute_rhs",
    "txinvr",
    "x_solve",
    "y_solve",
    "z_solve",
    "add",
    "norm",
)

#: The phases whose innermost axis is non-contiguous.
STRIDED_SUBROUTINES = ("y_solve", "z_solve")


def nas_sp(nx: int = DEFAULT_NX, ny: int = DEFAULT_NY) -> Program:
    """Build the seven-phase miniature; top-level statement ``k`` is
    subroutine ``SUBROUTINES[k]``."""
    b = ProgramBuilder("nas_sp", params={"NX": nx, "NY": ny})
    u = [b.array(f"u{k}", ("NY", "NX"), output=True) for k in range(3)]
    rhs = [b.array(f"rhs{k}", ("NY", "NX")) for k in range(3)]
    frc = [b.array(f"frc{k}", ("NY", "NX")) for k in range(3)]
    rho_i = b.array("rho_i", ("NY", "NX"))
    qs = b.array("qs", ("NY", "NX"))
    speed = b.array("speed", ("NY", "NX"))
    lhs = b.array("lhs", ("NY", "NX"))
    norm = b.scalar("rnorm", output=True)
    NX, NY = b.sym("NX"), b.sym("NY")

    # compute_rhs: rhs_k = frc_k + stencil(u_k); refresh rho_i/qs/speed.
    with b.loop("j0", 0, "NY") as j:
        with b.loop("i0", 1, NX - 1) as i:
            b.assign(rho_i[j, i], 1.0 / (u[0][j, i] + 0.5))
            b.assign(qs[j, i], (u[1][j, i] * u[1][j, i] + u[2][j, i] * u[2][j, i]) * rho_i[j, i])
            b.assign(speed[j, i], call("sqrt", qs[j, i] + 1.4))
            for k in range(3):
                b.assign(
                    rhs[k][j, i],
                    frc[k][j, i]
                    + (u[k][j, i - 1] - u[k][j, i] * 2.0 + u[k][j, i + 1]) * 0.1,
                )

    # txinvr: scale rhs by the inverse-density block diagonal.
    with b.loop("j1", 0, "NY") as j:
        with b.loop("i1", 1, NX - 1) as i:
            for k in range(3):
                b.assign(rhs[k][j, i], rhs[k][j, i] * rho_i[j, i] - qs[j, i] * 0.01)

    # x_solve: line sweep along the contiguous axis (stride one).
    with b.loop("j2", 0, "NY") as j:
        with b.loop("i2", 1, NX - 1) as i:
            b.assign(lhs[j, i], 1.0 / (speed[j, i] + 2.0))
            b.assign(rhs[0][j, i], (rhs[0][j, i] - rhs[0][j, i - 1] * 0.2) * lhs[j, i])

    # y_solve / z_solve: line sweeps along the row axis — innermost loop
    # walks column-wise, stride NX elements (the ADI transpose sweeps).
    for axis, (jv, iv) in enumerate((("i3", "j3"), ("i4", "j4"))):
        comp = axis + 1
        t = b.scalar(f"t{axis}")
        with b.loop(jv, 0, "NX") as i:
            with b.loop(iv, 1, NY - 1) as j:
                # Real SP back-substitutes a 5x5 block system per cell —
                # over a hundred register-resident flops per element. The
                # miniature models that flop density with a Newton-style
                # refinement chain on a scalar: one strided array column
                # (which the cache keeps resident) plus dense arithmetic.
                # These are the phases that do NOT saturate memory
                # bandwidth in §2.3's utilization study.
                b.assign(t, rhs[comp][j, i] - rhs[comp][j - 1, i] * 0.2)
                for _ in range(8):
                    b.assign(t, (t + (1.5 + 0.25 * comp) / t) * 0.5)
                b.assign(rhs[comp][j, i], t * 0.9)

    # add: u_k += rhs_k (stride one).
    with b.loop("j5", 0, "NY") as j:
        with b.loop("i5", 1, NX - 1) as i:
            for k in range(3):
                b.assign(u[k][j, i], u[k][j, i] + rhs[k][j, i])

    # norm: residual reduction (stride one).
    with b.loop("j6", 0, "NY") as j:
        with b.loop("i6", 1, NX - 1) as i:
            b.assign(norm, norm + rhs[0][j, i] * rhs[0][j, i])

    return b.build()

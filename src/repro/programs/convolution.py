"""1-D convolution kernel (Figure 1's ``convolution`` row).

``b[i] = sum_k w_k * a[i + k]`` with constant weights: a streaming kernel
with high reuse inside the tap window but none across the arrays, giving
the moderate, roughly level balance profile the paper reports (6.4 / 5.1 /
5.2 bytes per flop).
"""

from __future__ import annotations

from ..errors import ReproError
from ..lang.builder import ProgramBuilder
from ..lang.program import Program

DEFAULT_N = 131072
DEFAULT_TAPS = 3

_WEIGHTS = (0.25, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625, 0.0078125)


def convolution(n: int = DEFAULT_N, taps: int = DEFAULT_TAPS) -> Program:
    """Build the convolution program (output length ``N - taps + 1``)."""
    if not (1 <= taps <= len(_WEIGHTS)):
        raise ReproError(f"taps must be in [1, {len(_WEIGHTS)}]")
    b = ProgramBuilder("convolution", params={"N": n})
    a = b.array("a", "N")
    out = b.array("b", "N", output=True)
    with b.loop("i", 0, b.sym("N") - (taps - 1)) as i:
        expr = a[i] * _WEIGHTS[0]
        for k in range(1, taps):
            expr = expr + a[i + k] * _WEIGHTS[k]
        b.assign(out[i], expr)
    return b.build()

"""Miniature Sweep3D (Figure 1's ``Sweep3D`` row).

DOE's Sweep3D performs wavefront transport sweeps: each cell's flux
depends on its upwind neighbours, and the sweep repeats for multiple
octants and angles. The balance-relevant structure — several grid-sized
arrays read per cell, a recurrence, few flops per byte — is preserved
here on a 2-D grid with a configurable number of octant passes (the
lexicographic loop order *is* the wavefront order for the ++ octant, so
the recurrence is legal sequential code).
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from ..lang.program import Program

DEFAULT_N = 384
DEFAULT_OCTANTS = 2


def sweep3d(n: int = DEFAULT_N, octants: int = DEFAULT_OCTANTS) -> Program:
    b = ProgramBuilder("sweep3d", params={"N": n})
    phi = b.array("phi", ("N", "N"))
    src = b.array("src", ("N", "N"))
    sigt = b.array("sigt", ("N", "N"))
    flux = b.array("flux", ("N", "N"), output=True)

    for octant in range(octants):
        jvar, ivar = f"j{octant}", f"i{octant}"
        mu, eta = 0.3 + 0.1 * octant, 0.6 - 0.1 * octant
        with b.loop(jvar, 1, "N") as j:
            with b.loop(ivar, 1, "N") as i:
                # Row-major [j, i]: the inner i walks contiguously; the
                # recurrence reads the west (i-1) and north (j-1) upwind
                # neighbours, and lexicographic order is the ++ wavefront.
                b.assign(
                    phi[j, i],
                    (src[j, i] + phi[j, i - 1] * mu + phi[j - 1, i] * eta)
                    / (sigt[j, i] + 1.0),
                )
                b.assign(flux[j, i], flux[j, i] + phi[j, i] * 0.5)
    return b.build()

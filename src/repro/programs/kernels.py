"""The stride-one read/write kernels of Figure 3.

Kernels are named ``<w>w<r>r``: the kernel touches ``r`` distinct arrays in
unit stride and writes ``w`` of them. ``1w2r`` reads two arrays and writes
one of them; ``0w1r`` only reads. The suite matches the paper's twelve
labels: 1w1r 2w2r 3w3r 1w2r 1w3r 1w4r 2w3r 2w5r 3w6r 0w1r 0w2r 0w3r.

Arrays are declared (and therefore laid out) in index order a0, a1, ...;
the Figure 3 Exemplar experiment relies on that order: with the
conflict-period-of-five layout, the six-array kernel 3w6r is the only one
whose first and last arrays collide in the direct-mapped cache — the
paper's footnote-3 anomaly.
"""

from __future__ import annotations

from ..errors import ReproError
from ..lang.builder import ProgramBuilder
from ..lang.program import Program

#: The twelve kernels, in the paper's presentation order.
KERNEL_NAMES: tuple[str, ...] = (
    "1w1r",
    "2w2r",
    "3w3r",
    "1w2r",
    "1w3r",
    "1w4r",
    "2w3r",
    "2w5r",
    "3w6r",
    "0w1r",
    "0w2r",
    "0w3r",
)

DEFAULT_N = 98304  # elements per array; experiments override per machine


def kernel_spec(name: str) -> tuple[int, int]:
    """Parse '<w>w<r>r' into (written arrays, distinct arrays)."""
    try:
        w_part, r_part = name.split("w")
        w = int(w_part)
        r = int(r_part.rstrip("r"))
    except ValueError as exc:
        raise ReproError(f"bad kernel name {name!r}") from exc
    if name not in KERNEL_NAMES:
        raise ReproError(f"unknown kernel {name!r}")
    return w, r


def make_kernel(name: str, n: int = DEFAULT_N) -> Program:
    """Build one stride-one kernel program.

    Statement patterns (w written arrays a0..a_{w-1}, remaining arrays read
    only; every statement reads its target, so each written array is also a
    read — matching the naming convention where 1w1r reads *and* writes one
    array):

    * read-only kernels accumulate into a scalar;
    * read/write kernels update ``a_k`` using the read-only arrays spread
      round-robin.
    """
    w, r = kernel_spec(name)
    b = ProgramBuilder(f"kernel_{name}", params={"N": n})
    arrays = [b.array(f"a{k}", "N", output=(k < w)) for k in range(r)]
    if w == 0:
        total = b.scalar("sum", output=True)
        with b.loop("i", 0, "N") as i:
            expr = arrays[0][i]
            for extra in arrays[1:]:
                expr = expr * extra[i]
            b.assign(total, total + expr)
        return b.build()

    readonly = arrays[w:]
    with b.loop("i", 0, "N") as i:
        for k in range(w):
            target = arrays[k]
            expr = target[i]
            if readonly:
                # Spread the read-only arrays across the written ones.
                mine = [readonly[j] for j in range(len(readonly)) if j % w == k]
                for extra in mine:
                    expr = expr + extra[i]
                if not mine:
                    expr = expr + 0.5
            else:
                expr = expr + 0.5
            b.assign(target[i], expr)
    return b.build()


def all_kernels(n: int = DEFAULT_N) -> dict[str, Program]:
    """The full Figure 3 suite."""
    return {name: make_kernel(name, n) for name in KERNEL_NAMES}

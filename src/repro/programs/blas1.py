"""BLAS level-1 kernels: the purest bandwidth-bound programs.

Four classics with textbook balance values (8-byte elements):

* ``copy``  — y[i] = x[i]                 : 16 B moved / 0 flops
* ``scal``  — x[i] = a * x[i]             : 16 B / 1 flop
* ``axpy``  — y[i] = y[i] + a * x[i]      : 24 B / 2 flops = 12 B/flop
* ``dot``   — s += x[i] * y[i]            : 16 B / 2 flops =  8 B/flop

Every one of them demands an order of magnitude more memory bandwidth
than the Origin supplies (0.8 B/flop) — the extended balance survey (E17)
lists them alongside the paper's applications as calibration points whose
expected balance is known in closed form.
"""

from __future__ import annotations

from ..errors import ReproError
from ..lang.builder import ProgramBuilder
from ..lang.program import Program

DEFAULT_N = 32768

BLAS1_KERNELS = ("copy", "scal", "axpy", "dot")

#: Closed-form memory balance (bytes per flop) for each kernel, assuming
#: streaming access (read + writeback for written arrays). ``copy`` has no
#: flops; its balance is infinite and it is reported separately.
EXPECTED_MEMORY_BALANCE = {
    "scal": 16.0,  # x read + writeback = 16 B, 1 flop
    "axpy": 12.0,  # x read, y read + writeback = 24 B, 2 flops
    "dot": 8.0,  # x and y read = 16 B, 2 flops
}


def blas1(kind: str, n: int = DEFAULT_N) -> Program:
    """Build one BLAS-1 kernel program."""
    if kind not in BLAS1_KERNELS:
        raise ReproError(f"kind must be one of {BLAS1_KERNELS}")
    b = ProgramBuilder(f"blas1_{kind}", params={"N": n})
    x = b.array("x", "N", output=(kind == "scal"))
    if kind != "scal":
        y = b.array("y", "N", output=(kind in ("copy", "axpy")))
    if kind == "dot":
        s = b.scalar("dotp", output=True)
    with b.loop("i", 0, "N") as i:
        if kind == "copy":
            b.assign(y[i], x[i])
        elif kind == "scal":
            b.assign(x[i], x[i] * 1.0009765625)
        elif kind == "axpy":
            b.assign(y[i], y[i] + x[i] * 2.5)
        else:
            b.assign(s, s + x[i] * y[i])
    return b.build()


def blas1_suite(n: int = DEFAULT_N) -> dict[str, Program]:
    return {kind: blas1(kind, n) for kind in BLAS1_KERNELS}

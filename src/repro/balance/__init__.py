"""The bandwidth-based performance model (paper section 2)."""

from .analytic import AnalyticEstimate, LevelEstimate, analyze, predict_run
from .cachebench import CacheBenchResult, measure_cachebench
from .intrinsic import (
    IntrinsicTraffic,
    bandwidth_headroom,
    intrinsic_balance,
    intrinsic_traffic,
)
from .model import (
    BalanceRatios,
    ProgramBalance,
    aggregate_balance,
    bandwidth_utilization,
    demand_supply_ratios,
    machine_balance,
    program_balance,
    required_memory_bandwidth,
)
from .prediction import (
    Prediction,
    predict_speedup,
    predict_time,
    utilization_bound_from_balance,
)
from .stream import StreamResult, measure_stream

__all__ = [
    "AnalyticEstimate",
    "BalanceRatios",
    "CacheBenchResult",
    "LevelEstimate",
    "IntrinsicTraffic",
    "Prediction",
    "ProgramBalance",
    "StreamResult",
    "aggregate_balance",
    "analyze",
    "bandwidth_headroom",
    "bandwidth_utilization",
    "demand_supply_ratios",
    "intrinsic_balance",
    "intrinsic_traffic",
    "machine_balance",
    "measure_cachebench",
    "measure_stream",
    "predict_run",
    "predict_speedup",
    "predict_time",
    "program_balance",
    "required_memory_bandwidth",
    "utilization_bound_from_balance",
]

"""Intrinsic bandwidth requirement (Huang & Shen's lower bound, §4).

Huang & Shen defined the *intrinsic* bandwidth of a program as the traffic
forced by value flow alone — the floor no cache of any size or policy can
beat. For a trace the analog is the infinite-cache traffic: every distinct
line is loaded once (compulsory) and every dirtied line written back once.

The paper's §4 criticism of the prior bounds is that they "assumed a fixed
order of computation": program transformations change the intrinsic
requirement itself. Our experiment E14 measures exactly that — intrinsic
traffic before and after the compiler strategy — turning the paper's
qualitative point into numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.events import Trace


@dataclass(frozen=True)
class IntrinsicTraffic:
    """Infinite-cache traffic of one trace at one line size."""

    line_size: int
    distinct_lines: int
    dirty_lines: int

    @property
    def read_bytes(self) -> int:
        return self.distinct_lines * self.line_size

    @property
    def write_bytes(self) -> int:
        return self.dirty_lines * self.line_size

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


def intrinsic_traffic(trace: Trace, line_size: int = 128) -> IntrinsicTraffic:
    """Compulsory-plus-writeback floor for ``trace``."""
    if len(trace) == 0:
        return IntrinsicTraffic(line_size, 0, 0)
    shift = int(line_size).bit_length() - 1
    lines = trace.addresses >> shift
    distinct = int(np.unique(lines).size)
    dirty = int(np.unique(lines[trace.is_write]).size)
    return IntrinsicTraffic(line_size, distinct, dirty)


def bandwidth_headroom(measured_bytes: int, intrinsic: IntrinsicTraffic) -> float:
    """How much of the measured traffic is avoidable in principle:
    ``measured / intrinsic`` (1.0 = already at the floor)."""
    if intrinsic.total_bytes == 0:
        return 1.0
    return measured_bytes / intrinsic.total_bytes


def intrinsic_balance(trace: Trace, line_size: int = 128) -> float:
    """Intrinsic bytes per flop — the lower bound on the program's memory
    balance under *this* computation order."""
    if trace.flops == 0:
        return float("inf") if len(trace) else 0.0
    return intrinsic_traffic(trace, line_size).total_bytes / trace.flops

"""STREAM analog: measure sustainable memory bandwidth of a simulated machine.

McCalpin's STREAM [paper ref 8] is how the authors measured the Origin2000's
~300 MB/s. We run the same four kernels (copy, scale, add, triad) through
the executor with arrays several times larger than the last cache and
report the best sustained rate, exactly as STREAM does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.builder import ProgramBuilder
from ..lang.program import Program
from ..interp.executor import execute
from ..machine.spec import MachineSpec


def _stream_program(kind: str, n: int) -> Program:
    b = ProgramBuilder(f"stream_{kind}", params={"N": n})
    a = b.array("a", "N", output=True)
    bb = b.array("b", "N")
    c = b.array("c", "N")
    with b.loop("i", 0, "N") as i:
        if kind == "copy":
            b.assign(a[i], bb[i])
        elif kind == "scale":
            b.assign(a[i], bb[i] * 3.0)
        elif kind == "add":
            b.assign(a[i], bb[i] + c[i])
        elif kind == "triad":
            b.assign(a[i], bb[i] + c[i] * 3.0)
        else:
            raise ValueError(f"unknown STREAM kernel {kind!r}")
    return b.build()


@dataclass(frozen=True)
class StreamResult:
    """Best-rate results of the four STREAM kernels (bytes/second)."""

    machine: str
    copy: float
    scale: float
    add: float
    triad: float

    @property
    def best(self) -> float:
        return max(self.copy, self.scale, self.add, self.triad)

    def describe(self) -> str:
        return (
            f"STREAM[{self.machine}]: copy={self.copy / 1e6:.0f} "
            f"scale={self.scale / 1e6:.0f} add={self.add / 1e6:.0f} "
            f"triad={self.triad / 1e6:.0f} MB/s"
        )


def measure_stream(spec: MachineSpec, array_factor: int = 4, passes: int = 2) -> StreamResult:
    """Run the STREAM kernels on ``spec``.

    ``array_factor`` sizes each array to that multiple of the last cache,
    mirroring STREAM's "much larger than cache" rule.
    """
    last = spec.cache_levels[-1].geometry
    n = max(1024, array_factor * last.size_bytes // 8)
    rates: dict[str, float] = {}
    for kind in ("copy", "scale", "add", "triad"):
        prog = _stream_program(kind, n)
        run = execute(prog, spec, passes=passes)
        rates[kind] = run.effective_bandwidth
    return StreamResult(spec.name, rates["copy"], rates["scale"], rates["add"], rates["triad"])

"""Analytic per-level traffic and time prediction (no trace generated).

Trace simulation is exact but O(accesses); this module predicts the same
counters in O(loop nest) by walking the IR.  The model is the working-set
("layer condition") approximation of the analytic loop-kernel literature
(Treibig & Hager's kernel model; the ECM family), grounded in the paper's
balance framework:

* every array reference under a loop nest is an affine byte function of
  the loop step variables — the coefficients come from the subscript
  affines times the layout strides (``machine.layout``);
* references with identical coefficient vectors form a *reference group*
  (a stencil's ``a[i]``/``a[i+1]``, or a read+write of one element);
* for each cache level, the *fit depth* d* is the outermost loop depth at
  which the nest's combined working set fits the cache.  Every group's
  distinct lines over loops ``d*-1 .. k`` are fetched once per iteration
  of the loops outside, which yields the per-level miss count directly:

      misses(g) = prod(trips[: e-1]) * lines_g(e),   e = max(1, d* - 1)

  (``e = d* - 1`` because line reuse between *adjacent* iterations of
  loop ``d*-1`` survives — its reuse distance is the fitting working set
  WS(d*) — while everything outside is evicted, WS(d) > C for d < d*);
* written groups write their lines back (the executor flushes dirty
  lines, so resident footprints pay the writeback too);
* on direct-mapped levels, groups that move in lockstep (identical
  coefficients) and whose placements collide modulo the cache size thrash
  each other: misses become access counts — the Exemplar footnote-3
  anomaly, computed from the same ``machine/layout.py`` placement math
  that creates it (and removed by the same padding that fixes it).

Flops, element loads and stores are counted exactly (the same counting
walk the trace generator uses to pre-size its buffers, so guards are
honored); per-level misses/writebacks are estimates.  ``analyze``
returns an :class:`AnalyticEstimate` whose :meth:`AnalyticEstimate.run`
is a drop-in :class:`~repro.interp.executor.MachineRun`, so everything
downstream — ``ProgramBalance``, ``predict_time``, the ECM-style
``overlap_time`` — consumes analytic numbers unchanged.

Model assumptions (documented error sources, quantified by the
differential suite and the predict-then-verify spot checks):

* inter-nest reuse is ignored — each top-level nest pays its compulsory
  misses (overestimates when consecutive nests share hot arrays);
* capacity is the full cache size ``C`` — near ``WS(d) = C`` boundaries
  the simulated LRU flips earlier or later than the model;
* guarded statements scale traffic by their exact active fraction but
  keep the unguarded footprint shape (``approximate`` is flagged).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import AnalysisError
from ..interp.counters import HardwareCounters
from ..interp.executor import MachineRun
from ..lang.affine import Affine
from ..lang.expr import ArrayRef, array_refs, flop_count
from ..lang.program import Program
from ..lang.stmt import Assign, ExternalRead, If, Loop, Stmt
from ..machine.cache import CacheStats
from ..machine.contention import maybe_contended
from ..machine.layout import LayoutPolicy, MemoryLayout, build_layout
from ..machine.spec import MachineSpec
from ..machine.timing import (
    bandwidth_bound_time,
    latency_bound_time,
    overlap_time,
)
from .model import ProgramBalance


# ---------------------------------------------------------------------------
# Collected reference structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Ref:
    """One array reference as an affine byte function of loop steps."""

    array: str
    coeffs: tuple[int, ...]  # bytes moved per step of each enclosing loop
    offset: int  # absolute byte address at the all-zero step
    width: int  # bytes touched per access (element size)
    is_write: bool


@dataclass
class _Nest:
    """All references of one leaf statement list under one loop chain."""

    trips: tuple[int, ...]  # outermost first
    refs: list[_Ref]
    fraction: float = 1.0  # active fraction under enclosing guards

    @property
    def iterations(self) -> int:
        return math.prod(self.trips) if self.trips else 1


@dataclass
class _Group:
    """References of one array moving in lockstep (equal coefficients)."""

    array: str
    coeffs: tuple[int, ...]
    base: int  # smallest member offset
    width: int  # byte span of the members (incl. element width)
    members: int  # reference occurrences per iteration
    writes: int  # written occurrences per iteration
    extents: list[tuple[int, int]] = field(default_factory=list)  # (offset, width)
    thrash: bool = False  # direct-mapped conflict detected

    def iteration_lines(self, line: int) -> int:
        """Distinct lines one iteration touches.  The group's ``width``
        is the member *span*, which is the right footprint once loops
        sweep it — but a single iteration of e.g. a stencil pair
        ``phi[i][j]``/``phi[i+1][j]`` or an FFT butterfly touches only
        the members' own lines, not the rows between them."""
        touched = set()
        for off, w in self.extents:
            touched.update(range(off // line, (off + w - 1) // line + 1))
        return max(1, len(touched))

    def _merged_extents(self) -> list[tuple[int, int]]:
        """Member extents relative to ``base``, overlap/adjacency-merged."""
        exts: list[tuple[int, int]] = []
        for off, w in sorted((o - self.base, w) for o, w in self.extents):
            if exts and off <= exts[-1][0] + exts[-1][1]:
                po, pw = exts[-1]
                exts[-1] = (po, max(po + pw, off + w) - po)
            else:
                exts.append((off, w))
        return exts

    def depth_lines(self, d: int, trips: tuple[int, ...], line: int) -> int:
        """Distinct lines swept by loops ``d..k`` in one iteration of
        loop ``d-1``.

        Members are folded onto the iteration lattice first: an offset
        that is a whole number of steps ``q <= trip`` of a remaining
        loop walks the same translate family as the base member, merely
        extending that loop's effective trip (``rhs[j][i]``/
        ``rhs[j+1][i]`` under a row-stride loop add one row, not the
        dense span between the members).  Offsets that do not fold count
        their own lines as residuals; the pre-fold span stays the cap.
        """
        coeffs = self.coeffs[d:]
        sub_trips = trips[d:]
        if not any(c and t > 1 for c, t in zip(coeffs, sub_trips)):
            return self.iteration_lines(line)
        exts = self._merged_extents()
        ext_trips = list(sub_trips)
        folded_width = exts[0][1]
        residual: list[int] = []
        for off, w in exts[1:]:
            for idx, c in enumerate(coeffs):
                c = abs(c)
                if c and sub_trips[idx] > 1 and off % c == 0:
                    q = off // c
                    if 0 < q <= sub_trips[idx]:
                        ext_trips[idx] = max(ext_trips[idx], sub_trips[idx] + q)
                        folded_width = max(folded_width, w)
                        break
            else:
                residual.append(w)
        total = _lines(coeffs, ext_trips, folded_width, line) + sum(
            _lines(coeffs, sub_trips, w, line) for w in residual
        )
        return min(total, _lines(coeffs, sub_trips, self.width, line))


def _collect(
    program: Program, params: Mapping[str, int], layout: MemoryLayout
) -> tuple[list[_Nest], bool]:
    """Walk the body into per-nest reference lists.

    Returns the nests and whether any guard forced an approximation.
    """
    nests: list[_Nest] = []
    approximate = False

    def leaf_refs(stmt: Assign | ExternalRead) -> list[tuple[ArrayRef, bool]]:
        if isinstance(stmt, Assign):
            reads = [(r, False) for r in array_refs(stmt.rhs)]
            if isinstance(stmt.lhs, ArrayRef):
                reads.append((stmt.lhs, True))
            return reads
        return [(stmt.lhs, True)] if isinstance(stmt.lhs, ArrayRef) else []

    param_bindings = {p: Affine.const_of(v) for p, v in params.items()}

    def resolve(ref: ArrayRef, subst: dict[str, Affine], steps: list[str]) -> _Ref:
        placement = layout[ref.array]
        coeffs = [0] * len(steps)
        offset = placement.base
        for sub, stride in zip(ref.index, placement.strides):
            expanded = sub.substitute({**param_bindings, **subst})
            loose = expanded.symbols - set(steps)
            if loose:
                raise AnalysisError(
                    f"{program.name}: subscript {sub} of {ref.array} depends on "
                    f"{sorted(loose)} — not affine in loop steps and parameters"
                )
            offset += expanded.const * stride * placement.element_size
            for d, s in enumerate(steps):
                coeffs[d] += expanded.coeff(s) * stride * placement.element_size
        return _Ref(ref.array, tuple(coeffs), offset, placement.element_size, ref in ())

    def walk(
        stmts,
        trips: list[int],
        subst: dict[str, Affine],
        steps: list[str],
        venv: dict[str, np.ndarray | int],
        grid_shape: tuple[int, ...],
        mask: np.ndarray | None,
    ) -> None:
        nonlocal approximate
        local = _Nest(tuple(trips), [])
        if mask is not None:
            size = int(np.prod(grid_shape)) if grid_shape else 1
            local.fraction = float(mask.sum()) / size if size else 0.0
        for stmt in stmts:
            if isinstance(stmt, (Assign, ExternalRead)):
                for ref, is_write in leaf_refs(stmt):
                    base = resolve(ref, subst, steps)
                    local.refs.append(
                        _Ref(base.array, base.coeffs, base.offset, base.width, is_write)
                    )
            elif isinstance(stmt, Loop):
                trip = _trip(program, stmt, params)
                if trip == 0:
                    continue
                step = f"{stmt.var}.{len(steps)}"
                bindings: dict[str, Affine] = {
                    p: Affine.const_of(v) for p, v in params.items()
                }
                bindings.update(subst)
                lower = stmt.lower.substitute(bindings)
                child_subst = dict(subst)
                child_subst[stmt.var] = lower + Affine.var(step)
                child_venv: dict[str, np.ndarray | int] = dict(venv)
                for k, v in venv.items():
                    if isinstance(v, np.ndarray):
                        child_venv[k] = v[..., None]
                arange = np.arange(trip, dtype=np.int64).reshape(
                    (1,) * len(grid_shape) + (trip,)
                )
                lower_vec = np.asarray(stmt.lower.evaluate_vec(child_venv))
                child_venv[stmt.var] = lower_vec + arange
                child_shape = grid_shape + (trip,)
                child_mask = None
                if mask is not None:
                    child_mask = np.broadcast_to(mask[..., None], child_shape)
                walk(
                    stmt.body,
                    trips + [trip],
                    child_subst,
                    steps + [step],
                    child_venv,
                    child_shape,
                    child_mask,
                )
            elif isinstance(stmt, If):
                approximate = True
                cond = np.broadcast_to(
                    np.asarray(stmt.cond.evaluate_vec(venv), dtype=np.bool_),
                    grid_shape,
                )
                then_mask = cond if mask is None else (mask & cond)
                else_mask = ~cond if mask is None else (mask & ~cond)
                if stmt.then:
                    walk(stmt.then, trips, subst, steps, venv, grid_shape, then_mask)
                if stmt.orelse:
                    walk(stmt.orelse, trips, subst, steps, venv, grid_shape, else_mask)
            else:
                raise AnalysisError(
                    f"{program.name}: cannot analyze statement {type(stmt).__name__}"
                )
        if local.refs and local.fraction > 0:
            nests.append(local)

    venv0: dict[str, np.ndarray | int] = dict(params)
    walk(program.body, [], {}, [], venv0, (), None)
    return nests, approximate


def _trip(program: Program, stmt: Loop, params: Mapping[str, int]) -> int:
    span = stmt.upper - stmt.lower
    loose = span.symbols - set(params)
    if loose:
        raise AnalysisError(
            f"{program.name}: loop {stmt.var}: trip count depends on "
            f"{sorted(loose)}; only rectangular nests can be analyzed"
        )
    return max(0, span.evaluate(params))


def _count(program: Program, params: Mapping[str, int], layout: MemoryLayout):
    """Exact (flops, loads, stores) via the trace generator's counting walk."""
    from ..trace.generator import TraceGenerator

    gen = TraceGenerator(program, params, layout, validate=False)
    flops = loads = stores = 0
    env: dict[str, np.ndarray | int] = dict(gen.params)
    for stmt in program.body:
        f, ld, st = gen._count_one(stmt, (), env, None)
        flops += f
        loads += ld
        stores += st
    return flops, loads, stores


# ---------------------------------------------------------------------------
# Footprint model
# ---------------------------------------------------------------------------


def _lines_dims(dims: list[tuple[int, int]], width: int, line: int) -> int:
    """Distinct lines of a block pattern given prepared (stride, trip) dims."""
    blocks, extent, span = 1, width, width
    for c, t in sorted(dims):
        if c <= extent:
            extent += c * (t - 1)
        else:
            blocks *= t
        span += c * (t - 1)
    per_block = -(-extent // line)  # ceil
    return max(1, min(blocks * per_block, -(-span // line)))


def _lines(coeffs, trips, width: int, line: int) -> int:
    """Distinct cache lines touched by ``{sum c_d*s_d + [0, width)}``.

    A block-merging sweep over the dimensions in ascending stride order:
    strides within the current block extent merge into a denser block,
    larger strides multiply the block count; the final count is capped by
    the total span (overlapping copies never exceed span/line lines).
    """
    dims = [(abs(c), t) for c, t in zip(coeffs, trips) if c != 0 and t > 1]
    return _lines_dims(dims, width, line)


def _covered_sets(coeffs, trips, width: int, line: int, n_sets: int) -> int:
    """Distinct cache *sets* a footprint lands in.

    The set index is periodic in the address with period ``line*n_sets``,
    so each stride folds to its gcd with the period and its trip count
    saturates at one period — a 4096-byte column stride in a 16 KiB way
    lands on 4 sets no matter how long the column is.
    """
    if n_sets <= 1:
        return 1
    period = line * n_sets
    dims = []
    for c, t in zip(coeffs, trips):
        if c == 0 or t <= 1:
            continue
        c = abs(c)
        if c * t <= period:
            dims.append((c, t))  # no wraparound: positions exact
        else:
            g = math.gcd(c, period)
            if t >= period // g:
                dims.append((g, period // g))  # full wrap: all multiples of g
            else:
                # Partial wrap: t distinct positions (t < period/gcd),
                # spread over the period — approximate as evenly spaced.
                dims.append((max(g, period // t), t))
    return min(n_sets, _lines_dims(dims, min(width, period), line))


def _group_refs(refs: list[_Ref]) -> list[_Group]:
    groups: dict[tuple[str, tuple[int, ...]], _Group] = {}
    for r in refs:
        key = (r.array, r.coeffs)
        g = groups.get(key)
        if g is None:
            groups[key] = _Group(
                r.array,
                r.coeffs,
                r.offset,
                r.width,
                1,
                int(r.is_write),
                extents=[(r.offset, r.width)],
            )
        else:
            lo = min(g.base, r.offset)
            hi = max(g.base + g.width, r.offset + r.width)
            g.base, g.width = lo, hi - lo
            g.members += 1
            g.writes += int(r.is_write)
            g.extents.append((r.offset, r.width))
    return list(groups.values())


def _mark_conflicts(groups: list[_Group], cache_bytes: int, line: int) -> None:
    """Direct-mapped conflict term: lockstep groups whose placements land
    in the same set (modulo the cache) thrash each other every iteration."""
    by_coeffs: dict[tuple[int, ...], list[_Group]] = {}
    for g in groups:
        if any(g.coeffs):
            by_coeffs.setdefault(g.coeffs, []).append(g)
    for cluster in by_coeffs.values():
        for i, g in enumerate(cluster):
            for h in cluster[i + 1 :]:
                delta = (h.base - g.base) % cache_bytes
                if min(delta, cache_bytes - delta) < line:
                    g.thrash = h.thrash = True


@dataclass
class _NestTraffic:
    """One nest's predicted traffic at one cache level."""

    misses: int
    writebacks: int
    footprint: dict[str, int]  # per-array compulsory (distinct) lines
    wb_by_array: dict[str, int]
    conflict: bool  # set-conflict or DM thrash detected


def _nest_level_traffic(
    nest: _Nest, cache_bytes: int, line: int, associativity: int
) -> _NestTraffic:
    groups = _group_refs(nest.refs)
    if associativity == 1:
        _mark_conflicts(groups, cache_bytes, line)
    n_sets = max(1, cache_bytes // (line * associativity))
    k = len(nest.trips)
    # lines_by_depth[d-1] = distinct lines over loops d..k (1-indexed;
    # d=k+1 is the single-iteration footprint).  Member offsets fold
    # onto the iteration lattice (see _Group.depth_lines), so a stencil
    # pair rows apart costs one extra row, not the span between them.
    lines_by_depth = {
        g_id: [g.depth_lines(d, nest.trips, line) for d in range(k + 1)]
        for g_id, g in enumerate(groups)
    }
    ws_by_depth = [
        sum(lines_by_depth[i][d] * line for i in range(len(groups)))
        for d in range(k + 1)
    ]
    fit = k + 2  # sentinel: not even one iteration fits
    for d in range(1, k + 2):
        if ws_by_depth[d - 1] <= cache_bytes:
            fit = d
            break
    if associativity > 1 and n_sets > 1 and fit <= k + 1:
        # Co-moving stream collision — the associative generalization of
        # the direct-mapped conflict term.  Streams that advance in
        # lockstep (identical coefficients over the non-retained loops)
        # keep a constant set distance, so two of them compete for the
        # same set either always or never: exactly when their placements
        # coincide modulo the set period.  A residue class holding more
        # concurrent streams than the cache has ways evicts its members
        # between consecutive touches, costing a miss per touch — even
        # when the combined working set is far smaller than the cache.
        # (Footprints that merely *overlap* in set space are harmless:
        # their current lines sit at distinct residues at every instant,
        # which is why a load histogram over the whole iteration space
        # is the wrong model here.)
        d0 = fit - 1
        period = n_sets * line
        by_residue: dict[tuple, dict[tuple, _Group]] = {}
        for g in groups:
            inner = g.coeffs[d0:]
            if not any(inner):
                continue
            for off, _w in g.extents:
                # Members of one group inside the same line are a single
                # stream (one current line), not competitors.
                key = (inner, (off % period) // line)
                by_residue.setdefault(key, {})[(id(g), off // line)] = g
        for streams in by_residue.values():
            if len(streams) > associativity:
                for g in streams.values():
                    g.thrash = True
    iterations = nest.iterations
    misses = writebacks = 0
    conflict = any(g.thrash for g in groups)
    footprint: dict[str, int] = {}
    wb_by_array: dict[str, int] = {}
    for g_id, g in enumerate(groups):
        depths = lines_by_depth[g_id]
        footprint[g.array] = footprint.get(g.array, 0) + depths[0]
        if g.thrash or fit == k + 2:
            m = iterations * (g.members if g.thrash else depths[k])
        else:
            # Capacity says lines over loops gfit..k persist across
            # iterations of loop gfit-1 — but only if they spread over
            # enough sets.  A strided footprint that folds onto a few
            # sets (power-of-two column walks) cannot be retained no
            # matter how small it is; push the group's fit inward until
            # its retained footprint physically fits its sets.
            gfit = fit
            while gfit <= k:
                retained = depths[gfit - 1]
                covered = _covered_sets(
                    g.coeffs[gfit - 1 :],
                    nest.trips[gfit - 1 :],
                    g.width,
                    line,
                    n_sets,
                )
                if retained <= associativity * covered:
                    break
                conflict = True
                gfit += 1
            reuse = max(1, gfit - 1)
            m = math.prod(nest.trips[: reuse - 1]) * depths[reuse - 1]
        m = max(depths[0], min(m, iterations * g.members))
        wb = min(m, iterations * g.writes) if g.writes else 0
        misses += m
        writebacks += wb
        if wb:
            wb_by_array[g.array] = wb_by_array.get(g.array, 0) + wb
    if nest.fraction < 1.0:
        misses = int(round(misses * nest.fraction)) or 1
        writebacks = int(round(writebacks * nest.fraction))
        wb_by_array = {
            a: int(round(w * nest.fraction)) for a, w in wb_by_array.items()
        }
    return _NestTraffic(misses, writebacks, footprint, wb_by_array, conflict)


def _program_level_traffic(
    records: list[_NestTraffic], cache_bytes: int, line: int, passes: int
) -> tuple[int, int]:
    """Total (misses, writebacks) of a nest sequence at one level.

    Inter-nest reuse: an array re-touched by a later nest hits if the
    distinct volume streamed since its last touch (plus the re-touching
    nest's own working set) fits the cache — the compulsory part of the
    later nest is then credited away, and its dirty lines merge with the
    earlier ones instead of writing back twice.  Multi-pass runs simulate
    two passes and extrapolate the steady state from the second, so a
    resident program pays its traffic once while an oversized one pays
    per pass.  Nests with detected conflicts grant no credit (thrashed
    lines do not linger).
    """
    sim_passes = min(passes, 2)
    pass_misses = [0] * sim_passes
    pass_flushed = [0] * sim_passes
    cum = 0  # distinct-line volume clock
    last: dict[str, int] = {}
    resident: dict[str, int] = {}  # lines of the array actually present
    pending_wb: dict[str, int] = {}
    for p in range(sim_passes):
        for rec in records:
            nest_lines = sum(rec.footprint.values())
            credit = 0
            for name, lines in rec.footprint.items():
                survives = (
                    not rec.conflict
                    and name in last
                    and (cum - last[name] + nest_lines) * line <= cache_bytes
                )
                if survives:
                    credit += min(lines, resident.get(name, 0))
                    resident[name] = max(resident.get(name, 0), lines)
                else:
                    resident[name] = lines
                    if name in pending_wb:
                        pass_flushed[p] += pending_wb.pop(name)
            pass_misses[p] += max(rec.misses - credit, 0)
            for name, wb in rec.wb_by_array.items():
                pending_wb[name] = max(pending_wb.get(name, 0), wb)
            # Only freshly fetched lines add eviction pressure; re-touched
            # resident data does not push other arrays out.
            cum += max(nest_lines - credit, 0)
            for name in rec.footprint:
                last[name] = cum
    misses = pass_misses[0] + (passes - 1) * pass_misses[-1]
    writebacks = (
        pass_flushed[0]
        + (passes - 1) * pass_flushed[-1]
        + sum(pending_wb.values())
    )
    return misses, writebacks


# ---------------------------------------------------------------------------
# Estimate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LevelEstimate:
    """Predicted counter block of one cache level."""

    name: str
    line_size: int
    accesses: int
    misses: int
    writebacks: int

    @property
    def events_out(self) -> int:
        """Miss fills plus writebacks — what the next level consumes."""
        return self.misses + self.writebacks

    @property
    def bytes_below(self) -> int:
        return self.events_out * self.line_size


@dataclass(frozen=True)
class AnalyticEstimate:
    """Per-level traffic and time predicted from the IR alone."""

    program: str
    machine: MachineSpec
    params: dict[str, int]
    flops: int
    loads: int
    stores: int
    levels: tuple[LevelEstimate, ...]
    approximate: bool  # guards (or other estimated constructs) present

    @property
    def register_bytes(self) -> int:
        return 8 * (self.loads + self.stores)

    @property
    def downstream_bytes(self) -> tuple[int, ...]:
        return tuple(lv.bytes_below for lv in self.levels)

    @property
    def channel_bytes(self) -> tuple[int, ...]:
        return (self.register_bytes, *self.downstream_bytes)

    def balance(self) -> ProgramBalance:
        if self.flops <= 0:
            raise AnalysisError(
                f"{self.program}: cannot compute balance without flops"
            )
        return ProgramBalance(
            program=self.program,
            channel_names=self.machine.level_names,
            bytes_per_flop=tuple(b / self.flops for b in self.channel_bytes),
            flops=self.flops,
            channel_bytes=self.channel_bytes,
        )

    def counters(self) -> HardwareCounters:
        stats = tuple(
            CacheStats(
                accesses=lv.accesses,
                hits=lv.accesses - lv.misses,
                misses=lv.misses,
                read_misses=max(0, lv.misses - lv.writebacks),
                write_misses=min(lv.misses, lv.writebacks),
                evictions=lv.misses,
                writebacks=lv.writebacks,
                events_out=lv.events_out,
            )
            for lv in self.levels
        )
        return HardwareCounters(
            machine=self.machine.name,
            graduated_flops=self.flops,
            loads=self.loads,
            stores=self.stores,
            level_stats=stats,
            downstream_bytes=self.downstream_bytes,
        )

    def run(self, cores: int | None = None) -> MachineRun:
        """A drop-in :class:`MachineRun` under the same timing models the
        executor applies to simulated counters — including the contended
        overlay (:mod:`repro.machine.contention`) when ``cores`` (or the
        process default) is > 1, so ``--predict`` sweeps price the shared
        channel through the identical arithmetic."""
        counters = self.counters()
        time = bandwidth_bound_time(
            self.machine, self.flops, counters.register_bytes, self.downstream_bytes
        )
        misses = [lv.misses for lv in self.levels]
        lat = latency_bound_time(self.machine, self.flops, misses)
        ov4 = overlap_time(
            self.machine,
            self.flops,
            counters.register_bytes,
            self.downstream_bytes,
            misses,
            4,
        )
        contended = maybe_contended(
            self.machine,
            self.flops,
            counters.register_bytes,
            self.downstream_bytes,
            cores,
        )
        return MachineRun(
            program=self.program,
            machine=self.machine,
            params=dict(self.params),
            counters=counters,
            time=time,
            latency_time=lat,
            overlap4_time=ov4,
            contended=contended,
        )


def analyze(
    program: Program,
    machine: MachineSpec,
    params: Mapping[str, int] | None = None,
    *,
    layout: MemoryLayout | None = None,
    layout_policy: LayoutPolicy | None = None,
    passes: int = 1,
) -> AnalyticEstimate:
    """Predict ``program``'s counters on ``machine`` without a trace.

    Mirrors :func:`repro.interp.executor.execute`'s layout handling so the
    estimate and the simulation see identical placements (the conflict
    term depends on them).
    """
    if passes < 1:
        raise AnalysisError("passes must be >= 1")
    bound = program.bind_params(params)
    if layout is None:
        layout = build_layout(
            program, bound, layout_policy or machine.default_layout
        )
    nests, approximate = _collect(program, bound, layout)
    flops, loads, stores = _count(program, bound, layout)

    levels: list[LevelEstimate] = []
    accesses = (loads + stores) * passes
    for lvl in machine.cache_levels:
        geom = lvl.geometry
        records = [
            _nest_level_traffic(
                nest, geom.size_bytes, geom.line_size, geom.associativity
            )
            for nest in nests
        ]
        misses, writebacks = _program_level_traffic(
            records, geom.size_bytes, geom.line_size, passes
        )
        misses = min(misses, accesses) if accesses else misses
        levels.append(
            LevelEstimate(lvl.name, geom.line_size, accesses, misses, writebacks)
        )
        accesses = levels[-1].events_out  # next level consumes our events

    return AnalyticEstimate(
        program=program.name,
        machine=machine,
        params=dict(bound),
        flops=flops * passes,
        loads=loads * passes,
        stores=stores * passes,
        levels=tuple(levels),
        approximate=approximate,
    )


def predict_run(
    program: Program,
    machine: MachineSpec,
    params: Mapping[str, int] | None = None,
    *,
    layout: MemoryLayout | None = None,
    layout_policy: LayoutPolicy | None = None,
    passes: int = 1,
    cores: int | None = None,
) -> MachineRun:
    """Convenience: :func:`analyze` materialized as a ``MachineRun``."""
    return analyze(
        program,
        machine,
        params,
        layout=layout,
        layout_policy=layout_policy,
        passes=passes,
    ).run(cores)

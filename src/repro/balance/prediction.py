"""Bandwidth-based performance prediction (Ding's dissertation, cited §4).

The balance model doubles as a predictor: measure a program's counters
once (flops + bytes per channel), then predict its execution time on any
machine whose per-channel bandwidths are known:

    T(machine) = max( flops / peak, bytes_c / bandwidth_c  for channels c )

The prediction is exact across machines that share cache geometry (the
byte counts are a property of program x geometry) — e.g. across CPU
generations over the same memory system — and approximate across machines
with different caches (miss counts shift). Experiment E15 quantifies both
cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..machine.spec import MachineSpec
from .model import ProgramBalance


@dataclass(frozen=True)
class Prediction:
    """A cross-machine time prediction from one measured balance."""

    program: str
    machine: str
    seconds: float
    bound: str
    projected: bool = False
    warning: str | None = None


def _project_channels(
    channel_bytes: tuple[float, ...], n_levels: int
) -> tuple[float, ...]:
    """Resample measured channels onto a target with a different depth.

    The register (first) and memory (last) channels are physical
    invariants of the program and carry over directly; intermediate
    cache channels are filled by nearest-index resampling of the
    measured hierarchy (a machine with *more* levels than measured
    borrows its deepest measured cache channel for the extra levels).
    """
    if n_levels == 1:
        return (channel_bytes[0],)
    inner = channel_bytes[1:-1] if len(channel_bytes) > 2 else ()
    resampled = []
    for i in range(n_levels - 2):
        if not inner:
            # No measured intermediate levels: the closest proxy for a
            # cache channel we never measured is the memory channel.
            resampled.append(channel_bytes[-1])
        else:
            j = round(i * (len(inner) - 1) / max(1, n_levels - 3))
            resampled.append(inner[min(j, len(inner) - 1)])
    return (channel_bytes[0], *resampled, channel_bytes[-1])


def predict_time(
    balance: ProgramBalance, target: MachineSpec, *, project: bool = False
) -> Prediction:
    """Predict ``balance``'s program on ``target`` from counters alone.

    When the measured channel count differs from the target's hierarchy
    depth, a bare :class:`ReproError` is raised unless ``project=True``:
    projection truncates/extends the measured channels (register and
    memory preserved, intermediate caches resampled) and flags the
    result with ``Prediction.projected`` and a human-readable
    ``warning`` — cross-geometry predictions are approximations, see the
    module docstring.
    """
    channel_bytes = balance.channel_bytes
    projected = False
    warning = None
    if len(channel_bytes) != target.n_levels:
        if not project:
            raise ReproError(
                f"{balance.program}: measured {len(channel_bytes)} channels, "
                f"target machine {target.name} has {target.n_levels}"
            )
        channel_bytes = _project_channels(channel_bytes, target.n_levels)
        projected = True
        warning = (
            f"projected {len(balance.channel_bytes)} measured channels onto "
            f"{target.n_levels}-level machine {target.name}; intermediate "
            "cache traffic is resampled, not simulated"
        )
    flop_time = balance.flops / target.peak_flops
    times = [b / bw for b, bw in zip(channel_bytes, target.bandwidths)]
    total = max([flop_time, *times])
    if total == flop_time:
        bound = "cpu"
    else:
        bound = target.level_names[times.index(max(times))]
    return Prediction(balance.program, target.name, total, bound, projected, warning)


def predict_speedup(
    before: ProgramBalance, after: ProgramBalance, target: MachineSpec
) -> float:
    """Predicted speedup of a transformation from its balance change —
    the 'bandwidth-based performance tuning' use: decide whether a rewrite
    is worth it without running it."""
    t0 = predict_time(before, target).seconds
    t1 = predict_time(after, target).seconds
    if t1 <= 0:
        raise ReproError("degenerate prediction")
    return t0 / t1


def utilization_bound_from_balance(
    balance: ProgramBalance, target: MachineSpec
) -> float:
    """The CPU-utilization ceiling implied by a measured balance on a
    target machine (Figure 2's bound, as a prediction)."""
    p = predict_time(balance, target)
    return min(1.0, (balance.flops / target.peak_flops) / p.seconds)

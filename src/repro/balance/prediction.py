"""Bandwidth-based performance prediction (Ding's dissertation, cited §4).

The balance model doubles as a predictor: measure a program's counters
once (flops + bytes per channel), then predict its execution time on any
machine whose per-channel bandwidths are known:

    T(machine) = max( flops / peak, bytes_c / bandwidth_c  for channels c )

The prediction is exact across machines that share cache geometry (the
byte counts are a property of program x geometry) — e.g. across CPU
generations over the same memory system — and approximate across machines
with different caches (miss counts shift). Experiment E15 quantifies both
cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..machine.spec import MachineSpec
from .model import ProgramBalance


@dataclass(frozen=True)
class Prediction:
    """A cross-machine time prediction from one measured balance."""

    program: str
    machine: str
    seconds: float
    bound: str


def predict_time(balance: ProgramBalance, target: MachineSpec) -> Prediction:
    """Predict ``balance``'s program on ``target`` from counters alone."""
    if len(balance.channel_bytes) != target.n_levels:
        raise ReproError(
            f"{balance.program}: measured {len(balance.channel_bytes)} channels, "
            f"target machine {target.name} has {target.n_levels}"
        )
    flop_time = balance.flops / target.peak_flops
    times = [b / bw for b, bw in zip(balance.channel_bytes, target.bandwidths)]
    total = max([flop_time, *times])
    if total == flop_time:
        bound = "cpu"
    else:
        bound = target.level_names[times.index(max(times))]
    return Prediction(balance.program, target.name, total, bound)


def predict_speedup(
    before: ProgramBalance, after: ProgramBalance, target: MachineSpec
) -> float:
    """Predicted speedup of a transformation from its balance change —
    the 'bandwidth-based performance tuning' use: decide whether a rewrite
    is worth it without running it."""
    t0 = predict_time(before, target).seconds
    t1 = predict_time(after, target).seconds
    if t1 <= 0:
        raise ReproError("degenerate prediction")
    return t0 / t1


def utilization_bound_from_balance(
    balance: ProgramBalance, target: MachineSpec
) -> float:
    """The CPU-utilization ceiling implied by a measured balance on a
    target machine (Figure 2's bound, as a prediction)."""
    p = predict_time(balance, target)
    return min(1.0, (balance.flops / target.peak_flops) / p.seconds)

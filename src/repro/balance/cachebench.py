"""CacheBench analog: measure cache-level bandwidth of a simulated machine.

The paper measured cache bandwidth with CacheBench [ref 9]: a read-modify-
write sweep over a working set sized to sit inside a chosen cache level,
repeated so the steady state dominates. We reproduce the method: warm the
working set, then time repeated passes and report bytes moved per second on
the register channel (working set in L1) or the L1<->L2 channel (working
set in L2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineError
from ..interp.executor import execute
from ..lang.builder import ProgramBuilder
from ..lang.program import Program
from ..machine.spec import MachineSpec


def _sweep_program(n: int) -> Program:
    b = ProgramBuilder("cachebench_rmw", params={"N": n})
    a = b.array("a", "N", output=True)
    with b.loop("i", 0, "N") as i:
        b.assign(a[i], a[i] * 1.5 + 0.5)
    return b.build()


@dataclass(frozen=True)
class CacheBenchResult:
    """Measured bandwidth per hierarchy channel (bytes/second)."""

    machine: str
    channel_names: tuple[str, ...]
    bandwidths: tuple[float, ...]

    def describe(self) -> str:
        cols = ", ".join(
            f"{n}={bw / 1e6:.0f} MB/s" for n, bw in zip(self.channel_names, self.bandwidths)
        )
        return f"CacheBench[{self.machine}]: {cols}"


def measure_cachebench(spec: MachineSpec, passes: int = 4) -> CacheBenchResult:
    """Measure the register channel and each cache-fit level.

    For channel k (0 = registers), the working set is sized to half of the
    cache at level k (so it is fully resident there) and the reported rate
    is the traffic on channel k divided by simulated time.
    """
    if passes < 1:
        raise MachineError("passes must be >= 1")
    bandwidths: list[float] = []
    # Register channel: working set inside L1.
    for level in range(len(spec.cache_levels) + 1):
        cache_idx = min(level, len(spec.cache_levels) - 1)
        geom = spec.cache_levels[cache_idx].geometry
        if level < len(spec.cache_levels):
            n = max(64, geom.size_bytes // 2 // 8)  # fits in cache `level`
        else:
            n = max(1024, geom.size_bytes * 4 // 8)  # memory regime
        prog = _sweep_program(n)
        run = execute(prog, spec, warmup_passes=1, passes=passes, flush=False)
        traffic = run.counters.channel_bytes[level]
        bandwidths.append(traffic / run.seconds if run.seconds else 0.0)
    return CacheBenchResult(spec.name, spec.level_names, tuple(bandwidths))

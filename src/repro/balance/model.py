"""The balance performance model (paper §2.2).

*Program balance*: bytes the program must transfer per flop at every memory
hierarchy level. *Machine balance*: bytes the machine can transfer per flop
at peak. Demand over supply bounds CPU utilization:

    utilization <= 1 / max_level(program_balance / machine_balance)

These three quantities are Figures 1 and 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ReproError
from ..interp.executor import MachineRun
from ..machine.spec import MachineSpec


@dataclass(frozen=True)
class ProgramBalance:
    """Bytes per flop demanded by a program at each channel."""

    program: str
    channel_names: tuple[str, ...]
    bytes_per_flop: tuple[float, ...]
    flops: int
    channel_bytes: tuple[int, ...]

    @property
    def memory_balance(self) -> float:
        """The last channel (cache <-> memory), the paper's headline column."""
        return self.bytes_per_flop[-1]

    def describe(self) -> str:
        cols = "  ".join(
            f"{n}={b:.2f}" for n, b in zip(self.channel_names, self.bytes_per_flop)
        )
        return f"{self.program}: {cols} (B/flop)"


@dataclass(frozen=True)
class BalanceRatios:
    """Demand/supply ratios of one program on one machine (Figure 2 rows)."""

    program: str
    machine: str
    channel_names: tuple[str, ...]
    ratios: tuple[float, ...]

    @property
    def max_ratio(self) -> float:
        return max(self.ratios)

    @property
    def limiting_channel(self) -> str:
        idx = max(range(len(self.ratios)), key=lambda i: self.ratios[i])
        return self.channel_names[idx]

    @property
    def cpu_utilization_bound(self) -> float:
        """The paper's bound: a ratio of R at any level caps utilization at
        1/R (100% when no channel is oversubscribed)."""
        return min(1.0, 1.0 / self.max_ratio) if self.max_ratio > 0 else 1.0

    def describe(self) -> str:
        cols = "  ".join(
            f"{n}={r:.1f}" for n, r in zip(self.channel_names, self.ratios)
        )
        return (
            f"{self.program} on {self.machine}: {cols} "
            f"(CPU utilization <= {self.cpu_utilization_bound:.1%})"
        )


def program_balance(run: MachineRun) -> ProgramBalance:
    """Program balance from a measured run (counter-derived, like the paper)."""
    flops = run.counters.graduated_flops
    if flops <= 0:
        raise ReproError(f"{run.program}: cannot compute balance without flops")
    channel_bytes = run.counters.channel_bytes
    return ProgramBalance(
        program=run.program,
        channel_names=run.machine.level_names,
        bytes_per_flop=tuple(b / flops for b in channel_bytes),
        flops=flops,
        channel_bytes=channel_bytes,
    )


def machine_balance(spec: MachineSpec) -> tuple[float, ...]:
    """Machine balance straight from the specification (Figure 1 last row)."""
    return spec.balance


def demand_supply_ratios(balance: ProgramBalance, spec: MachineSpec) -> BalanceRatios:
    """Figure 2: divide program balance by machine balance, per channel."""
    supply = spec.balance
    if len(supply) != len(balance.bytes_per_flop):
        raise ReproError(
            f"{balance.program}: balance has {len(balance.bytes_per_flop)} channels, "
            f"machine {spec.name} has {len(supply)}"
        )
    return BalanceRatios(
        program=balance.program,
        machine=spec.name,
        channel_names=balance.channel_names,
        ratios=tuple(d / s for d, s in zip(balance.bytes_per_flop, supply)),
    )


def required_memory_bandwidth(ratios: BalanceRatios, spec: MachineSpec) -> float:
    """Bandwidth the machine would need to remove the memory bottleneck
    (the paper's '1.02 GB/s to 3.15 GB/s' argument): current memory
    bandwidth times the memory-level demand/supply ratio."""
    return spec.memory_bandwidth * ratios.ratios[-1]


def bandwidth_utilization(run: MachineRun) -> float:
    """Fraction of the machine's memory bandwidth the run actually used —
    the paper's §2.3 saturation measurement (NAS/SP: >=84% for 5 of 7
    subroutines)."""
    return run.effective_bandwidth / run.machine.memory_bandwidth


def aggregate_balance(balances: Sequence[ProgramBalance], name: str) -> ProgramBalance:
    """Whole-program balance from per-phase balances (byte- and
    flop-weighted, not averaged)."""
    if not balances:
        raise ReproError("no balances to aggregate")
    names = balances[0].channel_names
    flops = sum(b.flops for b in balances)
    channel_bytes = tuple(
        sum(b.channel_bytes[i] for b in balances) for i in range(len(names))
    )
    return ProgramBalance(
        program=name,
        channel_names=names,
        bytes_per_flop=tuple(c / flops for c in channel_bytes),
        flops=flops,
        channel_bytes=channel_bytes,
    )

"""The k-way cut ⇄ fusion reduction (paper §3.1.3 NP-completeness proof).

Given a graph G and k terminals, a k-way cut is an edge set of minimal
weight whose removal pairwise disconnects the terminals. The paper converts
such an instance into a fusion problem: one fusion node per vertex, a
fusion-preventing edge between every terminal pair, and one hyperedge
(array) per graph edge connecting its two endpoints. A minimal k-way cut
then corresponds exactly to an optimal fusion: each uncut edge's array is
loaded once, each cut edge's array twice, so

    optimal fusion cost = |E| + minimal k-way cut weight.

This module implements the construction and a brute-force k-way cut solver
so the correspondence is testable in both directions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import FusionError
from .cost import bandwidth_cost
from .graph import FusionGraph, Partitioning
from .multi_partition import optimal_partitioning


@dataclass(frozen=True)
class KWayCutInstance:
    """An undirected unit-weight k-way cut instance."""

    n_nodes: int
    edges: tuple[tuple[int, int], ...]
    terminals: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "edges", tuple((min(u, v), max(u, v)) for u, v in self.edges)
        )
        for u, v in self.edges:
            if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes) or u == v:
                raise FusionError(f"bad edge ({u}, {v})")
        if len(set(self.terminals)) != len(self.terminals) or len(self.terminals) < 2:
            raise FusionError("need at least two distinct terminals")
        for t in self.terminals:
            if not (0 <= t < self.n_nodes):
                raise FusionError(f"terminal {t} out of range")

    @property
    def k(self) -> int:
        return len(self.terminals)


def to_fusion_graph(instance: KWayCutInstance) -> FusionGraph:
    """The paper's construction: hyperedge per graph edge, fusion-preventing
    edge per terminal pair, no dependences."""
    node_arrays: list[set[str]] = [set() for _ in range(instance.n_nodes)]
    for idx, (u, v) in enumerate(instance.edges):
        name = f"e{idx}"
        node_arrays[u].add(name)
        node_arrays[v].add(name)
    preventing = [
        (a, b) for a, b in itertools.combinations(sorted(instance.terminals), 2)
    ]
    return FusionGraph.build(node_arrays, deps=(), preventing=preventing)


def brute_force_kway_cut(instance: KWayCutInstance) -> tuple[int, dict[int, int]]:
    """Minimal k-way cut by exhaustive assignment of non-terminals.

    Returns (cut weight, node -> terminal-group assignment). Exponential;
    for validating the reduction on small instances.
    """
    terminals = instance.terminals
    others = [i for i in range(instance.n_nodes) if i not in terminals]
    if len(others) > 12:
        raise FusionError("brute force limited to 12 non-terminal nodes")
    base = {t: gi for gi, t in enumerate(terminals)}
    best_weight: int | None = None
    best_assign: dict[int, int] = {}
    for combo in itertools.product(range(instance.k), repeat=len(others)):
        assign = dict(base)
        assign.update({node: g for node, g in zip(others, combo)})
        weight = sum(1 for u, v in instance.edges if assign[u] != assign[v])
        if best_weight is None or weight < best_weight:
            best_weight = weight
            best_assign = assign
    assert best_weight is not None
    return best_weight, best_assign


def fusion_from_assignment(
    instance: KWayCutInstance, assignment: dict[int, int]
) -> Partitioning:
    """The partitioning a k-way-cut assignment induces (groups in terminal
    order)."""
    groups = []
    for gi in range(instance.k):
        groups.append(frozenset(n for n, g in assignment.items() if g == gi))
    return Partitioning(tuple(g for g in groups if g))


def verify_reduction(instance: KWayCutInstance) -> tuple[int, int]:
    """Run both sides of the reduction; returns (fusion optimum,
    |E| + k-way-cut optimum) — equal iff the reduction is faithful."""
    graph = to_fusion_graph(instance)
    fusion = optimal_partitioning(graph)
    cut_weight, assignment = brute_force_kway_cut(instance)
    induced = fusion_from_assignment(instance, assignment)
    induced_cost = bandwidth_cost(graph, induced)
    if induced_cost != len(instance.edges) + cut_weight:
        raise FusionError("induced partitioning cost does not match cut weight")
    return fusion.cost, len(instance.edges) + cut_weight

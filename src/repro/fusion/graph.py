"""Fusion graphs (paper §3.1.1).

A fusion graph has one node per loop (or unfusable statement), directed
edges for data dependences, and undirected *fusion-preventing* edges for
pairs that may never share a partition. Each node carries the set of
arrays the loop accesses — the quantity the bandwidth-minimal objective
sums per partition.

A :class:`Partitioning` is an ordered sequence of disjoint node groups;
correctness (paper Problem 3.1) requires every node to appear exactly
once, no fusion-preventing pair inside a group, and all dependence edges
to point forward (same group allowed — fusing producer and consumer is the
whole point; pairs whose fusion would reverse a dependence carry a
fusion-preventing edge instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import FusionError


@dataclass(frozen=True)
class FusionNode:
    """One loop nest: its index in program order, a label, and the set of
    distinct arrays it accesses."""

    index: int
    label: str
    arrays: frozenset[str]


@dataclass(frozen=True)
class FusionGraph:
    """The complete fusion problem instance."""

    nodes: tuple[FusionNode, ...]
    deps: frozenset[tuple[int, int]]  # directed (src, dst)
    preventing: frozenset[tuple[int, int]]  # undirected, stored sorted

    def __post_init__(self) -> None:
        n = len(self.nodes)
        for i, node in enumerate(self.nodes):
            if node.index != i:
                raise FusionError(f"node {node.label} has index {node.index}, expected {i}")
        for u, v in self.deps:
            if not (0 <= u < n and 0 <= v < n) or u == v:
                raise FusionError(f"invalid dependence edge ({u}, {v})")
        for u, v in self.preventing:
            if not (0 <= u < n and 0 <= v < n) or u >= v:
                raise FusionError(f"preventing edges must be stored as (low, high): ({u}, {v})")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        adj: dict[int, list[int]] = {i: [] for i in range(len(self.nodes))}
        indeg = {i: 0 for i in range(len(self.nodes))}
        for u, v in self.deps:
            adj[u].append(v)
            indeg[v] += 1
        queue = [i for i, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            u = queue.pop()
            seen += 1
            for v in adj[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if seen != len(self.nodes):
            raise FusionError("dependence edges form a cycle")

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def build(
        node_arrays: Sequence[Iterable[str]],
        deps: Iterable[tuple[int, int]] = (),
        preventing: Iterable[tuple[int, int]] = (),
        labels: Sequence[str] | None = None,
    ) -> "FusionGraph":
        nodes = tuple(
            FusionNode(
                i,
                labels[i] if labels else f"loop{i + 1}",
                frozenset(arrs),
            )
            for i, arrs in enumerate(node_arrays)
        )
        prev = frozenset((min(u, v), max(u, v)) for u, v in preventing)
        return FusionGraph(nodes, frozenset(deps), prev)

    # -- inspection ------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def all_arrays(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for node in self.nodes:
            out |= node.arrays
        return out

    def arrays_of(self, group: Iterable[int]) -> frozenset[str]:
        out: set[str] = set()
        for i in group:
            out |= self.nodes[i].arrays
        return frozenset(out)

    def prevented(self, u: int, v: int) -> bool:
        return (min(u, v), max(u, v)) in self.preventing

    def hyperedges(self) -> dict[str, frozenset[int]]:
        """One hyperedge per array: the set of nodes accessing it (paper
        Problem 3.2)."""
        edges: dict[str, set[int]] = {}
        for node in self.nodes:
            for arr in node.arrays:
                edges.setdefault(arr, set()).add(node.index)
        return {a: frozenset(s) for a, s in edges.items()}

    def shared_weight(self, u: int, v: int) -> int:
        """Edge weight of the Gao/Kennedy–McKinley formulation: number of
        arrays the two loops share."""
        return len(self.nodes[u].arrays & self.nodes[v].arrays)


@dataclass(frozen=True)
class Partitioning:
    """An ordered sequence of fused groups."""

    groups: tuple[frozenset[int], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", tuple(frozenset(g) for g in self.groups))

    @staticmethod
    def of(groups: Iterable[Iterable[int]]) -> "Partitioning":
        return Partitioning(tuple(frozenset(g) for g in groups))

    @staticmethod
    def singletons(n: int) -> "Partitioning":
        """The no-fusion partitioning: every node alone, program order."""
        return Partitioning(tuple(frozenset([i]) for i in range(n)))

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def group_of(self, node: int) -> int:
        for gi, g in enumerate(self.groups):
            if node in g:
                return gi
        raise FusionError(f"node {node} not in any group")

    def all_nodes(self) -> frozenset[int]:
        out: set[int] = set()
        for g in self.groups:
            out |= g
        return frozenset(out)

    def __str__(self) -> str:
        return " | ".join("{" + ",".join(str(i) for i in sorted(g)) + "}" for g in self.groups)


def check_legal(graph: FusionGraph, partitioning: Partitioning) -> str | None:
    """Return None when legal, else a human-readable violation."""
    seen: set[int] = set()
    for g in partitioning.groups:
        if not g:
            return "empty group"
        overlap = seen & g
        if overlap:
            return f"nodes {sorted(overlap)} appear in more than one group"
        seen |= g
    if seen != set(range(graph.n_nodes)):
        missing = set(range(graph.n_nodes)) - seen
        return f"nodes {sorted(missing)} are not placed"
    for g in partitioning.groups:
        for u in g:
            for v in g:
                if u < v and graph.prevented(u, v):
                    return f"fusion-preventing pair ({u}, {v}) share a group"
    for u, v in graph.deps:
        if partitioning.group_of(u) > partitioning.group_of(v):
            return f"dependence ({u} -> {v}) points backward across groups"
    return None


def is_legal(graph: FusionGraph, partitioning: Partitioning) -> bool:
    return check_legal(graph, partitioning) is None


def require_legal(graph: FusionGraph, partitioning: Partitioning) -> None:
    reason = check_legal(graph, partitioning)
    if reason is not None:
        raise FusionError(f"illegal partitioning {partitioning}: {reason}")

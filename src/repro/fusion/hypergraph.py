"""Hypergraphs for modeling data sharing (paper §3.1.2).

A normal edge can only relate two loops, but one array may be shared by
any number of loops — the precise reason the paper replaces the
edge-weighted fusion model with hyperedges: one hyperedge per array,
connecting every loop that accesses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import FusionError
from .graph import FusionGraph


@dataclass(frozen=True)
class Hyperedge:
    """A weighted hyperedge over fusion-graph nodes."""

    name: str
    members: frozenset[int]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.members:
            raise FusionError(f"hyperedge {self.name!r} has no members")
        if self.weight <= 0:
            raise FusionError(f"hyperedge {self.name!r} must have positive weight")

    def overlaps(self, other: "Hyperedge") -> bool:
        return bool(self.members & other.members)


@dataclass(frozen=True)
class Hypergraph:
    """Nodes plus weighted hyperedges."""

    n_nodes: int
    edges: tuple[Hyperedge, ...]

    def __post_init__(self) -> None:
        names = set()
        for e in self.edges:
            if e.name in names:
                raise FusionError(f"duplicate hyperedge name {e.name!r}")
            names.add(e.name)
            if any(not (0 <= m < self.n_nodes) for m in e.members):
                raise FusionError(f"hyperedge {e.name!r} references unknown nodes")

    @staticmethod
    def from_fusion_graph(graph: FusionGraph, weights: Mapping[str, float] | None = None) -> "Hypergraph":
        """One hyperedge per array (Problem 3.2)."""
        edges = tuple(
            Hyperedge(arr, members, (weights or {}).get(arr, 1.0))
            for arr, members in sorted(graph.hyperedges().items())
        )
        return Hypergraph(graph.n_nodes, edges)

    def edge(self, name: str) -> Hyperedge:
        for e in self.edges:
            if e.name == name:
                return e
        raise FusionError(f"no hyperedge named {name!r}")

    def with_edges(self, extra: Iterable[Hyperedge]) -> "Hypergraph":
        return Hypergraph(self.n_nodes, self.edges + tuple(extra))

    def total_weight(self) -> float:
        return sum(e.weight for e in self.edges)

    # -- connectivity -----------------------------------------------------------
    def component(self, start: int, excluded: frozenset[str] = frozenset()) -> frozenset[int]:
        """Nodes reachable from ``start`` via hyperedges not in ``excluded``.

        Two nodes are connected when a sequence of hyperedges links them,
        consecutive edges sharing at least one node (the paper's path
        definition).
        """
        active = [e for e in self.edges if e.name not in excluded]
        reached = {start}
        changed = True
        while changed:
            changed = False
            for e in active:
                if e.members & reached and not e.members <= reached:
                    reached |= e.members
                    changed = True
        return frozenset(reached)

    def connected(self, u: int, v: int, excluded: frozenset[str] = frozenset()) -> bool:
        return v in self.component(u, excluded)

    def edges_at(self, node: int) -> tuple[Hyperedge, ...]:
        return tuple(e for e in self.edges if node in e.members)

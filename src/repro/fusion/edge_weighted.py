"""The edge-weighted fusion baseline (Gao et al. 1992; Kennedy & McKinley
1993).

Data reuse between a *pair* of loops is modeled as an edge weighted by the
number of arrays the two loops share; the objective is to minimize the
total weight of cross-partition edges. The paper's Figure 4 proves this
objective does not minimize memory transfer — our Figure 4 experiment runs
both this solver and the bandwidth-minimal one on the same graph and
compares actual memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import FusionError
from .cost import edge_weight_cost
from .graph import FusionGraph, Partitioning, require_legal
from .maxflow import FlowNetwork
from .multi_partition import MAX_EXACT_NODES, _enumerate_subsets, _induced_subgraph, _order_groups
from .two_partition import orient_terminals


@dataclass(frozen=True)
class EdgeWeightedSolution:
    partitioning: Partitioning
    cross_weight: int
    method: str


def optimal_edge_weighted(graph: FusionGraph) -> EdgeWeightedSolution:
    """Exact minimum cross-partition weight over all legal partitionings.

    The cross weight equals total weight minus the sum of intra-group
    weights, so the DP minimizes the negated intra-group weight, which is
    group-decomposable.
    """
    n = graph.n_nodes
    if n > MAX_EXACT_NODES:
        raise FusionError(f"exact solver limited to {MAX_EXACT_NODES} nodes")
    weights = {
        (u, v): graph.shared_weight(u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if graph.shared_weight(u, v)
    }
    total = sum(weights.values())
    deps = tuple(graph.deps)
    preventing = graph.preventing

    def intra(group: frozenset[int]) -> int:
        return sum(w for (u, v), w in weights.items() if u in group and v in group)

    def legal_first(group: frozenset[int], remaining: frozenset[int]) -> bool:
        for u in group:
            for v in group:
                if u < v and (u, v) in preventing:
                    return False
        rest = remaining - group
        return not any(a in rest and b in group for a, b in deps)

    @lru_cache(maxsize=None)
    def solve(remaining: frozenset[int]) -> tuple[int, tuple[frozenset[int], ...]]:
        if not remaining:
            return 0, ()
        items = tuple(sorted(remaining))
        best: tuple[int, tuple[frozenset[int], ...]] | None = None
        for group in _enumerate_subsets(items):
            if not legal_first(group, remaining):
                continue
            sub_cost, sub_groups = solve(remaining - group)
            cand = (-intra(group) + sub_cost, (group,) + sub_groups)
            if best is None or cand[0] < best[0]:
                best = cand
        if best is None:
            raise FusionError("no legal partitioning exists")
        return best

    neg_intra, groups = solve(frozenset(range(n)))
    partitioning = Partitioning(groups)
    require_legal(graph, partitioning)
    return EdgeWeightedSolution(partitioning, total + neg_intra, "exact")


def edge_weighted_two_partition(graph: FusionGraph, s: int, t: int) -> EdgeWeightedSolution:
    """Min-cut bisection on the *normal* weighted graph — the mechanism the
    prior work uses (shared-array edges, max-flow between the terminals).

    Dependences are enforced with the same heavy-edge trick, here as heavy
    normal edges (s,a), (a,b), (b,t).
    """
    n = graph.n_nodes
    weights = {
        (u, v): float(graph.shared_weight(u, v))
        for u in range(n)
        for v in range(u + 1, n)
        if graph.shared_weight(u, v)
    }
    heavy = sum(weights.values()) + 1.0
    net = FlowNetwork()
    for i in range(n):
        net.add_node(i)
    for (u, v), w in weights.items():
        net.add_edge(u, v, w)
        net.add_edge(v, u, w)
    for a, b in graph.deps:
        pairs = []
        if a != s and b != t:
            if a == t:
                pairs = [(b, t)]
            elif b == s:
                pairs = [(s, a)]
            else:
                pairs = [(s, a), (a, b), (b, t)]
        for u, v in pairs:
            net.add_edge(u, v, heavy)
            net.add_edge(v, u, heavy)
    result = net.max_flow(s, t)
    early = frozenset(i for i in result.source_side if isinstance(i, int))
    late = frozenset(range(n)) - early
    if not late or t in early:
        raise FusionError("edge-weighted cut failed to separate terminals")
    partitioning = Partitioning((early, late))
    return EdgeWeightedSolution(
        partitioning, edge_weight_cost(graph, partitioning), "mincut-bisection"
    )


def greedy_edge_weighted(graph: FusionGraph) -> EdgeWeightedSolution:
    """Recursive bisection with the edge-weighted cut (the prior-work
    heuristic, for side-by-side comparison with the hypergraph version)."""

    def recurse(node_set: frozenset[int]) -> list[frozenset[int]]:
        pairs = [
            (u, v) for (u, v) in sorted(graph.preventing) if u in node_set and v in node_set
        ]
        if not pairs:
            return [node_set]
        sub, mapping = _induced_subgraph(graph, node_set)
        u, v = pairs[0]
        s, t = orient_terminals(graph, u, v)
        result = edge_weighted_two_partition(sub, mapping[s], mapping[t])
        inverse = {new: old for old, new in mapping.items()}
        early = frozenset(inverse[i] for i in result.partitioning.groups[0])
        late = frozenset(inverse[i] for i in result.partitioning.groups[1])
        return recurse(early) + recurse(late)

    groups = recurse(frozenset(range(graph.n_nodes)))
    partitioning = _order_groups(graph, groups)
    require_legal(graph, partitioning)
    return EdgeWeightedSolution(
        partitioning, edge_weight_cost(graph, partitioning), "greedy-bisection"
    )

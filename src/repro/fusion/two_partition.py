"""Two-partitioning: the polynomial special case of bandwidth-minimal fusion.

Given a fusion graph with two designated terminals that must be separated
(one fusion-preventing edge), the optimal two-way partitioning is a minimal
hyperedge cut: the total memory transfer is the number of distinct arrays
plus the cut size (cut arrays are the ones loaded twice).

Dependences are enforced with the paper's heavy-edge trick: for a
dependence a→b, three hyperedges {s,a}, {a,b}, {b,t} of weight W (W larger
than any possible array cut) add exactly W to every legal cut and at least
3W to any dependence-violating one, so a minimal cut never violates a
dependence. Dependences incident to a terminal degenerate to a single
heavy edge penalizing exactly the violating side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FusionError
from .cost import bandwidth_cost
from .graph import FusionGraph, Partitioning
from .hypergraph import Hyperedge, Hypergraph
from .mincut import minimal_hyperedge_cut


@dataclass(frozen=True)
class TwoPartitionResult:
    """Optimal two-way split for terminals (s earlier, t later)."""

    partitioning: Partitioning
    cut_arrays: frozenset[str]
    cost: int  # bandwidth cost: distinct arrays summed over both groups


def _dependence_edges(
    graph: FusionGraph, s: int, t: int, heavy: float
) -> list[Hyperedge]:
    """Heavy hyperedges encoding every dependence for terminals (s, t)."""
    edges: list[Hyperedge] = []
    for k, (a, b) in enumerate(sorted(graph.deps)):
        tag = f"__dep{k}_{a}_{b}"
        if a == s or b == t:
            # s is always in the early side / t always in the late side:
            # the dependence cannot be violated.
            continue
        if a == t:
            # t->b: b must be in the late side; penalize b early.
            edges.append(Hyperedge(f"{tag}_bt", frozenset({b, t}), heavy))
            continue
        if b == s:
            # a->s: a must be in the early side; penalize a late.
            edges.append(Hyperedge(f"{tag}_sa", frozenset({s, a}), heavy))
            continue
        edges.append(Hyperedge(f"{tag}_sa", frozenset({s, a}), heavy))
        edges.append(Hyperedge(f"{tag}_ab", frozenset({a, b}), heavy))
        edges.append(Hyperedge(f"{tag}_bt", frozenset({b, t}), heavy))
    return edges


def two_partition(graph: FusionGraph, s: int, t: int) -> TwoPartitionResult:
    """Optimal bandwidth-minimal split with ``s`` early and ``t`` late.

    Raises :class:`FusionError` if a dependence forces ``t`` before ``s``.
    """
    if graph.prevented(s, t) is False and s != t:
        # Not an error: callers may bisect on any pair; but warnable.
        pass
    # Dependence sanity: t must not (transitively) precede s.
    if _reaches(graph, t, s):
        raise FusionError(f"terminal order contradicts dependences: {t} precedes {s}")

    hg = Hypergraph.from_fusion_graph(graph)
    heavy = hg.total_weight() + 1.0
    hg = hg.with_edges(_dependence_edges(graph, s, t, heavy))
    cut = minimal_hyperedge_cut(hg, s, t)

    early = frozenset(cut.side_s)
    late = frozenset(range(graph.n_nodes)) - early
    if not late:
        raise FusionError("cut produced an empty late side")
    partitioning = Partitioning((early, late))
    # The split must respect every dependence (the heavy edges guarantee
    # it; verify anyway). Other fusion-preventing pairs may still share a
    # side here — the multi-partitioner resolves those recursively.
    for a, b in graph.deps:
        if a in late and b in early:
            raise FusionError(f"internal error: cut violates dependence {a}->{b}")
    cut_arrays = frozenset(n for n in cut.cut if not n.startswith("__dep"))
    return TwoPartitionResult(partitioning, cut_arrays, bandwidth_cost(graph, partitioning))


def _reaches(graph: FusionGraph, src: int, dst: int) -> bool:
    """True when ``dst`` is dependence-reachable from ``src``."""
    adj: dict[int, list[int]] = {}
    for u, v in graph.deps:
        adj.setdefault(u, []).append(v)
    stack, seen = [src], {src}
    while stack:
        u = stack.pop()
        if u == dst:
            return True
        for v in adj.get(u, ()):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return False


def orient_terminals(graph: FusionGraph, u: int, v: int) -> tuple[int, int]:
    """Order a fusion-preventing pair consistently with dependences."""
    if _reaches(graph, u, v):
        return u, v
    if _reaches(graph, v, u):
        return v, u
    return (u, v) if u < v else (v, u)

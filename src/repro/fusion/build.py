"""Construct fusion graphs from IR programs.

One node per top-level statement; node arrays come from read/write-set
analysis, dependence edges from the dependence analysis, and
fusion-preventing edges from the legality analysis (non-conformable
headers, unanalyzable or direction-reversing subscripts, non-loop
statements).
"""

from __future__ import annotations

from typing import Iterable

from ..lang.analysis.legality import fusion_constraints
from ..lang.program import Program
from ..lang.stmt import Loop
from .graph import FusionGraph


def fusion_graph_from_program(
    program: Program,
    extra_preventing: Iterable[tuple[int, int]] = (),
) -> FusionGraph:
    """Build the paper's fusion graph for ``program``'s top-level statements.

    ``extra_preventing`` adds user-asserted fusion-preventing pairs on top
    of the analyzed ones (the paper's Figure 4 *assumes* loops 5 and 6
    cannot fuse; such external constraints — register pressure, pragmas —
    are modeled this way).
    """
    constraints = fusion_constraints(program)
    labels = []
    for i, stmt in enumerate(program.body):
        if isinstance(stmt, Loop):
            labels.append(f"loop{i + 1}({stmt.var})")
        else:
            labels.append(f"stmt{i + 1}")
    deps = constraints.dependences.pairs()
    preventing = set(constraints.fusion_preventing)
    preventing.update((min(u, v), max(u, v)) for u, v in extra_preventing)
    return FusionGraph.build(
        [constraints.node_arrays[i] for i in range(constraints.n_nodes)],
        deps=deps,
        preventing=preventing,
        labels=labels,
    )

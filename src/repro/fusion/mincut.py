"""Minimal hyperedge cut between two nodes — the paper's Figure 5 algorithm.

Steps, exactly as published:

1. Convert the hypergraph into a normal graph G': one vertex per
   hyperedge, an edge between two vertices when their hyperedges overlap,
   plus fresh end vertices s'/t' adjacent to every hyperedge containing
   s/t. A hyperedge cut in the hypergraph is a *vertex* cut in G'.
2. Find a minimal vertex cut in G' by splitting every vertex into an
   in/out pair joined by an edge of that hyperedge's weight, making
   adjacency edges infinite, and running max-flow (Edmonds–Karp, i.e.
   Ford–Fulkerson with BFS).
3. Map the cut vertices back to hyperedges, remove them, and read off the
   two partitions as the connectivity component of s and its complement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import FusionError
from .hypergraph import Hypergraph
from .maxflow import FlowNetwork


@dataclass(frozen=True)
class HyperCut:
    """Result of a two-terminal minimal hyperedge cut."""

    cut: frozenset[str]  # names of cut hyperedges
    weight: float
    side_s: frozenset[int]  # nodes connected to s after removing the cut
    side_t: frozenset[int]  # the complement


def minimal_hyperedge_cut(hg: Hypergraph, s: int, t: int) -> HyperCut:
    """Minimal-weight set of hyperedges separating ``s`` from ``t``."""
    if not (0 <= s < hg.n_nodes and 0 <= t < hg.n_nodes):
        raise FusionError("terminals out of range")
    if s == t:
        raise FusionError("terminals must differ")

    net = FlowNetwork()
    SRC, SNK = ("src",), ("snk",)  # tuples cannot collide with edge names
    net.add_node(SRC)
    net.add_node(SNK)

    # Step 1+2 fused: vertex per hyperedge, split into in/out.
    for e in hg.edges:
        net.add_edge(("in", e.name), ("out", e.name), e.weight)
    for i, e in enumerate(hg.edges):
        for f in hg.edges[i + 1 :]:
            if e.overlaps(f):
                net.add_edge(("out", e.name), ("in", f.name), math.inf)
                net.add_edge(("out", f.name), ("in", e.name), math.inf)
    for e in hg.edges:
        if s in e.members:
            net.add_edge(SRC, ("in", e.name), math.inf)
        if t in e.members:
            net.add_edge(("out", e.name), SNK, math.inf)

    result = net.max_flow(SRC, SNK)

    # Step 3: cut vertices = split (in -> out) edges crossing the partition.
    # Infinite adjacency edges can never cross a finite min cut, so every
    # crossing edge is a split edge and names a cut hyperedge.
    cut_names = frozenset(
        u[1]
        for u, v in result.cut_edges
        if len(u) == 2 and u[0] == "in" and len(v) == 2 and v[0] == "out" and u[1] == v[1]
    )
    side_s = hg.component(s, cut_names)
    if t in side_s:
        raise FusionError("internal error: cut does not separate the terminals")
    side_t = frozenset(range(hg.n_nodes)) - side_s
    weight = sum(hg.edge(name).weight for name in cut_names)
    return HyperCut(cut_names, weight, side_s, side_t)

"""Cost models for partitionings.

* :func:`bandwidth_cost` — the paper's objective (Problem 3.1): the sum
  over partitions of the number of distinct arrays each accesses. Assuming
  arrays too large for cross-loop cache reuse, every partition loads each
  of its arrays from memory once, so this sum *is* the total memory
  transfer in array-loads.
* :func:`edge_weight_cost` — the prior objective of Gao et al. and
  Kennedy & McKinley: total weight of edges crossing partitions, where an
  edge's weight is the number of arrays its two loops share. The paper's
  Figure 4 shows this does not minimize memory transfer; our Figure 4
  experiment reproduces the counterexample with these two functions.
* :func:`hyperedge_length_cost` — the Problem 3.2 restatement: the sum of
  hyperedge lengths (partitions touched per array). Equal to
  :func:`bandwidth_cost` by construction; tested as an invariant.
"""

from __future__ import annotations

from .graph import FusionGraph, Partitioning


def bandwidth_cost(graph: FusionGraph, partitioning: Partitioning) -> int:
    """Total array-loads: sum over groups of distinct arrays accessed."""
    return sum(len(graph.arrays_of(g)) for g in partitioning.groups)


def edge_weight_cost(graph: FusionGraph, partitioning: Partitioning) -> int:
    """Total shared-array weight across group boundaries (to *minimize*)."""
    total = 0
    for u in range(graph.n_nodes):
        for v in range(u + 1, graph.n_nodes):
            w = graph.shared_weight(u, v)
            if w and partitioning.group_of(u) != partitioning.group_of(v):
                total += w
    return total


def hyperedge_length_cost(graph: FusionGraph, partitioning: Partitioning) -> int:
    """Sum over hyperedges (arrays) of the number of groups they touch."""
    total = 0
    for _, members in graph.hyperedges().items():
        groups = {partitioning.group_of(i) for i in members}
        total += len(groups)
    return total


def reload_count(graph: FusionGraph, partitioning: Partitioning) -> int:
    """Arrays loaded more than once: bandwidth cost minus distinct arrays.

    The minimal-cut objective: a cut hyperedge is exactly an array that
    must be reloaded by a later partition.
    """
    return bandwidth_cost(graph, partitioning) - len(graph.all_arrays)


def memory_bytes_estimate(
    graph: FusionGraph, partitioning: Partitioning, array_bytes: dict[str, int]
) -> int:
    """Estimated memory traffic in bytes: each group streams each of its
    arrays once (reads; writebacks are modeled by the executor, not here)."""
    total = 0
    for g in partitioning.groups:
        for arr in graph.arrays_of(g):
            total += array_bytes[arr]
    return total

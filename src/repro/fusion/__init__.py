"""Bandwidth-minimal loop fusion (paper section 3.1) and baselines."""

from .apply import apply_partitioning, fuse_loops
from .build import fusion_graph_from_program
from .cost import (
    bandwidth_cost,
    edge_weight_cost,
    hyperedge_length_cost,
    memory_bytes_estimate,
    reload_count,
)
from .edge_weighted import (
    EdgeWeightedSolution,
    edge_weighted_two_partition,
    greedy_edge_weighted,
    optimal_edge_weighted,
)
from .graph import FusionGraph, FusionNode, Partitioning, check_legal, is_legal, require_legal
from .hypergraph import Hyperedge, Hypergraph
from .kwaycut import (
    KWayCutInstance,
    brute_force_kway_cut,
    fusion_from_assignment,
    to_fusion_graph,
    verify_reduction,
)
from .maxflow import FlowNetwork, MaxFlowResult, max_flow
from .mincut import HyperCut, minimal_hyperedge_cut
from .multi_partition import (
    FusionSolution,
    greedy_partitioning,
    optimal_partitioning,
    program_order_fusion,
)
from .two_partition import TwoPartitionResult, orient_terminals, two_partition
from .typed import (
    array_weights_from_program,
    optimal_weighted_partitioning,
    typed_fusion,
    weighted_bandwidth_cost,
    weighted_two_partition_cut,
)

__all__ = [
    "EdgeWeightedSolution",
    "FlowNetwork",
    "FusionGraph",
    "FusionNode",
    "FusionSolution",
    "HyperCut",
    "Hyperedge",
    "Hypergraph",
    "KWayCutInstance",
    "MaxFlowResult",
    "Partitioning",
    "TwoPartitionResult",
    "apply_partitioning",
    "bandwidth_cost",
    "brute_force_kway_cut",
    "check_legal",
    "edge_weight_cost",
    "edge_weighted_two_partition",
    "fuse_loops",
    "fusion_from_assignment",
    "fusion_graph_from_program",
    "greedy_edge_weighted",
    "greedy_partitioning",
    "hyperedge_length_cost",
    "is_legal",
    "max_flow",
    "memory_bytes_estimate",
    "minimal_hyperedge_cut",
    "optimal_edge_weighted",
    "optimal_partitioning",
    "program_order_fusion",
    "orient_terminals",
    "reload_count",
    "require_legal",
    "to_fusion_graph",
    "two_partition",
    "typed_fusion",
    "weighted_bandwidth_cost",
    "weighted_two_partition_cut",
    "optimal_weighted_partitioning",
    "array_weights_from_program",
    "verify_reduction",
]

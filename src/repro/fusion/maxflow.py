"""Max-flow / min-cut on directed graphs, implemented from scratch.

Edmonds–Karp (BFS augmenting paths, the "Ford-Fulkerson method" of the
paper's Figure 5 with the breadth-first choice that gives the O(V(E+V))
bound quoted there). Capacities may be float('inf'); the flow network is
small (one node per hyperedge after splitting), so a dict-of-dicts residual
graph is the clearest correct structure.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

from ..errors import FusionError

Node = Hashable


@dataclass(frozen=True)
class MaxFlowResult:
    """Flow value, the source-side residual-reachable set, and the cut."""

    value: float
    source_side: frozenset[Node]
    cut_edges: frozenset[tuple[Node, Node]]


class FlowNetwork:
    """A directed capacitated graph."""

    def __init__(self) -> None:
        self._cap: dict[Node, dict[Node, float]] = {}

    def add_node(self, u: Node) -> None:
        self._cap.setdefault(u, {})

    def add_edge(self, u: Node, v: Node, capacity: float) -> None:
        """Add capacity on (u, v); parallel adds accumulate."""
        if capacity < 0:
            raise FusionError("negative capacity")
        if u == v:
            raise FusionError("self-loop")
        self.add_node(u)
        self.add_node(v)
        self._cap[u][v] = self._cap[u].get(v, 0.0) + capacity
        self._cap[v].setdefault(u, 0.0)

    @property
    def nodes(self) -> frozenset[Node]:
        return frozenset(self._cap)

    def capacity(self, u: Node, v: Node) -> float:
        return self._cap.get(u, {}).get(v, 0.0)

    def edges(self) -> Iterable[tuple[Node, Node, float]]:
        for u, targets in self._cap.items():
            for v, c in targets.items():
                if c > 0:
                    yield (u, v, c)

    # -- Edmonds-Karp ---------------------------------------------------------
    def max_flow(self, source: Node, sink: Node) -> MaxFlowResult:
        if source not in self._cap or sink not in self._cap:
            raise FusionError("source or sink not in network")
        if source == sink:
            raise FusionError("source equals sink")
        residual: dict[Node, dict[Node, float]] = {
            u: dict(targets) for u, targets in self._cap.items()
        }
        value = 0.0
        while True:
            parent: dict[Node, Node] = {source: source}
            queue: deque[Node] = deque([source])
            while queue and sink not in parent:
                u = queue.popleft()
                for v, c in residual[u].items():
                    if c > 1e-12 and v not in parent:
                        parent[v] = u
                        queue.append(v)
            if sink not in parent:
                break
            # Bottleneck along the path.
            bottleneck = math.inf
            v = sink
            while v != source:
                u = parent[v]
                bottleneck = min(bottleneck, residual[u][v])
                v = u
            if not math.isfinite(bottleneck):
                raise FusionError("infinite-capacity path from source to sink: cut undefined")
            v = sink
            while v != source:
                u = parent[v]
                residual[u][v] -= bottleneck
                residual[v][u] = residual[v].get(u, 0.0) + bottleneck
                v = u
            value += bottleneck

        # Min cut: source side = residual-reachable nodes.
        reachable: set[Node] = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v, c in residual[u].items():
                if c > 1e-12 and v not in reachable:
                    reachable.add(v)
                    queue.append(v)
        cut = frozenset(
            (u, v)
            for u, targets in self._cap.items()
            if u in reachable
            for v, c in targets.items()
            if c > 0 and v not in reachable
        )
        return MaxFlowResult(value, frozenset(reachable), cut)


def max_flow(
    edges: Mapping[tuple[Node, Node], float], source: Node, sink: Node
) -> MaxFlowResult:
    """Convenience wrapper over :class:`FlowNetwork`."""
    net = FlowNetwork()
    for (u, v), c in edges.items():
        net.add_edge(u, v, c)
    net.add_node(source)
    net.add_node(sink)
    return net.max_flow(source, sink)

"""Typed fusion (Kennedy & McKinley 1993) and size-weighted fusion.

Two algorithms from the paper's immediate lineage:

* **Typed fusion** — the prior work's practical framework: every loop has
  a *type* (conformability class, parallel vs sequential, ...) and only
  loops of the same type may fuse. The ordered-greedy algorithm sweeps
  program order, merging each loop into the latest open group of its type
  when dependences and fusion-preventing constraints allow. The paper
  cites Kennedy & McKinley's proof that multi-type fusion is NP-hard and
  positions its own hypergraph objective as the transfer-exact
  replacement; this implementation lets experiments compare the two.

* **Size-weighted fusion** — the natural refinement the hypergraph model
  supports for free: hyperedges weighted by *array bytes* instead of unit
  count, so the optimizer minimizes transferred bytes rather than array
  loads. When arrays differ wildly in size the two objectives pick
  different partitions (tested); with unit weights it degenerates to the
  paper's formulation.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from ..errors import FusionError
from .cost import bandwidth_cost
from .graph import FusionGraph, Partitioning, require_legal
from .hypergraph import Hypergraph
from .multi_partition import MAX_EXACT_NODES, FusionSolution, optimal_partitioning


def typed_fusion(
    graph: FusionGraph,
    types: Sequence[Hashable] | None = None,
) -> FusionSolution:
    """Ordered-greedy typed fusion.

    ``types[i]`` is node i's type; only same-type loops may share a group.
    Joining the latest open group of the node's type is allowed when
    (a) no fusion-preventing pair would land in the group, and (b) every
    dependence predecessor of the node sits in that group or an earlier
    one (joining would otherwise order a later-created group before an
    earlier one and could create a cycle).
    """
    n = graph.n_nodes
    if types is None:
        types = [0] * n
    if len(types) != n:
        raise FusionError(f"need one type per node ({n}), got {len(types)}")

    groups: list[set[int]] = []  # creation order == final order
    group_of: dict[int, int] = {}
    latest_of_type: dict[Hashable, int] = {}

    for node in range(n):
        t = types[node]
        target = latest_of_type.get(t)
        can_join = target is not None
        if can_join:
            members = groups[target]
            if any(graph.prevented(node, m) for m in members):
                can_join = False
        if can_join:
            for u, v in graph.deps:
                if v == node and group_of[u] > target:
                    can_join = False
                    break
        if can_join:
            groups[target].add(node)
            group_of[node] = target
        else:
            groups.append({node})
            group_of[node] = len(groups) - 1
            latest_of_type[t] = group_of[node]

    partitioning = Partitioning(tuple(frozenset(g) for g in groups))
    require_legal(graph, partitioning)
    return FusionSolution(partitioning, bandwidth_cost(graph, partitioning), "typed-greedy")


def weighted_bandwidth_cost(
    graph: FusionGraph,
    partitioning: Partitioning,
    weights: Mapping[str, float],
) -> float:
    """Total transferred bytes: each group streams each of its arrays once."""
    total = 0.0
    for group in partitioning.groups:
        for arr in graph.arrays_of(group):
            try:
                total += weights[arr]
            except KeyError as exc:
                raise FusionError(f"no weight for array {arr!r}") from exc
    return total


def optimal_weighted_partitioning(
    graph: FusionGraph, weights: Mapping[str, float]
) -> tuple[Partitioning, float]:
    """Exact minimum-transferred-bytes partitioning (exponential, like the
    unit-cost exact solver; same node-count limit)."""
    if graph.n_nodes > MAX_EXACT_NODES:
        raise FusionError(f"exact solver limited to {MAX_EXACT_NODES} nodes")

    def cost_fn(g: FusionGraph, p: Partitioning) -> float:
        return sum(weights[arr] for group in p.groups for arr in g.arrays_of(group))

    solution = optimal_partitioning(graph, cost_fn=cost_fn)
    return solution.partitioning, weighted_bandwidth_cost(
        graph, solution.partitioning, weights
    )


def array_weights_from_program(program, params=None) -> dict[str, float]:
    """Array name -> bytes, for weighting a program's fusion graph."""
    env = program.bind_params(params)
    return {decl.name: float(decl.size_bytes(env)) for decl in program.arrays}


def weighted_two_partition_cut(
    graph: FusionGraph, s: int, t: int, weights: Mapping[str, float]
) -> frozenset[str]:
    """Minimal-bytes cut between two terminals: the Figure 5 machinery run
    with byte-weighted hyperedges (the algorithm already supports
    non-negative weights, as the paper notes)."""
    from .mincut import minimal_hyperedge_cut

    hg = Hypergraph.from_fusion_graph(graph, weights=dict(weights))
    cut = minimal_hyperedge_cut(hg, s, t)
    return cut.cut
